"""Tests for telemetry emission and ingest round trips."""

import random

import pytest

from repro.collector import DataCollector
from repro.simulation.telemetry import (
    BASE_EPOCH,
    TelemetryBuffers,
    TelemetryEmitter,
)
from repro.topology import TopologyParams, build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyParams(n_pops=2, pers_per_pop=1, customers_per_per=2))


@pytest.fixture
def emitter(topo):
    return TelemetryEmitter(topo, random.Random(1), syslog_jitter=0.0)


def ingest(emitter, topo):
    collector = DataCollector()
    for router in topo.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    emitter.buffers.ingest_into(collector)
    return collector


class TestBuffers:
    def test_lines_sorted_by_time(self):
        buffers = TelemetryBuffers()
        buffers.add("syslog", 20.0, "b")
        buffers.add("syslog", 10.0, "a")
        assert buffers.lines("syslog") == ["a", "b"]

    def test_total_lines(self):
        buffers = TelemetryBuffers()
        buffers.add("syslog", 1.0, "a")
        buffers.add("snmp", 1.0, "b")
        assert buffers.total_lines() == 2
        assert buffers.sources() == ["snmp", "syslog"]


class TestEmitRoundTrips:
    def test_interface_flap_round_trip(self, emitter, topo):
        iface = topo.network.router("nyc-per1").interfaces[0].fqname
        emitter.interface_flap(BASE_EPOCH, iface, duration=30.0)
        collector = ingest(emitter, topo)
        records = collector.store.table("syslog").query()
        codes = sorted(r["code"] for r in records)
        assert codes == [
            "LINEPROTO-5-UPDOWN", "LINEPROTO-5-UPDOWN",
            "LINK-3-UPDOWN", "LINK-3-UPDOWN",
        ]
        states = {(r["code"], r["state"]) for r in records}
        assert ("LINK-3-UPDOWN", "down") in states
        assert ("LINK-3-UPDOWN", "up") in states

    def test_timezone_round_trip_within_seconds(self, emitter, topo):
        # nyc routers stamp in US/Eastern; parsing must recover UTC
        emitter.router_restart(BASE_EPOCH + 3600.0, "nyc-per1")
        collector = ingest(emitter, topo)
        record = collector.store.table("syslog").query()[0]
        assert abs(record.timestamp - (BASE_EPOCH + 3600.0)) < 1.5

    def test_ebgp_flap_round_trip(self, emitter, topo):
        emitter.ebgp_flap(BASE_EPOCH, "nyc-per1", "10.0.0.2", duration=45.0)
        collector = ingest(emitter, topo)
        records = collector.store.table("syslog").query(code="BGP-5-ADJCHANGE")
        assert [r["state"] for r in records] == ["down", "up"]
        assert all(r["neighbor"] == "10.0.0.2" for r in records)

    def test_hold_timer_and_reset_reasons(self, emitter, topo):
        emitter.bgp_hold_timer_expiry(BASE_EPOCH, "nyc-per1", "10.0.0.2")
        emitter.bgp_customer_reset(BASE_EPOCH + 10, "nyc-per1", "10.0.0.2")
        collector = ingest(emitter, topo)
        reasons = [r["reason"] for r in collector.store.table("syslog").query()]
        assert reasons == ["hold_timer_expired", "administrative_reset"]

    def test_pim_neighbor_change_with_vrf(self, emitter, topo):
        emitter.pim_neighbor_change(
            BASE_EPOCH, "nyc-per1", "192.168.0.1", "se0/0", "down", vrf="vpn-7"
        )
        collector = ingest(emitter, topo)
        record = collector.store.table("syslog").query()[0]
        assert record["vrf"] == "vpn-7"
        assert record["state"] == "down"

    def test_cpu_spike_percentage(self, emitter, topo):
        emitter.cpu_spike(BASE_EPOCH, "nyc-per1", percent=97)
        collector = ingest(emitter, topo)
        assert collector.store.table("syslog").query()[0]["cpu_pct"] == 97

    def test_linecard_crash_slot(self, emitter, topo):
        emitter.linecard_crash_msg(BASE_EPOCH, "nyc-per1", slot=2)
        collector = ingest(emitter, topo)
        assert collector.store.table("syslog").query()[0]["slot"] == 2

    def test_all_feed_types_parse_cleanly(self, emitter, topo):
        emitter.snmp(BASE_EPOCH, "nyc-per1", "cpu_util_5min", "", 50.0)
        emitter.ospf_weight(BASE_EPOCH, "l1", 10)
        emitter.bgp_update(BASE_EPOCH, "A", "198.51.100.0/24", "nyc-cr1")
        emitter.tacacs(BASE_EPOCH, "nyc-cr1", "op", "show version")
        emitter.layer1(BASE_EPOCH, "adm-1", "sonet_restoration", "c-1")
        emitter.perf(BASE_EPOCH, "a", "b", "rtt_ms", 30.0)
        emitter.netflow(BASE_EPOCH, "srv", "1.2.3.4", "nyc-per1")
        emitter.workflow(BASE_EPOCH, "nyc-per1", "prov.x", "d")
        emitter.cdn(BASE_EPOCH, "srv", "load", 0.5)
        collector = ingest(emitter, topo)
        for parser in collector.parsers.values():
            assert parser.stats.rejected == 0, parser.table_name
        assert collector.store.total_records() == 9

    def test_jitter_bounded(self, topo):
        emitter = TelemetryEmitter(topo, random.Random(3), syslog_jitter=2.0)
        emitter.router_restart(BASE_EPOCH, "nyc-per1")
        collector = ingest(emitter, topo)
        record = collector.store.table("syslog").query()[0]
        assert abs(record.timestamp - BASE_EPOCH) <= 3.5
