"""Tests for the evaluation scenarios (small-scale runs)."""

import pytest

from repro.simulation import (
    TABLE4_MIXTURE,
    TABLE6_MIXTURE,
    TABLE8_MIXTURE,
    bgp_month,
    cdn_month,
    cpu_bgp_study,
    linecard_crash,
    pim_fortnight,
)
from repro.topology import TopologyParams

SMALL_BGP = TopologyParams(n_pops=3, pers_per_pop=2, customers_per_per=4, seed=5)


@pytest.fixture(scope="module")
def bgp_result():
    return bgp_month(total_flaps=80, params=SMALL_BGP, seed=5, duration_days=10)


class TestBgpMonth:
    def test_all_mixture_causes_present(self, bgp_result):
        counts = bgp_result.truth_counts()
        for cause, _pct in TABLE4_MIXTURE:
            assert counts.get(cause, 0) >= 1, cause

    def test_dominant_cause_is_interface_flap(self, bgp_result):
        counts = bgp_result.truth_counts()
        assert counts["Interface flap"] == max(counts.values())

    def test_ground_truth_times_in_window(self, bgp_result):
        for truth in bgp_result.ground_truth:
            assert bgp_result.start <= truth.time <= bgp_result.end

    def test_telemetry_parsed_without_rejects(self, bgp_result):
        for parser in bgp_result.collector.parsers.values():
            assert parser.stats.rejected == 0, parser.table_name

    def test_deterministic_given_seed(self):
        a = bgp_month(total_flaps=30, params=SMALL_BGP, seed=7, duration_days=5)
        b = bgp_month(total_flaps=30, params=SMALL_BGP, seed=7, duration_days=5)
        assert a.truth_counts() == b.truth_counts()
        assert a.collector.store.total_records() == b.collector.store.total_records()

    def test_platform_builds(self, bgp_result):
        platform = bgp_result.platform()
        assert platform.paths.bgp is not None
        assert len(platform.services["loopbacks"]) > 0


class TestPimFortnight:
    @pytest.fixture(scope="class")
    def result(self):
        return pim_fortnight(
            total_changes=60,
            params=TopologyParams(n_pops=4, pers_per_pop=2, customers_per_per=3, seed=6),
            seed=6,
            duration_days=10,
        )

    def test_mixture_causes_present(self, result):
        counts = result.truth_counts()
        for cause, pct in TABLE8_MIXTURE:
            if pct >= 1.0:  # tiny categories may legitimately top out at 0
                assert counts.get(cause, 0) >= 1, cause

    def test_symptoms_are_pim_changes(self, result):
        assert all(
            t.symptom == "PIM Neighbor Adjacency Change" for t in result.ground_truth
        )

    def test_customer_flap_dominates(self, result):
        counts = result.truth_counts()
        assert counts["interface (customer facing) flap"] == max(counts.values())


class TestCdnMonth:
    @pytest.fixture(scope="class")
    def result(self):
        return cdn_month(total_degradations=60, duration_days=10, n_clients=12, seed=8)

    def test_outside_network_dominates(self, result):
        counts = result.truth_counts()
        assert counts["Outside of our network (Unknown)"] == max(counts.values())

    def test_all_mixture_causes_present(self, result):
        counts = result.truth_counts()
        for cause, _pct in TABLE6_MIXTURE:
            assert counts.get(cause, 0) >= 1, cause

    def test_rtt_samples_generated_for_all_pairs(self, result):
        perf = result.collector.store.table("perfmon")
        pairs = result.extras["pairs"]
        sources = {r["source"] for r in perf.scan()}
        assert sources == {server for server, _client in pairs}


class TestCpuStudy:
    def test_provisioning_and_noise_present(self):
        result = cpu_bgp_study(
            seed=9, duration_days=10, n_provisioning=40,
            provisioning_flap_probability=0.5, n_other_flaps=100, n_pure_cpu_flaps=5,
        )
        counts = result.truth_counts()
        assert counts.get("Provisioning-induced CPU flap", 0) >= 5
        assert counts["Interface flap"] == 100
        activities = result.collector.store.table("workflow").distinct("activity")
        assert "provisioning.port_turnup" in activities
        assert len(activities) >= 4  # benign noise universe exists


class TestLinecardCrash:
    def test_crash_group_exists(self):
        result = linecard_crash(seed=10, n_background_flaps=10, duration_days=10)
        crash = [t for t in result.ground_truth if t.cause == "Line-card crash"]
        assert len(crash) >= 3
        spread = max(t.time for t in crash) - min(t.time for t in crash)
        assert spread <= 180.0
        assert result.extras["crash_router"] in result.topology.provider_edges
