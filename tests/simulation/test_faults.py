"""Tests for root-cause fault recipes: emitted telemetry matches the
claimed causal chain and the returned ground truth."""

import random

import pytest

from repro.collector import DataCollector
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, BGP_HOLD_TIMER, TelemetryEmitter
from repro.topology import TopologyParams, build_topology

T = BASE_EPOCH + 3600.0


@pytest.fixture
def topo():
    return build_topology(
        TopologyParams(
            n_pops=3, pers_per_pop=2, customers_per_per=4,
            access_sonet_fraction=0.5, access_mesh_fraction=0.3, seed=21,
        )
    )


@pytest.fixture
def injector(topo):
    emitter = TelemetryEmitter(topo, random.Random(2), syslog_jitter=0.0)
    return FaultInjector(topo, emitter, random.Random(3))


def ingest(injector, topo):
    collector = DataCollector()
    for router in topo.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    injector.emitter.buffers.ingest_into(collector)
    return collector.store


def first_customer(topo):
    return sorted(topo.customer_attachments)[0]


class TestBgpRecipes:
    def test_interface_flap_chain(self, injector, topo):
        customer = first_customer(topo)
        truths = injector.bgp_interface_flap(T, customer)
        assert [t.cause for t in truths] == ["Interface flap"]
        store = ingest(injector, topo)
        codes = {r["code"] for r in store.table("syslog").query()}
        assert codes == {"LINK-3-UPDOWN", "LINEPROTO-5-UPDOWN", "BGP-5-ADJCHANGE"}

    def test_lineproto_flap_uses_hold_timer(self, injector, topo):
        customer = first_customer(topo)
        truths = injector.bgp_lineproto_flap(T, customer)
        assert truths[0].time == pytest.approx(T + BGP_HOLD_TIMER)
        store = ingest(injector, topo)
        codes = {r["code"] for r in store.table("syslog").query()}
        assert "LINK-3-UPDOWN" not in codes
        assert "BGP-5-NOTIFICATION" in codes

    def test_cpu_average_snmp_sample(self, injector, topo):
        customer = first_customer(topo)
        injector.bgp_cpu_average(T, customer)
        store = ingest(injector, topo)
        samples = store.table("snmp").query(metric="cpu_util_5min")
        assert len(samples) == 1
        assert samples[0]["value"] >= 80.0

    def test_reboot_flaps_every_session(self, injector, topo):
        per = topo.provider_edges[0]
        truths = injector.bgp_router_reboot(T, per)
        n_customers = sum(
            1 for _c, (owner, _i, _ip) in topo.customer_attachments.items()
            if owner == per
        )
        assert len(truths) == n_customers
        store = ingest(injector, topo)
        downs = store.table("syslog").query(code="BGP-5-ADJCHANGE", state="down")
        assert len(downs) == n_customers

    def test_layer1_restoration_requires_access_circuit(self, injector, topo):
        riding = sorted(topo.customer_layer1)
        assert riding, "fixture must have customers on layer-1 access"
        truths = injector.bgp_layer1_restoration(T, riding[0], "SONET restoration")
        assert truths[0].cause == "SONET restoration"
        store = ingest(injector, topo)
        assert len(store.table("layer1").query()) == 1

    def test_layer1_restoration_rejects_plain_ethernet(self, injector, topo):
        plain = sorted(
            set(topo.customer_attachments) - set(topo.customer_layer1)
        )
        if not plain:
            pytest.skip("all customers ride layer-1 in this draw")
        with pytest.raises(ValueError):
            injector.bgp_layer1_restoration(T, plain[0], "SONET restoration")

    def test_unknown_emits_only_adjchange(self, injector, topo):
        injector.bgp_unknown(T, first_customer(topo))
        store = ingest(injector, topo)
        codes = {r["code"] for r in store.table("syslog").query()}
        assert codes == {"BGP-5-ADJCHANGE"}

    def test_linecard_crash_within_three_minutes(self, injector, topo):
        per = topo.provider_edges[0]
        slots = {
            topo.network.interface(iface).slot
            for _c, (owner, iface, _ip) in topo.customer_attachments.items()
            if owner == per
        }
        slot = sorted(slots)[0]
        truths = injector.bgp_linecard_crash(T, per, slot)
        assert truths, "expected at least one session on the card"
        times = [t.time for t in truths]
        assert max(times) - min(times) <= 180.0
        assert all(t.cause == "Line-card crash" for t in truths)


class TestPimRecipes:
    def test_config_change_emits_command_and_nbrchg(self, injector, topo):
        pe = topo.provider_edges[0]
        truths = injector.pim_config_change(T, pe)
        assert all(t.cause == "PIM Configuration change" for t in truths)
        store = ingest(injector, topo)
        assert store.table("workflow").query()
        assert store.table("tacacs").query()
        assert store.table("syslog").query(code="PIM-5-NBRCHG")

    def test_router_cost_touches_all_links(self, injector, topo):
        core = f"{sorted(topo.network.pops)[0]}-cr1"
        injector.pim_router_cost(T, core)
        store = ingest(injector, topo)
        n_links = len(topo.network.logical_links_of_router(core))
        outs = [
            r for r in store.table("ospfmon").query() if r["weight"] >= 65535
        ]
        assert len(outs) == n_links

    def test_link_cost_out_selects_crossing_pair(self, injector, topo):
        links = [
            l.name for l in topo.network.logical_links.values()
            if "cr" in l.router_a and "cr" in l.router_z
        ]
        produced = []
        for link in links:
            produced = injector.pim_link_cost_out(T, link)
            if produced:
                break
        assert produced, "at least one backbone link must carry a PE pair"
        pe_a, pe_b = produced[0].location.split("~")
        paths = injector.paths_between(pe_a, pe_b, T - 10.0)
        assert link in paths.links

    def test_uplink_adjacency_vrfless_message(self, injector, topo):
        pe = topo.provider_edges[0]
        injector.pim_uplink_adjacency(T, pe)
        store = ingest(injector, topo)
        records = store.table("syslog").query(code="PIM-5-NBRCHG", state="down")
        vrfless = [r for r in records if r.get("vrf") is None]
        vrfful = [r for r in records if r.get("vrf") is not None]
        assert vrfless and vrfful

    def test_customer_flap_cause_label(self, injector, topo):
        truths = injector.pim_customer_interface_flap(T, first_customer(topo))
        assert truths[0].cause == "interface (customer facing) flap"


class TestCdnRecipes:
    def test_egress_change_restores_state(self, injector, topo):
        injector.cdn_egress_change(T, "198.51.100.0/24", "chi-cr1", "dfw-cr1")
        store = ingest(injector, topo)
        rows = store.table("bgpmon").query()
        kinds = [(r["kind"], r["egress_router"]) for r in rows]
        assert kinds.count(("W", "chi-cr1")) == 1
        assert kinds.count(("A", "chi-cr1")) == 1
        assert kinds.count(("A", "dfw-cr1")) == 1
        assert kinds.count(("W", "dfw-cr1")) == 1

    def test_congestion_samples_span_duration(self, injector, topo):
        iface = topo.network.router("nyc-cr1").interfaces[0].fqname
        injector.cdn_link_congestion(T, iface, duration=1800.0)
        store = ingest(injector, topo)
        samples = store.table("snmp").query(metric="link_util")
        assert len(samples) == 6
        assert all(s["value"] >= 80.0 for s in samples)

    def test_reconvergence_reverts(self, injector, topo):
        link = sorted(topo.network.logical_links)[0]
        injector.cdn_ospf_reconvergence(T, link)
        store = ingest(injector, topo)
        rows = store.table("ospfmon").query(link=link)
        assert len(rows) == 2
        assert rows[-1]["weight"] == 10
