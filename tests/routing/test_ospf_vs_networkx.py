"""Differential tests: our SPF vs networkx on random topologies."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.ospf import COST_OUT_WEIGHT, OspfSimulator, WeightHistory
from repro.topology.elements import Interface, LineCard, LogicalLink, Pop, Router, RouterRole
from repro.topology.network import Network


def random_network(seed, n_routers, n_links):
    rng = random.Random(seed)
    network = Network()
    network.add_pop(Pop("x"))
    names = [f"r{i}" for i in range(n_routers)]
    for name in names:
        router = Router(name=name, role=RouterRole.CORE, pop="x")
        router.line_cards = [LineCard(name, 0)]
        router.interfaces = [
            Interface(name, f"se0/{port}", 0) for port in range(n_links + 1)
        ]
        network.add_router(router)
    counters = {name: 0 for name in names}
    weights = {}
    made = set()
    for _ in range(n_links):
        a, z = rng.sample(names, 2)
        key = tuple(sorted((a, z)))
        if key in made:
            continue
        made.add(key)
        link_name = f"{key[0]}--{key[1]}"
        network.add_logical_link(
            LogicalLink(
                name=link_name,
                router_a=a,
                router_z=z,
                interface_a=f"{a}:se0/{counters[a]}",
                interface_z=f"{z}:se0/{counters[z]}",
            )
        )
        counters[a] += 1
        counters[z] += 1
        weights[link_name] = rng.randint(1, 20)
    return network, weights


def as_networkx(network, weights):
    graph = nx.Graph()
    graph.add_nodes_from(network.routers)
    for name, link in network.logical_links.items():
        weight = weights.get(name, 10)
        if weight >= COST_OUT_WEIGHT:
            continue
        # parallel links between a router pair: keep the cheaper one
        existing = graph.get_edge_data(link.router_a, link.router_z)
        if existing is None or existing["weight"] > weight:
            graph.add_edge(link.router_a, link.router_z, weight=weight)
    return graph


class TestSpfAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=2, max_value=20),
    )
    def test_distances_match(self, seed, n_routers, n_links):
        network, weights = random_network(seed, n_routers, n_links)
        sim = OspfSimulator(network, WeightHistory(dict(weights)))
        reference = as_networkx(network, weights)
        lengths = dict(nx.all_pairs_dijkstra_path_length(reference, weight="weight"))
        routers = sorted(network.routers)
        for source in routers:
            for destination in routers:
                if source == destination:
                    continue
                ours = sim.distance(source, destination, 0.0)
                theirs = lengths.get(source, {}).get(destination)
                assert ours == theirs, (source, destination)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_reported_path_has_the_reported_cost(self, seed):
        network, weights = random_network(seed, 8, 14)
        sim = OspfSimulator(network, WeightHistory(dict(weights)))
        link_weight = {}
        for name, link in network.logical_links.items():
            link_weight[frozenset(link.routers)] = min(
                weights.get(name, 10),
                link_weight.get(frozenset(link.routers), 1 << 30),
            )
        routers = sorted(network.routers)
        for source in routers[:3]:
            for destination in routers:
                if source == destination:
                    continue
                paths = sim.paths(source, destination, 0.0)
                for path in paths.router_paths:
                    cost = sum(
                        link_weight[frozenset((a, b))]
                        for a, b in zip(path, path[1:])
                    )
                    assert cost == paths.cost, (path, paths.cost)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_ecmp_link_union_is_consistent(self, seed):
        """Every link in the ECMP union lies on some minimal path."""
        network, weights = random_network(seed, 7, 12)
        sim = OspfSimulator(network, WeightHistory(dict(weights)))
        routers = sorted(network.routers)
        source, destination = routers[0], routers[-1]
        paths = sim.paths(source, destination, 0.0)
        if not paths.reachable:
            return
        for link_name in paths.links:
            link = network.logical_link(link_name)
            weight = weights.get(link_name, 10)
            d_sa = sim.distance(source, link.router_a, 0.0)
            d_sz = sim.distance(source, link.router_z, 0.0)
            d_ad = sim.distance(link.router_a, destination, 0.0)
            d_zd = sim.distance(link.router_z, destination, 0.0)
            on_minimal = (
                d_sa is not None and d_zd is not None
                and d_sa + weight + d_zd == paths.cost
            ) or (
                d_sz is not None and d_ad is not None
                and d_sz + weight + d_ad == paths.cost
            )
            assert on_minimal, link_name
