"""Tests for routing-epoch version tokens (the spatial cache's keys)."""

from repro.routing.epoch import RoutingEpoch
from repro.routing.ospf import WeightChange


def make_epoch(path_service):
    return RoutingEpoch(path_service)


class TestOspfToken:
    def test_stable_between_changes(self, path_service):
        epoch = make_epoch(path_service)
        assert epoch.ospf_token(100.0) == epoch.ospf_token(100.0)
        # different instants in the same (empty) history share a token
        assert epoch.ospf_token(100.0) == epoch.ospf_token(500.0)

    def test_changes_when_weight_change_lands_before_instant(self, path_service):
        epoch = make_epoch(path_service)
        link = sorted(path_service.network.logical_links)[0]
        before = epoch.ospf_token(500.0)
        path_service.ospf.history.record(WeightChange(200.0, link, 99))
        assert epoch.ospf_token(500.0) != before
        # instants before the change keep their token
        assert epoch.ospf_token(100.0) == epoch.ospf_token(150.0)

    def test_out_of_order_record_retires_old_tokens(self, path_service):
        epoch = make_epoch(path_service)
        link = sorted(path_service.network.logical_links)[0]
        path_service.ospf.history.record(WeightChange(300.0, link, 99))
        old = epoch.ospf_token(100.0)
        # a record arriving behind the frontier renumbers versions
        path_service.ospf.history.record(WeightChange(50.0, link, 77))
        assert epoch.ospf_token(100.0) != old


class TestBgpTokens:
    def test_prefix_token_is_per_prefix(self, path_service, bgp_log):
        epoch = make_epoch(path_service)
        bgp_log.announce(100.0, "198.51.100.0/24", "chi-per1")
        token = epoch.prefix_token("198.51.100.0/24", 500.0)
        bgp_log.announce(200.0, "203.0.113.0/24", "dfw-per1")
        assert epoch.prefix_token("198.51.100.0/24", 500.0) == token
        bgp_log.withdraw(300.0, "198.51.100.0/24", "chi-per1")
        assert epoch.prefix_token("198.51.100.0/24", 500.0) != token

    def test_global_token_sees_every_prefix(self, path_service, bgp_log):
        epoch = make_epoch(path_service)
        before = epoch.bgp_token(500.0)
        bgp_log.announce(100.0, "203.0.113.0/24", "dfw-per1")
        assert epoch.bgp_token(500.0) != before


class TestOtherTokens:
    def test_ingress_token_bumps_only_on_real_change(self, path_service):
        epoch = make_epoch(path_service)
        before = epoch.ingress_token()
        source = next(iter(path_service.network.cdn_servers))
        ingress = path_service.ingress_map.ingress_for(source)
        # re-learning the same mapping is a no-op
        path_service.ingress_map.learn(source, ingress)
        assert epoch.ingress_token() == before
        path_service.ingress_map.learn("new-agent", "chi-per1")
        assert epoch.ingress_token() != before

    def test_config_token_tracks_snapshot_boundaries(self, path_service):
        epoch = make_epoch(path_service)
        router = sorted(path_service.network.routers)[0]
        # fixture archive snapshots everything at t=0
        assert epoch.config_token(router, 100.0) != epoch.config_token(router, -1.0)

    def test_topology_bump_changes_fingerprint(self, path_service):
        epoch = make_epoch(path_service)
        before = epoch.fingerprint(100.0)
        epoch.bump_topology()
        assert epoch.fingerprint(100.0) != before

    def test_fingerprint_stable_when_nothing_changes(self, path_service):
        epoch = make_epoch(path_service)
        assert epoch.fingerprint(100.0) == epoch.fingerprint(100.0)
