"""Tests for BGP update log and decision emulation."""

import pytest

from repro.routing.bgp import BgpEmulator, BgpUpdateLog
from repro.routing.ospf import OspfSimulator, WeightChange

from .test_ospf import diamond_network


@pytest.fixture
def ospf():
    return OspfSimulator(diamond_network())


@pytest.fixture
def log():
    return BgpUpdateLog()


class TestUpdateLog:
    def test_announce_then_visible(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        assert [r.egress_router for r in log.routes_at("198.51.100.0/24", 20.0)] == ["d"]

    def test_not_visible_before_announcement(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        assert log.routes_at("198.51.100.0/24", 5.0) == []

    def test_withdraw_removes_route(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        log.withdraw(50.0, "198.51.100.0/24", "d")
        assert log.routes_at("198.51.100.0/24", 60.0) == []
        assert len(log.routes_at("198.51.100.0/24", 30.0)) == 1

    def test_reannounce_after_withdraw(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        log.withdraw(50.0, "198.51.100.0/24", "d")
        log.announce(80.0, "198.51.100.0/24", "d")
        assert len(log.routes_at("198.51.100.0/24", 90.0)) == 1

    def test_multiple_egresses(self, log):
        log.announce(10.0, "198.51.100.0/24", "b")
        log.announce(10.0, "198.51.100.0/24", "c")
        egresses = {r.egress_router for r in log.routes_at("198.51.100.0/24", 20.0)}
        assert egresses == {"b", "c"}

    def test_updates_between_is_time_ordered(self, log):
        log.announce(30.0, "p1/24".replace("p1", "198.51.100.0"), "b")
        log.announce(10.0, "203.0.113.0/24", "c")
        updates = log.updates_between(0.0, 100.0)
        assert [u.timestamp for u in updates] == [10.0, 30.0]


class TestBestPath:
    def test_local_pref_wins(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "d", local_pref=100)
        log.announce(0.0, "198.51.100.0/24", "b", local_pref=200)
        emulator = BgpEmulator(log, ospf)
        decision = emulator.best_egress("a", "198.51.100.5", 10.0)
        assert decision.egress_router == "b"

    def test_as_path_breaks_local_pref_tie(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "d", as_path_len=3)
        log.announce(0.0, "198.51.100.0/24", "b", as_path_len=1)
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"

    def test_hot_potato_igp_distance(self, ospf, log):
        # b is 10 from a, d is 20 from a
        log.announce(0.0, "198.51.100.0/24", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        decision = emulator.best_egress("a", "198.51.100.5", 10.0)
        assert decision.egress_router == "b"
        assert decision.igp_distance == 10

    def test_name_tiebreak_is_deterministic(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "c")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"

    def test_longest_prefix_match(self, ospf, log):
        log.announce(0.0, "198.51.0.0/16", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.9", 10.0).prefix == "198.51.100.0/24"
        assert emulator.best_egress("a", "198.51.7.9", 10.0).egress_router == "d"

    def test_no_route_gives_none(self, ospf, log):
        emulator = BgpEmulator(log, ospf)
        decision = emulator.best_egress("a", "8.8.8.8", 10.0)
        assert decision.route is None
        assert decision.egress_router is None

    def test_unreachable_egress_loses(self, ospf, log):
        # cost out both links to d: egress d becomes IGP-unreachable
        ospf.history.record(WeightChange(5.0, "b--d", 65535))
        ospf.history.record(WeightChange(5.0, "c--d", 65535))
        log.announce(0.0, "198.51.100.0/24", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"


class TestEgressTimeline:
    def test_egress_change_on_withdraw(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "b")
        log.announce(0.0, "198.51.100.0/24", "d")
        log.withdraw(100.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        timeline = emulator.egress_timeline("a", "198.51.100.5", 10.0, 200.0)
        assert [egress for _, egress in timeline] == ["b", "d"]
        assert timeline[1][0] == 100.0

    def test_stable_route_single_entry(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        timeline = emulator.egress_timeline("a", "198.51.100.5", 10.0, 200.0)
        assert timeline == [(10.0, "b")]

    def test_decision_cache_consistent_after_withdraw(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"
        log.withdraw(50.0, "198.51.100.0/24", "b")
        assert emulator.best_egress("a", "198.51.100.5", 60.0).egress_router is None
