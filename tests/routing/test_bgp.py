"""Tests for BGP update log and decision emulation."""

import pytest

from repro.routing.bgp import BgpEmulator, BgpUpdateLog
from repro.routing.ospf import OspfSimulator, WeightChange

from .test_ospf import diamond_network


@pytest.fixture
def ospf():
    return OspfSimulator(diamond_network())


@pytest.fixture
def log():
    return BgpUpdateLog()


class TestUpdateLog:
    def test_announce_then_visible(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        assert [r.egress_router for r in log.routes_at("198.51.100.0/24", 20.0)] == ["d"]

    def test_not_visible_before_announcement(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        assert log.routes_at("198.51.100.0/24", 5.0) == []

    def test_withdraw_removes_route(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        log.withdraw(50.0, "198.51.100.0/24", "d")
        assert log.routes_at("198.51.100.0/24", 60.0) == []
        assert len(log.routes_at("198.51.100.0/24", 30.0)) == 1

    def test_reannounce_after_withdraw(self, log):
        log.announce(10.0, "198.51.100.0/24", "d")
        log.withdraw(50.0, "198.51.100.0/24", "d")
        log.announce(80.0, "198.51.100.0/24", "d")
        assert len(log.routes_at("198.51.100.0/24", 90.0)) == 1

    def test_multiple_egresses(self, log):
        log.announce(10.0, "198.51.100.0/24", "b")
        log.announce(10.0, "198.51.100.0/24", "c")
        egresses = {r.egress_router for r in log.routes_at("198.51.100.0/24", 20.0)}
        assert egresses == {"b", "c"}

    def test_updates_between_is_time_ordered(self, log):
        log.announce(30.0, "p1/24".replace("p1", "198.51.100.0"), "b")
        log.announce(10.0, "203.0.113.0/24", "c")
        updates = log.updates_between(0.0, 100.0)
        assert [u.timestamp for u in updates] == [10.0, 30.0]


class TestLogIndexes:
    def test_prefix_version_counts_updates_up_to_instant(self, log):
        log.announce(10.0, "198.51.100.0/24", "b")
        log.announce(20.0, "198.51.100.0/24", "c")
        log.withdraw(30.0, "198.51.100.0/24", "b")
        assert log.prefix_version_at("198.51.100.0/24", 5.0) == 0
        assert log.prefix_version_at("198.51.100.0/24", 10.0) == 1
        assert log.prefix_version_at("198.51.100.0/24", 25.0) == 2
        assert log.prefix_version_at("198.51.100.0/24", 99.0) == 3

    def test_prefix_version_untouched_by_other_prefixes(self, log):
        log.announce(10.0, "198.51.100.0/24", "b")
        before = log.prefix_version_at("198.51.100.0/24", 50.0)
        log.announce(20.0, "203.0.113.0/24", "c")
        assert log.prefix_version_at("198.51.100.0/24", 50.0) == before

    def test_global_version_spans_prefixes(self, log):
        log.announce(10.0, "198.51.100.0/24", "b")
        log.announce(20.0, "203.0.113.0/24", "c")
        assert log.version_at(5.0) == 0
        assert log.version_at(15.0) == 1
        assert log.version_at(25.0) == 2

    def test_in_order_records_keep_generation(self, log):
        log.announce(10.0, "198.51.100.0/24", "b")
        log.announce(20.0, "203.0.113.0/24", "c")
        assert log.stale_generation == 0

    def test_out_of_order_record_bumps_generation(self, log):
        log.announce(20.0, "198.51.100.0/24", "b")
        log.announce(10.0, "203.0.113.0/24", "c")
        assert log.stale_generation == 1
        # versions at old instants shifted: 10.0 now covers one update
        assert log.version_at(10.0) == 1

    def test_match_prefix_prefers_longest_live(self, log):
        log.announce(0.0, "198.51.0.0/16", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        assert log.match_prefix("198.51.100.9", 10.0) == "198.51.100.0/24"
        assert log.match_prefix("198.51.7.9", 10.0) == "198.51.0.0/16"

    def test_match_prefix_falls_back_after_withdraw(self, log):
        log.announce(0.0, "198.51.0.0/16", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        log.withdraw(50.0, "198.51.100.0/24", "b")
        assert log.match_prefix("198.51.100.9", 60.0) == "198.51.0.0/16"
        # historical query still sees the more-specific prefix
        assert log.match_prefix("198.51.100.9", 10.0) == "198.51.100.0/24"

    def test_unparseable_prefix_never_matches(self, log):
        log.announce(0.0, "not-a-prefix", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        assert log.match_prefix("198.51.100.9", 10.0) == "198.51.100.0/24"
        # but its updates remain queryable by exact prefix string
        assert len(log.routes_at("not-a-prefix", 10.0)) == 1


class TestBestPath:
    def test_local_pref_wins(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "d", local_pref=100)
        log.announce(0.0, "198.51.100.0/24", "b", local_pref=200)
        emulator = BgpEmulator(log, ospf)
        decision = emulator.best_egress("a", "198.51.100.5", 10.0)
        assert decision.egress_router == "b"

    def test_as_path_breaks_local_pref_tie(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "d", as_path_len=3)
        log.announce(0.0, "198.51.100.0/24", "b", as_path_len=1)
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"

    def test_hot_potato_igp_distance(self, ospf, log):
        # b is 10 from a, d is 20 from a
        log.announce(0.0, "198.51.100.0/24", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        decision = emulator.best_egress("a", "198.51.100.5", 10.0)
        assert decision.egress_router == "b"
        assert decision.igp_distance == 10

    def test_name_tiebreak_is_deterministic(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "c")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"

    def test_longest_prefix_match(self, ospf, log):
        log.announce(0.0, "198.51.0.0/16", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.9", 10.0).prefix == "198.51.100.0/24"
        assert emulator.best_egress("a", "198.51.7.9", 10.0).egress_router == "d"

    def test_no_route_gives_none(self, ospf, log):
        emulator = BgpEmulator(log, ospf)
        decision = emulator.best_egress("a", "8.8.8.8", 10.0)
        assert decision.route is None
        assert decision.egress_router is None

    def test_unreachable_egress_loses(self, ospf, log):
        # cost out both links to d: egress d becomes IGP-unreachable
        ospf.history.record(WeightChange(5.0, "b--d", 65535))
        ospf.history.record(WeightChange(5.0, "c--d", 65535))
        log.announce(0.0, "198.51.100.0/24", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"


class TestEgressTimeline:
    def test_egress_change_on_withdraw(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "b")
        log.announce(0.0, "198.51.100.0/24", "d")
        log.withdraw(100.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        timeline = emulator.egress_timeline("a", "198.51.100.5", 10.0, 200.0)
        assert [egress for _, egress in timeline] == ["b", "d"]
        assert timeline[1][0] == 100.0

    def test_stable_route_single_entry(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        timeline = emulator.egress_timeline("a", "198.51.100.5", 10.0, 200.0)
        assert timeline == [(10.0, "b")]

    def test_decision_cache_consistent_after_withdraw(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"
        log.withdraw(50.0, "198.51.100.0/24", "b")
        assert emulator.best_egress("a", "198.51.100.5", 60.0).egress_router is None

    def test_no_route_at_start_reports_none(self, ospf, log):
        log.announce(50.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        timeline = emulator.egress_timeline("a", "198.51.100.5", 10.0, 100.0)
        assert timeline == [(10.0, None), (50.0, "b")]


class TestDecisionCacheStaleness:
    """A cached decision must be retired by *any* later-recorded update
    for its prefix — including a better route the old "is the cached
    route still announced" check could never notice."""

    def test_late_higher_local_pref_flips_cached_egress(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "d", local_pref=100)
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 100.0).egress_router == "d"
        # a strictly better route arrives, announced before the query
        # instant; the old route "d" is still live, so a liveness-based
        # cache check would wrongly keep serving it
        log.announce(50.0, "198.51.100.0/24", "b", local_pref=200)
        assert emulator.best_egress("a", "198.51.100.5", 100.0).egress_router == "b"

    def test_late_shorter_as_path_flips_cached_egress(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "d", as_path_len=2)
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 100.0).egress_router == "d"
        log.announce(50.0, "198.51.100.0/24", "c", as_path_len=1)
        assert emulator.best_egress("a", "198.51.100.5", 100.0).egress_router == "c"

    def test_cached_decision_survives_unrelated_prefix_updates(self, ospf, log):
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        first = emulator.best_egress("a", "198.51.100.5", 100.0)
        log.announce(50.0, "203.0.113.0/24", "c")
        assert emulator.best_egress("a", "198.51.100.5", 100.0) is first

    def test_ospf_weight_change_recomputes_hot_potato(self, ospf, log):
        # b (dist 10) beats d (dist 20) hot-potato at first
        log.announce(0.0, "198.51.100.0/24", "d")
        log.announce(0.0, "198.51.100.0/24", "b")
        emulator = BgpEmulator(log, ospf)
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"
        # costing out a--b makes d the closer egress at later instants
        ospf.history.record(WeightChange(50.0, "a--b", 65535))
        assert emulator.best_egress("a", "198.51.100.5", 60.0).egress_router == "d"
        # the historical decision is untouched
        assert emulator.best_egress("a", "198.51.100.5", 10.0).egress_router == "b"
