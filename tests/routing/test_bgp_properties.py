"""Property tests for BGP best-path emulation vs a brute-force oracle."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.bgp import BgpEmulator, BgpRoute, BgpUpdate, BgpUpdateLog
from repro.routing.ospf import OspfSimulator

from .test_ospf import diamond_network

EGRESSES = ["b", "c", "d"]
PREFIX = "198.51.100.0/24"


update_specs = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),  # time
        st.sampled_from(EGRESSES),
        st.booleans(),  # withdrawn
        st.sampled_from([50, 100, 200]),  # local pref
        st.integers(min_value=1, max_value=4),  # as path len
    ),
    max_size=25,
)

query_times = st.floats(min_value=-10, max_value=1.1e4, allow_nan=False)


def brute_force_routes(specs, timestamp):
    """Latest state per egress, replayed naively."""
    latest = {}
    for t, egress, withdrawn, pref, aslen in sorted(specs, key=lambda s: s[0]):
        if t <= timestamp:
            latest[egress] = (withdrawn, pref, aslen)
    return {
        egress: (pref, aslen)
        for egress, (withdrawn, pref, aslen) in latest.items()
        if not withdrawn
    }


class TestLogVsOracle:
    @settings(max_examples=80, deadline=None)
    @given(update_specs, query_times)
    def test_routes_at_matches_replay(self, specs, timestamp):
        log = BgpUpdateLog()
        for t, egress, withdrawn, pref, aslen in specs:
            log.record(
                BgpUpdate(
                    timestamp=t,
                    route=BgpRoute(PREFIX, egress, "", pref, aslen),
                    withdrawn=withdrawn,
                )
            )
        got = {
            r.egress_router: (r.local_pref, r.as_path_len)
            for r in log.routes_at(PREFIX, timestamp)
        }
        assert got == brute_force_routes(specs, timestamp)

    @settings(max_examples=60, deadline=None)
    @given(update_specs, query_times)
    def test_best_egress_matches_oracle(self, specs, timestamp):
        ospf = OspfSimulator(diamond_network())
        log = BgpUpdateLog()
        for t, egress, withdrawn, pref, aslen in specs:
            log.record(
                BgpUpdate(
                    timestamp=t,
                    route=BgpRoute(PREFIX, egress, "", pref, aslen),
                    withdrawn=withdrawn,
                )
            )
        emulator = BgpEmulator(log, ospf)
        decision = emulator.best_egress("a", "198.51.100.9", timestamp)
        live = brute_force_routes(specs, timestamp)
        if not live:
            assert decision.route is None
            return
        # oracle: max local pref, min as-path, min IGP distance, min name
        def oracle_key(item):
            egress, (pref, aslen) = item
            distance = ospf.distance("a", egress, timestamp)
            if distance is None:
                distance = 1 << 30
            return (-pref, aslen, distance, egress)

        expected = min(live.items(), key=oracle_key)[0]
        assert decision.egress_router == expected

    @settings(max_examples=40, deadline=None)
    @given(update_specs)
    def test_timeline_changes_only_at_updates(self, specs):
        ospf = OspfSimulator(diamond_network())
        log = BgpUpdateLog()
        for t, egress, withdrawn, pref, aslen in specs:
            log.record(
                BgpUpdate(
                    timestamp=t,
                    route=BgpRoute(PREFIX, egress, "", pref, aslen),
                    withdrawn=withdrawn,
                )
            )
        emulator = BgpEmulator(log, ospf)
        timeline = emulator.egress_timeline("a", "198.51.100.9", 0.0, 1.1e4)
        # consecutive entries must differ (it is a change log)
        for (t1, e1), (t2, e2) in zip(timeline, timeline[1:]):
            assert t1 <= t2
            assert e1 != e2
