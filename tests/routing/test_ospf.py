"""Tests for the OSPF simulation: SPF, ECMP, weight history."""

import pytest

from repro.topology.elements import (
    Interface,
    LineCard,
    LogicalLink,
    Pop,
    Router,
    RouterRole,
)
from repro.topology.network import Network
from repro.routing.ospf import (
    COST_OUT_WEIGHT,
    OspfSimulator,
    WeightChange,
    WeightHistory,
    reconvergence_windows,
)


def diamond_network():
    """a -- b -- d and a -- c -- d: two equal-cost paths a->d."""
    network = Network()
    network.add_pop(Pop("x"))
    for name in "abcd":
        router = Router(name=name, role=RouterRole.CORE, pop="x")
        router.line_cards = [LineCard(name, 0)]
        router.interfaces = [Interface(name, f"se0/{i}", 0) for i in range(4)]
        network.add_router(router)
    counters = {name: 0 for name in "abcd"}

    def connect(a, z):
        ia, iz = counters[a], counters[z]
        counters[a] += 1
        counters[z] += 1
        network.add_logical_link(
            LogicalLink(
                name=f"{a}--{z}",
                router_a=a,
                router_z=z,
                interface_a=f"{a}:se0/{ia}",
                interface_z=f"{z}:se0/{iz}",
            )
        )

    connect("a", "b")
    connect("b", "d")
    connect("a", "c")
    connect("c", "d")
    return network


@pytest.fixture
def net():
    return diamond_network()


class TestSpf:
    def test_ecmp_two_paths(self, net):
        sim = OspfSimulator(net)
        result = sim.paths("a", "d", 0.0)
        assert result.cost == 20
        assert sorted(result.router_paths) == [("a", "b", "d"), ("a", "c", "d")]
        assert result.links == {"a--b", "b--d", "a--c", "c--d"}

    def test_self_path(self, net):
        sim = OspfSimulator(net)
        result = sim.paths("a", "a", 0.0)
        assert result.cost == 0
        assert result.router_paths == (("a",),)

    def test_unreachable_destination(self, net):
        net.add_router(Router("z", RouterRole.CORE, "x"))
        sim = OspfSimulator(net)
        result = sim.paths("a", "z", 0.0)
        assert not result.reachable
        assert sim.distance("a", "z", 0.0) is None

    def test_unknown_source_unreachable(self, net):
        sim = OspfSimulator(net)
        assert not sim.paths("ghost", "a", 0.0).reachable

    def test_asymmetric_weight_breaks_ecmp(self, net):
        history = WeightHistory({"a--b": 5})
        sim = OspfSimulator(net, history)
        result = sim.paths("a", "d", 0.0)
        assert result.cost == 15
        assert result.router_paths == (("a", "b", "d"),)

    def test_distance_matches_cost(self, net):
        sim = OspfSimulator(net)
        assert sim.distance("a", "d", 0.0) == 20
        assert sim.distance("a", "b", 0.0) == 10


class TestWeightHistory:
    def test_weight_change_reroutes_traffic(self, net):
        sim = OspfSimulator(net)
        sim.history.record(WeightChange(100.0, "a--b", 100))
        before = sim.paths("a", "d", 50.0)
        after = sim.paths("a", "d", 150.0)
        assert sorted(before.router_paths) == [("a", "b", "d"), ("a", "c", "d")]
        assert after.router_paths == (("a", "c", "d"),)

    def test_cost_out_removes_link(self, net):
        sim = OspfSimulator(net)
        sim.history.record(WeightChange(100.0, "a--b", COST_OUT_WEIGHT))
        sim.history.record(WeightChange(100.0, "a--c", COST_OUT_WEIGHT))
        assert not sim.paths("a", "d", 200.0).reachable
        assert sim.paths("a", "d", 50.0).reachable

    def test_cost_back_in_restores(self, net):
        sim = OspfSimulator(net)
        sim.history.record(WeightChange(100.0, "a--b", COST_OUT_WEIGHT))
        sim.history.record(WeightChange(200.0, "a--b", 10))
        assert sim.paths("a", "d", 300.0).links == {"a--b", "b--d", "a--c", "c--d"}

    def test_version_at_counts_applied_changes(self):
        history = WeightHistory()
        history.record(WeightChange(10.0, "l1", 5))
        history.record(WeightChange(20.0, "l1", 7))
        assert history.version_at(5.0) == 0
        assert history.version_at(10.0) == 1
        assert history.version_at(25.0) == 2

    def test_unsorted_records_are_handled(self):
        history = WeightHistory()
        history.record(WeightChange(20.0, "l1", 7))
        history.record(WeightChange(10.0, "l1", 5))
        assert history.weights_at(15.0)["l1"] == 5
        assert history.weights_at(25.0)["l1"] == 7

    def test_changes_between_bounds_inclusive(self):
        history = WeightHistory()
        for t in (10.0, 20.0, 30.0):
            history.record(WeightChange(t, "l1", int(t)))
        window = history.changes_between(10.0, 20.0)
        assert [c.timestamp for c in window] == [10.0, 20.0]


class TestCaching:
    def test_cache_reused_within_version(self, net):
        sim = OspfSimulator(net)
        first = sim.paths("a", "d", 1.0)
        second = sim.paths("a", "d", 2.0)
        assert first is second  # same SPF table entry

    def test_cache_invalidated_across_versions(self, net):
        sim = OspfSimulator(net)
        before = sim.paths("a", "d", 1.0)
        sim.history.record(WeightChange(5.0, "a--b", 99))
        after = sim.paths("a", "d", 6.0)
        assert before is not after


class TestReconvergenceWindows:
    def test_bursts_merge_into_one_window(self):
        history = WeightHistory()
        for t in (100.0, 103.0, 106.0, 300.0):
            history.record(WeightChange(t, "l1", 10))
        windows = reconvergence_windows(history, 0.0, 400.0, settle_seconds=10.0)
        assert windows == [(100.0, 106.0), (300.0, 300.0)]

    def test_empty_history(self):
        assert reconvergence_windows(WeightHistory(), 0.0, 100.0) == []
