"""Shared fixtures: a small tier-1 topology with routing and resolver."""

import random

import pytest

from repro.collector.store import DataStore
from repro.core.spatial import LocationResolver
from repro.routing.bgp import BgpEmulator, BgpUpdateLog
from repro.routing.ospf import OspfSimulator
from repro.routing.paths import IngressMap, PathService
from repro.topology import TopologyParams, build_topology, snapshot_network


@pytest.fixture(scope="session")
def small_topology():
    """4 PoPs, 2 PERs each, CDN in nyc, peering in chi."""
    return build_topology(
        TopologyParams(
            n_pops=4,
            pers_per_pop=2,
            customers_per_per=3,
            cdn_pops=("nyc",),
            peering_pops=("chi",),
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def config_archive(small_topology):
    return snapshot_network(small_topology, timestamp=0.0)


@pytest.fixture
def ospf(small_topology):
    return OspfSimulator(small_topology.network)


@pytest.fixture
def bgp_log():
    return BgpUpdateLog()


@pytest.fixture
def path_service(small_topology, ospf, bgp_log, config_archive):
    emulator = BgpEmulator(bgp_log, ospf)
    service = PathService(
        network=small_topology.network,
        ospf=ospf,
        bgp=emulator,
        configs=config_archive,
        ingress_map=IngressMap(),
    )
    # CDN servers enter the network at their attached routers
    for server in small_topology.network.cdn_servers.values():
        service.ingress_map.learn(server.name, server.attached_router)
    return service


@pytest.fixture
def resolver(path_service):
    return LocationResolver(path_service)


@pytest.fixture
def store():
    return DataStore()


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files from current output instead of comparing",
    )


@pytest.fixture
def regen_goldens(request):
    """Whether golden-file tests should rewrite their expectations."""
    return request.config.getoption("--regen-goldens")


@pytest.fixture
def rng():
    """The one sanctioned source of test randomness: a fixed-seed RNG.

    Tests needing random draws take this fixture instead of touching the
    module-level ``random`` state, so a run's outcome never depends on
    test order or on other tests' consumption of the global stream.
    """
    return random.Random(0xC0FFEE)
