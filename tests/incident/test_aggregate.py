"""Aggregator semantics: dedupe identity, gap windows, re-emissions."""

import pytest

from repro.core.locations import Location
from repro.incident import IncidentAggregator
from repro.incident.aggregate import incident_id_for

from .conftest import diagnosis

GAP = 600.0


@pytest.fixture
def aggregator():
    return IncidentAggregator(gap_seconds=GAP)


class TestFolding:
    def test_repeated_symptom_folds_into_one_incident(self, aggregator):
        for i in range(5):
            aggregator.observe(diagnosis(t=1000.0 + i * 60.0))
        incidents = aggregator.incidents()
        assert len(incidents) == 1
        assert incidents[0].flap_count == 5

    def test_first_and_last_seen_span_the_folds(self, aggregator):
        aggregator.observe(diagnosis(t=1000.0, duration=10.0))
        incident = aggregator.observe(diagnosis(t=1300.0, duration=10.0))
        assert incident.first_seen == 1000.0
        assert incident.last_seen == 1310.0
        assert incident.duration == 310.0

    def test_distinct_causes_do_not_merge(self, aggregator):
        aggregator.observe(diagnosis(cause="Interface flap", t=1000.0))
        aggregator.observe(diagnosis(cause="CPU high (spike)", t=1010.0))
        assert len(aggregator.incidents()) == 2

    def test_distinct_locations_do_not_merge(self, aggregator):
        aggregator.observe(diagnosis(router="nyc-per1", t=1000.0))
        aggregator.observe(diagnosis(router="chi-per1", t=1010.0))
        assert len(aggregator.incidents()) == 2

    def test_unknown_split_by_annotation(self, aggregator):
        # evidence-unavailable Unknowns and true no-evidence Unknowns
        # are different operator situations; they must not merge
        clean = diagnosis(cause=None, t=1000.0)
        degraded = diagnosis(cause=None, t=1010.0, gap_sources=("snmp",))
        aggregator.observe(clean)
        aggregator.observe(degraded)
        causes = {i.cause for i in aggregator.incidents()}
        assert causes == {
            "Unknown (no evidence found)",
            "Unknown (evidence unavailable)",
        }


class TestGapWindow:
    def test_gap_exceeded_opens_a_new_incident(self, aggregator):
        first = aggregator.observe(diagnosis(t=1000.0))
        second = aggregator.observe(diagnosis(t=1000.0 + GAP * 10))
        assert first.incident_id != second.incident_id
        assert not first.open
        assert second.open
        assert [i.flap_count for i in aggregator.incidents()] == [1, 1]

    def test_within_gap_folds(self, aggregator):
        first = aggregator.observe(diagnosis(t=1000.0, duration=0.0))
        second = aggregator.observe(diagnosis(t=1000.0 + GAP - 1.0))
        assert first.incident_id == second.incident_id

    def test_advance_closes_idle_incidents(self, aggregator):
        aggregator.observe(diagnosis(t=1000.0))
        assert aggregator.advance(1000.0 + GAP) == []  # not idle long enough
        closed = aggregator.advance(1000.0 + GAP * 2)
        assert len(closed) == 1
        assert not closed[0].open
        assert aggregator.active() == []

    def test_gap_must_be_positive(self):
        with pytest.raises(ValueError):
            IncidentAggregator(gap_seconds=0.0)
        with pytest.raises(ValueError):
            IncidentAggregator(gap_seconds=-5.0)


class TestReemission:
    def test_same_instance_does_not_inflate_flaps(self, aggregator):
        d = diagnosis(t=1000.0)
        aggregator.observe(d)
        incident = aggregator.observe(d)  # streaming re-diagnosis
        assert incident.flap_count == 1
        assert aggregator.stats()["deduped_reemissions"] == 1

    def test_reemission_still_bumps_revision_and_rollups(self, aggregator):
        aggregator.observe(diagnosis(t=1000.0, confidence=1.0))
        incident = aggregator.observe(
            diagnosis(
                t=1000.0,
                confidence=0.5,
                caveats=("late evidence arrived",),
                gap_sources=("syslog",),
            )
        )
        assert incident.flap_count == 1
        assert incident.revision == 2
        assert incident.confidence_min == 0.5
        assert incident.gap_sources == ("syslog",)
        assert "late evidence arrived" in incident.caveats


class TestRollups:
    def test_confidence_mean_and_min(self, aggregator):
        aggregator.observe(diagnosis(t=1000.0, confidence=1.0))
        incident = aggregator.observe(diagnosis(t=1100.0, confidence=0.5))
        assert incident.confidence_mean == pytest.approx(0.75)
        assert incident.confidence_min == 0.5

    def test_gap_sources_union_sorted(self, aggregator):
        aggregator.observe(diagnosis(t=1000.0, gap_sources=("snmp",)))
        incident = aggregator.observe(
            diagnosis(t=1100.0, gap_sources=("bgpmon",))
        )
        assert incident.gap_sources == ("bgpmon", "snmp")
        assert incident.degraded_count == 2
        assert incident.is_degraded

    def test_caveats_capped(self, aggregator):
        from repro.incident.aggregate import MAX_CAVEATS

        for i in range(MAX_CAVEATS + 5):
            aggregator.observe(
                diagnosis(t=1000.0 + i, caveats=(f"caveat {i}",))
            )
        incident = aggregator.incidents()[0]
        assert len(incident.caveats) == MAX_CAVEATS


class TestViewsAndIds:
    def test_incident_id_is_deterministic(self):
        location = Location.router("nyc-per1")
        a = incident_id_for("s", "Interface flap", location, 1000.0)
        b = incident_id_for("s", "Interface flap", location, 1000.0)
        assert a == b
        assert a.startswith("inc-")
        assert a != incident_id_for("s", "Interface flap", location, 2000.0)

    def test_two_aggregators_agree_on_ids(self):
        stream = [diagnosis(t=1000.0 + i * 60.0) for i in range(4)]
        first = IncidentAggregator(gap_seconds=GAP)
        second = IncidentAggregator(gap_seconds=GAP)
        for d in stream:
            first.observe(d)
            second.observe(d)
        assert [i.incident_id for i in first.incidents()] == [
            i.incident_id for i in second.incidents()
        ]

    def test_get_and_stats(self, aggregator):
        incident = aggregator.observe(diagnosis(t=1000.0))
        assert aggregator.get(incident.incident_id) is incident
        with pytest.raises(KeyError):
            aggregator.get("inc-missing")
        stats = aggregator.stats()
        assert stats == {
            "observed": 1,
            "deduped_reemissions": 0,
            "incidents": 1,
            "active": 1,
        }

    def test_sink_sees_every_revision(self):
        # capture at call time: the aggregator mutates incidents in place
        revisions = []
        aggregator = IncidentAggregator(
            gap_seconds=GAP, sink=lambda i: revisions.append(i.revision)
        )
        aggregator.observe(diagnosis(t=1000.0))
        aggregator.observe(diagnosis(t=1100.0))
        aggregator.advance(1100.0 + GAP * 2)
        assert revisions == [1, 2, 3]
