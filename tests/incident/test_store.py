"""IncidentStore: revision log, latest-wins reads, breakdown queries."""

import threading

import pytest

from repro.incident import IncidentAggregator, IncidentStore

from .conftest import diagnosis

GAP = 600.0


def feed(store, stream, close_at=None):
    """Fold a diagnosis stream through an aggregator into the store."""
    aggregator = IncidentAggregator(gap_seconds=GAP, sink=store.record)
    for d in stream:
        aggregator.observe(d)
    if close_at is not None:
        aggregator.advance(close_at)
    return aggregator


@pytest.fixture
def store():
    return IncidentStore()


class TestRevisionLog:
    def test_latest_revision_wins(self, store):
        feed(store, [diagnosis(t=1000.0 + i * 60.0) for i in range(4)])
        assert len(store) == 1
        assert store.revisions() == 4
        incident = store.incidents()[0]
        assert incident.flap_count == 4
        assert incident.revision == 4

    def test_timeline_is_the_revision_log(self, store):
        feed(store, [diagnosis(t=1000.0 + i * 60.0) for i in range(3)])
        incident = store.incidents()[0]
        timeline = store.timeline(incident.incident_id)
        assert [r.revision for r in timeline] == [1, 2, 3]
        assert [r.flap_count for r in timeline] == [1, 2, 3]

    def test_get_and_unknown_id(self, store):
        feed(store, [diagnosis(t=1000.0)])
        incident = store.incidents()[0]
        assert store.get(incident.incident_id).flap_count == 1
        with pytest.raises(KeyError):
            store.get("inc-missing")
        with pytest.raises(KeyError):
            store.timeline("inc-missing")


class TestQueries:
    def setup_stream(self, store):
        feed(
            store,
            [
                diagnosis(cause="Interface flap", router="nyc-per1", t=1000.0),
                diagnosis(cause="Interface flap", router="nyc-per1", t=1200.0),
                diagnosis(cause="CPU high (spike)", router="chi-per1", t=2000.0),
                diagnosis(cause="Interface flap", router="chi-per1", t=3000.0),
            ],
            close_at=3000.0 + GAP * 2,
        )

    def test_filter_by_cause(self, store):
        self.setup_stream(store)
        flaps = store.incidents(cause="Interface flap")
        assert len(flaps) == 2
        assert {str(i.location) for i in flaps} == {
            "router[nyc-per1]",
            "router[chi-per1]",
        }

    def test_filter_by_location(self, store):
        self.setup_stream(store)
        chi = store.incidents(location="router[chi-per1]")
        assert {i.cause for i in chi} == {"Interface flap", "CPU high (spike)"}

    def test_filter_by_open(self, store):
        feed(
            store,
            [diagnosis(t=1000.0), diagnosis(router="chi-per1", t=2000.0)],
        )
        # close only the first by advancing past its window
        assert len(store.incidents(open=True)) == 2
        assert store.incidents(open=False) == []

    def test_time_window_bounds_last_activity(self, store):
        self.setup_stream(store)
        early = store.incidents(end=1500.0)
        assert {i.cause for i in early} == {"Interface flap"}
        assert len(early) == 1

    def test_breakdown_buckets_by_cause(self, store):
        self.setup_stream(store)
        series = store.breakdown(bucket_seconds=1000.0)
        assert series["Interface flap"] == [(1000.0, 1), (3000.0, 1)]
        assert series["CPU high (spike)"] == [(2000.0, 1)]

    def test_breakdown_rejects_bad_bucket(self, store):
        with pytest.raises(ValueError):
            store.breakdown(bucket_seconds=0.0)

    def test_top_offenders_ranked_by_flaps(self, store):
        self.setup_stream(store)
        rows = store.top_offenders(limit=2)
        # both routers saw 2 flaps; chi-per1 ranks first on the
        # incident-count tie-break (2 distinct incidents vs 1)
        assert rows[0]["location"] == "router[chi-per1]"
        assert rows[0]["flaps"] == 2
        assert rows[0]["incidents"] == 2
        assert rows[0]["causes"] == ["CPU high (spike)", "Interface flap"]
        assert rows[1]["location"] == "router[nyc-per1]"
        assert rows[1]["incidents"] == 1

    def test_top_offenders_limit(self, store):
        self.setup_stream(store)
        assert len(store.top_offenders(limit=1)) == 1
        assert store.top_offenders(limit=0) == []


class TestSqliteBacked:
    def test_round_trips_through_sqlite(self, tmp_path):
        store = IncidentStore.sqlite(str(tmp_path))
        feed(store, [diagnosis(t=1000.0 + i * 60.0) for i in range(3)])
        assert len(store) == 1
        incident = store.incidents()[0]
        assert incident.flap_count == 3
        assert store.timeline(incident.incident_id)[0].revision == 1
        store.close()
        # a fresh store over the same file sees the same log
        reopened = IncidentStore.sqlite(str(tmp_path))
        assert reopened.revisions() == 3
        assert reopened.incidents()[0].flap_count == 3
        reopened.close()

    def test_concurrent_sinks_never_lose_revisions(self, tmp_path):
        """Many service workers recording at once (the serve() path)."""
        store = IncidentStore.sqlite(str(tmp_path))
        errors = []
        n_threads, n_each = 6, 40

        def sink(index):
            try:
                aggregator = IncidentAggregator(
                    gap_seconds=GAP, sink=store.record
                )
                for i in range(n_each):
                    aggregator.observe(
                        diagnosis(router=f"r{index}", t=1000.0 + i * 30.0)
                    )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=sink, args=(index,))
            for index in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.revisions() == n_threads * n_each
        assert len(store) == n_threads  # one incident per distinct router
        store.close()
