"""End to end: month-scale replay -> deduped incidents, CLI and HTTP.

The acceptance contract for the incident layer: a month-scale flap
storm with repeated symptoms collapses into deduplicated incidents
(flap counts > 1), queryable through the CLI and ``GET /v1/incidents``,
and two same-seed runs emit byte-identical ``grca-incident/1`` JSON.
"""

import http.client
import json
import re

import pytest

from repro.cli import main
from repro.incident import IncidentAggregator, IncidentStore, incident_to_dict

INCIDENT_ID = re.compile(r"inc-[0-9a-f]{12}")


def fold(diagnoses, end, gap=3600.0):
    store = IncidentStore()
    aggregator = IncidentAggregator(gap_seconds=gap, sink=store.record)
    for diagnosis in diagnoses:
        aggregator.observe(diagnosis)
    aggregator.advance(end + gap + 1.0)
    return store, aggregator


class TestMonthScaleDedupe:
    def test_repeated_symptoms_collapse_with_flap_counts(
        self, storm_result, storm_diagnoses
    ):
        store, aggregator = fold(storm_diagnoses, storm_result.end)
        incidents = store.incidents()
        assert len(storm_diagnoses) > len(incidents)
        flapping = [i for i in incidents if i.flap_count > 1]
        assert flapping, "the storm must produce multi-flap incidents"
        assert max(i.flap_count for i in flapping) >= 3
        # every diagnosis is accounted for exactly once
        assert sum(i.flap_count for i in incidents) == len(storm_diagnoses)
        # the replay finished, so every window is closed
        assert all(not i.open for i in incidents)

    def test_same_seed_runs_are_byte_identical(self, storm_result, storm_diagnoses):
        from repro.apps import BgpFlapApp
        from repro.simulation import bgp_flap_storm
        from repro.topology import TopologyParams

        def encode(diagnoses, end):
            store, _aggregator = fold(diagnoses, end)
            return json.dumps(
                [incident_to_dict(i) for i in store.incidents()],
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )

        # an independent second replay of the identical seed
        second = bgp_flap_storm(
            total_flaps=60,
            seed=9108,
            params=TopologyParams(
                n_pops=4, pers_per_pop=2, customers_per_per=4, seed=9108
            ),
        )
        app = BgpFlapApp.build(second.platform())
        rerun = list(app.run(second.start, second.end).diagnoses)
        assert encode(storm_diagnoses, storm_result.end) == encode(
            rerun, second.end
        )


class TestCliQueries:
    ARGS = ["bgp-storm", "--size", "40", "--seed", "7"]

    def test_list_shows_flapping_incidents(self, capsys):
        assert main(["incidents", "list", *self.ARGS, "--flapping"]) == 0
        out = capsys.readouterr().out
        assert "diagnoses ->" in out
        ids = INCIDENT_ID.findall(out)
        assert ids, "flapping incidents expected in the storm"
        # every listed row is a multi-flap incident (flaps column > 1)
        for line in out.splitlines():
            if line.startswith("| `inc-"):
                flaps = int(line.rsplit("|", 3)[1].strip())
                assert flaps > 1

    def test_show_serves_the_listed_incident_as_json(self, capsys):
        main(["incidents", "list", *self.ARGS, "--flapping"])
        incident_id = INCIDENT_ID.findall(capsys.readouterr().out)[0]
        assert main(["incidents", "show", *self.ARGS, incident_id]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "grca-incident/1"
        assert document["incident_id"] == incident_id
        assert document["flap_count"] > 1

    def test_show_timeline_orders_revisions(self, capsys):
        main(["incidents", "list", *self.ARGS, "--flapping"])
        incident_id = INCIDENT_ID.findall(capsys.readouterr().out)[0]
        assert main(
            ["incidents", "show", *self.ARGS, incident_id, "--timeline"]
        ) == 0
        revisions = json.loads(capsys.readouterr().out)
        assert [r["revision"] for r in revisions] == list(
            range(1, len(revisions) + 1)
        )

    def test_show_unknown_id_fails(self, capsys):
        assert main(["incidents", "show", *self.ARGS, "inc-nope"]) == 1
        assert "unknown incident" in capsys.readouterr().err

    def test_report_emits_the_seven_sections(self, capsys):
        assert main(["incidents", "report", *self.ARGS]) == 0
        out = capsys.readouterr().out
        for number, title in enumerate(
            ["Issue Summary", "Impact Analysis", "Root Causes", "Resolution",
             "Preventive Measures", "Supplementary Information", "Conclusion"],
            start=1,
        ):
            assert f"## {number}. {title}" in out

    def test_top_ranks_offenders(self, capsys):
        assert main(["incidents", "top", *self.ARGS, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "offender location(s)" in out
        assert "root-cause distribution" in out


@pytest.fixture(scope="module")
def incident_gateway(storm_result):
    """A 2-shard gateway with incident tracking, one run job completed."""
    from repro.apps import BgpFlapApp
    from repro.service.http import RcaGateway

    platform = storm_result.platform()
    app = BgpFlapApp.build(platform)
    router = platform.serve_sharded(
        {"bgp": app}, shards=2, workers=2, incidents=True
    )
    gateway = RcaGateway(router).start()
    _qid, job = router.submit_run("bgp", storm_result.start, storm_result.end)
    job.wait(timeout=180.0)
    router.incident_aggregator.advance(storm_result.end + 3600.0 + 1.0)
    yield gateway
    gateway.stop(shutdown_shards=True)


def http_get(gateway, path):
    conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        return response.status, content_type, raw
    finally:
        conn.close()


class TestHttpIncidents:
    def test_list_returns_deduped_incidents(self, incident_gateway):
        status, content_type, raw = http_get(incident_gateway, "/v1/incidents")
        assert status == 200
        assert content_type.startswith("application/json")
        document = json.loads(raw)
        assert document["count"] == len(document["incidents"])
        assert document["count"] > 0
        flapping = [
            i for i in document["incidents"] if i["flap_count"] > 1
        ]
        assert flapping, "live-fed aggregator must dedupe repeat symptoms"

    def test_flapping_filter(self, incident_gateway):
        status, _ct, raw = http_get(
            incident_gateway, "/v1/incidents?flapping=1"
        )
        assert status == 200
        document = json.loads(raw)
        assert document["incidents"]
        assert all(i["flap_count"] > 1 for i in document["incidents"])

    def test_show_and_timeline(self, incident_gateway):
        _s, _ct, raw = http_get(incident_gateway, "/v1/incidents?flapping=1")
        incident = json.loads(raw)["incidents"][0]
        incident_id = incident["incident_id"]
        status, _ct, raw = http_get(
            incident_gateway, f"/v1/incidents/{incident_id}"
        )
        assert status == 200
        assert json.loads(raw)["schema"] == "grca-incident/1"
        status, _ct, raw = http_get(
            incident_gateway, f"/v1/incidents/{incident_id}?timeline=1"
        )
        assert status == 200
        revisions = json.loads(raw)["revisions"]
        assert len(revisions) >= incident["flap_count"]

    def test_report_is_markdown(self, incident_gateway):
        _s, _ct, raw = http_get(incident_gateway, "/v1/incidents?flapping=1")
        incident_id = json.loads(raw)["incidents"][0]["incident_id"]
        status, content_type, raw = http_get(
            incident_gateway, f"/v1/incidents/{incident_id}/report"
        )
        assert status == 200
        assert content_type.startswith("text/markdown")
        text = raw.decode()
        assert text.startswith("# Root Cause Analysis Report (RCA)")
        assert "## 7. Conclusion" in text

    def test_unknown_incident_404(self, incident_gateway):
        status, _ct, raw = http_get(
            incident_gateway, "/v1/incidents/inc-nope"
        )
        assert status == 404

    def test_disabled_deployment_404s(self, storm_result):
        from repro.apps import BgpFlapApp
        from repro.service.http import RcaGateway

        platform = storm_result.platform()
        app = BgpFlapApp.build(platform)
        router = platform.serve_sharded({"bgp": app}, shards=1, workers=1)
        gateway = RcaGateway(router).start()
        try:
            status, _ct, raw = http_get(gateway, "/v1/incidents")
            assert status == 404
            assert b"not enabled" in raw
        finally:
            gateway.stop(shutdown_shards=True)


class TestStreamingLiveFeed:
    def test_streaming_rca_feeds_the_aggregator(self):
        """StreamingRca -> on_diagnosis -> aggregator, incrementally."""
        import random

        from repro.apps.bgp_flaps import BgpFlapApp
        from repro.collector import DataCollector
        from repro.core.streaming import FeedReplayer, StreamingConfig, StreamingRca
        from repro.platform import GrcaPlatform
        from repro.simulation.faults import FaultInjector
        from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
        from repro.topology import TopologyParams, build_topology

        topo = build_topology(
            TopologyParams(n_pops=3, pers_per_pop=2, customers_per_per=4, seed=88)
        )
        emitter = TelemetryEmitter(topo, random.Random(1), syslog_jitter=1.0)
        injector = FaultInjector(topo, emitter, random.Random(2))
        customer = sorted(topo.customer_attachments)[0]
        t0 = BASE_EPOCH + 3600.0
        # the same customer flaps three times within the dedupe gap
        injector.bgp_interface_flap(t0, customer)
        injector.bgp_interface_flap(t0 + 1500.0, customer)
        injector.bgp_interface_flap(t0 + 3000.0, customer)

        collector = DataCollector()
        for router in topo.network.routers.values():
            collector.registry.register_device(router.name, router.timezone)
        platform = GrcaPlatform.from_collector(
            topo, collector, config_time=BASE_EPOCH
        )
        app = BgpFlapApp.build(platform)
        replayer = FeedReplayer(collector, emitter.buffers.replay_order())

        store = IncidentStore()
        aggregator = IncidentAggregator(gap_seconds=3600.0, sink=store.record)
        streaming = StreamingRca(
            app.engine,
            StreamingConfig(settle_seconds=420.0),
            on_diagnosis=aggregator.observe,
        )
        now = t0 - 600.0
        while now < t0 + 20000.0:
            now += 900.0
            replayer.deliver_until(now)
            streaming.advance(now)
        aggregator.advance(now + 3600.0 + 1.0)

        incidents = store.incidents()
        flap_incidents = [
            i for i in incidents if i.cause == "Interface flap"
        ]
        assert len(flap_incidents) == 1
        assert flap_incidents[0].flap_count == 3
        assert not flap_incidents[0].open
