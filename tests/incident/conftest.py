"""Fixtures for the incident-lifecycle suite.

``diagnosis()`` builds synthetic diagnoses cheaply (no simulation) for
aggregator/store/report unit tests; ``storm_diagnoses`` runs one small
seeded flap-storm replay (session-scoped — the e2e tests share it).
"""

import pytest

from repro.collector.health import FeedState
from repro.core.engine import Diagnosis
from repro.core.events import EventInstance
from repro.core.graph import DiagnosisRule
from repro.core.locations import Location, LocationType
from repro.core.reasoning.rule_based import (
    EvidenceGap,
    MatchedEvidence,
    RuleBasedResult,
)
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import default_rule


def diagnosis(
    cause="Interface flap",
    t=1000.0,
    router="nyc-per1",
    symptom="bgp-session-flap",
    confidence=1.0,
    caveats=(),
    gap_sources=(),
    duration=10.0,
):
    """One synthetic diagnosis with a controllable identity and rollup."""
    location = Location.router(router)
    instance = EventInstance.make(symptom, t, t + duration, location)
    if cause is None:
        result = RuleBasedResult(root_causes=[], priority=0, supporting=[])
        evidence = []
    else:
        rule = DiagnosisRule(
            symptom, cause, default_rule(),
            SpatialJoinRule(
                LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER
            ),
            priority=10,
        )
        found = EventInstance.make(cause, t, t, location)
        evidence = [MatchedEvidence(rule, instance, found, 1)]
        result = RuleBasedResult(
            root_causes=[cause], priority=10, supporting=evidence
        )
    gaps = [
        EvidenceGap(
            source=source,
            state=FeedState.DOWN,
            start=t,
            end=t + duration,
            event="diag-event",
            parent_event=symptom,
        )
        for source in gap_sources
    ]
    return Diagnosis(
        symptom=instance,
        evidence=evidence,
        result=result,
        gaps=gaps,
        confidence=confidence,
        caveats=list(caveats),
    )


@pytest.fixture
def make_diagnosis():
    return diagnosis


@pytest.fixture(scope="session")
def storm_result():
    """One small seeded flap-storm simulation (shared across the suite)."""
    from repro.simulation import bgp_flap_storm
    from repro.topology import TopologyParams

    return bgp_flap_storm(
        total_flaps=60,
        seed=9108,
        params=TopologyParams(
            n_pops=4, pers_per_pop=2, customers_per_per=4, seed=9108
        ),
    )


@pytest.fixture(scope="session")
def storm_diagnoses(storm_result):
    """The storm's full-replay diagnoses, in symptom order."""
    from repro.apps import BgpFlapApp

    app = BgpFlapApp.build(storm_result.platform())
    browser = app.run(storm_result.start, storm_result.end)
    return list(browser.diagnoses)
