"""``grca-incident/1`` round-trip and strictness contract."""

import json
import math

import pytest

from repro.incident import (
    INCIDENT_SCHEMA,
    IncidentAggregator,
    incident_from_dict,
    incident_to_dict,
)

from .conftest import diagnosis


def strict_cycle(document):
    """Encode with strict JSON (NaN/Inf forbidden) and decode back."""
    return json.loads(json.dumps(document, allow_nan=False))


def build_incident(**kwargs):
    aggregator = IncidentAggregator(gap_seconds=600.0)
    aggregator.observe(diagnosis(t=1000.0, **kwargs))
    return aggregator.observe(diagnosis(t=1200.0, **kwargs))


class TestRoundTrip:
    def test_schema_tag(self):
        document = incident_to_dict(build_incident())
        assert document["schema"] == INCIDENT_SCHEMA
        assert document["flap_count"] == 2

    def test_round_trip_equal(self):
        incident = build_incident(
            confidence=0.75,
            caveats=("one caveat",),
            gap_sources=("snmp",),
        )
        rebuilt = incident_from_dict(strict_cycle(incident_to_dict(incident)))
        assert rebuilt == incident
        assert rebuilt.example == incident.example
        assert rebuilt.confidence_mean == incident.confidence_mean

    def test_round_trip_without_example(self):
        incident = build_incident()
        document = incident_to_dict(incident)
        del document["example"]
        rebuilt = incident_from_dict(strict_cycle(document))
        assert rebuilt.example is None
        assert rebuilt.incident_id == incident.incident_id

    def test_nan_confidence_survives_strict_json(self):
        # the shared float guard (grca-diagnosis/1's NaN fix) must cover
        # the incident encoder too: a NaN rollup may never leak into a
        # document that json.dumps(allow_nan=False) rejects
        incident = build_incident(confidence=float("nan"))
        document = strict_cycle(incident_to_dict(incident))
        assert document["confidence"]["min"] == "nan"
        rebuilt = incident_from_dict(document)
        assert math.isnan(rebuilt.confidence_min)
        assert math.isnan(rebuilt.confidence_total)


class TestStrictness:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="JSON object"):
            incident_from_dict([1, 2, 3])

    def test_rejects_wrong_schema(self):
        document = incident_to_dict(build_incident())
        document["schema"] = "grca-incident/999"
        with pytest.raises(ValueError, match="unsupported incident schema"):
            incident_from_dict(document)

    def test_rejects_truncated_payload(self):
        document = incident_to_dict(build_incident())
        del document["window"]
        with pytest.raises(ValueError, match="malformed"):
            incident_from_dict(document)

    def test_rejects_bad_embedded_diagnosis(self):
        document = incident_to_dict(build_incident())
        document["example"] = {"schema": "bogus"}
        with pytest.raises(ValueError):
            incident_from_dict(document)


class TestDeterminism:
    def test_same_stream_encodes_byte_identically(self):
        def run():
            aggregator = IncidentAggregator(gap_seconds=600.0)
            for i in range(4):
                aggregator.observe(diagnosis(t=1000.0 + i * 60.0))
            aggregator.advance(5000.0)
            return json.dumps(
                [incident_to_dict(i) for i in aggregator.incidents()],
                sort_keys=True,
                allow_nan=False,
            )

        assert run() == run()
