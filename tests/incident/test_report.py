"""The standardized RCA report: section contract and content."""

import re

from repro.incident import (
    IncidentAggregator,
    render_incident_report,
    render_incident_summary,
)

from .conftest import diagnosis

SECTIONS = [
    "## 1. Issue Summary",
    "## 2. Impact Analysis",
    "## 3. Root Causes",
    "## 4. Resolution",
    "## 5. Preventive Measures",
    "## 6. Supplementary Information",
    "## 7. Conclusion",
]


def build_incident(stream):
    aggregator = IncidentAggregator(gap_seconds=600.0)
    incident = None
    for d in stream:
        incident = aggregator.observe(d)
    return incident


class TestSectionContract:
    def test_all_seven_sections_in_order(self):
        text = render_incident_report(build_incident([diagnosis()]))
        positions = [text.find(section) for section in SECTIONS]
        assert all(p >= 0 for p in positions), positions
        assert positions == sorted(positions)

    def test_conclusion_never_empty(self):
        for stream in (
            [diagnosis()],  # explained
            [diagnosis(cause=None)],  # unknown
            [diagnosis(t=1000.0), diagnosis(t=1100.0)],  # flapping
        ):
            text = render_incident_report(build_incident(stream))
            conclusion = text.split("## 7. Conclusion", 1)[1].strip()
            assert conclusion, "Conclusion section must not be empty"

    def test_title_names_the_cause(self):
        text = render_incident_report(build_incident([diagnosis()]))
        assert text.startswith(
            "# Root Cause Analysis Report (RCA) - Interface flap Issue"
        )


class TestContent:
    def test_flapping_incident_mentions_dedupe(self):
        incident = build_incident(
            [diagnosis(t=1000.0 + i * 60.0) for i in range(5)]
        )
        text = render_incident_report(incident)
        assert "- **Symptom Occurrences**: 5 (flapping)" in text
        assert "5 repeated occurrences were deduplicated" in text

    def test_degraded_evidence_surfaces(self):
        incident = build_incident(
            [diagnosis(gap_sources=("snmp",), caveats=("snmp was dark",))]
        )
        text = render_incident_report(incident)
        assert "**Evidence Quality**: degraded" in text
        assert "snmp" in text
        assert "- caveat: snmp was dark" in text

    def test_unknown_cause_gets_escalation_advice(self):
        text = render_incident_report(build_incident([diagnosis(cause=None)]))
        assert "escalate to manual" in text

    def test_example_trace_in_supplementary(self):
        text = render_incident_report(build_incident([diagnosis()]))
        supplementary = text.split("## 6. Supplementary Information", 1)[1]
        assert "**Example Diagnosis Trace**" in supplementary
        assert "```" in supplementary

    def test_related_incidents_table_escapes_pipes(self):
        main = build_incident([diagnosis()])
        other = build_incident([diagnosis(cause="weird|cause", t=9000.0)])
        text = render_incident_report(main, related=[main, other])
        # the main incident never lists itself as related
        assert text.count(main.incident_id) == 1
        row = next(
            line for line in text.splitlines() if other.incident_id in line
        )
        assert "weird\\|cause" in row
        # every related row keeps exactly the 4 declared columns
        assert row.count("|") - row.count("\\|") == 5

    def test_severity_scales_with_flaps(self):
        low = build_incident([diagnosis()])
        high = build_incident(
            [diagnosis(t=1000.0 + i * 30.0) for i in range(12)]
        )
        assert "- **Severity**: Low" in render_incident_report(low)
        assert "- **Severity**: High" in render_incident_report(high)


class TestSummary:
    def test_summary_table_lists_every_incident(self):
        incidents = [
            build_incident([diagnosis(router="nyc-per1")]),
            build_incident([diagnosis(router="chi-per1", cause="a|b")]),
        ]
        text = render_incident_summary(incidents)
        assert "Incidents: **2**" in text
        for incident in incidents:
            assert incident.incident_id in text
        assert "a\\|b" in text

    def test_deterministic_rendering(self):
        incident = build_incident(
            [diagnosis(t=1000.0 + i * 60.0) for i in range(3)]
        )
        assert render_incident_report(incident) == render_incident_report(
            incident
        )
        assert re.search(r"## 7\. Conclusion\n\S", render_incident_report(incident))
