"""Tests for the synthetic tier-1 topology generator."""

import pytest

from repro.topology import (
    RouterRole,
    TopologyParams,
    build_topology,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(
        TopologyParams(
            n_pops=4,
            pers_per_pop=2,
            customers_per_per=3,
            cdn_pops=("nyc",),
            peering_pops=("chi",),
            seed=7,
        )
    )


class TestStructure:
    def test_pop_count(self, topo):
        assert len(topo.network.pops) == 4

    def test_two_cores_per_pop(self, topo):
        cores = topo.network.routers_by_role(RouterRole.CORE)
        assert len(cores) == 8

    def test_per_count(self, topo):
        assert len(topo.provider_edges) == 8

    def test_customer_count(self, topo):
        assert len(topo.customer_routers) == 8 * 3

    def test_every_per_is_dual_homed(self, topo):
        for per in topo.provider_edges:
            uplinks = topo.network.uplinks_of(per)
            assert len(uplinks) == 2

    def test_customer_attachments_reference_real_elements(self, topo):
        for customer, (per, iface, neighbor_ip) in topo.customer_attachments.items():
            assert per in topo.network.routers
            assert topo.network.interface(iface).router == per
            assert neighbor_ip.count(".") == 3
            assert customer in topo.network.routers

    def test_route_reflectors_exist(self, topo):
        assert len(topo.route_reflectors) == 2
        for rr in topo.route_reflectors:
            assert topo.network.router(rr).role is RouterRole.ROUTE_REFLECTOR

    def test_cdn_servers_attached(self, topo):
        assert len(topo.network.cdn_servers) == 4
        for server in topo.network.cdn_servers.values():
            assert server.attached_router == "nyc-per1"

    def test_peering_router(self, topo):
        peers = topo.network.routers_by_role(RouterRole.PEER)
        assert [p.name for p in peers] == ["chi-peer1"]


class TestBackbone:
    def test_backbone_links_have_layer1_path(self, topo):
        backbone = [
            link
            for link in topo.network.logical_links.values()
            if topo.network.router(link.router_a).role is RouterRole.CORE
            and topo.network.router(link.router_z).role is RouterRole.CORE
            and topo.network.router(link.router_a).pop
            != topo.network.router(link.router_z).pop
        ]
        assert backbone, "expected inter-PoP backbone links"
        for link in backbone:
            devices = topo.network.layer1_devices_of_logical(link.name)
            assert len(devices) == 2

    def test_interfaces_unique_per_router(self, topo):
        for router in topo.network.routers.values():
            names = [i.name for i in router.interfaces]
            assert len(names) == len(set(names)), router.name

    def test_subnets_unique(self, topo):
        subnets = [l.subnet for l in topo.network.logical_links.values()]
        assert len(subnets) == len(set(subnets))


class TestDeterminism:
    def test_same_seed_same_topology(self):
        params = TopologyParams(n_pops=3, seed=123)
        a = build_topology(params)
        b = build_topology(params)
        assert sorted(a.network.routers) == sorted(b.network.routers)
        assert sorted(a.network.logical_links) == sorted(b.network.logical_links)

    def test_different_seed_can_differ_in_backbone(self):
        a = build_topology(TopologyParams(n_pops=6, backbone_degree=3, seed=1))
        b = build_topology(TopologyParams(n_pops=6, backbone_degree=3, seed=2))
        # routers identical; chord selection may differ
        assert sorted(a.network.routers) == sorted(b.network.routers)

    def test_scales_past_pop_name_pool(self):
        topo = build_topology(TopologyParams(n_pops=20, pers_per_pop=1, customers_per_per=1))
        assert len(topo.network.pops) == 20
