"""Unit tests for the network element model."""

import pytest

from repro.topology.elements import (
    Interface,
    Layer1Kind,
    LineCard,
    LogicalLink,
    PhysicalLink,
    Router,
    RouterRole,
)


def make_router():
    router = Router(name="nyc-per1", role=RouterRole.PROVIDER_EDGE, pop="nyc")
    router.line_cards = [LineCard("nyc-per1", 0), LineCard("nyc-per1", 1)]
    router.interfaces = [
        Interface("nyc-per1", "se0/0", 0, "10.0.0.1"),
        Interface("nyc-per1", "se0/1", 0),
        Interface("nyc-per1", "se1/0", 1),
    ]
    return router


class TestInterface:
    def test_fqname_combines_router_and_name(self):
        iface = Interface("nyc-per1", "se0/0", 0)
        assert iface.fqname == "nyc-per1:se0/0"

    def test_interfaces_are_hashable(self):
        a = Interface("r1", "se0/0", 0)
        b = Interface("r1", "se0/0", 0)
        assert a == b
        assert len({a, b}) == 1


class TestLineCard:
    def test_fqname_uses_slot(self):
        card = LineCard("r1", 3)
        assert card.fqname == "r1:slot3"


class TestRouter:
    def test_interface_lookup(self):
        router = make_router()
        assert router.interface("se0/1").slot == 0

    def test_interface_lookup_missing_raises(self):
        router = make_router()
        with pytest.raises(KeyError):
            router.interface("se9/9")

    def test_interfaces_on_slot(self):
        router = make_router()
        names = [i.name for i in router.interfaces_on_slot(0)]
        assert names == ["se0/0", "se0/1"]
        assert [i.name for i in router.interfaces_on_slot(1)] == ["se1/0"]

    def test_interfaces_on_empty_slot(self):
        router = make_router()
        assert router.interfaces_on_slot(7) == []


class TestLogicalLink:
    def make_link(self):
        return LogicalLink(
            name="a--z",
            router_a="a",
            router_z="z",
            interface_a="a:se0/0",
            interface_z="z:se0/0",
            physical_links=("c1", "c2"),
            subnet="10.0.0.0/30",
        )

    def test_routers_tuple(self):
        assert self.make_link().routers == ("a", "z")

    def test_other_router(self):
        link = self.make_link()
        assert link.other_router("a") == "z"
        assert link.other_router("z") == "a"

    def test_other_router_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            self.make_link().other_router("q")


class TestPhysicalLink:
    def test_endpoints(self):
        link = PhysicalLink("c1", "a:se0/0", "z:se0/0", Layer1Kind.SONET)
        assert link.endpoints == ("a:se0/0", "z:se0/0")
        assert link.layer1_kind is Layer1Kind.SONET
