"""Tests for APS-protected backbone circuits (logical->many-physical)."""

import pytest

from repro.core.locations import Location
from repro.core.spatial import JoinLevel
from repro.topology import Layer1Kind, TopologyParams, build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(
        TopologyParams(n_pops=6, pers_per_pop=1, customers_per_per=1,
                       aps_protect_sonet=True, seed=500)
    )


def sonet_backbone_links(topo):
    return [
        link
        for link in topo.network.logical_links.values()
        if link.physical_links
        and topo.network.physical_link(link.physical_links[0]).layer1_kind
        is Layer1Kind.SONET
        and topo.network.layer1_devices_of_logical(link.name)
    ]


class TestApsProtection:
    def test_sonet_backbone_links_have_two_circuits(self, topo):
        links = sonet_backbone_links(topo)
        assert links, "expected at least one SONET backbone link"
        for link in links:
            assert len(link.physical_links) == 2, link.name

    def test_protection_pair_rides_same_layer1_devices(self, topo):
        for link in sonet_backbone_links(topo):
            paths = {
                topo.network.layer1_path(phys) for phys in link.physical_links
            }
            assert len(paths) == 1  # same ADM pair protects both

    def test_layer1_devices_deduplicated(self, topo):
        for link in sonet_backbone_links(topo):
            devices = topo.network.layer1_devices_of_logical(link.name)
            assert len(devices) == len(set(devices)) == 2

    def test_unprotected_kinds_have_single_circuit(self, topo):
        for link in topo.network.logical_links.values():
            if not link.physical_links:
                continue
            kind = topo.network.physical_link(link.physical_links[0]).layer1_kind
            if kind in (Layer1Kind.ETHERNET, Layer1Kind.OPTICAL_MESH):
                assert len(link.physical_links) == 1, link.name

    def test_disabled_flag_gives_single_circuits(self):
        topo = build_topology(
            TopologyParams(n_pops=6, pers_per_pop=1, customers_per_per=1,
                           aps_protect_sonet=False, seed=500)
        )
        for link in topo.network.logical_links.values():
            assert len(link.physical_links) <= 1


class TestApsSpatialExpansion:
    def test_interface_expands_to_both_members(self, topo, path_service_factory=None):
        from repro.core.spatial import LocationResolver
        from repro.routing.ospf import OspfSimulator
        from repro.routing.paths import PathService

        resolver = LocationResolver(
            PathService(topo.network, OspfSimulator(topo.network))
        )
        link = sonet_backbone_links(topo)[0]
        got = resolver.expand(
            Location.interface(link.interface_a), JoinLevel.PHYSICAL_LINK, 0.0
        )
        assert got == set(link.physical_links)
        assert len(got) == 2

    def test_either_member_maps_back_to_the_logical_link(self, topo):
        link = sonet_backbone_links(topo)[0]
        for phys in link.physical_links:
            riding = {
                logical.name
                for logical in topo.network.logical_links.values()
                if phys in logical.physical_links
            }
            assert riding == {link.name}
