"""Tests for config rendering, parsing and the daily archive."""

import pytest

from repro.topology import TopologyParams, build_topology
from repro.topology.config_parser import (
    ConfigArchive,
    parse_config,
    render_config,
    snapshot_network,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyParams(n_pops=2, pers_per_pop=1, customers_per_per=2))


class TestRoundTrip:
    def test_hostname_and_timezone_roundtrip(self, topo):
        router = topo.network.router("nyc-per1")
        parsed = parse_config(render_config(router, topo))
        assert parsed.hostname == "nyc-per1"
        assert parsed.timezone == router.timezone

    def test_interfaces_roundtrip(self, topo):
        router = topo.network.router("nyc-per1")
        parsed = parse_config(render_config(router, topo))
        assert set(parsed.interfaces) == {i.name for i in router.interfaces}
        for iface in router.interfaces:
            if iface.ip_address:
                assert parsed.interfaces[iface.name].ip_address == iface.ip_address
                assert parsed.interfaces[iface.name].prefix_len == 30

    def test_per_has_customer_and_reflector_neighbors(self, topo):
        router = topo.network.router("nyc-per1")
        parsed = parse_config(render_config(router, topo))
        assert parsed.bgp_asn == 7018
        external = [n for n in parsed.bgp_neighbors if n.remote_as != 7018]
        internal = [n for n in parsed.bgp_neighbors if n.remote_as == 7018]
        assert len(external) == 2  # two customers
        assert len(internal) == len(topo.route_reflectors)

    def test_reflector_marks_clients(self, topo):
        rr = topo.network.router(topo.route_reflectors[0])
        parsed = parse_config(render_config(rr, topo))
        assert parsed.bgp_neighbors
        assert all(n.route_reflector_client for n in parsed.bgp_neighbors)

    def test_slot_of_derived_from_names(self, topo):
        router = topo.network.router("nyc-cr1")
        parsed = parse_config(render_config(router, topo))
        for name, slot in parsed.slot_of.items():
            assert router.interface(name).slot == slot


class TestNeighborInterface:
    def test_neighbor_ip_maps_to_customer_facing_interface(self, topo):
        for customer, (per, iface_fq, neighbor_ip) in topo.customer_attachments.items():
            parsed = parse_config(render_config(topo.network.router(per), topo))
            if_name = parsed.neighbor_interface(neighbor_ip)
            assert f"{per}:{if_name}" == iface_fq, customer

    def test_unknown_neighbor_returns_none(self, topo):
        parsed = parse_config(render_config(topo.network.router("nyc-per1"), topo))
        assert parsed.neighbor_interface("203.0.113.77") is None

    def test_malformed_neighbor_returns_none(self, topo):
        parsed = parse_config(render_config(topo.network.router("nyc-per1"), topo))
        assert parsed.neighbor_interface("not-an-ip") is None


class TestArchive:
    def test_config_at_returns_latest_before_timestamp(self):
        archive = ConfigArchive()
        archive.add_snapshot("r1", 100.0, "hostname r1-old\n!")
        archive.add_snapshot("r1", 200.0, "hostname r1-new\n!")
        assert archive.config_at("r1", 150.0).hostname == "r1-old"
        assert archive.config_at("r1", 250.0).hostname == "r1-new"

    def test_config_before_first_snapshot_is_none(self):
        archive = ConfigArchive()
        archive.add_snapshot("r1", 100.0, "hostname r1\n!")
        assert archive.config_at("r1", 50.0) is None

    def test_unknown_router_is_none(self):
        assert ConfigArchive().config_at("ghost", 0.0) is None

    def test_snapshot_network_covers_all_routers(self, topo):
        archive = snapshot_network(topo, timestamp=0.0)
        assert set(archive.routers()) == set(topo.network.routers)


class TestParserRobustness:
    def test_garbage_lines_ignored(self):
        parsed = parse_config("%% random noise\nhostname r9\nnot config at all\n")
        assert parsed.hostname == "r9"

    def test_bundle_membership_parsed(self):
        text = "interface se0/0\n ppp multilink group bundle7\n!\n"
        parsed = parse_config(text)
        assert parsed.interfaces["se0/0"].bundle == "bundle7"

    def test_empty_config(self):
        parsed = parse_config("")
        assert parsed.hostname == ""
        assert parsed.interfaces == {}
        assert parsed.bgp_neighbors == []
