"""Unit tests for the Network container and cross-layer lookups."""

import pytest

from repro.topology.elements import (
    Interface,
    Layer1Device,
    Layer1Kind,
    LineCard,
    LogicalLink,
    PhysicalLink,
    Pop,
    Router,
    RouterRole,
)
from repro.topology.network import Network, TopologyError


@pytest.fixture
def net():
    """Two routers joined by a logical link over two SONET circuits."""
    network = Network()
    network.add_pop(Pop("nyc"))
    network.add_pop(Pop("chi"))
    for name, pop in (("nyc-cr1", "nyc"), ("chi-cr1", "chi")):
        router = Router(name=name, role=RouterRole.CORE, pop=pop)
        router.line_cards = [LineCard(name, 0)]
        router.interfaces = [Interface(name, "se0/0", 0, None)]
        network.add_router(router)
    network.add_layer1_device(Layer1Device("adm-1", Layer1Kind.SONET, "nyc"))
    network.add_layer1_device(Layer1Device("adm-2", Layer1Kind.SONET, "chi"))
    for circuit in ("c-a", "c-b"):
        network.add_physical_link(
            PhysicalLink(circuit, "nyc-cr1:se0/0", "chi-cr1:se0/0", Layer1Kind.SONET),
            layer1_path=("adm-1", "adm-2"),
        )
    network.add_logical_link(
        LogicalLink(
            name="nyc--chi",
            router_a="nyc-cr1",
            router_z="chi-cr1",
            interface_a="nyc-cr1:se0/0",
            interface_z="chi-cr1:se0/0",
            physical_links=("c-a", "c-b"),
            subnet="10.0.0.0/30",
        )
    )
    return network


class TestConstruction:
    def test_router_in_unknown_pop_rejected(self):
        network = Network()
        with pytest.raises(TopologyError):
            network.add_router(Router("r1", RouterRole.CORE, "nowhere"))

    def test_physical_link_with_unknown_layer1_rejected(self, net):
        with pytest.raises(TopologyError):
            net.add_physical_link(
                PhysicalLink("c-x", "nyc-cr1:se0/0", "chi-cr1:se0/0"),
                layer1_path=("ghost",),
            )

    def test_logical_link_with_unknown_router_rejected(self, net):
        with pytest.raises(TopologyError):
            net.add_logical_link(
                LogicalLink("bad", "ghost", "chi-cr1", "ghost:se0/0", "chi-cr1:se0/0")
            )

    def test_validate_passes_on_consistent_topology(self, net):
        net.validate()


class TestLookups:
    def test_interface_fqname_resolution(self, net):
        iface = net.interface("nyc-cr1:se0/0")
        assert iface.router == "nyc-cr1"

    def test_unknown_interface_raises(self, net):
        with pytest.raises(TopologyError):
            net.interface("nyc-cr1:se9/9")

    def test_line_card_resolution(self, net):
        card = net.line_card("nyc-cr1:slot0")
        assert card.slot == 0

    def test_line_card_bad_identifier(self, net):
        with pytest.raises(TopologyError):
            net.line_card("nyc-cr1:card0")

    def test_unknown_router_raises(self, net):
        with pytest.raises(TopologyError):
            net.router("ghost")


class TestCrossLayer:
    def test_link_of_interface(self, net):
        link = net.link_of_interface("nyc-cr1:se0/0")
        assert link.name == "nyc--chi"

    def test_link_of_unattached_interface_is_none(self, net):
        router = net.router("nyc-cr1")
        router.interfaces.append(Interface("nyc-cr1", "se0/1", 0))
        assert net.link_of_interface("nyc-cr1:se0/1") is None

    def test_link_by_subnet(self, net):
        assert net.link_by_subnet("10.0.0.0/30").name == "nyc--chi"
        assert net.link_by_subnet("10.9.9.0/30") is None

    def test_layer1_path(self, net):
        assert net.layer1_path("c-a") == ("adm-1", "adm-2")

    def test_layer1_path_unknown_circuit(self, net):
        with pytest.raises(TopologyError):
            net.layer1_path("ghost")

    def test_layer1_devices_of_logical_deduplicates(self, net):
        # both circuits ride the same ADM pair; devices appear once
        assert net.layer1_devices_of_logical("nyc--chi") == ("adm-1", "adm-2")

    def test_physical_links_riding(self, net):
        names = {l.name for l in net.physical_links_riding("adm-1")}
        assert names == {"c-a", "c-b"}

    def test_logical_links_riding(self, net):
        links = net.logical_links_riding("adm-2")
        assert [l.name for l in links] == ["nyc--chi"]

    def test_logical_links_of_router(self, net):
        assert [l.name for l in net.logical_links_of_router("chi-cr1")] == ["nyc--chi"]

    def test_pop_of(self, net):
        assert net.pop_of("chi-cr1").name == "chi"
