"""Tests for the IPv4 helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.netutils import (
    int_to_ip,
    ip_to_int,
    longest_prefix_match,
    parse_prefix,
    prefix_contains,
    prefix_mask,
)


class TestConversions:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_to_ip_bounds(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_round_trip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefixes:
    def test_parse_prefix_normalizes_host_bits(self):
        network, length = parse_prefix("10.0.0.7/30")
        assert int_to_ip(network) == "10.0.0.4"
        assert length == 30

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1"])
    def test_bad_prefixes_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_prefix(bad)

    def test_prefix_mask(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(32) == 0xFFFFFFFF
        assert prefix_mask(24) == 0xFFFFFF00

    def test_prefix_contains(self):
        assert prefix_contains("198.51.100.0/24", "198.51.100.200")
        assert not prefix_contains("198.51.100.0/24", "198.51.101.1")
        assert prefix_contains("0.0.0.0/0", "1.2.3.4")

    def test_longest_prefix_match_prefers_specific(self):
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]
        assert longest_prefix_match(prefixes, "10.1.2.3") == "10.1.2.0/24"
        assert longest_prefix_match(prefixes, "10.1.9.9") == "10.1.0.0/16"
        assert longest_prefix_match(prefixes, "10.9.9.9") == "10.0.0.0/8"
        assert longest_prefix_match(prefixes, "192.0.2.1") is None

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    def test_address_always_inside_its_own_prefix(self, value, length):
        address = int_to_ip(value)
        prefix = f"{address}/{length}"
        assert prefix_contains(prefix, address)
