"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDiagnose:
    def test_bgp_breakdown_printed(self, capsys):
        code = main(["diagnose", "bgp-month", "--size", "40", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Root Cause" in out
        assert "Interface flap" in out
        assert "explained:" in out

    def test_trend_flag(self, capsys):
        code = main(
            ["diagnose", "pim-fortnight", "--size", "30", "--seed", "2", "--trend"]
        )
        assert code == 0
        assert "per-day trend" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["diagnose", "no-such-scenario"])

    @pytest.mark.slow
    def test_backend_swap_is_config_only(self, tmp_path, capsys):
        from repro.collector.backends import set_default_backend

        base = ["diagnose", "bgp-month", "--size", "20", "--seed", "2"]
        try:
            assert main(base + ["--feed-stats"]) == 0
            memory_out = capsys.readouterr().out
            assert "stats storage backend=memory" in memory_out
            assert main(
                base
                + ["--feed-stats", "--backend", "sqlite",
                   "--store-path", str(tmp_path / "db")]
            ) == 0
            sqlite_out = capsys.readouterr().out
            assert "stats storage backend=sqlite" in sqlite_out
        finally:
            set_default_backend(None)
        # identical diagnoses either way: the swap changes storage only
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith("stats storage")
        ]
        assert strip(sqlite_out) == strip(memory_out)
        assert (tmp_path / "db" / "syslog.sqlite").exists()


class TestCatalog:
    def test_events(self, capsys):
        assert main(["catalog", "events"]) == 0
        out = capsys.readouterr().out
        assert "Link congestion alarm" in out
        assert "event definitions" in out

    def test_rules(self, capsys):
        assert main(["catalog", "rules"]) == 0
        out = capsys.readouterr().out
        assert "SONET restoration" in out
        assert "rule templates" in out


class TestSpecCheck:
    def test_valid_spec(self, tmp_path, capsys):
        spec = tmp_path / "app.grca"
        spec.write_text(
            'application "x"\n'
            'symptom "eBGP flap"\n'
            'rule "eBGP flap" -> "Interface flap" priority 160 {\n'
            "    symptom expand start/start 200 10\n"
            "    diagnostic expand start/end 10 10\n"
            "    join router:neighbor-ip interface at interface\n"
            "}\n"
        )
        assert main(["spec", "check", str(spec)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_spec(self, tmp_path, capsys):
        spec = tmp_path / "bad.grca"
        spec.write_text('symptom "No such event"\n')
        assert main(["spec", "check", str(spec)]) == 1
        assert "unknown symptom" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["spec", "check", "/nonexistent/path.grca"]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_dump_feeds(self, tmp_path, capsys):
        code = main(
            ["simulate", "bgp-month", "--size", "20", "--seed", "2",
             "--out", str(tmp_path / "feeds")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ground-truth symptoms" in out
        dumped = sorted(p.name for p in (tmp_path / "feeds").iterdir())
        assert "syslog.tsv" in dumped
        assert "snmp.tsv" in dumped
        syslog = (tmp_path / "feeds" / "syslog.tsv").read_text()
        assert "router=" in syslog


class TestParallelJobs:
    def test_jobs_flag_matches_serial_output(self, capsys):
        serial_args = ["diagnose", "bgp-month", "--size", "30", "--seed", "3"]
        assert main(serial_args) == 0
        serial_out = capsys.readouterr().out
        assert main(serial_args + ["--jobs", "3"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out  # byte-identical breakdown


class TestServe:
    def test_serve_runs_and_prints_metrics(self, capsys):
        code = main(
            ["serve", "bgp-month", "--size", "30", "--seed", "2",
             "--workers", "2", "--rounds", "3", "--repeat"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "symptoms diagnosed by 2 workers over 3 scheduled rounds" in out
        assert "Root Cause" in out
        assert "explained:" in out
        assert "repeat of the full window served from the result cache" in out
        assert "service metrics:" in out
        assert "cache:" in out
        assert "worker utilization" in out


class TestMine:
    @pytest.mark.slow
    def test_mine_runs(self, capsys):
        code = main(["mine", "--seed", "2", "--days", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "candidate series" in out
        assert "provisioning activity" in out


class TestEval:
    def test_list_names_every_registered_scenario(self, capsys):
        from repro.eval import scenario_names

        assert main(["eval", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_unknown_scenario_is_exit_2(self, capsys):
        assert main(["eval", "no-such-scenario"]) == 2
        assert "registered:" in capsys.readouterr().err

    def test_no_arguments_is_exit_2(self, capsys):
        assert main(["eval"]) == 2
        assert "--matrix" in capsys.readouterr().err

    def test_single_scenario_prints_scorecard(self, capsys):
        assert main(["eval", "bgp_month_core"]) == 0
        out = capsys.readouterr().out
        assert "composite" in out
        assert "accuracy" in out
        assert "gate: pass" in out

    def test_matrix_subset_writes_artifact_and_gates(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_scenarios.json"
        code = main([
            "eval", "--matrix", "--only", "bgp_month_core",
            "--gate", "--out", str(out_path), "--no-timing",
        ])
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["schema"] == "grca-scenario-matrix/1"
        assert document["summary"]["count"] == 1
        assert document["summary"]["gate_failures"] == []
        assert "timing" not in document["scenarios"][0]
        assert "gate passed" in capsys.readouterr().out

    def test_diff_of_identical_artifacts_is_clean(self, tmp_path, capsys):
        out_path = tmp_path / "m.json"
        assert main(["eval", "--matrix", "--only", "bgp_month_core",
                     "--out", str(out_path), "--no-timing"]) == 0
        capsys.readouterr()
        assert main(["eval", "--diff", str(out_path), str(out_path)]) == 0
        assert "unchanged" in capsys.readouterr().out

    def test_diff_missing_file_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["eval", "--diff", missing, missing]) == 2
        assert "error:" in capsys.readouterr().err
