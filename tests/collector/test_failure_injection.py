"""Failure injection: the collector must survive hostile feeds.

A production collector ingests ~600 sources; any of them can emit
truncated lines, wrong field counts, garbage encodings or absurd
values.  Parsers must count and skip, never raise, and good records
around the bad ones must land intact.
"""

import random
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.collector import DataCollector
from repro.collector.sources.misc import render_perfmon_row
from repro.collector.sources.snmp import render_snmp_row
from repro.collector.sources.syslog import render_syslog_line

BASE = 1262692800.0


@pytest.fixture
def collector():
    c = DataCollector()
    c.registry.register_device("nyc-per1", "US/Eastern")
    return c


CORRUPT_LINES = [
    "",
    " ",
    "\x00\x01\x02",
    "a" * 10_000,
    "|||||",
    "2010-01-05 12:00:00",
    "not even close",
    "2010-01-05 12:00:00|r1",  # truncated
    "9999999999999999999999|r1|x|y|z",  # absurd numbers
    "NaN|r1|cpu_util_5min||NaN",
    "2010-01-05 12:00:00|r1|cpu_util_5min||not-a-number",
    "Jan 99 99:99:99 ghost %FOO: bar",  # impossible timestamp
]


class TestCorruptFeeds:
    @pytest.mark.parametrize("source", [
        "syslog", "snmp", "ospfmon", "bgpmon", "tacacs",
        "layer1", "perfmon", "netflow", "workflow", "cdn",
    ])
    def test_corrupt_lines_never_raise(self, collector, source):
        stats = collector.ingest(source, CORRUPT_LINES)
        # blank lines are skipped silently; a couple of corrupt rows may
        # be syntactically valid for lenient free-text formats (tacacs,
        # workflow), but most must be rejected and none may crash
        assert stats.accepted <= 2
        assert stats.last_error is None or isinstance(stats.last_error, str)

    def test_good_records_survive_surrounding_garbage(self, collector):
        good = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "SYS-5-RESTART", "System restarted"
        )
        lines = CORRUPT_LINES[:5] + [good] + CORRUPT_LINES[5:]
        stats = collector.ingest("syslog", lines)
        assert stats.accepted == 1
        assert len(collector.store.table("syslog").query()) == 1

    def test_reject_counts_accumulate(self, collector):
        collector.ingest("snmp", ["garbage-1"])
        collector.ingest("snmp", ["garbage-2", "garbage-3"])
        assert collector.parsers["snmp"].stats.rejected == 3

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=200))
    def test_fuzzed_syslog_never_raises(self, line):
        collector = DataCollector()
        collector.ingest("syslog", [line])  # must not raise

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=200))
    def test_fuzzed_snmp_never_raises(self, line):
        collector = DataCollector()
        collector.ingest("snmp", [line])

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=200))
    def test_fuzzed_bgpmon_never_raises(self, line):
        collector = DataCollector()
        collector.ingest("bgpmon", [line])


class TestMessyButValidFeeds:
    def test_duplicate_records_both_stored(self, collector):
        row = render_snmp_row(BASE, "nyc-per1", "cpu_util_5min", "", 50.0)
        collector.ingest("snmp", [row, row])
        assert len(collector.store.table("snmp").query()) == 2

    def test_out_of_order_arrival_sorted_in_store(self, collector):
        rows = [
            render_perfmon_row(BASE + 600, "a", "b", "rtt_ms", 30.0),
            render_perfmon_row(BASE, "a", "b", "rtt_ms", 31.0),
            render_perfmon_row(BASE + 300, "a", "b", "rtt_ms", 29.0),
        ]
        collector.ingest("perfmon", rows)
        timestamps = [r.timestamp for r in collector.store.table("perfmon").scan()]
        assert timestamps == sorted(timestamps)

    def test_mixed_case_and_domain_suffixes_normalized(self, collector):
        lines = [
            render_syslog_line(BASE, "NYC-PER1", "US/Eastern",
                               "SYS-5-RESTART", "System restarted"),
        ]
        # hand-mangle the hostname with a domain suffix
        lines[0] = lines[0].replace("NYC-PER1", "NYC-PER1.core.ispnet.example")
        collector.ingest("syslog", lines)
        assert collector.store.table("syslog").query()[0]["router"] == "nyc-per1"

    def test_unknown_device_defaults_to_utc(self, collector):
        line = render_syslog_line(
            BASE, "mystery-router", "UTC", "SYS-5-RESTART", "System restarted"
        )
        stats = collector.ingest("syslog", [line])
        assert stats.accepted == 1
        record = collector.store.table("syslog").query()[0]
        assert abs(record.timestamp - BASE) < 1.5
