"""Feed-health machinery: state machine, retry/backoff reader, circuit
breaker and dead-letter buffer — all driven by a fake clock, no sleeps."""

import random

import pytest

from repro.collector import DataCollector
from repro.collector.health import (
    CircuitOpenError,
    DeadLetterBuffer,
    FeedHealth,
    FeedReadError,
    FeedReader,
    FeedState,
    HealthConfig,
    HealthRegistry,
    RetryConfig,
    canonical_source,
)
from repro.collector.sources.snmp import render_snmp_row

T0 = 1262692800.0


class FakeClock:
    """A manually advanced clock standing in for ``time.time``."""

    def __init__(self, now=T0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FlakyTransport:
    """Raises for the first ``failures`` calls, then yields batches."""

    def __init__(self, failures, batch=("line-1", "line-2")):
        self.failures = failures
        self.batch = list(batch)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError(f"transient #{self.calls}")
        return list(self.batch)


# ---------------------------------------------------------------------------
# state machine


class TestFeedStateMachine:
    def test_fresh_feed_healthy(self):
        feed = FeedHealth("syslog")
        assert feed.observe(T0, accepted=10, rejected=0, watermark=T0) is FeedState.HEALTHY
        assert feed.staleness == 0.0
        assert feed.history() == []

    def test_stale_watermark_lagging_then_down(self):
        feed = FeedHealth("syslog", HealthConfig(lag_seconds=600, down_seconds=3600))
        feed.observe(T0, 5, 0, watermark=T0)
        assert feed.reassess(T0 + 700.0) is FeedState.LAGGING
        assert feed.reassess(T0 + 3600.0) is FeedState.DOWN
        # intervals recorded per state, backdated to where data stopped
        states = [i.state for i in feed.history()]
        assert states == [FeedState.LAGGING, FeedState.DOWN]
        assert feed.history()[0].start == T0
        assert feed.history()[0].end == T0 + 3600.0

    def test_recovery_closes_interval(self):
        feed = FeedHealth("syslog")
        feed.observe(T0, 5, 0, watermark=T0)
        feed.reassess(T0 + 700.0)
        assert feed.state is FeedState.LAGGING
        feed.observe(T0 + 710.0, 5, 0, watermark=T0 + 705.0)
        assert feed.state is FeedState.HEALTHY
        (interval,) = feed.history()
        assert interval.end == T0 + 710.0

    def test_reject_ratio_degraded(self):
        config = HealthConfig(reject_degraded_ratio=0.25, min_window_lines=20)
        feed = FeedHealth("snmp", config)
        assert feed.observe(T0, accepted=30, rejected=10, watermark=T0) is FeedState.DEGRADED
        assert feed.reject_ratio() == 0.25

    def test_too_few_lines_never_degraded(self):
        feed = FeedHealth("snmp", HealthConfig(min_window_lines=20))
        # 100% rejects but only 5 lines: not enough signal
        assert feed.observe(T0, accepted=0, rejected=5) is FeedState.HEALTHY

    def test_window_slides(self):
        feed = FeedHealth("snmp", HealthConfig(window_seconds=3600))
        feed.observe(T0, 0, 30, watermark=None)
        feed.observe(T0 + 4000.0, 30, 0, watermark=T0 + 4000.0)
        assert feed.window_counts() == (30, 0)

    def test_forced_down_overrides_everything(self):
        feed = FeedHealth("bgpmon")
        feed.observe(T0, 100, 0, watermark=T0)
        feed.force_down(T0 + 1.0)
        assert feed.state is FeedState.DOWN
        feed.clear_forced_down(T0 + 2.0)
        assert feed.state is FeedState.HEALTHY
        (interval,) = feed.history()
        assert interval.state is FeedState.DOWN
        assert interval.end == T0 + 2.0

    def test_record_outage_and_overlap_query(self):
        feed = FeedHealth("cdn")
        feed.record_outage(T0, T0 + 100.0, FeedState.DOWN)
        assert feed.impaired_intervals(T0 + 50.0, T0 + 200.0)
        assert not feed.impaired_intervals(T0 + 101.0, T0 + 200.0)
        assert not feed.impaired_intervals(T0 - 50.0, T0 - 1.0)

    def test_open_ended_interval_overlaps_forever(self):
        feed = FeedHealth("cdn")
        feed.record_outage(T0, None)
        assert feed.impaired_intervals(T0 + 1e6, T0 + 2e6)


class TestHealthRegistry:
    def test_unknown_source_is_healthy(self):
        registry = HealthRegistry()
        assert registry.state("syslog") is FeedState.HEALTHY
        assert registry.impaired_intervals("syslog", T0, T0 + 1) == []

    def test_tick_reassesses_all(self):
        registry = HealthRegistry()
        registry.observe("syslog", T0, 5, 0, watermark=T0)
        registry.observe("snmp", T0, 5, 0, watermark=T0)
        registry.tick(T0 + 700.0)
        assert registry.summary() == {
            "snmp": FeedState.LAGGING,
            "syslog": FeedState.LAGGING,
        }

    def test_mark_down_and_restored(self):
        registry = HealthRegistry()
        registry.mark_down("bgpmon", T0)
        assert registry.state("bgpmon") is FeedState.DOWN
        registry.mark_restored("bgpmon", T0 + 60.0)
        assert registry.state("bgpmon") is FeedState.HEALTHY


class TestCanonicalSource:
    def test_known_labels(self):
        assert canonical_source("SNMP") == "snmp"
        assert canonical_source("OSPF monitor") == "ospfmon"
        assert canonical_source("layer-1 device log") == "layer1"
        assert canonical_source("server logs") == "cdn"
        assert canonical_source("CDN control plane") == "cdn"

    def test_unknown_labels_are_none(self):
        assert canonical_source("traffic monitor") is None
        assert canonical_source("") is None
        assert canonical_source(None) is None


# ---------------------------------------------------------------------------
# retry / backoff / circuit breaker


def make_reader(transport, clock, registry=None, **overrides):
    """A FeedReader with fake clock/sleep and a seeded rng."""
    defaults = dict(
        max_attempts=4,
        backoff_base=1.0,
        backoff_factor=2.0,
        backoff_max=60.0,
        jitter=0.1,
        failure_threshold=8,
        reset_timeout=300.0,
    )
    defaults.update(overrides)
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        clock.advance(seconds)

    reader = FeedReader(
        "syslog",
        transport,
        config=RetryConfig(**defaults),
        clock=clock,
        sleep=fake_sleep,
        rng=random.Random(42),
        registry=registry,
    )
    return reader, sleeps


class TestFeedReader:
    def test_recovers_from_three_transient_failures(self):
        """The acceptance case: >=3 consecutive failures, then recovery
        via backoff — the batch is delivered intact, nothing lost."""
        clock = FakeClock()
        transport = FlakyTransport(failures=3, batch=["a", "b", "c"])
        reader, sleeps = make_reader(transport, clock)
        assert reader.poll() == ["a", "b", "c"]
        assert transport.calls == 4
        assert reader.consecutive_failures == 0
        assert not reader.circuit_open
        # three backoffs, exponential with bounded jitter, no real sleeps
        assert len(sleeps) == 3
        for base, actual in zip([1.0, 2.0, 4.0], sleeps):
            assert base <= actual <= base * 1.1
        assert sleeps[0] < sleeps[1] < sleeps[2]

    def test_backoff_capped(self):
        clock = FakeClock()
        transport = FlakyTransport(failures=5, batch=["x"])
        reader, sleeps = make_reader(
            transport, clock, max_attempts=6, backoff_max=3.0, jitter=0.0
        )
        assert reader.poll() == ["x"]
        assert sleeps == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_all_attempts_fail_raises_feed_read_error(self):
        clock = FakeClock()
        reader, sleeps = make_reader(FlakyTransport(failures=99), clock)
        with pytest.raises(FeedReadError):
            reader.poll()
        assert len(sleeps) == 3  # no sleep after the final attempt
        assert reader.consecutive_failures == 4

    def test_circuit_opens_at_threshold_and_marks_feed_down(self):
        clock = FakeClock()
        registry = HealthRegistry()
        reader, _ = make_reader(
            FlakyTransport(failures=99), clock, registry=registry
        )
        with pytest.raises(FeedReadError):
            reader.poll()  # failures 1..4
        with pytest.raises(CircuitOpenError):
            reader.poll()  # failures 5..8 -> threshold hit
        assert reader.circuit_open
        assert registry.state("syslog") is FeedState.DOWN

    def test_open_circuit_fails_fast(self):
        clock = FakeClock()
        transport = FlakyTransport(failures=99)
        reader, sleeps = make_reader(transport, clock, registry=HealthRegistry())
        for _ in range(2):
            with pytest.raises((FeedReadError, CircuitOpenError)):
                reader.poll()
        calls_before = transport.calls
        sleeps_before = len(sleeps)
        with pytest.raises(CircuitOpenError):
            reader.poll()  # fast-fail: no transport call, no backoff
        assert transport.calls == calls_before
        assert len(sleeps) == sleeps_before

    def test_half_open_probe_failure_keeps_circuit_open(self):
        clock = FakeClock()
        transport = FlakyTransport(failures=99)
        reader, _ = make_reader(transport, clock, reset_timeout=300.0)
        for _ in range(2):
            with pytest.raises((FeedReadError, CircuitOpenError)):
                reader.poll()
        clock.advance(301.0)
        calls_before = transport.calls
        with pytest.raises(CircuitOpenError):
            reader.poll()  # one probe attempt, fails, re-opens
        assert transport.calls == calls_before + 1
        assert reader.circuit_open

    def test_half_open_probe_success_restores_feed(self):
        clock = FakeClock()
        registry = HealthRegistry()
        transport = FlakyTransport(failures=8, batch=["back"])
        reader, _ = make_reader(transport, clock, registry=registry)
        for _ in range(2):
            with pytest.raises((FeedReadError, CircuitOpenError)):
                reader.poll()
        assert registry.state("syslog") is FeedState.DOWN
        clock.advance(301.0)
        assert reader.poll() == ["back"]
        assert not reader.circuit_open
        assert reader.consecutive_failures == 0
        assert registry.state("syslog") is FeedState.HEALTHY


# ---------------------------------------------------------------------------
# dead letters


class TestDeadLetterBuffer:
    def test_bounded_with_dropped_counter(self):
        buffer = DeadLetterBuffer(capacity=3)
        for i in range(5):
            buffer.append("syslog", f"line-{i}", "bad")
        assert len(buffer) == 3
        assert buffer.dropped == 2
        assert [e.line for e in buffer.entries()] == ["line-2", "line-3", "line-4"]

    def test_reason_counts_and_source_filter(self):
        buffer = DeadLetterBuffer()
        buffer.append("syslog", "x", "bad timestamp")
        buffer.append("snmp", "y", "bad timestamp")
        buffer.append("snmp", "z", "unknown metric")
        assert buffer.reason_counts()["bad timestamp"] == 2
        assert len(buffer.entries("snmp")) == 2

    def test_drain_empties(self):
        buffer = DeadLetterBuffer()
        buffer.append("syslog", "x", "bad")
        assert [e.line for e in buffer.drain()] == ["x"]
        assert len(buffer) == 0

    def test_replay_into_collector(self):
        collector = DataCollector()
        collector.registry.register_device("nyc-per1", "US/Eastern")
        good = render_snmp_row(T0, "nyc-per1", "cpu_util_5min", "", 55.0)
        # a line that failed transiently (e.g. device registered late)
        collector.dead_letters.append("snmp", good, "late registration")
        outcome = collector.replay_dead_letters()
        assert outcome == {"snmp": (1, 0)}
        assert len(collector.dead_letters) == 0
        assert len(collector.store.table("snmp")) == 1

    def test_replay_refailing_lines_are_recaptured_not_looped(self):
        collector = DataCollector()
        collector.ingest("snmp", ["garbage|line"])
        assert len(collector.dead_letters) == 1
        outcome = collector.replay_dead_letters()
        assert outcome == {"snmp": (0, 1)}
        # re-captured once, not duplicated by the replay loop
        assert len(collector.dead_letters) == 1


# ---------------------------------------------------------------------------
# collector integration


class TestCollectorHealthIntegration:
    def test_batch_ingest_uses_watermark_clock(self):
        """Clean historical replays must never look stale."""
        collector = DataCollector()
        collector.registry.register_device("nyc-per1", "US/Eastern")
        old = T0 - 10 * 86400.0  # ten-day-old data
        collector.ingest(
            "snmp", [render_snmp_row(old, "nyc-per1", "cpu_util_5min", "", 10.0)]
        )
        assert collector.health.state("snmp") is FeedState.HEALTHY

    def test_streaming_ingest_observes_arrival_clock(self):
        collector = DataCollector()
        collector.registry.register_device("nyc-per1", "US/Eastern")
        line = render_snmp_row(T0, "nyc-per1", "cpu_util_5min", "", 10.0)
        collector.ingest("snmp", [line], now=T0 + 700.0)
        assert collector.health.state("snmp") is FeedState.LAGGING
        collector.tick(T0 + 4000.0)
        assert collector.health.state("snmp") is FeedState.DOWN

    def test_feed_stats_lines_report_state_and_rejects(self):
        collector = DataCollector()
        collector.registry.register_device("nyc-per1", "US/Eastern")
        collector.ingest(
            "snmp",
            [render_snmp_row(T0, "nyc-per1", "cpu_util_5min", "", 10.0), "junk"],
        )
        lines = collector.feed_stats_lines()
        stats_line = next(line for line in lines if "snmp" in line)
        assert "accepted=1" in stats_line and "rejected=1" in stats_line
        assert "top-rejects:" in stats_line
        assert any("dead-letters" in line for line in lines)
