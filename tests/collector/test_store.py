"""Tests for the normalized record store."""

from repro.collector.store import DataStore, Record, Table


class TestRecord:
    def test_make_and_getitem(self):
        record = Record.make(10.0, router="r1", value=5)
        assert record["router"] == "r1"
        assert record.get("missing") is None
        assert record.as_dict() == {"router": "r1", "value": 5}

    def test_records_hashable_and_comparable(self):
        a = Record.make(10.0, router="r1")
        b = Record.make(10.0, router="r1")
        assert a == b
        assert len({a, b}) == 1


class TestTable:
    def test_time_range_query_inclusive(self):
        table = Table("t")
        for t in (10.0, 20.0, 30.0):
            table.insert_row(t, router="r1")
        assert len(table.query(10.0, 20.0)) == 2
        assert len(table.query(10.5, 19.5)) == 0
        assert len(table.query()) == 3

    def test_equality_filter_without_index(self):
        table = Table("t")
        table.insert_row(10.0, router="r1")
        table.insert_row(11.0, router="r2")
        assert [r["router"] for r in table.query(router="r2")] == ["r2"]

    def test_indexed_query_matches_scan(self):
        indexed = Table("t", indexed_columns=("router",))
        plain = Table("t")
        rows = [(float(i), f"r{i % 3}") for i in range(100)]
        for t, router in rows:
            indexed.insert_row(t, router=router)
            plain.insert_row(t, router=router)
        assert indexed.query(10.0, 60.0, router="r1") == plain.query(
            10.0, 60.0, router="r1"
        )

    def test_out_of_order_insert_keeps_sorted(self):
        table = Table("t", indexed_columns=("router",))
        table.insert_row(20.0, router="r1")
        table.insert_row(10.0, router="r1")
        table.insert_row(15.0, router="r2")
        timestamps = [r.timestamp for r in table.scan()]
        assert timestamps == [10.0, 15.0, 20.0]
        # index rebuilt correctly after out-of-order insert
        assert [r.timestamp for r in table.query(router="r1")] == [10.0, 20.0]

    def test_multi_column_filter(self):
        table = Table("t", indexed_columns=("router",))
        table.insert_row(10.0, router="r1", metric="cpu", value=10)
        table.insert_row(10.0, router="r1", metric="mem", value=20)
        result = table.query(router="r1", metric="cpu")
        assert len(result) == 1
        assert result[0]["value"] == 10

    def test_distinct(self):
        table = Table("t", indexed_columns=("router",))
        for router in ("r2", "r1", "r2"):
            table.insert_row(1.0, router=router)
        assert table.distinct("router") == ["r1", "r2"]

    def test_distinct_unindexed_column(self):
        table = Table("t")
        table.insert_row(1.0, router="r1", metric="cpu")
        table.insert_row(2.0, router="r1")
        assert table.distinct("metric") == ["cpu"]

    def test_time_span(self):
        table = Table("t")
        assert table.time_span is None
        table.insert_row(5.0, x=1)
        table.insert_row(9.0, x=1)
        assert table.time_span == (5.0, 9.0)


class TestDataStore:
    def test_table_autocreation_with_default_indexes(self):
        store = DataStore()
        store.insert("syslog", 10.0, router="r1", code="X")
        assert "router" in store.table("syslog").indexed_columns

    def test_summary_counts(self):
        store = DataStore()
        store.insert("syslog", 10.0, router="r1")
        store.insert("syslog", 11.0, router="r1")
        store.insert("snmp", 10.0, router="r1", metric="cpu", value=1.0)
        assert store.summary() == {"snmp": 1, "syslog": 2}
        assert store.total_records() == 3
