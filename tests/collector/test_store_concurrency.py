"""Regression tests for the DataStore's query-while-ingest contract.

The thread-safety contract (see ``repro/collector/store.py``): inserts
are atomic, queries and scans return consistent snapshots, ``revision``
is monotonic, and insert listeners fire exactly once per insert after
the row is visible to readers.
"""

import threading

from repro.collector.store import DataStore

N_RECORDS = 400
N_READERS = 3


class TestWriterRacingReaders:
    def test_queries_never_break_while_writer_inserts(self):
        store = DataStore()
        errors = []
        done = threading.Event()

        def write():
            try:
                for i in range(N_RECORDS):
                    store.insert("syslog", float(i), router=f"r{i % 7}", seq=i)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)
            finally:
                done.set()

        def read():
            try:
                last_count = 0
                while not done.is_set():
                    records = store.table("syslog").query(0.0, float(N_RECORDS))
                    # every observed record must be fully formed
                    for record in records:
                        assert record["router"].startswith("r")
                    count = sum(1 for _ in store.table("syslog").scan())
                    assert count >= last_count  # writer only appends
                    last_count = count
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        writer = threading.Thread(target=write)
        readers = [threading.Thread(target=read) for _ in range(N_READERS)]
        for thread in readers:
            thread.start()
        writer.start()
        writer.join(timeout=60.0)
        for thread in readers:
            thread.join(timeout=60.0)
        assert not errors
        assert len(store.table("syslog")) == N_RECORDS
        assert store.revision == N_RECORDS

    def test_scan_snapshot_is_stable_under_later_inserts(self):
        store = DataStore()
        for i in range(10):
            store.insert("snmp", float(i), value=i)
        snapshot = store.table("snmp").scan()
        for i in range(10, 20):
            store.insert("snmp", float(i), value=i)
        seen = list(snapshot)
        assert len(seen) == 10  # the snapshot predates the new rows
        assert len(store.table("snmp")) == 20

    def test_out_of_order_insert_keeps_query_order(self):
        store = DataStore()
        store.insert("syslog", 100.0, router="a")
        store.insert("syslog", 50.0, router="b")  # late record
        store.insert("syslog", 75.0, router="c")
        timestamps = [r.timestamp for r in store.table("syslog").scan()]
        assert timestamps == [50.0, 75.0, 100.0]
        assert [r.timestamp for r in store.table("syslog").query(60.0, 80.0)] == [75.0]


class TestInsertListeners:
    def test_each_insert_notifies_exactly_once_with_monotonic_revision(self):
        store = DataStore()
        seen = []
        lock = threading.Lock()

        def listener(table, timestamp, revision):
            with lock:
                seen.append((table, timestamp, revision))

        store.subscribe(listener)
        threads = [
            threading.Thread(
                target=lambda base=base: [
                    store.insert("syslog", float(base * 100 + i), seq=i)
                    for i in range(50)
                ]
            )
            for base in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(seen) == 200
        revisions = sorted(revision for _, _, revision in seen)
        assert revisions == list(range(1, 201))  # each exactly once, no gaps
        assert store.revision == 200

    def test_row_visible_before_listener_fires(self):
        store = DataStore()
        observed = []

        def listener(table, timestamp, revision):
            records = store.table(table).query(timestamp, timestamp)
            observed.append(len(records))

        store.subscribe(listener)
        store.insert("syslog", 42.0, router="r1")
        assert observed == [1]

    def test_unsubscribe_stops_notifications(self):
        store = DataStore()
        seen = []
        listener = lambda *args: seen.append(args)  # noqa: E731
        store.subscribe(listener)
        store.insert("syslog", 1.0)
        store.unsubscribe(listener)
        store.insert("syslog", 2.0)
        assert len(seen) == 1
        assert store.revision == 2  # revision still advances
