"""Tests for the data-source parsers (render -> parse round trips)."""

import pytest

from repro.collector import DataCollector
from repro.collector.sources.misc import (
    render_cdn_row,
    render_layer1_row,
    render_netflow_row,
    render_perfmon_row,
    render_tacacs_row,
    render_workflow_row,
)
from repro.collector.sources.bgpmon import render_bgpmon_row, update_log_from_store
from repro.collector.sources.ospfmon import render_ospfmon_row, weight_history_from_store
from repro.collector.sources.snmp import render_snmp_row
from repro.collector.sources.syslog import render_syslog_line


@pytest.fixture
def collector():
    c = DataCollector()
    c.registry.register_device("nyc-per1", "US/Eastern")
    return c


BASE = 1262692800.0  # 2010-01-05 12:00:00 UTC


class TestSyslog:
    def test_link_updown_parsed(self, collector):
        line = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "LINK-3-UPDOWN",
            "Interface Serial1/0, changed state to down",
        )
        stats = collector.ingest("syslog", [line])
        assert stats.accepted == 1
        record = collector.store.table("syslog").query()[0]
        assert record["router"] == "nyc-per1"
        assert record["interface"] == "se1/0"
        assert record["state"] == "down"
        assert abs(record.timestamp - BASE) < 1.0

    def test_local_timezone_normalized(self, collector):
        # rendered in Eastern, parsed back to the same UTC epoch
        line = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "SYS-5-RESTART", "System restarted"
        )
        collector.ingest("syslog", [line])
        record = collector.store.table("syslog").query()[0]
        assert abs(record.timestamp - BASE) < 1.0

    def test_bgp_notification_hold_timer(self, collector):
        line = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "BGP-5-NOTIFICATION",
            "sent to neighbor 10.0.0.2 4/0 (hold time expired) 0 bytes",
        )
        collector.ingest("syslog", [line])
        record = collector.store.table("syslog").query()[0]
        assert record["reason"] == "hold_timer_expired"
        assert record["direction"] == "sent"
        assert record["neighbor"] == "10.0.0.2"

    def test_bgp_notification_customer_reset(self, collector):
        line = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "BGP-5-NOTIFICATION",
            "received from neighbor 10.0.0.2 6/4 (administrative reset)",
        )
        collector.ingest("syslog", [line])
        assert collector.store.table("syslog").query()[0]["reason"] == "administrative_reset"

    def test_bgp_adjchange_state(self, collector):
        line = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "BGP-5-ADJCHANGE", "neighbor 10.0.0.2 Down hold time expired"
        )
        collector.ingest("syslog", [line])
        assert collector.store.table("syslog").query()[0]["state"] == "down"

    def test_pim_nbrchg_with_vrf(self, collector):
        line = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "PIM-5-NBRCHG",
            "neighbor 10.9.9.2 DOWN on interface Serial2/0 (vrf cust-vpn-3)",
        )
        collector.ingest("syslog", [line])
        record = collector.store.table("syslog").query()[0]
        assert record["vrf"] == "cust-vpn-3"
        assert record["interface"] == "se2/0"
        assert record["state"] == "down"

    def test_cpuhog_percentage(self, collector):
        line = render_syslog_line(
            BASE, "nyc-per1", "US/Eastern", "SYS-3-CPUHOG",
            "CPU utilization over last 5 seconds: 96%",
        )
        collector.ingest("syslog", [line])
        assert collector.store.table("syslog").query()[0]["cpu_pct"] == 96

    def test_garbage_rejected_not_raised(self, collector):
        stats = collector.ingest("syslog", ["totally not syslog"])
        assert stats.rejected == 1
        assert stats.accepted == 0

    def test_blank_lines_skipped(self, collector):
        stats = collector.ingest("syslog", ["", "   "])
        assert stats.accepted == 0
        assert stats.rejected == 0


class TestSnmp:
    def test_cpu_row(self, collector):
        row = render_snmp_row(BASE, "nyc-per1", "cpu_util_5min", "", 72.0)
        collector.ingest("snmp", [row])
        record = collector.store.table("snmp").query()[0]
        assert record["metric"] == "cpu_util_5min"
        assert record["value"] == 72.0
        assert record.get("interface") is None

    def test_link_util_row_normalizes_interface(self, collector):
        row = render_snmp_row(BASE, "NYC-PER1", "link_util", "Serial1/0", 83.5)
        collector.ingest("snmp", [row])
        record = collector.store.table("snmp").query()[0]
        assert record["interface"] == "se1/0"
        assert record["router"] == "nyc-per1"

    def test_unknown_metric_rejected(self, collector):
        stats = collector.ingest("snmp", [f"2010-01-05 12:00:00|r1|bogus||1"])
        assert stats.rejected == 1


class TestRoutingFeeds:
    def test_ospfmon_roundtrip_to_history(self, collector):
        rows = [
            render_ospfmon_row(BASE, "nyc--chi", 65535),
            render_ospfmon_row(BASE + 60, "nyc--chi", 10),
        ]
        collector.ingest("ospfmon", rows)
        history = weight_history_from_store(collector.store)
        assert history.weights_at(BASE + 30)["nyc--chi"] == 65535
        assert history.weights_at(BASE + 90)["nyc--chi"] == 10

    def test_ospfmon_negative_weight_rejected(self, collector):
        stats = collector.ingest("ospfmon", [f"{BASE}|nyc--chi|-4"])
        assert stats.rejected == 1

    def test_bgpmon_roundtrip_to_log(self, collector):
        rows = [
            render_bgpmon_row(BASE, "A", "198.51.100.0/24", "chi-per1"),
            render_bgpmon_row(BASE + 100, "W", "198.51.100.0/24", "chi-per1"),
        ]
        collector.ingest("bgpmon", rows)
        log = update_log_from_store(collector.store)
        assert len(log.routes_at("198.51.100.0/24", BASE + 50)) == 1
        assert log.routes_at("198.51.100.0/24", BASE + 150) == []

    def test_bgpmon_bad_kind_rejected(self, collector):
        stats = collector.ingest("bgpmon", [f"{BASE}|X|198.51.100.0/24|r1||100|1"])
        assert stats.rejected == 1


class TestMiscSources:
    def test_tacacs_extracts_interface(self, collector):
        row = render_tacacs_row(
            BASE, "nyc-cr1", "op17", "conf t; interface Serial1/0; ip ospf cost 65535"
        )
        collector.ingest("tacacs", [row])
        record = collector.store.table("tacacs").query()[0]
        assert record["interface"] == "se1/0"
        assert record["user"] == "op17"

    def test_layer1_event(self, collector):
        row = render_layer1_row(BASE, "adm-nyc-chi-1", "sonet_restoration", "c-x")
        collector.ingest("layer1", [row])
        record = collector.store.table("layer1").query()[0]
        assert record["device"] == "adm-nyc-chi-1"
        assert record["event"] == "sonet_restoration"

    def test_layer1_unknown_event_rejected(self, collector):
        stats = collector.ingest("layer1", [f"{BASE}|adm-1|alien_event|c-x"])
        assert stats.rejected == 1

    def test_perfmon_row(self, collector):
        row = render_perfmon_row(BASE, "nyc-per1", "chi-per1", "delay_ms", 31.5)
        collector.ingest("perfmon", [row])
        record = collector.store.table("perfmon").query()[0]
        assert record["source"] == "nyc-per1"
        assert record["metric"] == "delay_ms"

    def test_netflow_row(self, collector):
        row = render_netflow_row(BASE, "agent-bos", "198.51.100.9", "NYC-PER1")
        collector.ingest("netflow", [row])
        assert collector.store.table("netflow").query()[0]["ingress_router"] == "nyc-per1"

    def test_workflow_row(self, collector):
        row = render_workflow_row(BASE, "nyc-per1", "provisioning.add_customer", "tkt-1")
        collector.ingest("workflow", [row])
        assert collector.store.table("workflow").query()[0]["activity"] == (
            "provisioning.add_customer"
        )

    def test_cdn_load_and_policy(self, collector):
        rows = [
            render_cdn_row(BASE, "dc-nyc-srv1", "load", 0.93),
            render_cdn_row(BASE, "dc-nyc-srv1", "policy_change", "map-v42"),
        ]
        collector.ingest("cdn", rows)
        records = collector.store.table("cdn").query()
        kinds = {r["kind"] for r in records}
        assert kinds == {"load", "policy_change"}


class TestCollectorFacade:
    def test_unknown_source_raises(self, collector):
        with pytest.raises(KeyError):
            collector.ingest("carrier-pigeon", ["x"])

    def test_summary_spans_tables(self, collector):
        collector.ingest("layer1", [render_layer1_row(BASE, "adm-1", "sonet_restoration", "c")])
        collector.ingest("perfmon", [render_perfmon_row(BASE, "a", "b", "loss_pct", 1.0)])
        assert collector.summary() == {"layer1": 1, "perfmon": 1}
