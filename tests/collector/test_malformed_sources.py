"""Per-parser malformed-input coverage.

For every source parser: garbage lines, NaN/infinite/out-of-range
epochs and unknown devices must be *counted* rejects (with a bounded
reason counter) or gracefully normalized — never an exception, and
never a poisoned row that breaks neighbouring good records.
"""

import math

import pytest

from repro.collector import DataCollector
from repro.collector.sources.base import MAX_REJECT_REASONS, ParseStats
from repro.collector.sources.bgpmon import render_bgpmon_row
from repro.collector.sources.misc import (
    render_cdn_row,
    render_layer1_row,
    render_netflow_row,
    render_perfmon_row,
    render_tacacs_row,
    render_workflow_row,
)
from repro.collector.sources.ospfmon import render_ospfmon_row
from repro.collector.sources.snmp import render_snmp_row
from repro.collector.sources.syslog import render_syslog_line

T0 = 1262692800.0


@pytest.fixture
def collector():
    c = DataCollector()
    c.registry.register_device("nyc-per1", "US/Eastern")
    return c


#: per-source (malformed lines, one known-good line) fixtures
BAD_EPOCHS = ["nan", "inf", "-inf", "-5", "5e12", "1e400", "what"]

MALFORMED = {
    "syslog": [
        "Jan  5 10:25:00 nyc-per1 no-percent-code here",
        "Feb 31 25:99:99 nyc-per1 %LINK-3-UPDOWN: bad clock",
        "%LINK-3-UPDOWN: missing timestamp and host",
    ],
    "snmp": [
        "2010-01-05 10:25:00|nyc-per1|cpu_util_5min|72",  # 4 fields
        "2010-01-05 10:25:00|nyc-per1|made_up_metric||72",
        "2010-01-05 10:25:00|nyc-per1|cpu_util_5min||not-a-float",
        "9999-99-99 99:99:99|nyc-per1|cpu_util_5min||72",
    ],
    "ospfmon": [f"{raw}|nyc-cr1--chi-cr1:10.0.0.0|65535" for raw in BAD_EPOCHS]
    + [
        "1262692800.0||65535",  # empty link
        "1262692800.0|l:1|-3",  # negative weight
        "1262692800.0|l:1|65535|extra",
    ],
    "bgpmon": [f"{raw}|A|10.0.0.0/8|nyc-cr1|192.0.2.1|100|3" for raw in BAD_EPOCHS]
    + [
        "1262692800.0|X|10.0.0.0/8|nyc-cr1|192.0.2.1|100|3",  # bad kind
        "1262692800.0|A|no-slash-prefix|nyc-cr1|192.0.2.1|100|3",
        "1262692800.0|A|10.0.0.0/8|nyc-cr1|192.0.2.1|p|3",  # bad pref
    ],
    "tacacs": [
        "2010-01-05 10:25:00|nyc-cr1|op17",  # 3 fields
        "not a timestamp|nyc-cr1|op17|conf t",
    ],
    "layer1": [f"{raw}|adm-1|sonet_restoration|c-1" for raw in BAD_EPOCHS]
    + ["1262692800.0|adm-1|made_up_event|c-1"],
    "perfmon": [f"{raw}|a|b|delay_ms|3.5" for raw in BAD_EPOCHS]
    + [
        "1262692800.0|a|b|made_up_metric|3.5",
        "1262692800.0|a|b|delay_ms|fast",
    ],
    "netflow": [f"{raw}|agent|198.51.100.9|nyc-per1" for raw in BAD_EPOCHS]
    + ["1262692800.0|agent|198.51.100.9"],
    "workflow": [
        "2010-01-05 10:25:00|nyc-per1||ticket-1",  # empty activity
        "garbage-time|nyc-per1|provisioning.x|t",
    ],
    "cdn": [f"{raw}|srv1|load|0.5" for raw in BAD_EPOCHS]
    + [
        "1262692800.0|srv1|made_up_kind|x",
        "1262692800.0|srv1|load|heavy",
    ],
}

GOOD = {
    "syslog": render_syslog_line(T0, "nyc-per1", "US/Eastern", "LINK-3-UPDOWN",
                                 "Interface Serial1/0, changed state to down"),
    "snmp": render_snmp_row(T0, "nyc-per1", "cpu_util_5min", "", 72.0),
    "ospfmon": render_ospfmon_row(T0, "nyc-cr1--chi-cr1:10.0.0.0", 65535),
    "bgpmon": render_bgpmon_row(T0, "A", "10.0.0.0/8", "nyc-cr1"),
    "tacacs": render_tacacs_row(T0, "nyc-cr1", "op17", "conf t; shutdown"),
    "layer1": render_layer1_row(T0, "adm-1", "sonet_restoration", "c-1"),
    "perfmon": render_perfmon_row(T0, "nyc-per1", "chi-per1", "delay_ms", 31.5),
    "netflow": render_netflow_row(T0, "agent-bos", "198.51.100.9", "nyc-per1"),
    "workflow": render_workflow_row(T0, "nyc-per1", "provisioning.add_customer", "t-1"),
    "cdn": render_cdn_row(T0, "dc-nyc-srv1", "load", 0.93),
}


class TestMalformedPerSource:
    @pytest.mark.parametrize("source", sorted(MALFORMED))
    def test_rejects_counted_never_raised(self, collector, source):
        bad = MALFORMED[source]
        stats = collector.ingest(source, bad)
        assert stats.rejected == len(bad)
        assert stats.accepted == 0
        assert stats.reason_counts  # reasons were recorded
        assert sum(stats.reason_counts.values()) == len(bad)

    @pytest.mark.parametrize("source", sorted(MALFORMED))
    def test_good_line_survives_surrounding_garbage(self, collector, source):
        bad = MALFORMED[source]
        lines = bad[:1] + [GOOD[source]] + bad[1:]
        stats = collector.ingest(source, lines)
        assert stats.accepted == 1
        assert stats.rejected == len(bad)
        assert len(collector.store.table(source)) == 1
        assert stats.watermark == pytest.approx(T0, abs=5.0)

    @pytest.mark.parametrize("source", sorted(MALFORMED))
    def test_rejects_land_in_dead_letters(self, collector, source):
        bad = MALFORMED[source]
        collector.ingest(source, bad)
        assert len(collector.dead_letters.entries(source)) == len(bad)

    def test_nan_epochs_never_become_watermarks(self, collector):
        for source in ("ospfmon", "bgpmon", "perfmon", "netflow", "cdn"):
            stats = collector.ingest(source, [f"nan|{'x|' * 5}".rstrip("|")])
            assert stats.watermark is None or not math.isnan(stats.watermark)

    def test_unknown_devices_normalized_not_rejected(self, collector):
        """A router the registry has never seen still ingests (UTC)."""
        line = render_snmp_row(T0, "GHOST-ROUTER.example.NET", "cpu_util_5min", "", 5.0)
        stats = collector.ingest("snmp", [line])
        assert stats.rejected == 0
        (record,) = collector.store.table("snmp").scan()
        assert record["router"] == "ghost-router"


class TestParseStatsReasonCounter:
    def test_reasons_are_briefed_and_counted(self):
        stats = ParseStats()
        stats.reject("unknown metric 'junk-a'", line="l1")
        stats.reject("unknown metric 'junk-b'", line="l2")
        assert stats.reason_counts["unknown metric <…>"] == 2
        assert stats.last_error == "unknown metric 'junk-b' in 'l2'"

    def test_counter_is_bounded(self):
        stats = ParseStats()
        for i in range(MAX_REJECT_REASONS * 3):
            stats.reject(f"reason-{i}")  # every reason distinct
        assert len(stats.reason_counts) <= MAX_REJECT_REASONS

    def test_eviction_keeps_the_common_reasons(self):
        stats = ParseStats()
        for _ in range(50):
            stats.reject("very common failure")
        for i in range(MAX_REJECT_REASONS * 2):
            stats.reject(f"rare-{i}")
        top_reason, top_count = stats.top_reasons(1)[0]
        assert top_reason == "very common failure"
        assert top_count == 50

    def test_top_reasons_ordering(self):
        stats = ParseStats()
        for count, reason in ((3, "a"), (5, "b"), (1, "c")):
            for _ in range(count):
                stats.reject(reason)
        assert stats.top_reasons(2) == [("b", 5), ("a", 3)]

    def test_reject_ratio(self):
        stats = ParseStats()
        stats.note_insert(T0)
        stats.accepted = 3
        stats.reject("x")
        assert stats.reject_ratio == 0.25
