"""Tests for name/timestamp normalization."""

import pytest

from repro.collector.normalizer import (
    DeviceRegistry,
    NormalizationError,
    epoch_to_text,
    normalize_interface_name,
    normalize_router_name,
    parse_timestamp,
)


class TestRouterNames:
    def test_strips_domain_and_lowercases(self):
        assert normalize_router_name("NYC-PER1.ispnet.example") == "nyc-per1"

    def test_alias_applied(self):
        assert normalize_router_name("lo-192", {"lo-192": "nyc-per1"}) == "nyc-per1"

    def test_empty_rejected(self):
        with pytest.raises(NormalizationError):
            normalize_router_name("   ")

    def test_plain_name_passthrough(self):
        assert normalize_router_name("chi-cr2") == "chi-cr2"


class TestInterfaceNames:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("Serial1/0", "se1/0"),
            ("GigabitEthernet0/2", "gi0/2"),
            ("TenGigabitEthernet3/0", "te3/0"),
            ("se1/0", "se1/0"),
            ("POS2/1", "pos2/1"),
            ("Loopback0", "lo0"),
        ],
    )
    def test_long_forms_shortened(self, raw, expected):
        assert normalize_interface_name(raw) == expected

    def test_garbage_rejected(self):
        with pytest.raises(NormalizationError):
            normalize_interface_name("???")

    def test_missing_numbering_rejected(self):
        with pytest.raises(NormalizationError):
            normalize_interface_name("Serial")


class TestTimestamps:
    def test_utc_datetime(self):
        epoch = parse_timestamp("2010-01-05 12:00:00", "UTC")
        assert epoch_to_text(epoch) == "2010-01-05 12:00:00"

    def test_eastern_offset_applied(self):
        utc = parse_timestamp("2010-01-05 12:00:00", "UTC")
        eastern = parse_timestamp("2010-01-05 07:00:00", "US/Eastern")
        assert utc == eastern

    def test_pacific_vs_eastern_three_hours(self):
        eastern = parse_timestamp("2010-01-05 09:00:00", "US/Eastern")
        pacific = parse_timestamp("2010-01-05 06:00:00", "US/Pacific")
        assert eastern == pacific

    def test_syslog_style_gets_default_year(self):
        epoch = parse_timestamp("Jan  5 12:00:00", "UTC", default_year=2010)
        assert epoch_to_text(epoch) == "2010-01-05 12:00:00"

    def test_epoch_passthrough(self):
        assert parse_timestamp("1262692800.5") == 1262692800.5

    def test_iso_t_separator(self):
        assert parse_timestamp("2010-01-05T12:00:00", "UTC") == parse_timestamp(
            "2010-01-05 12:00:00", "UTC"
        )

    def test_garbage_rejected(self):
        with pytest.raises(NormalizationError):
            parse_timestamp("yesterday-ish")

    def test_unknown_zone_rejected(self):
        with pytest.raises(NormalizationError):
            parse_timestamp("2010-01-05 12:00:00", "Mars/OlympusMons")


class TestDeviceRegistry:
    def test_timezone_lookup(self):
        registry = DeviceRegistry()
        registry.register_device("NYC-PER1", "US/Eastern")
        assert registry.timezone_of("nyc-per1.ispnet.example") == "US/Eastern"

    def test_unknown_device_defaults_utc(self):
        assert DeviceRegistry().timezone_of("ghost") == "UTC"

    def test_alias_resolution_in_timestamp_parse(self):
        registry = DeviceRegistry()
        registry.register_device("nyc-per1", "US/Eastern")
        registry.register_alias("edge-tag-7", "nyc-per1")
        local = registry.parse_device_timestamp("2010-01-05 07:00:00", "edge-tag-7")
        assert local == parse_timestamp("2010-01-05 12:00:00", "UTC")
