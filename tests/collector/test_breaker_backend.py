"""Tests for the read-path circuit breaker around storage backends.

:class:`BreakerBackend` wraps any :class:`StorageBackend`; the fault
source is :class:`repro.service.faults.FlakyBackend`, so a "wedged
database" is a deterministic injection, not a real broken disk.  All
timing runs on a manual clock.
"""

import pytest

from repro.collector.backends import (
    BreakerBackend,
    MemoryBackend,
    StorageUnavailable,
    backend_name,
    breaker_backend,
    memory_backend,
)
from repro.collector.store import Record
from repro.service.faults import FlakyBackend
from repro.service.policy import is_transient


class ManualClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def guarded(failure_threshold=2, reset_timeout=10.0, clock=None):
    """A breaker-wrapped flaky memory backend plus its layers."""
    inner = MemoryBackend(("router",))
    flaky = FlakyBackend(inner)
    breaker = BreakerBackend(
        flaky,
        failure_threshold=failure_threshold,
        reset_timeout=reset_timeout,
        clock=clock or ManualClock(),
    )
    return breaker, flaky, inner


class TestBreakerBackend:
    def test_reads_delegate_while_healthy(self):
        breaker, flaky, inner = guarded()
        breaker.insert(Record.make(1.0, router="r1"))
        assert [r.timestamp for r in breaker.query(None, None, {})] == [1.0]
        assert breaker.scan() == inner.scan()
        assert breaker.distinct("router") == ["r1"]
        assert breaker.time_span() == (1.0, 1.0)
        assert len(breaker) == 1
        assert breaker.name == "memory+flaky+breaker"

    def test_failures_are_wrapped_with_the_cause_attached(self):
        breaker, flaky, _ = guarded()
        flaky.fail_reads(1, error=lambda: ConnectionError("disk gone"))
        with pytest.raises(StorageUnavailable) as excinfo:
            breaker.query(None, None, {})
        assert isinstance(excinfo.value.__cause__, ConnectionError)
        assert "query failed" in str(excinfo.value)

    def test_circuit_opens_after_threshold_and_fails_fast(self):
        breaker, flaky, _ = guarded(failure_threshold=2)
        flaky.fail_reads(2)
        for _ in range(2):
            with pytest.raises(StorageUnavailable):
                breaker.scan()
        # the inner backend is healthy again, but the circuit is open:
        # reads are refused without ever reaching it
        with pytest.raises(StorageUnavailable, match="circuit open"):
            breaker.scan()
        assert flaky.failed_reads == 2  # fail-fast never touched the inner
        assert breaker.breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker, flaky, _ = guarded(failure_threshold=2)
        flaky.fail_reads(1)
        with pytest.raises(StorageUnavailable):
            breaker.scan()
        breaker.scan()  # success: streak back to zero
        flaky.fail_reads(1)
        with pytest.raises(StorageUnavailable):
            breaker.scan()
        assert breaker.breaker.state() == "closed"

    def test_half_open_probe_success_closes_the_circuit(self):
        clock = ManualClock()
        breaker, flaky, _ = guarded(failure_threshold=1, reset_timeout=10.0,
                                    clock=clock)
        flaky.fail_reads(1)
        with pytest.raises(StorageUnavailable):
            breaker.scan()
        clock.advance(10.0)  # probe window
        assert breaker.scan() == []  # probe succeeds
        assert breaker.breaker.state() == "closed"
        breaker.scan()  # and stays closed

    def test_half_open_probe_failure_reopens(self):
        clock = ManualClock()
        breaker, flaky, _ = guarded(failure_threshold=1, reset_timeout=10.0,
                                    clock=clock)
        flaky.fail_reads(2)
        with pytest.raises(StorageUnavailable):
            breaker.scan()
        clock.advance(10.0)
        with pytest.raises(StorageUnavailable):  # the probe itself fails
            breaker.scan()
        with pytest.raises(StorageUnavailable, match="circuit open"):
            breaker.scan()  # timer restarted: fail-fast again
        assert breaker.breaker.times_opened == 1  # reopened, not re-counted

    def test_writes_pass_through_while_the_circuit_is_open(self):
        breaker, flaky, inner = guarded(failure_threshold=1)
        flaky.fail_reads(1)
        with pytest.raises(StorageUnavailable):
            breaker.scan()
        breaker.insert(Record.make(2.0, router="r2"))  # ingest unharmed
        assert len(inner) == 1

    def test_stats_surface_breaker_state(self):
        breaker, flaky, _ = guarded(failure_threshold=1)
        stats = breaker.stats()
        assert stats["backend"] == "memory+flaky+breaker"
        assert stats["breaker"] == "closed"
        assert stats["breaker_opened"] == 0
        flaky.fail_reads(1)
        with pytest.raises(StorageUnavailable):
            breaker.scan()
        stats = breaker.stats()
        assert stats["breaker"] == "open"
        assert stats["breaker_opened"] == 1

    def test_storage_unavailable_is_transient_for_the_retry_policy(self):
        # the whole point of the wrapper type: job-level retries treat a
        # broken read path as worth retrying, not as a rule bug
        assert is_transient(StorageUnavailable("wedged"))
        assert issubclass(StorageUnavailable, ConnectionError)


class TestBreakerFactory:
    def test_each_table_gets_an_independent_breaker(self):
        flakies = {}

        def flaky_factory(table_name, indexed_columns):
            flakies[table_name] = FlakyBackend(MemoryBackend(indexed_columns))
            return flakies[table_name]

        factory = breaker_backend(inner=flaky_factory, failure_threshold=1)
        ta = factory("ta", ("router",))
        tb = factory("tb", ("router",))
        flakies["ta"].fail_reads(1)
        with pytest.raises(StorageUnavailable):
            ta.scan()
        with pytest.raises(StorageUnavailable, match="circuit open"):
            ta.scan()
        assert tb.scan() == []  # a wedged table never opens a healthy one

    def test_factory_name_composes_with_the_inner_backend(self):
        factory = breaker_backend(inner=memory_backend())
        assert backend_name(factory) == "memory+breaker"
        assert factory("t", ()).name == "memory+breaker"


class TestFlakyBackend:
    def test_read_latency_injection_uses_the_given_sleeper(self):
        slept = []
        flaky = FlakyBackend(MemoryBackend(), sleep=slept.append)
        flaky.read_latency = 0.5
        flaky.scan()
        assert slept == [0.5]

    def test_fail_reads_budget_is_consumed_per_read(self):
        flaky = FlakyBackend(MemoryBackend())
        flaky.fail_reads(2)
        for _ in range(2):
            with pytest.raises(ConnectionError):
                flaky.scan()
        assert flaky.scan() == []  # budget spent: healthy again
        assert flaky.failed_reads == 2
        assert flaky.stats()["failed_reads"] == 2
