"""Storage backends: oracle equivalence, tail-merge behavior, observers.

The backend contract promises byte-identical results from
:class:`MemoryBackend` and :class:`SqliteBackend` — same records, same
``(timestamp, arrival)`` order — for any insert order, filter set and
open/closed window.  The property tests here hold both engines against
a brute-force reference simultaneously, mirroring PR 3's temporal-join
oracle.
"""

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.collector.backends import (
    ListView,
    MemoryBackend,
    SqliteBackend,
    backend_name,
    memory_backend,
    resolve_backend,
    set_default_backend,
    sqlite_backend,
)
from repro.collector.store import (
    DataStore,
    FootprintObserver,
    ObservedStore,
    ObservedTable,
    Record,
    StoreRead,
    Table,
    TraceObserver,
)
from repro.obs import Tracer


rows_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.sampled_from(["r1", "r2", "r3"]),
        st.sampled_from(["cpu", "mem", "util"]),
        st.integers(min_value=0, max_value=100),
    ),
    max_size=50,
)

window_strategy = st.tuples(
    st.one_of(
        st.none(), st.floats(min_value=-1e5, max_value=1.1e6, allow_nan=False)
    ),
    st.one_of(
        st.none(), st.floats(min_value=-1e5, max_value=1.1e6, allow_nan=False)
    ),
)

filter_strategy = st.tuples(
    st.one_of(st.none(), st.sampled_from(["r1", "r2", "r3", "ghost"])),
    st.one_of(st.none(), st.sampled_from(["cpu", "mem", "util", "ghost"])),
)


def _fill(backend, rows):
    for t, r, m, v in rows:
        backend.insert(Record.make(t, router=r, metric=m, value=v))


def _reference(rows, start, end, router, metric):
    """Brute force: stable-sort by timestamp keeps arrival order inside
    equal timestamps — the canonical (timestamp, arrival) order."""
    matched = [
        (t, i, Record.make(t, router=r, metric=m, value=v))
        for i, (t, r, m, v) in enumerate(rows)
        if (start is None or t >= start)
        and (end is None or t <= end)
        and (router is None or r == router)
        and (metric is None or m == metric)
    ]
    matched.sort(key=lambda entry: (entry[0], entry[1]))
    return [record for _t, _i, record in matched]


def _both_backends(tmp_path=None):
    # SqliteBackend with no path gets its own fresh temporary directory,
    # so every hypothesis example starts from an empty database
    path = None if tmp_path is None else str(tmp_path / "oracle.sqlite")
    return [
        MemoryBackend(("router", "metric")),
        SqliteBackend("t", ("router", "metric"), path=path),
    ]


class TestBackendOracle:
    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, window_strategy, filter_strategy)
    def test_query_matches_reference_on_both_backends(
        self, rows, window, filters
    ):
        start, end = window
        router, metric = filters
        expected = _reference(rows, start, end, router, metric)
        equals = {}
        if router is not None:
            equals["router"] = router
        if metric is not None:
            equals["metric"] = metric
        for backend in _both_backends():
            _fill(backend, rows)
            got = backend.query(start, end, equals)
            assert got == expected, backend.name
            backend.close()

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_scan_and_span_match_reference_on_both_backends(self, rows):
        expected = _reference(rows, None, None, None, None)
        timestamps = [t for t, _r, _m, _v in rows]
        for backend in _both_backends():
            _fill(backend, rows)
            assert backend.scan() == expected, backend.name
            assert len(backend) == len(rows)
            if rows:
                assert backend.time_span() == (min(timestamps), max(timestamps))
            else:
                assert backend.time_span() is None
            assert backend.distinct("router") == sorted(
                {r for _t, r, _m, _v in rows}
            )
            backend.close()

    def test_unindexed_filter_and_non_string_values(self, tmp_path):
        # equality on a non-indexed column, and non-string values on an
        # indexed column (stored NULL in SQL, matched in Python)
        for backend in _both_backends(tmp_path):
            backend.insert(Record.make(1.0, router=7, metric="cpu", value=1))
            backend.insert(Record.make(2.0, router="7", metric="cpu", value=2))
            backend.insert(Record.make(3.0, router="r1", metric="cpu", value=3))
            assert [r.get("value") for r in backend.query(None, None, {"router": 7})] == [1]
            assert [r.get("value") for r in backend.query(None, None, {"router": "7"})] == [2]
            assert [r.get("value") for r in backend.query(None, None, {"value": 3})] == [3]
            backend.close()


class TestMemoryTailBuffer:
    def test_out_of_order_lands_in_tail_then_merges(self):
        backend = MemoryBackend(("router",), tail_limit=4)
        for t in [10.0, 20.0, 30.0, 40.0, 50.0]:
            backend.insert(Record.make(t, router="r1"))
        for t in [5.0, 15.0, 25.0, 35.0]:
            backend.insert(Record.make(t, router="r1"))
        stats = backend.stats()
        assert stats["out_of_order"] == 4
        assert stats["tail"] == 4
        assert stats["merges"] == 0
        # queries see tail records before any merge happened
        assert [r.timestamp for r in backend.query(0.0, 16.0, {})] == [
            5.0,
            10.0,
            15.0,
        ]
        # one more late insert crosses the threshold and triggers a merge
        backend.insert(Record.make(45.0, router="r1"))
        stats = backend.stats()
        assert stats["merges"] == 1
        assert stats["tail"] == 0
        assert [r.timestamp for r in backend.scan()] == sorted(
            [10.0, 20.0, 30.0, 40.0, 50.0, 5.0, 15.0, 25.0, 35.0, 45.0]
        )
        # indexes are consistent after the merge
        assert len(backend.query(None, None, {"router": "r1"})) == 10

    def test_equal_timestamps_preserve_arrival_order(self):
        backend = MemoryBackend((), tail_limit=100)
        backend.insert(Record.make(10.0, seq="a"))
        backend.insert(Record.make(20.0, seq="b"))
        backend.insert(Record.make(10.0, seq="c"))  # late, ties with "a"
        assert [r.get("seq") for r in backend.scan()] == ["a", "c", "b"]

    def test_adaptive_threshold_floor(self):
        backend = MemoryBackend(())
        assert backend._tail_threshold() == 256


class TestSqliteBackend:
    def test_persistence_across_instances(self, tmp_path):
        path = str(tmp_path / "persist.sqlite")
        first = SqliteBackend("syslog", ("router",), path=path)
        first.insert(Record.make(10.0, router="r1", code="X"))
        first.insert(Record.make(20.0, router="r2", code="Y"))
        first.close()
        second = SqliteBackend("syslog", ("router",), path=path)
        assert len(second) == 2
        assert [r.get("code") for r in second.scan()] == ["X", "Y"]
        second.close()

    def test_records_round_trip_exactly(self, tmp_path):
        backend = SqliteBackend(
            "t", ("router",), path=str(tmp_path / "rt.sqlite")
        )
        original = Record.make(10.0, router="r1", value=1.5, flag=None, n=3)
        backend.insert(original)
        (got,) = backend.scan()
        assert got == original
        assert got.get("value") == 1.5
        backend.close()

    def test_stats_identify_backend_and_path(self, tmp_path):
        path = str(tmp_path / "stats.sqlite")
        backend = SqliteBackend("t", (), path=path)
        backend.insert(Record.make(10.0, a=1))
        backend.insert(Record.make(5.0, a=2))
        stats = backend.stats()
        assert stats["backend"] == "sqlite"
        assert stats["records"] == 2
        assert stats["out_of_order"] == 1
        assert stats["path"] == path
        backend.close()


class TestBackendSelection:
    def teardown_method(self):
        set_default_backend(None)
        os.environ.pop("GRCA_STORE_BACKEND", None)

    def test_resolve_names_and_factories(self):
        assert backend_name("memory") == "memory"
        assert backend_name("sqlite") == "sqlite"
        factory = memory_backend()
        assert resolve_backend(factory) is factory
        with pytest.raises(ValueError):
            resolve_backend("papyrus")

    def test_datastore_backend_is_config_only(self, tmp_path):
        store = DataStore(backend=sqlite_backend(directory=str(tmp_path)))
        store.insert("syslog", 10.0, router="r1", code="X")
        assert store.backend_name == "sqlite"
        assert store.table("syslog").stats()["backend"] == "sqlite"
        assert os.path.exists(os.path.join(str(tmp_path), "syslog.sqlite"))
        # default remains memory
        assert DataStore().backend_name == "memory"

    def test_set_default_backend_applies_to_new_stores(self, tmp_path):
        set_default_backend(sqlite_backend(directory=str(tmp_path)))
        try:
            store = DataStore()
            store.insert("snmp", 1.0, router="r1", metric="cpu", value=0.5)
            assert store.backend_name == "sqlite"
        finally:
            set_default_backend(None)
        assert DataStore().backend_name == "memory"

    def test_env_variable_selects_backend(self):
        os.environ["GRCA_STORE_BACKEND"] = "memory"
        try:
            assert DataStore().backend_name == "memory"
        finally:
            os.environ.pop("GRCA_STORE_BACKEND", None)

    def test_table_accepts_backend_instance(self):
        backend = MemoryBackend(("router",))
        table = Table("t", ("ignored",), backend=backend)
        table.insert_row(1.0, router="r1")
        assert table.indexed_columns == ("router",)
        assert len(backend) == 1


class TestColumnarSlices:
    """``query_columns`` must be an exact columnar restatement of
    ``query`` — same records, same order, timestamps aligned — on every
    backend, whether it serves a zero-copy view or materializes rows."""

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, window_strategy, filter_strategy)
    def test_columns_match_query_on_both_backends(
        self, rows, window, filters
    ):
        start, end = window
        router, metric = filters
        equals = {}
        if router is not None:
            equals["router"] = router
        if metric is not None:
            equals["metric"] = metric
        for backend in _both_backends():
            _fill(backend, rows)
            expected = backend.query(start, end, equals)
            columns = backend.query_columns(start, end, equals)
            assert list(columns.records) == expected, backend.name
            assert list(columns.timestamps) == [
                record.timestamp for record in expected
            ], backend.name
            assert len(columns) == len(expected)
            backend.close()

    def test_memory_unfiltered_slice_is_zero_copy(self):
        backend = MemoryBackend(("router",))
        for t in [10.0, 20.0, 30.0]:
            backend.insert(Record.make(t, router="r1"))
        columns = backend.query_columns(15.0, None, {})
        assert columns.zero_copy
        assert list(columns.timestamps) == [20.0, 30.0]

    def test_memory_tail_and_filters_fall_back_to_rows(self):
        backend = MemoryBackend(("router",), tail_limit=10)
        backend.insert(Record.make(20.0, router="r1"))
        backend.insert(Record.make(10.0, router="r2"))  # lands in tail
        by_tail = backend.query_columns(None, None, {})
        assert not by_tail.zero_copy
        assert list(by_tail.timestamps) == [10.0, 20.0]
        by_filter = backend.query_columns(None, None, {"router": "r1"})
        assert not by_filter.zero_copy
        assert list(by_filter.timestamps) == [20.0]

    def test_sqlite_columns_are_materialized(self, tmp_path):
        backend = SqliteBackend(
            "t", ("router",), path=str(tmp_path / "cols.sqlite")
        )
        backend.insert(Record.make(10.0, router="r1"))
        columns = backend.query_columns(None, None, {})
        assert not columns.zero_copy
        assert list(columns.timestamps) == [10.0]
        backend.close()

    def test_zero_copy_view_is_a_stable_snapshot(self):
        # in-order inserts append past the captured hi bound, and tail
        # merges replace the underlying lists wholesale — either way a
        # previously-taken view keeps serving exactly what it saw
        backend = MemoryBackend((), tail_limit=2)
        for t in [10.0, 20.0, 30.0]:
            backend.insert(Record.make(t))
        columns = backend.query_columns(None, None, {})
        assert columns.zero_copy and len(columns) == 3
        backend.insert(Record.make(40.0))          # in-order append
        backend.insert(Record.make(5.0))           # out of order
        backend.insert(Record.make(6.0))           # out of order
        backend.insert(Record.make(7.0))           # third late → merge
        assert backend.stats()["merges"] == 1
        assert list(columns.timestamps) == [10.0, 20.0, 30.0]

    def test_list_view_sequence_semantics(self):
        view = ListView([0, 1, 2, 3, 4, 5], 1, 5)  # -> [1, 2, 3, 4]
        assert len(view) == 4
        assert list(view) == [1, 2, 3, 4]
        assert view[0] == 1 and view[-1] == 4
        assert list(view[1:3]) == [2, 3]
        with pytest.raises(IndexError):
            view[4]

    def test_table_and_observer_see_columnar_reads(self):
        store = DataStore()
        store.insert("syslog", 10.0, router="r1", code="X")
        store.insert("syslog", 20.0, router="r2", code="Y")
        reads = set()
        tracer = Tracer()
        observed = ObservedStore(
            store, [TraceObserver(tracer), FootprintObserver(reads.add)]
        )
        with tracer.span("retrieve", label="t"):
            columns = observed.table("syslog").query_columns(5.0, 15.0)
        assert list(columns.timestamps) == [10.0]
        # the observer output is indistinguishable from a row query's
        assert reads == {("syslog", 5.0, 15.0)}
        span = tracer.root.children[0]
        assert span.kind == "store-query"
        assert span.meta == {"rows": 1, "window": [5.0, 15.0]}


class TestRecordFieldCache:
    def test_lookup_and_identity_semantics(self):
        record = Record.make(10.0, router="r1", value=3)
        assert record["router"] == "r1"
        assert record.get("missing", "d") == "d"
        with pytest.raises(KeyError):
            record["missing"]
        twin = Record.make(10.0, value=3, router="r1")
        assert record == twin and hash(record) == hash(twin)

    def test_pickle_round_trip_rebuilds_cache(self):
        record = Record.make(10.0, router="r1", value=3)
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert clone["router"] == "r1"
        assert clone.get("value") == 3
        # the cache never leaks into the pickle payload
        assert b"_by_name" not in pickle.dumps(record)


class TestReadObservers:
    def _store(self):
        store = DataStore()
        store.insert("syslog", 10.0, router="r1", code="X")
        store.insert("syslog", 20.0, router="r2", code="Y")
        return store

    def test_trace_observer_matches_legacy_span_shapes(self):
        store = self._store()
        tracer = Tracer()
        observed = ObservedStore(store, [TraceObserver(tracer)])
        with tracer.span("retrieve", label="t"):
            table = observed.table("syslog")
            table.query(5.0, 15.0, router="r1")
            list(table.scan())
            table.distinct("router")
        query_span, scan_span, distinct_span = tracer.root.children
        assert query_span.kind == "store-query"
        assert query_span.meta == {
            "rows": 1,
            "window": [5.0, 15.0],
            "filters": ["router"],
        }
        assert scan_span.meta == {"rows": 2, "window": [None, None]}
        assert distinct_span.meta == {"rows": 2, "column": "router"}

    def test_footprint_observer_widens_open_bounds(self):
        store = self._store()
        reads = set()
        observed = ObservedStore(store, [FootprintObserver(reads.add)])
        table = observed.table("syslog")
        table.query(5.0, 15.0)
        table.query(None, 15.0)
        list(table.scan())
        table.distinct("router")
        assert reads == {
            ("syslog", 5.0, 15.0),
            ("syslog", float("-inf"), 15.0),
            ("syslog", float("-inf"), float("inf")),
        }

    def test_observers_compose_on_one_read(self):
        store = self._store()
        tracer = Tracer()
        reads = set()
        observed = ObservedStore(
            store, [TraceObserver(tracer), FootprintObserver(reads.add)]
        )
        with tracer.span("retrieve", label="t"):
            rows = observed.table("syslog").query(0.0, 30.0)
        assert len(rows) == 2
        assert reads == {("syslog", 0.0, 30.0)}
        assert tracer.root.children[0].meta["rows"] == 2

    def test_footprint_recorded_even_when_read_raises(self):
        class BoomTable:
            name = "syslog"

            def query(self, start=None, end=None, **equals):
                raise RuntimeError("backend exploded mid-read")

        reads = set()
        observed = ObservedTable(BoomTable(), [FootprintObserver(reads.add)])
        with pytest.raises(RuntimeError):
            observed.query(0.0, 30.0)
        assert reads == {("syslog", 0.0, 30.0)}

    def test_observed_store_is_transparent(self):
        store = self._store()
        observed = ObservedStore(store, [])
        assert observed.revision == store.revision
        assert len(observed.table("syslog")) == 2
        assert observed.table("syslog").name == "syslog"

    def test_store_read_window_property(self):
        assert StoreRead("t", "query", 1.0, 2.0).window == (1.0, 2.0)
        assert StoreRead("t", "query").window == (
            float("-inf"),
            float("inf"),
        )
        assert StoreRead("t", "scan", 1.0, 2.0).window == (
            float("-inf"),
            float("inf"),
        )


class TestSqliteConcurrentWriters:
    """Regression: the shared sqlite connection needs its own lock.

    Before the backend serialized its connection access, concurrent
    writers interleaved execute/commit pairs on one connection —
    silently losing rows and/or raising ``cannot start a transaction
    within a transaction``.  Direct consumers (the incident store's
    revision log) hit the backend without the Table facade, so the
    backend itself must be safe.
    """

    N_THREADS = 8
    N_EACH = 400

    def test_concurrent_inserts_lose_nothing(self, tmp_path):
        import threading

        backend = SqliteBackend(
            "stress",
            ("router",),
            path=str(tmp_path / "stress.sqlite"),
        )
        errors = []
        started = threading.Barrier(self.N_THREADS)

        def write(index):
            try:
                started.wait(timeout=30)
                for i in range(self.N_EACH):
                    backend.insert(
                        Record.make(
                            float(index * self.N_EACH + i),
                            router=f"r{index}",
                            seq=i,
                        )
                    )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(index,))
            for index in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        total = self.N_THREADS * self.N_EACH
        assert len(backend) == total
        # every writer's rows are individually complete and queryable
        for index in range(self.N_THREADS):
            rows = backend.query(None, None, {"router": f"r{index}"})
            assert len(rows) == self.N_EACH
        backend.close()

    def test_queries_stay_consistent_during_writes(self, tmp_path):
        import threading

        backend = SqliteBackend(
            "stress2",
            ("router",),
            path=str(tmp_path / "stress2.sqlite"),
        )
        errors = []
        done = threading.Event()

        def write():
            try:
                for i in range(self.N_EACH):
                    backend.insert(Record.make(float(i), router="w", seq=i))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                done.set()

        def read():
            try:
                while not done.is_set():
                    rows = backend.query(None, None, {"router": "w"})
                    seqs = [r["seq"] for r in rows]
                    # writes are sequential: a snapshot is a prefix
                    assert seqs == sorted(seqs)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        writer = threading.Thread(target=write)
        readers = [threading.Thread(target=read) for _ in range(3)]
        writer.start()
        for reader in readers:
            reader.start()
        writer.join()
        for reader in readers:
            reader.join()

        assert errors == []
        assert len(backend) == self.N_EACH
        backend.close()
