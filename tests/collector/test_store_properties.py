"""Property-based tests: the indexed store vs a brute-force reference."""

from hypothesis import given, settings, strategies as st

from repro.collector.store import Record, Table


records = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.sampled_from(["r1", "r2", "r3"]),
        st.sampled_from(["cpu", "mem", "util"]),
        st.integers(min_value=0, max_value=100),
    ),
    max_size=60,
)

queries = st.tuples(
    st.floats(min_value=-1e5, max_value=1.1e6, allow_nan=False),
    st.floats(min_value=0, max_value=5e5, allow_nan=False),
    st.one_of(st.none(), st.sampled_from(["r1", "r2", "r3", "ghost"])),
    st.one_of(st.none(), st.sampled_from(["cpu", "mem", "util", "ghost"])),
)


def brute_force(rows, start, end, router, metric):
    matched = [
        Record.make(t, router=r, metric=m, value=v)
        for t, r, m, v in rows
        if start <= t <= end
        and (router is None or r == router)
        and (metric is None or m == metric)
    ]
    matched.sort(key=lambda record: record.timestamp)
    return matched


class TestStoreVsReference:
    @settings(max_examples=120, deadline=None)
    @given(records, queries)
    def test_query_matches_brute_force(self, rows, query):
        start, span, router, metric = query
        end = start + span
        table = Table("t", indexed_columns=("router", "metric"))
        for t, r, m, v in rows:
            table.insert_row(t, router=r, metric=m, value=v)
        filters = {}
        if router is not None:
            filters["router"] = router
        if metric is not None:
            filters["metric"] = metric
        got = table.query(start, end, **filters)
        expected = brute_force(rows, start, end, router, metric)
        assert sorted(got, key=lambda r: (r.timestamp, r.fields)) == sorted(
            expected, key=lambda r: (r.timestamp, r.fields)
        )

    @settings(max_examples=60, deadline=None)
    @given(records)
    def test_scan_always_time_sorted(self, rows):
        table = Table("t", indexed_columns=("router",))
        for t, r, m, v in rows:
            table.insert_row(t, router=r, metric=m, value=v)
        timestamps = [record.timestamp for record in table.scan()]
        assert timestamps == sorted(timestamps)

    @settings(max_examples=60, deadline=None)
    @given(records)
    def test_distinct_matches_reference(self, rows):
        table = Table("t", indexed_columns=("router",))
        for t, r, m, v in rows:
            table.insert_row(t, router=r, metric=m, value=v)
        assert table.distinct("router") == sorted({r for _t, r, _m, _v in rows})
