"""Gateway under chaos: worker death behind the HTTP front.

Two guarantees from the issue:

* a supervised shard losing a worker mid-job *recovers* — the HTTP
  client never notices beyond latency (failover is invisible at the
  API);
* a shard wedged beyond recovery takes down only *its* keyspace: its
  submissions turn 503, ``/v1/health`` turns degraded, and the other
  shard keeps answering 202/done the whole time.
"""

import threading
import time

import pytest

from repro.core.serialize import instance_to_dict
from repro.service import RcaService, RetryPolicy
from repro.service.faults import ServiceFaultInjector
from repro.service.http import RcaGateway, ShardRouter
from repro.service.supervisor import SupervisorConfig

from .conftest import SHARD0_ROUTER, SHARD1_ROUTER, JsonClient

pytestmark = pytest.mark.chaos


def chaos_shard(mini_app, **kwargs):
    """A shard whose executor runs through a fault injector."""
    kwargs.setdefault("workers", 1)
    kwargs.setdefault(
        "supervisor_config", SupervisorConfig(interval=0.02, hang_grace=0.2)
    )
    kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
    holder = {}
    injector = ServiceFaultInjector(
        lambda job, worker: holder["shard"]._execute(job, worker)
    )
    shard = RcaService(mini_app.store, executor=injector, **kwargs)
    holder["shard"] = shard
    shard.register_app("mini", mini_app)
    return shard, injector


def plain_shard(mini_app, **kwargs):
    kwargs.setdefault("workers", 2)
    shard = RcaService(mini_app.store, **kwargs)
    shard.register_app("mini", mini_app)
    return shard


def submit_diagnose(client, symptoms):
    return client.post(
        "/v1/jobs",
        {
            "kind": "diagnose",
            "app": "mini",
            "symptoms": [instance_to_dict(s) for s in symptoms],
        },
    )


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def symptoms_by_router(mini_app, seed_scene):
    out = {}
    for start, router_name in ((1000.0, SHARD1_ROUTER), (50_000.0, SHARD0_ROUTER)):
        times = seed_scene(mini_app.store, n=3, router=router_name, start=start)
        lo, hi = times[0] - 50.0, times[-1] + 50.0
        out[router_name] = [
            s for s in mini_app.find_symptoms(lo, hi)
            if s.location.parts == (router_name,)
        ]
    return out


class TestSupervisedRecoveryThroughHttp:
    def test_worker_crash_is_invisible_to_the_client(
        self, mini_app, seed_scene
    ):
        """Kill shard 0's only worker mid-job: the supervisor fails the
        job over to a replacement and the HTTP client just sees DONE."""
        symptoms = symptoms_by_router(mini_app, seed_scene)
        shard0, injector = chaos_shard(mini_app)
        shard1 = plain_shard(mini_app)
        router = ShardRouter([shard0, shard1])
        router.start()
        gw = RcaGateway(router).start()
        client = JsonClient(gw)
        try:
            injector.crash_when(times=1)
            status, _, doc = submit_diagnose(client, symptoms[SHARD0_ROUTER])
            assert status == 202
            done = client.wait_done(doc["job_id"], seconds=30)
            assert done["state"] == "done"
            assert len(done["diagnoses"]) == 3
            assert injector.fired("crash") == 1
            assert shard0.metrics.worker_crashes.value == 1
            # the pool healed; health is back to fully ok
            assert wait_for(
                lambda: shard0.pool.alive == shard0.pool.capacity
            )
            status, _, health = client.get("/v1/health")
            assert status == 200 and health["status"] == "ok"
        finally:
            gw.stop()


class TestWedgedShardIsolation:
    def test_dead_shard_fails_only_its_keyspace(self, mini_app, seed_scene):
        """Wedge shard 0 (all workers gone, no supervisor to heal it):
        its keyspace turns 503, health degrades, shard 1 keeps serving,
        and the HTTP front itself never goes down."""
        symptoms = symptoms_by_router(mini_app, seed_scene)
        shard0 = plain_shard(mini_app, workers=1, supervise=False)
        shard1 = plain_shard(mini_app)
        router = ShardRouter([shard0, shard1])
        router.start()
        gw = RcaGateway(router).start()
        client = JsonClient(gw)
        try:
            # healthy baseline across both keyspaces
            for name in (SHARD0_ROUTER, SHARD1_ROUTER):
                status, _, doc = submit_diagnose(client, symptoms[name])
                assert status == 202
                client.wait_done(doc["job_id"])

            shard0.pool.stop(timeout=5.0)  # the wedge: worker gone for good
            assert wait_for(lambda: not shard0.available)

            # the HTTP front still answers everything
            assert client.get("/v1/apps")[0] == 200
            assert client.get("/v1/metrics")[0] == 200

            # health: degraded platform, shard 0 pinpointed
            status, _, health = client.get("/v1/health")
            assert status == 503
            assert health["status"] == "degraded"
            rows = {row["shard"]: row for row in health["shards"]}
            assert rows[0]["available"] is False
            assert rows[1]["available"] is True

            # shard 0's keyspace: fast 503 with Retry-After, not a hang
            status, headers, doc = submit_diagnose(
                client, symptoms[SHARD0_ROUTER]
            )
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert "shard 0" in doc["error"]

            # shard 1's keyspace: business as usual
            status, _, doc = submit_diagnose(client, symptoms[SHARD1_ROUTER])
            assert status == 202
            assert client.wait_done(doc["job_id"])["state"] == "done"

            # results submitted before the wedge are still retrievable
            # from the dead shard's history
            dead_probe = client.get("/v1/jobs/0.1")
            assert dead_probe[0] == 200
        finally:
            gw.stop()

    def test_concurrent_traffic_during_wedge_sees_no_mixed_failures(
        self, mini_app, seed_scene
    ):
        """Clients hammering the healthy keyspace while the other shard
        dies observe only 202s — isolation holds under concurrency."""
        symptoms = symptoms_by_router(mini_app, seed_scene)
        shard0 = plain_shard(mini_app, workers=1, supervise=False)
        shard1 = plain_shard(mini_app)
        router = ShardRouter([shard0, shard1])
        router.start()
        gw = RcaGateway(router).start()
        try:
            statuses = []
            lock = threading.Lock()

            def hammer():
                client = JsonClient(gw)
                for _ in range(5):
                    status, _, doc = submit_diagnose(
                        client, symptoms[SHARD1_ROUTER]
                    )
                    with lock:
                        statuses.append(status)
                    if status == 202:
                        client.wait_done(doc["job_id"])

            threads = [
                threading.Thread(target=hammer, daemon=True) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            shard0.pool.stop(timeout=5.0)  # wedge mid-hammer
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive()
            assert statuses and set(statuses) == {202}
        finally:
            gw.stop()
