"""ShardRouter: deterministic routing, qualified ids, isolation,
aggregated health and metrics."""

import zlib

import pytest

from repro.service import RcaService
from repro.service.http import ShardRouter, ShardUnavailable, build_shards
from repro.service.queue import JobState

from .conftest import SHARD0_ROUTER, SHARD1_ROUTER


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter([])

    def test_build_shards_validates_count(self, mini_app):
        with pytest.raises(ValueError, match="at least 1"):
            build_shards(mini_app.store, shards=0)

    def test_build_shards_are_independent_services(self, mini_app):
        shards = build_shards(mini_app.store, shards=3, workers=1)
        assert len(shards) == 3
        assert all(isinstance(s, RcaService) for s in shards)
        assert len({id(s.queue) for s in shards}) == 3
        assert len({id(s.pool) for s in shards}) == 3
        assert all(s.store is mini_app.store for s in shards)
        for shard in shards:
            shard.shutdown(graceful=False, timeout=5.0)


class TestRouting:
    def test_shard_for_is_stable_crc32(self, router2):
        for key in ("alpha", "beta", "mini|s|nyc-per1"):
            expected = zlib.crc32(key.encode()) % 2
            assert router2.shard_for(key) == expected
            assert router2.shard_for(key) == expected  # deterministic

    def test_distinct_keys_reach_distinct_shards(
        self, router2, seeded_symptoms
    ):
        id1, _ = router2.submit_diagnosis("mini", seeded_symptoms[SHARD1_ROUTER])
        id0, _ = router2.submit_diagnosis("mini", seeded_symptoms[SHARD0_ROUTER])
        assert router2.resolve(id1)[0] == 1
        assert router2.resolve(id0)[0] == 0

    def test_same_key_always_same_shard(self, router2, seeded_symptoms):
        symptoms = seeded_symptoms[SHARD0_ROUTER]
        shards = {
            router2.resolve(router2.submit_diagnosis("mini", [s])[0])[0]
            for s in symptoms
        }
        assert shards == {0}  # same router location => same shard

    def test_explicit_key_overrides_default(self, router2, seeded_symptoms):
        symptoms = seeded_symptoms[SHARD0_ROUTER]
        key = "pin-me"
        pinned = router2.shard_for(key)
        job_id, _ = router2.submit_diagnosis("mini", symptoms, key=key)
        assert router2.resolve(job_id)[0] == pinned

    def test_empty_symptom_batch_rejected(self, router2):
        with pytest.raises(ValueError, match="at least one symptom"):
            router2.submit_diagnosis("mini", [])

    def test_run_key_routes_by_window(self, router2):
        key = ShardRouter.run_key("mini", 0.0, 100.0)
        job_id, job = router2.submit_run("mini", 0.0, 100.0)
        assert router2.resolve(job_id)[0] == router2.shard_for(key)
        assert job.wait(timeout=30.0)


class TestQualifiedIds:
    def test_qualify_resolve_roundtrip(self, router2, seeded_symptoms):
        job_id, job = router2.submit_diagnosis(
            "mini", seeded_symptoms[SHARD1_ROUTER]
        )
        shard, local = router2.resolve(job_id)
        assert job_id == f"{shard}.{local}"
        assert local == job.job_id
        assert router2.job(job_id) is job

    @pytest.mark.parametrize(
        "bad", ["", "7", "x.1", "1.x", "1.2.3x", "one.two"]
    )
    def test_malformed_ids_raise_keyerror(self, router2, bad):
        with pytest.raises(KeyError):
            router2.resolve(bad)

    def test_out_of_range_shard_raises_keyerror(self, router2):
        with pytest.raises(KeyError, match="names shard 5"):
            router2.resolve("5.1")

    def test_unknown_local_id_raises_keyerror(self, router2):
        with pytest.raises(KeyError, match="unknown job id"):
            router2.job("0.999")

    def test_poll_and_cancel_route_by_id(self, router2, seeded_symptoms):
        job_id, job = router2.submit_diagnosis(
            "mini", seeded_symptoms[SHARD0_ROUTER]
        )
        assert job.wait(timeout=30.0)
        assert router2.poll(job_id) is JobState.DONE
        assert router2.cancel(job_id) is False  # already terminal


class TestCorrectness:
    def test_routed_diagnoses_match_direct_engine(
        self, router2, mini_app, seeded_symptoms
    ):
        """The gateway's raison d'être: sharding changes nothing about
        the answers."""
        for symptoms in seeded_symptoms.values():
            direct = mini_app.engine.diagnose_all(symptoms)
            _, job = router2.submit_diagnosis("mini", symptoms)
            assert job.outcome(timeout=30.0) == direct


class TestIsolation:
    def test_wedged_shard_fails_only_its_keyspace(
        self, router2, seeded_symptoms
    ):
        router2.shards[0].shutdown(graceful=False, timeout=5.0)
        with pytest.raises(ShardUnavailable) as excinfo:
            router2.submit_diagnosis("mini", seeded_symptoms[SHARD0_ROUTER])
        assert excinfo.value.shard == 0
        # the other shard's keyspace is untouched
        _, job = router2.submit_diagnosis("mini", seeded_symptoms[SHARD1_ROUTER])
        assert job.outcome(timeout=30.0)

    def test_unstarted_shard_is_unavailable(self, mini_app):
        router = ShardRouter(build_shards(mini_app.store, shards=1, workers=1))
        router.register_app("mini", mini_app)
        try:
            with pytest.raises(ShardUnavailable):
                router.submit_run("mini", 0.0, 1.0)
        finally:
            router.shutdown(graceful=False, timeout=5.0)


class TestAggregation:
    def test_health_ok_when_all_shards_ok(self, router2):
        health = router2.health()
        assert health["status"] == "ok"
        assert [row["shard"] for row in health["shards"]] == [0, 1]
        assert all(row["available"] for row in health["shards"])

    def test_health_degrades_when_one_shard_down(self, router2):
        router2.shards[1].shutdown(graceful=False, timeout=5.0)
        health = router2.health()
        assert health["status"] == "degraded"
        rows = {row["shard"]: row for row in health["shards"]}
        assert rows[0]["available"] and not rows[1]["available"]

    def test_metrics_aggregate_sums_counters(self, router2, seeded_symptoms):
        for symptoms in seeded_symptoms.values():
            _, job = router2.submit_diagnosis("mini", symptoms)
            assert job.wait(timeout=30.0)
        metrics = router2.metrics()
        assert len(metrics["shards"]) == 2
        per_shard = [s["jobs"]["submitted"] for s in metrics["shards"]]
        assert per_shard == [1, 1]  # one batch per shard, by construction
        assert metrics["aggregate"]["jobs"]["submitted"] == 2
        assert metrics["aggregate"]["symptoms_diagnosed"] == 6
        assert metrics["aggregate"]["shards"] == 2

    def test_aggregate_recomputes_hit_rate(self, router2, seeded_symptoms):
        symptoms = seeded_symptoms[SHARD0_ROUTER]
        for _ in range(2):  # second submit is a pure cache hit
            _, job = router2.submit_diagnosis("mini", symptoms)
            assert job.wait(timeout=30.0)
        merged = router2.metrics()["aggregate"]["cache"]
        lookups = merged["hits"] + merged["misses"]
        assert merged["hit_rate"] == pytest.approx(merged["hits"] / lookups)

    def test_apps_and_register_fan_out(self, router2):
        assert router2.apps() == ["mini"]
        assert all(s.apps() == ["mini"] for s in router2.shards)

    def test_drain_covers_all_shards(self, router2, seeded_symptoms):
        for symptoms in seeded_symptoms.values():
            router2.submit_diagnosis("mini", symptoms)
        assert router2.drain(timeout=30.0)
        for shard in router2.shards:
            assert len(shard.queue) == 0
