"""Fixtures for the HTTP gateway tests: a 2-shard router over the mini
app, the gateway on an ephemeral port, and a small JSON HTTP client.

Router names ``nyc-per1`` and ``chi-per1`` are load-bearing: with two
shards their diagnosis routing keys hash (crc32) to shard 1 and shard 0
respectively, giving every test a deterministic cross-shard split.
"""

import http.client
import json

import pytest

from repro.service.http import RcaGateway, ShardRouter, build_shards

#: topology routers whose mini-app routing keys land on distinct shards
#: (see module docstring); shard index under a 2-shard router
SHARD1_ROUTER = "nyc-per1"
SHARD0_ROUTER = "chi-per1"


@pytest.fixture
def router2(mini_app):
    """Two started shards (2 workers each) over the mini app's store."""
    router = ShardRouter(build_shards(mini_app.store, shards=2, workers=2))
    router.register_app("mini", mini_app)
    router.start()
    yield router
    router.shutdown(graceful=False, timeout=5.0)


@pytest.fixture
def gateway(router2):
    gw = RcaGateway(router2).start()
    yield gw
    gw.stop(shutdown_shards=False)  # router2's fixture owns the shards


class JsonClient:
    """One-request-per-connection JSON client against a gateway."""

    def __init__(self, gateway):
        self.host = gateway.host
        self.port = gateway.port

    def request(self, method, path, body=None):
        """Returns ``(status, headers-dict, decoded-json-or-None)``."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            payload = json.dumps(body) if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            doc = json.loads(raw) if raw else None
            return response.status, dict(response.getheaders()), doc
        finally:
            conn.close()

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body):
        return self.request("POST", path, body)

    def delete(self, path):
        return self.request("DELETE", path)

    def wait_done(self, job_id, seconds=30):
        status, _, doc = self.get(f"/v1/jobs/{job_id}?wait={seconds}")
        assert status == 200
        assert doc["finished"], f"job {job_id} not finished: {doc}"
        return doc


@pytest.fixture
def client(gateway):
    return JsonClient(gateway)


@pytest.fixture
def seeded_symptoms(mini_app, seed_scene):
    """Symptom batches at the two shard-distinct routers.

    Returns ``{router_name: [EventInstance, ...]}`` with three symptoms
    (causes a / b / unexplained) per router.
    """
    times = {}
    times[SHARD1_ROUTER] = seed_scene(mini_app.store, n=3, router=SHARD1_ROUTER)
    times[SHARD0_ROUTER] = seed_scene(
        mini_app.store, n=3, router=SHARD0_ROUTER, start=50_000.0
    )
    out = {}
    for router_name, ts in times.items():
        lo, hi = ts[0] - 50.0, ts[-1] + 50.0
        out[router_name] = [
            s for s in mini_app.find_symptoms(lo, hi)
            if s.location.parts == (router_name,)
        ]
        assert len(out[router_name]) == 3
    return out
