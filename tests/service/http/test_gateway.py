"""RcaGateway end-to-end over real sockets: the /v1 API contract,
overload semantics, and HTTP plumbing (keep-alive, ephemeral ports)."""

import http.client
import json
import threading

import pytest

from repro.core.engine import Diagnosis
from repro.core.serialize import instance_to_dict
from repro.service import RcaService
from repro.service.http import RcaGateway, ShardRouter
from repro.service.policy import ServiceHealth

from .conftest import SHARD0_ROUTER, SHARD1_ROUTER


def submit_diagnose(client, symptoms, **extra):
    body = {
        "kind": "diagnose",
        "app": "mini",
        "symptoms": [instance_to_dict(s) for s in symptoms],
    }
    body.update(extra)
    return client.post("/v1/jobs", body)


class TestDiscovery:
    def test_apps(self, client):
        status, _, doc = client.get("/v1/apps")
        assert status == 200
        assert doc == {"apps": ["mini"]}

    def test_health_ok_is_200(self, client):
        status, _, doc = client.get("/v1/health")
        assert status == 200
        assert doc["status"] == "ok"
        assert len(doc["shards"]) == 2

    def test_metrics_shape(self, client):
        status, _, doc = client.get("/v1/metrics")
        assert status == 200
        assert len(doc["shards"]) == 2
        assert "aggregate" in doc and "jobs" in doc["aggregate"]

    def test_ephemeral_port_bound(self, gateway):
        assert gateway.port > 0
        assert gateway.url.startswith("http://127.0.0.1:")


class TestJobLifecycle:
    def test_submit_poll_wait_done(self, client, mini_app, seeded_symptoms):
        symptoms = seeded_symptoms[SHARD1_ROUTER]
        status, _, doc = submit_diagnose(client, symptoms)
        assert status == 202
        assert doc["shard"] == 1
        job_id = doc["job_id"]
        assert job_id.startswith("1.")
        done = client.wait_done(job_id)
        assert done["state"] == "done"
        assert done["app"] == "mini"
        # diagnoses over the wire decode to exactly the direct answers
        direct = mini_app.engine.diagnose_all(symptoms)
        decoded = [Diagnosis.from_json(d) for d in done["diagnoses"]]
        assert decoded == direct

    def test_distinct_keyspaces_reach_distinct_shards(
        self, client, seeded_symptoms
    ):
        shards = set()
        for symptoms in seeded_symptoms.values():
            status, _, doc = submit_diagnose(client, symptoms)
            assert status == 202
            shards.add(doc["shard"])
            client.wait_done(doc["job_id"])
        assert shards == {0, 1}

    def test_run_job(self, client, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=3)
        lo, hi = times[0] - 50.0, times[-1] + 50.0
        status, _, doc = client.post(
            "/v1/jobs", {"kind": "run", "app": "mini", "start": lo, "end": hi}
        )
        assert status == 202
        done = client.wait_done(doc["job_id"])
        assert len(done["diagnoses"]) == 3

    def test_poll_without_wait_returns_current_state(
        self, client, seeded_symptoms
    ):
        status, _, doc = submit_diagnose(
            client, seeded_symptoms[SHARD0_ROUTER]
        )
        status, _, doc = client.get(f"/v1/jobs/{doc['job_id']}")
        assert status == 200
        assert doc["state"] in ("pending", "running", "done")
        assert "diagnoses" not in doc or doc["state"] == "done"

    def test_cancel_terminal_job_reports_not_requested(
        self, client, seeded_symptoms
    ):
        _, _, doc = submit_diagnose(client, seeded_symptoms[SHARD0_ROUTER])
        client.wait_done(doc["job_id"])
        status, _, cancelled = client.delete(f"/v1/jobs/{doc['job_id']}")
        assert status == 202
        assert cancelled["cancel_requested"] is False
        assert cancelled["state"] == "done"  # terminal state untouched


class TestErrorMapping:
    def test_unknown_app_is_404(self, client):
        status, _, doc = client.post(
            "/v1/jobs", {"kind": "run", "app": "ghost", "start": 0, "end": 1}
        )
        assert status == 404
        assert "ghost" in doc["error"]

    def test_unknown_job_is_404(self, client):
        for job_id in ("0.999", "9.1", "junk"):
            assert client.get(f"/v1/jobs/{job_id}")[0] == 404
            assert client.delete(f"/v1/jobs/{job_id}")[0] == 404

    def test_missing_body_is_400(self, client):
        assert client.post("/v1/jobs", None)[0] == 400

    def test_invalid_json_is_400(self, gateway):
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            conn.request("POST", "/v1/jobs", body="{not json",
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_bad_fields_are_400(self, client):
        bad_bodies = [
            {"kind": "diagnose", "app": "mini"},               # no symptoms
            {"kind": "diagnose", "app": "mini", "symptoms": []},
            {"kind": "diagnose", "app": "mini", "symptoms": [{"x": 1}]},
            {"kind": "run", "app": "mini"},                    # no window
            {"kind": "run", "app": "mini", "start": "a", "end": 1},
            {"kind": "wat", "app": "mini"},
            {"kind": "run", "app": 7, "start": 0, "end": 1},
            {"kind": "run", "app": "mini", "start": 0, "end": 1, "key": 3},
        ]
        for body in bad_bodies:
            assert client.post("/v1/jobs", body)[0] == 400, body

    def test_invalid_wait_is_400(self, client, seeded_symptoms):
        _, _, doc = submit_diagnose(client, seeded_symptoms[SHARD0_ROUTER])
        assert client.get(f"/v1/jobs/{doc['job_id']}?wait=soon")[0] == 400

    def test_unknown_resource_is_404(self, client):
        assert client.get("/v1/nope")[0] == 404
        assert client.get("/v2/jobs")[0] == 404
        assert client.get("/")[0] == 404

    def test_wrong_method_is_405(self, client):
        assert client.delete("/v1/apps")[0] == 405
        assert client.request("POST", "/v1/health", {})[0] == 405
        assert client.get("/v1/jobs")[0] == 405

    def test_unimplemented_verb_is_json_405_not_501(self, client):
        """PUT/PATCH have no route at all; clients still get the one
        JSON error shape, not the stdlib's bare 501 page."""
        for method in ("PUT", "PATCH"):
            status, _, doc = client.request(method, "/v1/apps", {"x": 1})
            assert status == 405, method
            assert "unsupported" in doc["error"], doc


class TestOverload:
    def test_queue_full_is_429_with_retry_after(self, mini_app, seed_scene):
        """Saturate a 1-worker/depth-1 shard: the worker is parked on a
        blocked job, one job fills the queue, the next submit gets 429."""
        release = threading.Event()

        class Gate:
            def __init__(self, inner):
                self.inner = inner
                self.engine = inner.engine

            def find_symptoms(self, start, end):
                assert release.wait(timeout=30.0)
                return []

        service = RcaService(store=mini_app.store, workers=1, queue_depth=1)
        service.register_app("mini", Gate(mini_app))
        service.start()
        router = ShardRouter([service])
        gw = RcaGateway(router).start()
        try:
            from .conftest import JsonClient

            client = JsonClient(gw)
            run = {"kind": "run", "app": "mini", "start": 0.0, "end": 1.0}
            assert client.post("/v1/jobs", dict(run, key="k1"))[0] == 202
            assert client.post("/v1/jobs", dict(run, key="k2"))[0] == 202
            status, headers, doc = client.post("/v1/jobs", dict(run, key="k3"))
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert "refused" in doc["error"]
        finally:
            release.set()
            gw.stop()

    def test_brownout_shed_is_503_with_retry_after(
        self, client, router2, seeded_symptoms
    ):
        """A degraded shard sheds periodic-priority work with 503; the
        other shard and interactive work keep flowing."""
        router2.shards[0].brownout._transition(ServiceHealth.DEGRADED, 0.0)
        symptoms = seeded_symptoms[SHARD0_ROUTER]
        status, headers, doc = submit_diagnose(
            client, symptoms, priority=20  # periodic band: shed threshold
        )
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert "shed" in doc["error"]
        # interactive work on the same degraded shard still admitted
        assert submit_diagnose(client, symptoms)[0] == 202
        # the healthy shard is untouched even at periodic priority
        ok, _, _ = submit_diagnose(
            client, seeded_symptoms[SHARD1_ROUTER], priority=20
        )
        assert ok == 202

    def test_degraded_health_is_503(self, client, router2):
        router2.shards[0].brownout._transition(ServiceHealth.DEGRADED, 0.0)
        status, _, doc = client.get("/v1/health")
        assert status == 503
        assert doc["status"] == "degraded"
        assert doc["shards"][0]["state"] == "degraded"


class TestHttpPlumbing:
    def test_keep_alive_serves_multiple_requests(self, gateway):
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            for _ in range(3):  # same socket, three requests
                conn.request("GET", "/v1/apps")
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["apps"] == ["mini"]
        finally:
            conn.close()

    def test_concurrent_longpoll_does_not_block_submits(
        self, client, seeded_symptoms
    ):
        """A long-poll on one connection must not serialize the server:
        submits on other connections complete while it waits."""
        _, _, doc = submit_diagnose(client, seeded_symptoms[SHARD1_ROUTER])
        waiter_done = threading.Event()
        results = {}

        def longpoll():
            results["doc"] = client.wait_done(doc["job_id"], seconds=20)
            waiter_done.set()

        thread = threading.Thread(target=longpoll, daemon=True)
        thread.start()
        status, _, _ = submit_diagnose(client, seeded_symptoms[SHARD0_ROUTER])
        assert status == 202
        assert waiter_done.wait(timeout=30.0)
        assert results["doc"]["state"] == "done"

    def test_context_manager_stops_cleanly(self, mini_app):
        service = RcaService(store=mini_app.store, workers=1)
        service.register_app("mini", mini_app)
        service.start()
        with RcaGateway(ShardRouter([service])) as gw:
            client_status = http.client.HTTPConnection(
                gw.host, gw.port, timeout=30
            )
            client_status.request("GET", "/v1/health")
            assert client_status.getresponse().status == 200
            client_status.close()
        # __exit__ shut the shards down too
        assert not service.available
