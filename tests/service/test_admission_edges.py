"""Admission-control edge cases: queue-full during drain, cancelling
terminal jobs, deadline-vs-completion races, and the submit/poll
visibility guarantee under concurrency."""

import threading

import pytest

from repro.service.api import RcaService
from repro.service.queue import (
    TERMINAL_STATES,
    Job,
    JobState,
    QueueFull,
)


class Gate:
    """App whose find_symptoms blocks until released (per-call events)."""

    def __init__(self, inner):
        self.inner = inner
        self.engine = inner.engine
        self.release = threading.Event()
        self.entered = threading.Event()

    def find_symptoms(self, start, end):
        self.entered.set()
        assert self.release.wait(timeout=30.0), "test never released the gate"
        return self.inner.find_symptoms(start, end)


class TestQueueFullDuringDrain:
    def test_submissions_rejected_while_drain_waits(self, mini_app):
        """A drain in progress must not open the queue: submissions
        beyond depth keep getting QueueFull until capacity frees."""
        gate = Gate(mini_app)
        service = RcaService(store=mini_app.store, workers=1, queue_depth=1)
        service.register_app("mini", gate)
        service.start()
        try:
            running = service.submit_run("mini", 0.0, 1.0)
            assert gate.entered.wait(timeout=10.0)  # worker parked on job 1
            queued = service.submit_run("mini", 0.0, 1.0)  # fills depth 1

            drain_done = threading.Event()
            drained = {}

            def drain():
                drained["ok"] = service.drain(timeout=30.0)
                drain_done.set()

            thread = threading.Thread(target=drain, daemon=True)
            thread.start()
            assert not drain_done.wait(timeout=0.2)  # drain genuinely waiting

            # admission control still enforced mid-drain
            with pytest.raises(QueueFull):
                service.submit_run("mini", 0.0, 1.0)
            assert service.metrics.jobs_rejected.value == 1

            gate.release.set()
            assert drain_done.wait(timeout=30.0)
            assert drained["ok"]
            assert running.state is JobState.DONE
            assert queued.state is JobState.DONE
            # with capacity free again, admission reopens
            assert service.submit_run("mini", 0.0, 1.0).wait(timeout=30.0)
        finally:
            gate.release.set()
            service.shutdown(graceful=False, timeout=5.0)


class TestCancelTerminal:
    def test_cancel_done_job_is_a_soft_no(self, mini_app, seed_scene):
        seed_scene(mini_app.store, n=1)
        service = RcaService(store=mini_app.store, workers=1)
        service.register_app("mini", mini_app)
        service.start()
        try:
            job = service.submit_run("mini", 0.0, 10_000.0)
            assert job.wait(timeout=30.0)
            assert job.state is JobState.DONE
            assert service.cancel_job(job.job_id) is False
            assert job.state is JobState.DONE  # untouched
            assert job.result is not None
        finally:
            service.shutdown(graceful=False, timeout=5.0)

    def test_cancel_unknown_id_raises(self, mini_app):
        service = RcaService(store=mini_app.store, workers=1)
        try:
            with pytest.raises(KeyError, match="unknown job id"):
                service.cancel_job(424242)
        finally:
            service.shutdown(graceful=False, timeout=5.0)

    def test_double_cancel_is_stable(self, mini_app):
        gate = Gate(mini_app)
        service = RcaService(store=mini_app.store, workers=1)
        service.register_app("mini", gate)
        service.start()
        try:
            job = service.submit_run("mini", 0.0, 1.0)
            assert gate.entered.wait(timeout=10.0)
            assert service.cancel_job(job.job_id) is True
            gate.release.set()
            assert job.wait(timeout=30.0)
            first = job.state
            assert first in TERMINAL_STATES
            # cancelling after terminal: soft no, state frozen
            assert service.cancel_job(job.job_id) is False
            assert job.state is first
        finally:
            gate.release.set()
            service.shutdown(graceful=False, timeout=5.0)


class TestTerminalTransitionRace:
    """The first terminal transition wins — deadline expiry racing
    completion must never produce a state that flips afterwards."""

    def test_mark_done_beats_late_timeout(self):
        job = Job(kind="diagnose", app="x", payload=[])
        assert job.mark_done(["result"], now=1.0)
        assert not job.mark_timed_out(TimeoutError("late"), now=2.0)
        assert job.state is JobState.DONE
        assert job.error is None
        assert job.result == ["result"]

    def test_mark_timeout_beats_late_done(self):
        job = Job(kind="diagnose", app="x", payload=[])
        assert job.mark_timed_out(TimeoutError("deadline"), now=1.0)
        assert not job.mark_done(["late result"], now=2.0)
        assert job.state is JobState.TIMED_OUT
        assert job.result is None

    def test_every_pairwise_race_is_first_wins(self):
        markers = {
            JobState.DONE: lambda job: job.mark_done([], now=1.0),
            JobState.FAILED: lambda job: job.mark_failed(ValueError("x"), now=1.0),
            JobState.CANCELLED: lambda job: job.mark_cancelled(),
            JobState.TIMED_OUT: lambda job: job.mark_timed_out(
                TimeoutError("x"), now=1.0
            ),
            JobState.QUARANTINED: lambda job: job.mark_quarantined(
                RuntimeError("x"), now=1.0
            ),
        }
        for first_state, first in markers.items():
            for second_state, second in markers.items():
                job = Job(kind="diagnose", app="x", payload=[])
                assert first(job) is True
                assert second(job) is False
                assert job.state is first_state, (first_state, second_state)

    def test_deadline_racing_completion_settles_once(self, mini_app, seed_scene):
        """Jobs whose deadline is of the same order as their execution
        time: each must land in exactly one stable terminal state
        (DONE or TIMED_OUT), observed identically forever after."""
        seed_scene(mini_app.store, n=2)
        service = RcaService(store=mini_app.store, workers=2)
        service.register_app("mini", mini_app)
        service.start()
        try:
            jobs = [
                service.submit_run("mini", 0.0, 10_000.0, deadline=0.001 * k)
                for k in range(8)
            ]
            observed = {}
            for job in jobs:
                assert job.wait(timeout=30.0)
                observed[job.job_id] = job.state
                assert job.state in (JobState.DONE, JobState.TIMED_OUT)
            for _ in range(50):  # terminal state never flips
                for job in jobs:
                    assert job.state is observed[job.job_id]
        finally:
            service.shutdown(graceful=False, timeout=5.0)


class TestSubmitPollHammer:
    def test_issued_ids_are_always_pollable(self, mini_app, seed_scene):
        """Concurrent submitters + pollers: every id a submitter got
        back must poll without KeyError, immediately and forever."""
        seed_scene(mini_app.store, n=2)
        service = RcaService(
            store=mini_app.store, workers=2, queue_depth=64, job_history=10_000
        )
        service.register_app("mini", mini_app)
        service.start()
        issued = []
        issued_lock = threading.Lock()
        errors = []
        stop = threading.Event()

        def submitter():
            for _ in range(30):
                try:
                    job = service.submit_run("mini", 0.0, 10_000.0)
                except QueueFull:
                    continue
                with issued_lock:
                    issued.append(job.job_id)
                try:
                    service.poll(job.job_id)  # immediately visible
                except KeyError as exc:
                    errors.append(("immediate", job.job_id, exc))

        def poller():
            while not stop.is_set():
                with issued_lock:
                    ids = list(issued)
                for job_id in ids:
                    try:
                        state = service.poll(job_id)
                    except KeyError as exc:
                        errors.append(("poll", job_id, exc))
                        continue
                    assert isinstance(state, JobState)

        try:
            threads = [
                threading.Thread(target=submitter, daemon=True)
                for _ in range(4)
            ] + [
                threading.Thread(target=poller, daemon=True) for _ in range(2)
            ]
            for thread in threads[4:]:
                thread.start()
            for thread in threads[:4]:
                thread.start()
            for thread in threads[:4]:
                thread.join(timeout=60.0)
                assert not thread.is_alive()
            stop.set()
            for thread in threads[4:]:
                thread.join(timeout=10.0)
            assert not errors, errors[:5]
            assert issued  # the hammer actually hammered
            assert service.drain(timeout=60.0)
        finally:
            stop.set()
            service.shutdown(graceful=False, timeout=5.0)

    def test_rejected_submission_leaves_no_ghost_job(self, mini_app):
        gate = Gate(mini_app)
        service = RcaService(store=mini_app.store, workers=1, queue_depth=1)
        service.register_app("mini", gate)
        service.start()
        try:
            service.submit_run("mini", 0.0, 1.0)
            assert gate.entered.wait(timeout=10.0)
            service.submit_run("mini", 0.0, 1.0)
            before = service.metrics.jobs_submitted.value
            with pytest.raises(QueueFull):
                service.submit_run("mini", 0.0, 1.0)
            # the refused job is not pollable and counters balance
            # (ids are sequential: the refused submission took id 3)
            assert service.find_job(before + 1) is None
            assert service.metrics.jobs_rejected.value == 1
        finally:
            gate.release.set()
            service.shutdown(graceful=False, timeout=5.0)
