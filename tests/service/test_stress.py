"""Concurrency stress: many jobs, >= 4 workers, results equal to serial."""

import random

import pytest

from repro.service.api import RcaService
from repro.service.queue import PRIORITY_INTERACTIVE, PRIORITY_PERIODIC


class TestConcurrencyStress:
    def test_many_jobs_on_four_workers_match_serial(self, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=48, spacing=400.0)
        lo, hi = times[0] - 50.0, times[-1] + 50.0
        symptoms = mini_app.find_symptoms(lo, hi)
        assert len(symptoms) == 48
        serial = mini_app.engine.diagnose_all(symptoms)
        expected = {s: d for s, d in zip(symptoms, serial)}

        service = RcaService(store=mini_app.store, workers=4, queue_depth=512)
        service.register_app("mini", mini_app)
        service.start()
        try:
            assert service.pool.alive == 4
            # one single-symptom job each, in shuffled order with mixed
            # priorities, plus whole-window runs racing the small jobs
            rng = random.Random(7)
            shuffled = list(symptoms)
            rng.shuffle(shuffled)
            jobs = [
                (
                    symptom,
                    service.submit_diagnosis(
                        "mini",
                        [symptom],
                        priority=rng.choice(
                            [PRIORITY_INTERACTIVE, PRIORITY_PERIODIC]
                        ),
                    ),
                )
                for symptom in shuffled
            ]
            runs = [service.submit_run("mini", lo, hi) for _ in range(2)]

            for symptom, job in jobs:
                diagnoses = job.outcome(timeout=60.0)
                assert len(diagnoses) == 1
                assert diagnoses[0] == expected[symptom]
            for run in runs:
                assert run.outcome(timeout=60.0) == serial

            assert service.drain(timeout=30.0)
            metrics = service.metrics
            assert metrics.jobs_completed.value == len(jobs) + len(runs)
            assert metrics.jobs_failed.value == 0
            # racing workers may occasionally diagnose the same symptom
            # twice (miss before the first publish) but most of the 144
            # symptom lookups must have been served from the cache
            assert metrics.symptoms_diagnosed.value < 2 * len(symptoms)
            assert metrics.cache_hits.value > 0
        finally:
            service.shutdown(graceful=True, timeout=30.0)
        assert service.pool.alive == 0
