"""Tests for the RcaService facade: submit/poll, cache, scheduling,
health-aware priority, drain and shutdown."""

import threading
import time

import pytest

from repro.service.api import RcaService
from repro.service.queue import (
    PRIORITY_IMPAIRED_PENALTY,
    PRIORITY_INTERACTIVE,
    PRIORITY_PERIODIC,
    JobState,
    QueueClosed,
    QueueFull,
)


@pytest.fixture
def service(mini_app, health_registry):
    svc = RcaService(store=mini_app.store, health=health_registry, workers=2)
    svc.register_app("mini", mini_app)
    yield svc
    svc.shutdown(graceful=False, timeout=5.0)


def window(times):
    return times[0] - 50.0, times[-1] + 50.0


class SlowApp:
    """Wraps an app so find_symptoms blocks until released."""

    def __init__(self, inner):
        self.inner = inner
        self.engine = inner.engine
        self.started = threading.Event()
        self.release = threading.Event()

    def find_symptoms(self, start, end):
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the job"
        return self.inner.find_symptoms(start, end)


class TestRegistration:
    def test_apps_listed(self, service):
        assert service.apps() == ["mini"]

    def test_duplicate_registration_rejected(self, service, mini_app):
        with pytest.raises(ValueError, match="already registered"):
            service.register_app("mini", mini_app)

    def test_unknown_app_rejected(self, service):
        with pytest.raises(KeyError, match="no application"):
            service.submit_diagnosis("ghost", [])


class TestSubmitAndPoll:
    def test_diagnosis_batch_matches_serial(self, service, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=6)
        symptoms = mini_app.find_symptoms(*window(times))
        serial = mini_app.engine.diagnose_all(symptoms)
        service.start()
        job = service.submit_diagnosis("mini", symptoms)
        assert job.outcome(timeout=30.0) == serial
        assert service.poll(job.job_id) is JobState.DONE
        assert service.job(job.job_id) is job
        assert service.find_job(999_999) is None
        with pytest.raises(KeyError):
            service.poll(999_999)

    def test_run_job_finds_and_diagnoses(self, service, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=6)
        lo, hi = window(times)
        serial = mini_app.engine.diagnose_all(mini_app.find_symptoms(lo, hi))
        service.start()
        job = service.submit_run("mini", lo, hi)
        assert job.outcome(timeout=30.0) == serial
        assert service.metrics.jobs_completed.value == 1

    def test_diagnose_now_blocks_for_results(self, service, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=3)
        symptoms = mini_app.find_symptoms(*window(times))
        service.start()
        diagnoses = service.diagnose_now("mini", symptoms, timeout=30.0)
        assert [d.symptom for d in diagnoses] == symptoms

    def test_dispatcher_routes_batches(self, service, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=3)
        symptoms = mini_app.find_symptoms(*window(times))
        service.start()
        dispatch = service.dispatcher("mini")
        assert dispatch([]) == []
        assert dispatch(symptoms) == mini_app.engine.diagnose_all(symptoms)

    def test_admission_rejection_is_counted(self, service, mini_app, seed_scene):
        tight = RcaService(store=mini_app.store, workers=1, queue_depth=1)
        tight.register_app("mini", mini_app)  # pool not started: jobs queue up
        tight.submit_diagnosis("mini", [])
        with pytest.raises(QueueFull):
            tight.submit_diagnosis("mini", [])
        assert tight.metrics.jobs_rejected.value == 1
        assert tight.metrics.jobs_submitted.value == 1
        tight.shutdown(graceful=False, timeout=5.0)


class TestResultCache:
    def test_repeat_submission_served_from_cache(self, service, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=6)
        symptoms = mini_app.find_symptoms(*window(times))
        service.start()
        first = service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        diagnosed_once = service.metrics.symptoms_diagnosed.value
        assert diagnosed_once == len(symptoms)
        second = service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        assert second == first
        # nothing re-ran: every repeat came from the cache
        assert service.metrics.symptoms_diagnosed.value == diagnosed_once
        assert service.metrics.cache_hits.value == len(symptoms)

    def test_late_record_invalidates_and_changes_rediagnosis(
        self, service, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=6)
        symptoms = mini_app.find_symptoms(*window(times))
        unexplained = symptoms[2]  # i % 3 == 2: no evidence seeded
        service.start()
        first = service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        assert first[2].primary_cause == "Unknown"
        cached = len(service.cache)
        assert cached == len(symptoms)

        # a late 'a' record lands inside the unexplained symptom's
        # evidence window: exactly that entry must be evicted
        mini_app.store.insert("ta", unexplained.start - 3.0, router="nyc-per1")
        assert len(service.cache) == cached - 1
        assert service.metrics.cache_invalidations.value == 1

        second = service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        assert second[2].primary_cause == "a"  # re-diagnosed with new evidence
        assert second[:2] == first[:2]  # untouched entries still cached
        # only the invalidated symptom was re-run
        assert service.metrics.symptoms_diagnosed.value == len(symptoms) + 1

    def test_late_record_outside_windows_evicts_nothing(
        self, service, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=3)
        symptoms = mini_app.find_symptoms(*window(times))
        service.start()
        service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        cached = len(service.cache)
        mini_app.store.insert("ta", times[-1] + 10_000.0, router="nyc-per1")
        assert len(service.cache) == cached
        assert service.metrics.cache_invalidations.value == 0


class TestPeriodicScheduling:
    def test_tick_submits_due_runs(self, service, mini_app, seed_scene):
        seed_scene(mini_app.store, n=4, spacing=500.0, start=1000.0)
        schedule = service.schedule_periodic("mini", interval=1000.0, first_due=1500.0)
        assert service.tick(1400.0) == []
        jobs = service.tick(2500.0)  # 1500 and 2500 both came due
        assert [job.payload for job in jobs] == [(500.0, 1500.0), (1500.0, 2500.0)]
        assert all(job.kind == "run" for job in jobs)
        assert schedule.runs_submitted == 2
        assert schedule.next_due == 3500.0

    def test_scheduled_runs_cover_the_span(self, service, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=6, spacing=300.0, start=1000.0)
        lo, hi = window(times)
        serial = mini_app.engine.diagnose_all(mini_app.find_symptoms(lo, hi))
        service.start()
        service.schedule_periodic(
            "mini", interval=400.0, window=None, first_due=lo + 400.0
        )
        jobs = service.tick(hi)
        assert service.drain(timeout=30.0)
        scheduled = [d for job in jobs for d in job.outcome(timeout=5.0)]
        assert scheduled == serial

    def test_interval_validated(self, service):
        with pytest.raises(ValueError):
            service.schedule_periodic("mini", interval=0.0)

    def test_unregistered_app_cannot_be_scheduled(self, service):
        with pytest.raises(KeyError):
            service.schedule_periodic("ghost", interval=10.0)


class TestHealthAwarePriority:
    def test_impaired_feed_demotes_priority(self, service, health_registry):
        healthy = service.submit_diagnosis("mini", [])
        assert healthy.priority == PRIORITY_INTERACTIVE
        # 'syslog' carries this app's evidence; mark it down
        health_registry.mark_down("syslog", now=1000.0)
        demoted = service.submit_diagnosis("mini", [])
        assert demoted.priority == PRIORITY_INTERACTIVE + PRIORITY_IMPAIRED_PENALTY
        run = service.submit_run("mini", 0.0, 10.0)
        assert run.priority == PRIORITY_PERIODIC + PRIORITY_IMPAIRED_PENALTY

    def test_demoted_job_still_runs(self, service, mini_app, seed_scene, health_registry):
        times = seed_scene(mini_app.store, n=3)
        symptoms = mini_app.find_symptoms(*window(times))
        health_registry.mark_down("syslog", now=1000.0)
        service.start()
        job = service.submit_diagnosis("mini", symptoms)
        assert len(job.outcome(timeout=30.0)) == len(symptoms)

    def test_unrelated_feed_state_does_not_demote(self, service, health_registry):
        health_registry.mark_down("netflow", now=1000.0)
        job = service.submit_diagnosis("mini", [])
        assert job.priority == PRIORITY_INTERACTIVE

    def test_recovery_restores_priority(self, service, health_registry):
        health_registry.mark_down("syslog", now=1000.0)
        health_registry.mark_restored("syslog", now=2000.0)
        job = service.submit_diagnosis("mini", [])
        assert job.priority == PRIORITY_INTERACTIVE


class TestDrainAndShutdown:
    def test_drain_waits_for_in_flight_jobs(self, service, mini_app, seed_scene):
        seed_scene(mini_app.store, n=3)
        slow = SlowApp(mini_app)
        service.register_app("slow", slow)
        service.start()
        job = service.submit_run("slow", 900.0, 3000.0)
        assert slow.started.wait(timeout=10.0)
        assert not service.drain(timeout=0.2)  # job still in flight
        slow.release.set()
        assert service.drain(timeout=30.0)
        assert job.state is JobState.DONE

    def test_graceful_shutdown_finishes_queued_jobs(self, mini_app, seed_scene):
        seed_scene(mini_app.store, n=3)
        svc = RcaService(store=mini_app.store, workers=1)
        svc.register_app("mini", mini_app)
        slow = SlowApp(mini_app)
        svc.register_app("slow", slow)
        svc.start()
        blocker = svc.submit_run("slow", 900.0, 3000.0)
        assert slow.started.wait(timeout=10.0)
        queued = [svc.submit_run("mini", 900.0, 3000.0) for _ in range(2)]

        finisher = threading.Thread(
            target=svc.shutdown, kwargs={"graceful": True, "timeout": 30.0}
        )
        finisher.start()
        deadline = time.monotonic() + 10.0
        while not svc.queue.closed and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(QueueClosed):
            svc.submit_run("mini", 900.0, 3000.0)  # closed to new work
        slow.release.set()
        finisher.join(timeout=30.0)
        assert not finisher.is_alive()
        assert blocker.state is JobState.DONE
        for job in queued:
            assert job.state is JobState.DONE  # graceful: queued work finished
        assert svc.pool.alive == 0

    def test_immediate_shutdown_cancels_pending(self, mini_app, seed_scene):
        seed_scene(mini_app.store, n=3)
        svc = RcaService(store=mini_app.store, workers=1)
        svc.register_app("mini", mini_app)
        slow = SlowApp(mini_app)
        svc.register_app("slow", slow)
        svc.start()
        blocker = svc.submit_run("slow", 900.0, 3000.0)
        assert slow.started.wait(timeout=10.0)
        pending = [svc.submit_run("mini", 900.0, 3000.0) for _ in range(3)]

        finisher = threading.Thread(
            target=svc.shutdown, kwargs={"graceful": False, "timeout": 30.0}
        )
        finisher.start()
        for job in pending:
            with pytest.raises(QueueClosed):
                job.outcome(timeout=10.0)
            assert job.state is JobState.CANCELLED
        slow.release.set()
        finisher.join(timeout=30.0)
        assert not finisher.is_alive()
        assert blocker.state is JobState.DONE  # in-flight work still completed
        assert svc.metrics.jobs_cancelled.value == 3
        assert svc.pool.alive == 0

    def test_metrics_lines_render(self, service, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=3)
        symptoms = mini_app.find_symptoms(*window(times))
        service.start()
        service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        text = "\n".join(service.metrics_lines())
        assert "service metrics:" in text
        assert "worker utilization" in text
        assert "spatial cache" in text
        assert service.elapsed_seconds > 0.0

    def test_spatial_cache_counters_synced_per_job(
        self, service, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=6)
        symptoms = mini_app.find_symptoms(*window(times))
        service.start()
        service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        snap = service.metrics.snapshot()["spatial_cache"]
        resolver_stats = mini_app.engine.resolver.cache_stats()
        # deltas synced exactly once: service totals match the resolver
        assert snap["misses"] == resolver_stats["misses"]
        assert snap["hits"] == resolver_stats["hits"]
        assert snap["misses"] > 0
        # re-diagnosing the same symptoms (traced jobs bypass the result
        # cache) hits the warm resolver cache
        service.submit_diagnosis("mini", symptoms, traced=True).outcome(timeout=30.0)
        after = service.metrics.snapshot()["spatial_cache"]
        assert after["hits"] > snap["hits"]
        assert after["hit_rate"] > 0.0
