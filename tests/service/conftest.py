"""Fixtures for the service-layer tests: a tiny deterministic RCA app.

The app diagnoses symptom ``s`` (rows of table ``ts``) against causes
``a`` (table ``ta``, feed ``syslog``) and ``b`` (table ``tb``, feed
``snmp``) with the graph ``s -> a -> b``.  Small enough that tests can
reason about every footprint window and cache entry exactly.
"""

import pytest

from repro.collector.health import HealthRegistry
from repro.collector.store import DataStore
from repro.core.engine import EngineConfig, RcaEngine
from repro.core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
)
from repro.core.graph import DiagnosisGraph, DiagnosisRule
from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import ExpandOption, TemporalExpansion, TemporalJoinRule

ROUTER_JOIN = SpatialJoinRule(
    LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER
)


def _table_event(name, table, data_source=""):
    def retrieve(context: RetrievalContext):
        for record in context.store.table(table).query(context.start, context.end):
            yield EventInstance.make(
                name, record.timestamp, record.timestamp,
                Location.router(record["router"]),
            )

    return EventDefinition(
        name, LocationType.ROUTER, retrieve, data_source=data_source
    )


def _temporal(left=30.0, right=30.0):
    expansion = TemporalExpansion(ExpandOption.START_END, left, right)
    return TemporalJoinRule(expansion, expansion)


class MiniApp:
    """Smallest object satisfying the service's app protocol."""

    def __init__(self, engine: RcaEngine, library: EventLibrary, store: DataStore):
        self.engine = engine
        self.library = library
        self.store = store

    def find_symptoms(self, start, end):
        context = RetrievalContext(store=self.store, start=start, end=end)
        return self.library.get("s").retrieve(context)


@pytest.fixture
def health_registry():
    return HealthRegistry()


@pytest.fixture
def mini_app(resolver, health_registry):
    store = DataStore()
    library = EventLibrary()
    library.register(_table_event("s", "ts", data_source="syslog"))
    library.register(_table_event("a", "ta", data_source="syslog"))
    library.register(_table_event("b", "tb", data_source="snmp"))
    graph = DiagnosisGraph(symptom_event="s", name="mini")
    graph.add_rule(DiagnosisRule("s", "a", _temporal(), ROUTER_JOIN, priority=10))
    graph.add_rule(DiagnosisRule("a", "b", _temporal(), ROUTER_JOIN, priority=20))
    engine = RcaEngine(
        graph, library, resolver, store, config=EngineConfig(health=health_registry)
    )
    return MiniApp(engine, library, store)


@pytest.fixture
def seed_scene():
    """Seeder: n symptoms, causes cycling a / b / unexplained."""

    def _seed(store: DataStore, n: int = 6, spacing: float = 500.0,
              start: float = 1000.0, router: str = "nyc-per1"):
        times = []
        for i in range(n):
            t = start + i * spacing
            store.insert("ts", t, router=router)
            if i % 3 == 0:
                store.insert("ta", t - 10.0, router=router)
            elif i % 3 == 1:
                store.insert("ta", t - 5.0, router=router)
                store.insert("tb", t - 15.0, router=router)
            times.append(t)
        return times

    return _seed
