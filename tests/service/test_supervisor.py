"""Tests for worker supervision: crash failover, quarantine, hang detach.

The supervisor's sweep is a plain method, so every scenario here drives
``sweep(now)`` directly with an explicit timestamp — the threads are
real (workers genuinely die), but the supervision decisions are
deterministic.
"""

import threading
import time

import pytest

from repro.service.metrics import ServiceMetrics
from repro.service.policy import CancellationToken, DeadlineExceeded
from repro.service.queue import Job, JobQueue, JobState, PRIORITY_INTERACTIVE

pytestmark = pytest.mark.chaos
from repro.service.supervisor import (
    PoisonJob,
    QuarantineBuffer,
    QuarantineEntry,
    SupervisorConfig,
    WorkerSupervisor,
)
from repro.service.workers import WorkerCrash, WorkerPool


def make_job(payload=None, deadline=None, priority=PRIORITY_INTERACTIVE):
    job = Job(kind="diagnose", app="mini", payload=payload, priority=priority)
    job.deadline = deadline
    job.cancel = CancellationToken(deadline=None)
    return job


def wait_until(predicate, timeout=5.0, interval=0.005):
    """Poll until ``predicate()`` is true; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail("condition not reached within %.1fs" % timeout)


class CrashingExecutor:
    """Executor that raises WorkerCrash for the first ``crashes`` calls."""

    def __init__(self, crashes):
        self.crashes = crashes
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, job, worker):
        with self._lock:
            self.calls += 1
            crash = self.calls <= self.crashes
        if crash:
            raise WorkerCrash(f"injected crash #{self.calls}")
        return f"ok:{job.job_id}"


class TestQuarantineBuffer:
    def test_bounded_fifo_with_drop_accounting(self):
        buffer = QuarantineBuffer(capacity=2)
        entries = [
            QuarantineEntry(job=make_job(), reason=f"r{i}", crashes=2,
                            quarantined_at=float(i))
            for i in range(3)
        ]
        for entry in entries:
            buffer.append(entry)
        assert len(buffer) == 2
        assert buffer.dropped == 1
        assert buffer.entries() == entries[1:]  # oldest evicted

    def test_drain_empties_the_buffer(self):
        buffer = QuarantineBuffer(capacity=4)
        entry = QuarantineEntry(job=make_job(), reason="r", crashes=2,
                                quarantined_at=0.0)
        buffer.append(entry)
        assert buffer.drain() == [entry]
        assert len(buffer) == 0
        assert buffer.entries() == []


class TestCrashRecovery:
    def test_crashed_worker_is_replaced_and_job_fails_over(self):
        queue = JobQueue()
        metrics = ServiceMetrics()
        executor = CrashingExecutor(crashes=1)
        pool = WorkerPool(queue, executor, workers=1, metrics=metrics,
                          poll_seconds=0.01)
        supervisor = WorkerSupervisor(pool, queue, config=SupervisorConfig())
        pool.start()
        try:
            job = queue.submit(make_job())
            wait_until(lambda: pool.alive == 0)  # the crash killed the thread

            supervisor.sweep(now=1.0)

            # failover: the job was requeued and a replacement serves it
            assert job.wait(timeout=5.0)
            assert job.state is JobState.DONE
            assert job.outcome() == f"ok:{job.job_id}"
            assert job.crash_count == 1
            assert metrics.worker_crashes.value == 1
            assert metrics.workers_restarted.value == 1
            assert metrics.jobs_failed_over.value == 1
            assert metrics.jobs_quarantined.value == 0
            # queue accounting settled exactly once per dequeue
            assert queue.join(timeout=5.0)
            assert queue.in_flight == 0
            assert pool.alive == pool.capacity
        finally:
            supervisor.stop()
            pool.stop(timeout=5.0)

    def test_poison_job_is_quarantined_after_max_crashes(self):
        queue = JobQueue()
        metrics = ServiceMetrics()
        executor = CrashingExecutor(crashes=100)  # never succeeds
        pool = WorkerPool(queue, executor, workers=1, metrics=metrics,
                          poll_seconds=0.01)
        supervisor = WorkerSupervisor(
            pool, queue, config=SupervisorConfig(max_crashes=2)
        )
        pool.start()
        try:
            job = queue.submit(make_job())
            wait_until(lambda: pool.alive == 0)
            supervisor.sweep(now=1.0)  # crash 1: fail over
            assert job.crash_count == 1
            wait_until(lambda: pool.alive == 0)  # replacement crashed too
            supervisor.sweep(now=2.0)  # crash 2: quarantine

            assert job.state is JobState.QUARANTINED
            assert job.crash_count == 2
            with pytest.raises(PoisonJob):
                job.outcome(timeout=1.0)
            entries = supervisor.quarantine.entries()
            assert len(entries) == 1
            assert entries[0].job is job
            assert entries[0].crashes == 2
            assert entries[0].quarantined_at == 2.0
            assert metrics.jobs_quarantined.value == 1
            assert metrics.worker_crashes.value == 2
            # pool capacity restored even though the job was poison
            wait_until(lambda: pool.alive == pool.capacity)
            assert queue.join(timeout=5.0)
            assert queue.in_flight == 0
        finally:
            supervisor.stop()
            pool.stop(timeout=5.0)

    def test_cleanly_exited_workers_are_not_treated_as_crashes(self):
        queue = JobQueue()
        metrics = ServiceMetrics()
        pool = WorkerPool(queue, lambda job, worker: None, workers=2,
                          metrics=metrics, poll_seconds=0.01)
        supervisor = WorkerSupervisor(pool, queue)
        pool.start()
        try:
            queue.close()  # workers drain and exit on the stop path
            wait_until(lambda: pool.alive == 0)
            supervisor.sweep(now=1.0)
            assert metrics.worker_crashes.value == 0
            assert metrics.workers_restarted.value == 0
        finally:
            supervisor.stop()
            pool.stop(timeout=5.0)

    def test_sweep_is_a_noop_while_the_pool_is_stopping(self):
        queue = JobQueue()
        metrics = ServiceMetrics()
        executor = CrashingExecutor(crashes=100)
        pool = WorkerPool(queue, executor, workers=1, metrics=metrics,
                          poll_seconds=0.01)
        supervisor = WorkerSupervisor(pool, queue)
        pool.start()
        try:
            queue.submit(make_job())
            wait_until(lambda: pool.alive == 0)
            pool.stop(timeout=5.0)  # shutdown wins over supervision
            supervisor.sweep(now=1.0)
            assert metrics.workers_restarted.value == 0
            assert metrics.supervisor_sweeps.value == 1  # sweep itself ran
        finally:
            supervisor.stop()

    def test_live_supervision_thread_recovers_without_manual_sweeps(self):
        queue = JobQueue()
        metrics = ServiceMetrics()
        executor = CrashingExecutor(crashes=1)
        pool = WorkerPool(queue, executor, workers=1, metrics=metrics,
                          poll_seconds=0.01)
        supervisor = WorkerSupervisor(
            pool, queue, config=SupervisorConfig(interval=0.02)
        )
        pool.start()
        supervisor.start()
        supervisor.start()  # idempotent
        try:
            job = queue.submit(make_job())
            assert job.wait(timeout=5.0)
            assert job.state is JobState.DONE
            # the failover requeue precedes the replacement spawn inside
            # one sweep, so the job can finish just before the counter
            wait_until(lambda: metrics.workers_restarted.value == 1)
        finally:
            supervisor.stop()
            supervisor.stop()  # idempotent
            pool.stop(timeout=5.0)


class TestDeadlineEnforcement:
    def _hung_service(self, metrics, block):
        """A 1-worker pool whose executor blocks non-cooperatively."""
        queue = JobQueue()

        def executor(job, worker):
            block.wait(30.0)  # ignores the cancel token entirely
            return "late"

        pool = WorkerPool(queue, executor, workers=1, metrics=metrics,
                          poll_seconds=0.01)
        supervisor = WorkerSupervisor(
            pool, queue, config=SupervisorConfig(hang_grace=1.0)
        )
        return queue, pool, supervisor

    def test_overdue_job_gets_its_token_tripped_before_detach(self):
        metrics = ServiceMetrics()
        block = threading.Event()
        queue, pool, supervisor = self._hung_service(metrics, block)
        pool.start()
        try:
            job = queue.submit(make_job(deadline=5.0))
            worker = pool.members()[0]
            wait_until(lambda: worker.current_job is job)

            supervisor.sweep(now=5.5)  # overdue 0.5s < hang_grace 1.0s
            assert job.cancel.cancelled  # cooperative line tripped
            assert not job.finished  # but the job was not abandoned
            assert metrics.workers_detached.value == 0
            assert pool.members() == [worker]
        finally:
            block.set()
            supervisor.stop()
            pool.stop(timeout=5.0)

    def test_hung_worker_is_detached_past_grace(self):
        metrics = ServiceMetrics()
        block = threading.Event()
        queue, pool, supervisor = self._hung_service(metrics, block)
        pool.start()
        try:
            job = queue.submit(make_job(deadline=5.0))
            zombie = pool.members()[0]
            wait_until(lambda: zombie.current_job is job)

            supervisor.sweep(now=6.5)  # overdue 1.5s >= hang_grace

            assert job.state is JobState.TIMED_OUT
            assert isinstance(job.error, DeadlineExceeded)
            assert metrics.workers_detached.value == 1
            assert metrics.jobs_timed_out.value == 1
            # the queue was settled on the zombie's behalf
            assert queue.join(timeout=5.0)
            assert queue.in_flight == 0
            # capacity healed: a fresh worker replaced the zombie
            assert zombie not in pool.members()
            wait_until(lambda: pool.alive == pool.capacity)

            # the zombie finishing late must corrupt nothing
            block.set()
            zombie.join(timeout=5.0)
            assert not zombie.is_alive()
            assert job.state is JobState.TIMED_OUT  # terminal is first-wins
            assert job.result is None
            assert queue.in_flight == 0  # no double task_done
        finally:
            block.set()
            supervisor.stop()
            pool.stop(timeout=5.0)

    def test_detach_is_idempotent_across_sweeps(self):
        metrics = ServiceMetrics()
        block = threading.Event()
        queue, pool, supervisor = self._hung_service(metrics, block)
        pool.start()
        try:
            job = queue.submit(make_job(deadline=5.0))
            zombie = pool.members()[0]
            wait_until(lambda: zombie.current_job is job)
            supervisor.sweep(now=6.5)
            supervisor.sweep(now=7.5)  # second sweep sees only the healthy pool
            assert metrics.workers_detached.value == 1
            assert metrics.jobs_timed_out.value == 1
            assert queue.in_flight == 0
        finally:
            block.set()
            supervisor.stop()
            pool.stop(timeout=5.0)

    def test_jobs_without_deadlines_are_never_detached(self):
        metrics = ServiceMetrics()
        block = threading.Event()
        queue, pool, supervisor = self._hung_service(metrics, block)
        pool.start()
        try:
            job = queue.submit(make_job(deadline=None))
            worker = pool.members()[0]
            wait_until(lambda: worker.current_job is job)
            supervisor.sweep(now=1e9)  # far future; still no deadline
            assert not job.finished
            assert metrics.workers_detached.value == 0
            block.set()
            assert job.wait(timeout=5.0)
            assert job.state is JobState.DONE
        finally:
            block.set()
            supervisor.stop()
            pool.stop(timeout=5.0)


class TestCooperativeTimeout:
    def test_cooperative_executor_times_out_at_a_checkpoint(self):
        # no supervisor involvement at all: the token's own deadline
        # stops a cooperating executor mid-flight
        queue = JobQueue()
        metrics = ServiceMetrics()
        clock = {"now": 0.0}

        def executor(job, worker):
            clock["now"] = 10.0  # time "passes" past the 5.0 deadline
            job.cancel.check()  # checkpoint: raises DeadlineExceeded
            return "unreachable"

        pool = WorkerPool(queue, executor, workers=1, metrics=metrics,
                          poll_seconds=0.01)
        pool.start()
        try:
            job = Job(kind="diagnose", app="mini", payload=None)
            job.deadline = 5.0
            job.cancel = CancellationToken(
                deadline=5.0, clock=lambda: clock["now"]
            )
            queue.submit(job)
            assert job.wait(timeout=5.0)
            assert job.state is JobState.TIMED_OUT
            assert isinstance(job.error, DeadlineExceeded)
            assert metrics.jobs_timed_out.value == 1
            assert queue.join(timeout=5.0)
        finally:
            pool.stop(timeout=5.0)
