"""Traced jobs through the concurrent service: no span leaks, ever.

The tracing design gives every traced job (and every traced symptom on
the batch helper) its *own* tracer, created on the worker that runs it;
the finished span tree travels attached to the job/diagnosis.  These
tests drive interleaved traced and untraced jobs through the thread
worker pool and the fork batch backend and verify the isolation
guarantees:

* every span of a traced job sits under that job's own root, labelled
  with that job's id — never another job's;
* concurrently-executed traced jobs share no :class:`Span` objects;
* untraced jobs running alongside traced ones never grow spans;
* fork-backend traces are built in the child and survive the pickle
  back to the parent, one independent tree per symptom.
"""

import os

import pytest

from repro.service.api import RcaService
from repro.service.workers import parallel_diagnose


@pytest.fixture
def service(mini_app, health_registry):
    svc = RcaService(store=mini_app.store, health=health_registry, workers=4)
    svc.register_app("mini", mini_app)
    yield svc
    svc.shutdown(graceful=False, timeout=5.0)


def _span_ids(root):
    return {id(span) for span in root.walk()}


class TestThreadPoolIsolation:
    def test_interleaved_traced_jobs_keep_spans_apart(
        self, service, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=12)
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        service.start()
        # one traced job per symptom, all in flight together on 4 workers
        jobs = [
            service.submit_diagnosis("mini", [symptom], traced=True)
            for symptom in symptoms
        ]
        for job in jobs:
            job.outcome(timeout=30.0)

        for job in jobs:
            root = job.trace
            assert root is not None
            assert root.kind == "job"
            # every span under this root belongs to this job and no other
            assert root.label == f"job-{job.job_id}"
            diagnose_spans = root.find("diagnose")
            assert len(diagnose_spans) == len(job.payload)
            for diagnosis in job.outcome():
                assert diagnosis.trace is not None
                assert id(diagnosis.trace) in _span_ids(root)

        # no Span object appears in two jobs' trees
        seen = set()
        for job in jobs:
            ids = _span_ids(job.trace)
            assert not (ids & seen), "span object shared between jobs"
            seen |= ids

    def test_untraced_jobs_alongside_traced_grow_no_spans(
        self, service, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=9)
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        service.start()
        traced = [
            service.submit_diagnosis("mini", [s], traced=True)
            for s in symptoms[::2]
        ]
        plain = [
            service.submit_diagnosis("mini", [s]) for s in symptoms[1::2]
        ]
        for job in traced + plain:
            job.outcome(timeout=30.0)
        for job in plain:
            assert job.trace is None
            for diagnosis in job.outcome():
                assert diagnosis.trace is None
        for job in traced:
            assert job.trace is not None

    def test_traced_run_job_covers_detection_and_diagnoses(
        self, service, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=6)
        service.start()
        job = service.submit_run(
            "mini", times[0] - 50.0, times[-1] + 50.0, traced=True
        )
        diagnoses = job.outcome(timeout=30.0)
        root = job.trace
        assert root.kind == "job" and root.meta["job_kind"] == "run"
        assert len(root.find("detect")) == 1
        assert len(root.find("diagnose")) == len(diagnoses)
        # the root covers all of its children (stage sums cannot exceed it)
        child_total = sum(child.duration for child in root.children)
        assert child_total <= root.duration + 1e-9

    def test_stage_metrics_fed_by_traced_jobs_only(
        self, service, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=6)
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        service.start()
        service.submit_diagnosis("mini", symptoms).outcome(timeout=30.0)
        assert service.metrics.stage_summary() == {}
        service.submit_diagnosis("mini", symptoms, traced=True).outcome(
            timeout=30.0
        )
        summary = service.metrics.stage_summary()
        assert summary  # traced job landed per-stage histograms
        for stage in ("job", "diagnose", "retrieve"):
            assert summary[stage]["count"] == 1


class TestBatchBackendIsolation:
    def _symptoms(self, mini_app, seed_scene, n=8):
        times = seed_scene(mini_app.store, n=n)
        return mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)

    def test_thread_backend_traces_each_symptom(self, mini_app, seed_scene):
        symptoms = self._symptoms(mini_app, seed_scene)
        traced = parallel_diagnose(
            mini_app.engine, symptoms, jobs=4, backend="thread", traced=True
        )
        untraced = mini_app.engine.isolated().diagnose_all(symptoms)
        assert traced == untraced  # tracing never changes results
        seen = set()
        for diagnosis, symptom in zip(traced, symptoms):
            root = diagnosis.trace
            assert root is not None and root.kind == "diagnose"
            assert root.label == symptom.name
            ids = _span_ids(root)
            assert not (ids & seen), "span object shared between symptoms"
            seen |= ids

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="fork backend requires POSIX"
    )
    def test_fork_backend_traces_survive_pickling(self, mini_app, seed_scene):
        symptoms = self._symptoms(mini_app, seed_scene)
        traced = parallel_diagnose(
            mini_app.engine, symptoms, jobs=2, backend="fork", traced=True
        )
        untraced = mini_app.engine.isolated().diagnose_all(symptoms)
        assert traced == untraced
        for diagnosis, symptom in zip(traced, symptoms):
            root = diagnosis.trace
            assert root is not None and root.kind == "diagnose"
            assert root.label == symptom.name
            # the child really recorded work: spans carry record counts
            assert root.find("rule"), "fork-built trace lost its subtree"
            assert sum(r.self_seconds for r in root.walk()) <= (
                root.duration + 1e-9
            )

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="fork backend requires POSIX"
    )
    def test_fork_backend_untraced_attaches_nothing(self, mini_app, seed_scene):
        symptoms = self._symptoms(mini_app, seed_scene)
        plain = parallel_diagnose(
            mini_app.engine, symptoms, jobs=2, backend="fork"
        )
        assert all(diagnosis.trace is None for diagnosis in plain)
