"""Diagnosis JSON round-trip (``grca-diagnosis/1``): unit shapes plus
regression over real scenario outputs (bgp_flaps / cdn / pim).

The HTTP gateway serves ``Diagnosis.to_json()`` documents over the
wire; this suite is the contract that ``from_json`` rebuilds *equal*
diagnoses — including evidence gaps, caveats, tuple-valued info and
infinite footprint bounds — through a strict-JSON encode/decode cycle.
"""

import json

import pytest

from repro.collector.health import FeedState
from repro.core.engine import Diagnosis
from repro.core.events import EventInstance
from repro.core.locations import Location, LocationType
from repro.core.graph import DiagnosisRule
from repro.core.reasoning.rule_based import (
    EvidenceGap,
    MatchedEvidence,
    RuleBasedResult,
)
from repro.core.serialize import (
    DIAGNOSIS_SCHEMA,
    diagnosis_from_dict,
    diagnosis_to_dict,
    instance_from_dict,
    instance_to_dict,
)
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import ExpandOption, TemporalExpansion, TemporalJoinRule


def strict_cycle(document):
    """Encode with strict JSON (NaN/Inf forbidden) and decode back."""
    return json.loads(json.dumps(document, allow_nan=False))


def make_rule(parent="s", child="a", priority=10, note=""):
    expansion = TemporalExpansion(ExpandOption.START_END, 30.0, 30.0)
    return DiagnosisRule(
        parent_event=parent,
        child_event=child,
        temporal=TemporalJoinRule(expansion, expansion),
        spatial=SpatialJoinRule(
            LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER
        ),
        priority=priority,
        note=note,
    )


def make_instance(name="s", start=1000.0, router="nyc-per1", **info):
    return EventInstance.make(
        name, start, start + 5.0, Location.router(router), **info
    )


class TestInstanceRoundTrip:
    def test_plain_instance(self):
        instance = make_instance()
        assert instance_from_dict(strict_cycle(instance_to_dict(instance))) == instance

    def test_info_preserves_tuples_and_nesting(self):
        instance = make_instance(
            "s",
            path=("nyc-per1", "chi-per1"),
            counts=[1, 2, 3],
            nested={"pair": (1.5, "x"), "flat": "y"},
        )
        rebuilt = instance_from_dict(strict_cycle(instance_to_dict(instance)))
        assert rebuilt == instance
        info = dict(rebuilt.info)
        assert info["path"] == ("nyc-per1", "chi-per1")  # tuple, not list
        assert info["counts"] == [1, 2, 3]
        assert info["nested"]["pair"] == (1.5, "x")


class TestFloatGuard:
    def test_non_finite_floats_round_trip(self):
        import math

        from repro.core.serialize import decode_float, encode_float

        assert encode_float(float("inf")) == "inf"
        assert encode_float(float("-inf")) == "-inf"
        assert encode_float(float("nan")) == "nan"
        assert encode_float(1.5) == 1.5
        assert decode_float("inf") == float("inf")
        assert decode_float("-inf") == float("-inf")
        assert math.isnan(decode_float("nan"))
        assert decode_float(1.5) == 1.5


class TestDiagnosisRoundTrip:
    def make_diagnosis(self, **overrides):
        symptom = make_instance("s")
        cause = make_instance("a", start=990.0, reason="card reset")
        deep = make_instance("b", start=985.0)
        edge_sa = MatchedEvidence(make_rule("s", "a"), symptom, cause, depth=1)
        edge_ab = MatchedEvidence(make_rule("a", "b", 20), cause, deep, depth=2)
        evidence = [edge_sa, edge_ab]
        fields = dict(
            symptom=symptom,
            evidence=evidence,
            result=RuleBasedResult(
                root_causes=["b"], priority=20, supporting=[edge_ab]
            ),
            footprint=(("ta", 960.0, 1030.0), ("tb", 955.0, 1030.0)),
        )
        fields.update(overrides)
        return Diagnosis(**fields)

    def test_plain_diagnosis(self):
        diagnosis = self.make_diagnosis()
        rebuilt = diagnosis_from_dict(strict_cycle(diagnosis_to_dict(diagnosis)))
        assert rebuilt == diagnosis
        assert rebuilt.result.supporting == [diagnosis.evidence[1]]

    def test_gaps_and_caveats_survive(self):
        gap = EvidenceGap(
            source="syslog",
            state=FeedState.DEGRADED,
            start=960.0,
            end=1030.0,
            event="a",
            parent_event="s",
        )
        diagnosis = self.make_diagnosis(
            gaps=[gap], confidence=0.75, caveats=[gap.describe()]
        )
        rebuilt = diagnosis_from_dict(strict_cycle(diagnosis_to_dict(diagnosis)))
        assert rebuilt == diagnosis
        assert rebuilt.gaps == [gap]
        assert rebuilt.gaps[0].state is FeedState.DEGRADED
        assert rebuilt.caveats == [gap.describe()]
        assert rebuilt.confidence == 0.75

    def test_infinite_footprint_bounds_are_strict_json(self):
        diagnosis = self.make_diagnosis(
            footprint=(("ta", float("-inf"), float("inf")),)
        )
        document = strict_cycle(diagnosis_to_dict(diagnosis))  # must not raise
        assert document["footprint"] == [["ta", "-inf", "inf"]]
        rebuilt = diagnosis_from_dict(document)
        assert rebuilt.footprint == (("ta", float("-inf"), float("inf")),)
        assert rebuilt == diagnosis

    def test_infinite_gap_bounds_are_strict_json(self):
        gap = EvidenceGap(
            source="snmp", state=FeedState.DOWN,
            start=float("-inf"), end=float("inf"),
            event="b", parent_event="a",
        )
        diagnosis = self.make_diagnosis(gaps=[gap], confidence=0.6)
        rebuilt = diagnosis_from_dict(strict_cycle(diagnosis_to_dict(diagnosis)))
        assert rebuilt.gaps == [gap]

    def test_nan_values_are_strict_json(self):
        # regression: the float guard once special-cased only +/-inf, so
        # a NaN (e.g. a degenerate confidence rollup) leaked a raw float
        # that json.dumps(allow_nan=False) rejects
        import math

        nan = float("nan")
        gap = EvidenceGap(
            source="snmp", state=FeedState.DOWN,
            start=nan, end=nan, event="b", parent_event="a",
        )
        diagnosis = self.make_diagnosis(
            gaps=[gap],
            confidence=nan,
            footprint=(("ta", nan, 1030.0),),
        )
        document = strict_cycle(diagnosis_to_dict(diagnosis))  # must not raise
        assert document["confidence"] == "nan"
        assert document["footprint"] == [["ta", "nan", 1030.0]]
        rebuilt = diagnosis_from_dict(document)
        assert math.isnan(rebuilt.confidence)
        assert math.isnan(rebuilt.gaps[0].start)
        assert math.isnan(rebuilt.footprint[0][1])

    def test_unexplained_diagnosis(self):
        diagnosis = Diagnosis(
            symptom=make_instance("s"),
            evidence=[],
            result=RuleBasedResult(root_causes=[], priority=0, supporting=[]),
        )
        document = strict_cycle(diagnosis_to_dict(diagnosis))
        assert document["is_explained"] is False
        assert diagnosis_from_dict(document) == diagnosis

    def test_flat_consumer_fields(self):
        document = diagnosis_to_dict(self.make_diagnosis())
        assert document["schema"] == DIAGNOSIS_SCHEMA
        assert document["annotated_cause"] == "b"
        assert document["is_explained"] is True

    def test_wrong_schema_rejected(self):
        document = diagnosis_to_dict(self.make_diagnosis())
        document["schema"] = "grca-diagnosis/999"
        with pytest.raises(ValueError, match="unsupported diagnosis schema"):
            diagnosis_from_dict(document)
        with pytest.raises(ValueError, match="unsupported diagnosis schema"):
            diagnosis_from_dict({})

    def test_to_json_from_json_methods(self):
        diagnosis = self.make_diagnosis()
        assert Diagnosis.from_json(strict_cycle(diagnosis.to_json())) == diagnosis


class TestScenarioRegression:
    """Every diagnosis a real application produces must round-trip.

    Scenario sizes are trimmed for CI speed but cover the three stock
    applications with distinct rule graphs, location types and info
    payloads.
    """

    def roundtrip_all(self, result, app_cls, app_name):
        app = app_cls.build(result.platform())
        symptoms = app.find_symptoms(result.start, result.end)
        assert symptoms, f"{app_name}: scenario produced no symptoms"
        diagnoses = app.engine.diagnose_all(symptoms)
        explained = 0
        for diagnosis in diagnoses:
            rebuilt = Diagnosis.from_json(strict_cycle(diagnosis.to_json()))
            assert rebuilt == diagnosis, f"{app_name}: round-trip drift"
            explained += diagnosis.is_explained
        assert explained, f"{app_name}: nothing explained, test is vacuous"

    def test_bgp_flaps(self):
        from repro.apps import BgpFlapApp
        from repro.simulation import bgp_month
        from repro.topology import TopologyParams

        result = bgp_month(
            total_flaps=12, seed=5, duration_days=4,
            params=TopologyParams(
                n_pops=3, pers_per_pop=2, customers_per_per=3, seed=5
            ),
        )
        self.roundtrip_all(result, BgpFlapApp, "bgp_flaps")

    def test_cdn(self):
        from repro.apps import CdnApp
        from repro.simulation import cdn_month
        from repro.topology import TopologyParams

        result = cdn_month(
            total_degradations=10, seed=7, duration_days=4, n_clients=6,
            params=TopologyParams(
                n_pops=3, pers_per_pop=2, customers_per_per=3,
                cdn_pops=("nyc",), peering_pops=("chi",), seed=7,
            ),
        )
        self.roundtrip_all(result, CdnApp, "cdn")

    def test_pim(self):
        from repro.apps import PimApp
        from repro.simulation import pim_fortnight
        from repro.topology import TopologyParams

        result = pim_fortnight(
            total_changes=10, seed=9, duration_days=4,
            params=TopologyParams(
                n_pops=3, pers_per_pop=2, customers_per_per=3, seed=9
            ),
        )
        self.roundtrip_all(result, PimApp, "pim")


class TestMalformedPayloads:
    """Every malformed payload fails with ValueError, never KeyError."""

    def make_document(self):
        symptom = make_instance("s")
        cause = make_instance("a", start=990.0)
        edge = MatchedEvidence(make_rule("s", "a"), symptom, cause, depth=1)
        diagnosis = Diagnosis(
            symptom=symptom,
            evidence=[edge],
            result=RuleBasedResult(
                root_causes=["a"], priority=10, supporting=[edge]
            ),
            footprint=(("ta", 960.0, 1030.0),),
        )
        return strict_cycle(diagnosis_to_dict(diagnosis))

    def test_wrong_format_tag(self):
        document = self.make_document()
        document["schema"] = "grca-diagnosis/999"
        with pytest.raises(ValueError, match="unsupported diagnosis schema"):
            diagnosis_from_dict(document)

    def test_missing_format_tag(self):
        document = self.make_document()
        del document["schema"]
        with pytest.raises(ValueError, match="unsupported diagnosis schema"):
            diagnosis_from_dict(document)

    def test_non_dict_payload(self):
        with pytest.raises(ValueError, match="must be a JSON object"):
            diagnosis_from_dict(["not", "a", "diagnosis"])

    @pytest.mark.parametrize("dropped", ["symptom", "result"])
    def test_truncated_payload(self, dropped):
        document = self.make_document()
        del document[dropped]
        with pytest.raises(ValueError, match="malformed grca-diagnosis/1"):
            diagnosis_from_dict(document)

    @pytest.mark.parametrize(
        "dropped", ["rule", "parent_instance", "instance", "depth"]
    )
    def test_missing_evidence_fields(self, dropped):
        document = self.make_document()
        del document["evidence"][0][dropped]
        with pytest.raises(ValueError, match="malformed grca-diagnosis/1"):
            diagnosis_from_dict(document)

    def test_missing_instance_fields_inside_evidence(self):
        document = self.make_document()
        del document["evidence"][0]["instance"]["location"]
        with pytest.raises(ValueError, match="malformed grca-diagnosis/1"):
            diagnosis_from_dict(document)

    def test_dangling_supporting_index(self):
        document = self.make_document()
        document["result"]["supporting"] = [5]
        with pytest.raises(ValueError, match="supporting indices.*out of range"):
            diagnosis_from_dict(document)

    def test_from_json_raises_the_same_way(self):
        document = self.make_document()
        del document["result"]
        with pytest.raises(ValueError, match="malformed grca-diagnosis/1"):
            Diagnosis.from_json(document)

    def test_valid_document_still_decodes(self):
        rebuilt = diagnosis_from_dict(self.make_document())
        assert rebuilt.primary_cause == "a"
