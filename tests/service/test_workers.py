"""Tests for the worker pool and the parallel batch helper."""

import os
import threading

import pytest

from repro.service.metrics import ServiceMetrics
from repro.service.queue import Job, JobQueue, JobState
from repro.service.workers import (
    Worker,
    WorkerPool,
    available_cpus,
    contiguous_chunks,
    default_backend,
    parallel_diagnose,
)


class TestChunking:
    def test_concatenation_preserves_order(self):
        items = list(range(17))
        chunks = contiguous_chunks(items, 4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_sizes_near_equal_and_non_empty(self):
        chunks = contiguous_chunks(list(range(10)), 3)
        sizes = [len(c) for c in chunks]
        assert sizes == [4, 3, 3]

    def test_more_workers_than_items(self):
        chunks = contiguous_chunks([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_backend_probe(self):
        assert available_cpus() >= 1
        assert default_backend() in ("thread", "fork")


class TestParallelDiagnose:
    def test_thread_backend_matches_serial(self, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=9)
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        assert len(symptoms) == 9
        serial = mini_app.engine.diagnose_all(symptoms)
        parallel = parallel_diagnose(
            mini_app.engine, symptoms, jobs=4, backend="thread"
        )
        assert parallel == serial
        causes = [d.primary_cause for d in parallel]
        assert "a" in causes and "b" in causes

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="fork backend is POSIX-only")
    def test_fork_backend_matches_serial(self, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=4)
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        serial = mini_app.engine.diagnose_all(symptoms)
        forked = parallel_diagnose(mini_app.engine, symptoms, jobs=2, backend="fork")
        assert forked == serial

    def test_single_job_uses_serial_path(self, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=3)
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        assert parallel_diagnose(mini_app.engine, symptoms, jobs=1) == (
            mini_app.engine.diagnose_all(symptoms)
        )

    def test_unknown_backend_rejected(self, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=2)
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        with pytest.raises(ValueError, match="backend"):
            parallel_diagnose(mini_app.engine, symptoms, jobs=2, backend="bogus")

    def test_worker_error_propagates(self, mini_app):
        bad = [object(), object()]  # not EventInstances: diagnose raises
        with pytest.raises(Exception):
            parallel_diagnose(mini_app.engine, bad, jobs=2, backend="thread")


class TestEngineIsolation:
    def test_isolated_engine_shares_state_but_not_cache(self, mini_app, seed_scene):
        times = seed_scene(mini_app.store, n=3)
        engine = mini_app.engine
        sibling = engine.isolated()
        assert sibling is not engine
        assert sibling.store is engine.store
        assert sibling.graph is engine.graph
        assert sibling.library is engine.library
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        sibling.diagnose(symptoms[0])
        assert sibling._retrieval_cache  # populated by the diagnosis
        assert not engine._retrieval_cache  # prototype untouched

    def test_invalidate_retrievals_drops_only_covering_windows(
        self, mini_app, seed_scene
    ):
        times = seed_scene(mini_app.store, n=6)
        engine = mini_app.engine
        symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
        engine.diagnose_all(symptoms)
        cached_before = len(engine._retrieval_cache)
        assert cached_before > 0
        # a record far outside every cached window drops nothing
        assert engine.invalidate_retrievals("ta", times[-1] + 10_000.0) == 0
        assert len(engine._retrieval_cache) == cached_before
        # a record inside the first symptom's evidence window drops the
        # covering entries only
        dropped = engine.invalidate_retrievals("ta", times[0])
        assert dropped > 0
        assert len(engine._retrieval_cache) == cached_before - dropped


class TestWorkerPool:
    def test_workers_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(JobQueue(), lambda job, worker: None, workers=0)

    def test_pool_executes_jobs_and_stops(self):
        queue = JobQueue()
        seen = []
        lock = threading.Lock()

        def execute(job, worker):
            with lock:
                seen.append(job.payload)
            return job.payload * 2

        pool = WorkerPool(queue, execute, workers=3)
        pool.start()
        pool.start()  # idempotent
        assert pool.alive == 3
        jobs = [queue.submit(Job(kind="x", app="app", payload=i)) for i in range(12)]
        assert queue.join(timeout=10.0)
        assert sorted(job.outcome(timeout=1.0) for job in jobs) == [
            2 * i for i in range(12)
        ]
        assert sorted(seen) == list(range(12))
        queue.close()
        pool.stop(timeout=10.0)
        assert pool.alive == 0

    def test_job_failure_is_isolated(self):
        queue = JobQueue()
        metrics = ServiceMetrics()

        def execute(job, worker):
            if job.payload == "bad":
                raise RuntimeError("exploding job")
            return "ok"

        pool = WorkerPool(queue, execute, workers=1, metrics=metrics)
        pool.start()
        bad = queue.submit(Job(kind="x", app="app", payload="bad"))
        good = queue.submit(Job(kind="x", app="app", payload="good"))
        with pytest.raises(RuntimeError, match="exploding"):
            bad.outcome(timeout=10.0)
        assert good.outcome(timeout=10.0) == "ok"
        assert metrics.jobs_failed.value == 1
        assert metrics.jobs_completed.value == 1
        queue.close()
        pool.stop(timeout=10.0)

    def test_engine_for_builds_one_isolated_engine_per_app(self, mini_app):
        worker = Worker(
            name="w", queue=JobQueue(), executor=lambda j, w: None,
            metrics=ServiceMetrics(), stop_event=threading.Event(),
        )
        first = worker.engine_for("mini", mini_app.engine)
        second = worker.engine_for("mini", mini_app.engine)
        assert first is second
        assert first is not mini_app.engine
        assert worker.engine_for("other", mini_app.engine) is not first


class ExplodingLenQueue:
    """Queue wrapper whose ``len()`` raises on demand.

    ``len(queue)`` is the first thing a worker touches after dequeuing
    a job (queue-depth gauge), so arming this reproduces an unexpected
    error *outside* job execution — the path that historically killed
    the worker thread silently.
    """

    def __init__(self, inner):
        self.inner = inner
        self.explode = False

    def get(self, timeout=None):
        return self.inner.get(timeout)

    def task_done(self):
        self.inner.task_done()

    def __len__(self):
        if self.explode:
            raise RuntimeError("queue accounting corrupted")
        return len(self.inner)

    @property
    def closed(self):
        return self.inner.closed


class TestWorkerCrashAccounting:
    def test_error_outside_execution_is_counted_and_fails_the_job(self):
        # satellite: a failure in the dequeue loop itself (not the job's
        # executor) must be logged, counted, and fail the in-flight job
        # so its waiters unblock — never a silent dead thread
        inner = JobQueue()
        queue = ExplodingLenQueue(inner)
        metrics = ServiceMetrics()
        worker = Worker(
            name="w-exploding", queue=queue,
            executor=lambda job, w: "never reached",
            metrics=metrics, stop_event=threading.Event(),
            poll_seconds=0.01,
        )
        job = inner.submit(Job(kind="x", app="app", payload=None))
        queue.explode = True
        worker.start()
        worker.join(timeout=5.0)

        assert not worker.is_alive()
        assert worker.crashed
        assert isinstance(worker.crash_error, RuntimeError)
        assert metrics.worker_crashes.value == 1
        assert job.wait(timeout=1.0)
        assert job.state is JobState.FAILED
        assert metrics.jobs_failed.value == 1


class TestPoolStop:
    def test_stop_reports_and_counts_leaked_workers(self):
        # satellite: stop() returns False and counts the threads that
        # failed to join — shutdown loss is observable, never silent
        queue = JobQueue()
        metrics = ServiceMetrics()
        release = threading.Event()

        def execute(job, worker):
            release.wait(30.0)
            return "done"

        pool = WorkerPool(queue, execute, workers=1, metrics=metrics,
                          poll_seconds=0.01)
        pool.start()
        job = queue.submit(Job(kind="x", app="app", payload=None))
        deadline = threading.Event()
        assert not deadline.wait(0.05)  # let the worker pick the job up

        assert pool.stop(timeout=0.2) is False
        assert pool.leaked == 1

        release.set()  # the blocked worker finishes and exits
        assert pool.stop(timeout=5.0) is True
        assert pool.leaked == 0
        assert job.outcome(timeout=1.0) == "done"

    def test_idle_worker_exits_promptly_despite_in_flight_peer(self):
        # satellite (stop-path regression): an idle worker must exit as
        # soon as stop is signalled and the heap is empty, even while a
        # peer still holds an in-flight job
        queue = JobQueue()
        metrics = ServiceMetrics()
        release = threading.Event()
        picked = threading.Event()

        def execute(job, worker):
            picked.set()
            release.wait(30.0)
            return "done"

        pool = WorkerPool(queue, execute, workers=2, metrics=metrics,
                          poll_seconds=0.01)
        pool.start()
        queue.submit(Job(kind="x", app="app", payload=None))
        assert picked.wait(timeout=5.0)
        try:
            # the blocked worker leaks within this short timeout, but
            # the idle one must have exited: exactly one thread leaks
            assert pool.stop(timeout=0.5) is False
            assert pool.leaked == 1
            assert pool.alive == 1
        finally:
            release.set()
            pool.stop(timeout=5.0)
        assert pool.alive == 0

    def test_should_exit_requires_stop_signal_and_drained_heap(self):
        queue = JobQueue()
        stop = threading.Event()
        worker = Worker(
            name="w", queue=queue, executor=lambda j, w: None,
            metrics=ServiceMetrics(), stop_event=stop,
        )
        assert not worker._should_exit()  # no signal
        stop.set()
        assert worker._should_exit()  # signalled and drained
        queue.submit(Job(kind="x", app="app", payload=None))
        assert not worker._should_exit()  # pending work trumps the signal
        assert queue.get() is not None
        # in-flight work elsewhere never keeps an idle worker alive
        assert worker._should_exit()
        queue.task_done()

    def test_closed_queue_counts_as_stop_signal(self):
        queue = JobQueue()
        worker = Worker(
            name="w", queue=queue, executor=lambda j, w: None,
            metrics=ServiceMetrics(), stop_event=threading.Event(),
        )
        assert not worker._should_exit()
        queue.close()
        assert worker._should_exit()
