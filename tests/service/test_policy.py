"""Tests for the fault-containment policy layer.

Everything here runs on manual clocks and seeded RNGs — no real time,
no real threads — so the deadline, retry, breaker and brownout state
machines are pinned exactly.
"""

import sqlite3

import pytest

from repro.collector.health import CircuitOpenError, FeedReadError
from repro.service.metrics import ServiceMetrics
from repro.service.policy import (
    BrownoutConfig,
    BrownoutController,
    CancellationToken,
    CircuitBreaker,
    DeadlineExceeded,
    OperationCancelled,
    PermanentError,
    RetryPolicy,
    ServiceHealth,
    TransientError,
    is_transient,
)


class ManualClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCancellationToken:
    def test_check_passes_until_cancelled(self):
        token = CancellationToken()
        token.check()  # no deadline, not cancelled
        token.cancel("operator said stop")
        assert token.cancelled
        with pytest.raises(OperationCancelled, match="operator said stop"):
            token.check()

    def test_first_cancel_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_deadline_expiry_raises_deadline_exceeded(self):
        clock = ManualClock(100.0)
        token = CancellationToken(deadline=105.0, clock=clock)
        token.check()
        assert token.remaining() == pytest.approx(5.0)
        assert not token.expired
        clock.advance(6.0)
        assert token.expired
        with pytest.raises(DeadlineExceeded):
            token.check()

    def test_deadline_exceeded_is_a_cancellation(self):
        # one except clause catches both cooperative stop reasons
        assert issubclass(DeadlineExceeded, OperationCancelled)

    def test_no_deadline_never_expires(self):
        token = CancellationToken()
        assert token.remaining() is None
        assert not token.expired


class TestErrorClassification:
    @pytest.mark.parametrize(
        "error",
        [
            TransientError("flaky"),
            ConnectionError("reset"),
            TimeoutError("slow"),
            InterruptedError("signal"),
            sqlite3.OperationalError("database is locked"),
            OSError("I/O error"),
            CircuitOpenError("open"),
            FeedReadError("read failed"),
        ],
    )
    def test_transient_family(self, error):
        assert is_transient(error)

    @pytest.mark.parametrize(
        "error",
        [
            PermanentError("rule bug"),
            ValueError("bad config"),
            TypeError("wrong type"),
            KeyError("missing"),
            AttributeError("nope"),
            NotImplementedError("todo"),
            RuntimeError("unclassified"),  # unknown defaults to permanent
        ],
    )
    def test_permanent_family(self, error):
        assert not is_transient(error)

    def test_cancellation_is_never_transient(self):
        assert not is_transient(OperationCancelled("stop"))
        assert not is_transient(DeadlineExceeded("late"))


class TestRetryPolicy:
    def test_should_retry_bounded_by_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        error = TransientError("flaky")
        assert policy.should_retry(error, 1)
        assert policy.should_retry(error, 2)
        assert not policy.should_retry(error, 3)

    def test_permanent_errors_never_retried(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.should_retry(ValueError("bug"), 1)

    def test_single_attempt_disables_retries(self):
        policy = RetryPolicy(max_attempts=1)
        assert not policy.should_retry(TransientError("flaky"), 1)

    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        import random

        a = RetryPolicy(jitter=0.1, rng=random.Random(7))
        b = RetryPolicy(jitter=0.1, rng=random.Random(7))
        delays_a = [a.delay(1) for _ in range(5)]
        delays_b = [b.delay(1) for _ in range(5)]
        assert delays_a == delays_b  # same seed, same schedule
        for delay in delays_a:
            assert a.backoff_base <= delay <= a.backoff_base * 1.1


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=30.0, clock=clock)
        assert breaker.state() == "closed"
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third opens
        assert breaker.open
        assert breaker.state() == "open"
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # streak restarted
        assert breaker.state() == "closed"

    def test_half_open_probe_after_reset_timeout(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state() == "half-open"
        assert breaker.allow()  # one probe allowed

    def test_successful_probe_closes_the_circuit(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.record_success()
        assert breaker.state() == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_and_restarts_the_timer(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.record_failure()  # probe failed
        assert breaker.state() == "open"
        clock.advance(9.0)
        assert not breaker.allow()  # timer restarted at the probe
        clock.advance(1.0)
        assert breaker.allow()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class _Counter:
    def __init__(self, value=0):
        self.value = value


class _Wait:
    def __init__(self, p99=0.0):
        self.p99 = p99

    def percentile(self, q):
        return self.p99


class StubMetrics:
    """Just the signal surface BrownoutController reads."""

    def __init__(self):
        self.queue_wait = _Wait()
        self.jobs_timed_out = _Counter()
        self.jobs_completed = _Counter()
        self.jobs_failed = _Counter()


class TestBrownoutController:
    def test_starts_ok(self):
        controller = BrownoutController()
        assert controller.state is ServiceHealth.OK
        assert not controller.degraded

    def test_queue_wait_p99_trips_the_brownout(self):
        controller = BrownoutController(BrownoutConfig(queue_wait_p99=5.0))
        metrics = StubMetrics()
        metrics.queue_wait.p99 = 4.9
        assert controller.evaluate(metrics, 1.0) is ServiceHealth.OK
        metrics.queue_wait.p99 = 5.0
        assert controller.evaluate(metrics, 2.0) is ServiceHealth.DEGRADED
        assert controller.transitions == 1
        assert controller.last_transition_at == 2.0

    def test_recovery_has_hysteresis(self):
        controller = BrownoutController(
            BrownoutConfig(queue_wait_p99=5.0, recover_factor=0.5)
        )
        metrics = StubMetrics()
        metrics.queue_wait.p99 = 6.0
        controller.evaluate(metrics, 1.0)
        assert controller.degraded
        # below the entry threshold but above recover_factor * threshold:
        # still degraded (no flapping around the line)
        metrics.queue_wait.p99 = 3.0
        assert controller.evaluate(metrics, 2.0) is ServiceHealth.DEGRADED
        metrics.queue_wait.p99 = 2.0
        assert controller.evaluate(metrics, 3.0) is ServiceHealth.OK
        assert controller.transitions == 2

    def test_deadline_miss_rate_trips_with_min_finished_gate(self):
        config = BrownoutConfig(deadline_miss_rate=0.25, min_finished=8)
        controller = BrownoutController(config)
        metrics = StubMetrics()
        # 4 finished, all missed: below the min_finished gate, no verdict
        metrics.jobs_timed_out.value = 4
        metrics.jobs_completed.value = 0
        assert controller.evaluate(metrics, 1.0) is ServiceHealth.OK
        # now 8 finished since the start, 4 of them missed: 50% >= 25%
        metrics.jobs_completed.value = 4
        assert controller.evaluate(metrics, 2.0) is ServiceHealth.DEGRADED

    def test_miss_rate_uses_deltas_not_cumulative_counts(self):
        config = BrownoutConfig(deadline_miss_rate=0.25, min_finished=4)
        controller = BrownoutController(config)
        metrics = StubMetrics()
        # a bad early history...
        metrics.jobs_timed_out.value = 4
        metrics.jobs_completed.value = 4
        assert controller.evaluate(metrics, 1.0) is ServiceHealth.DEGRADED
        # ...followed by a clean recent window recovers, even though the
        # cumulative miss rate is still high
        metrics.jobs_completed.value = 104
        assert controller.evaluate(metrics, 2.0) is ServiceHealth.OK

    def test_real_service_metrics_satisfy_the_signal_surface(self):
        # the controller runs against the real ServiceMetrics in prod;
        # pin the duck-typed surface so a rename cannot silently break it
        controller = BrownoutController()
        metrics = ServiceMetrics()
        assert controller.evaluate(metrics, 1.0) is ServiceHealth.OK
