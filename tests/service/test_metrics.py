"""Tests for the service metrics instruments."""

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, ServiceMetrics


class TestCounter:
    def test_counts(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5


class TestGauge:
    def test_set_and_peak(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1
        assert gauge.peak == 3

    def test_add_tracks_peak(self):
        gauge = Gauge("g")
        gauge.add(2)
        gauge.add(3)
        gauge.add(-4)
        assert gauge.value == 1
        assert gauge.peak == 5


class TestHistogram:
    def test_percentiles_over_samples(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.percentile(0.50) == pytest.approx(51.0)
        assert histogram.percentile(0.95) == pytest.approx(96.0)
        assert histogram.percentile(1.0) == pytest.approx(100.0)

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(0.5) == 0.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_reservoir_is_bounded_but_count_exact(self):
        histogram = Histogram("h", reservoir=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        # percentiles reflect only the newest 10 samples
        assert histogram.percentile(0.0) >= 90.0

    def test_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe(2.0)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "max"}
        assert summary["count"] == 1
        assert summary["max"] == 2.0


class TestServiceMetrics:
    def test_cache_hit_rate(self):
        metrics = ServiceMetrics()
        assert metrics.cache_hit_rate() == 0.0
        metrics.cache_hits.increment(3)
        metrics.cache_misses.increment(1)
        assert metrics.cache_hit_rate() == pytest.approx(0.75)

    def test_utilization(self):
        metrics = ServiceMetrics()
        metrics.add_busy_seconds(5.0)
        assert metrics.utilization(2, 5.0) == pytest.approx(0.5)
        assert metrics.utilization(0, 0.0) == 0.0
        metrics.add_busy_seconds(100.0)
        assert metrics.utilization(1, 1.0) == 1.0  # clamped

    def test_snapshot_includes_utilization_when_known(self):
        metrics = ServiceMetrics()
        assert "worker_utilization" not in metrics.snapshot()
        assert "worker_utilization" in metrics.snapshot(2, 10.0)

    def test_format_lines_renders_every_section(self):
        metrics = ServiceMetrics()
        metrics.jobs_submitted.increment()
        metrics.cache_hits.increment()
        metrics.diagnosis_latency.observe(0.002)
        text = "\n".join(metrics.format_lines(2, 10.0))
        assert "jobs:" in text
        assert "cache:" in text
        assert "diagnosis latency" in text
        assert "worker utilization" in text


class TestSnapshotParity:
    """format_lines is a thin renderer over snapshot — the numbers the
    CLI prints and the numbers /v1/metrics serves must be the same."""

    @staticmethod
    def populated_metrics():
        metrics = ServiceMetrics()
        metrics.jobs_submitted.increment(7)
        metrics.jobs_completed.increment(5)
        metrics.jobs_failed.increment(1)
        metrics.jobs_rejected.increment(2)
        metrics.jobs_shed.increment(3)
        metrics.worker_crashes.increment(1)
        metrics.workers_restarted.increment(1)
        metrics.symptoms_diagnosed.increment(41)
        metrics.cache_hits.increment(3)
        metrics.cache_misses.increment(1)
        metrics.cache_invalidations.increment(2)
        metrics.spatial_cache_hits.increment(8)
        metrics.spatial_cache_misses.increment(2)
        metrics.queue_depth.set(4)
        metrics.queue_depth.set(2)
        metrics.workers_busy.set(1)
        metrics.add_busy_seconds(3.5)
        for value in (0.001, 0.002, 0.004):
            metrics.queue_wait.observe(value)
            metrics.diagnosis_latency.observe(value * 2)
            metrics.job_latency.observe(value * 3)
        metrics.observe_stages({"retrieve": 0.003, "temporal-join": 0.001})
        return metrics

    def test_snapshot_is_json_serializable(self):
        import json

        snap = self.populated_metrics().snapshot(2, 10.0)
        assert json.loads(json.dumps(snap)) == snap

    def test_every_rendered_number_comes_from_the_snapshot(self):
        metrics = self.populated_metrics()
        snap = metrics.snapshot(2, 10.0)
        text = "\n".join(metrics.format_lines(2, 10.0))
        jobs, cache, spatial = snap["jobs"], snap["cache"], snap["spatial_cache"]
        assert f"{jobs['submitted']} submitted" in text
        assert f"{jobs['completed']} completed" in text
        assert f"{jobs['rejected']} rejected" in text
        assert f"{snap['recovery']['worker_crashes']} worker crashes" in text
        assert f"{snap['recovery']['jobs_shed']} shed" in text
        assert f"symptoms diagnosed: {snap['symptoms_diagnosed']}" in text
        assert f"{cache['hits']} hits / {cache['misses']} misses" in text
        assert f"hit rate {100 * cache['hit_rate']:.1f}%" in text
        assert f"hit rate {100 * spatial['hit_rate']:.1f}%" in text
        assert f"depth {snap['queue_depth']:.0f}" in text
        assert f"peak {snap['queue_depth_peak']:.0f}" in text
        wait = snap["queue_wait"]
        assert f"wait p50 {1000 * wait['p50']:.1f} ms" in text
        latency = snap["diagnosis_latency"]
        assert f"p50 {1000 * latency['p50']:.2f} ms" in text
        assert f"{100 * snap['worker_utilization']:.1f}%" in text
        for stage, summary in snap["stages"].items():
            assert f"{stage}: p50 {1000 * summary['p50']:.2f} ms" in text

    def test_snapshot_carries_busy_gauges(self):
        snap = self.populated_metrics().snapshot()
        assert snap["workers_busy"] == 1
        assert snap["worker_busy_seconds"] == pytest.approx(3.5)
