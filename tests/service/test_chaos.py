"""Chaos-harness integration tests: kill, hang and starve the service.

Each scenario wires a :class:`ServiceFaultInjector` between the worker
pool and the real executor of a live, supervised :class:`RcaService`
over the mini app, injects a fault, and asserts the recovery
invariants the supervision layer promises:

* every submitted job reaches a terminal state — nothing is lost;
* pool capacity is restored after every crash/detach;
* the queue ends idle (``join()`` returns, ``in_flight == 0``);
* shutdown leaks no worker threads.
"""

import time

import pytest

from repro.service.api import RcaService
from repro.service.faults import ServiceFaultInjector
from repro.service.policy import (
    DeadlineExceeded,
    RetryPolicy,
    ServiceHealth,
    TransientError,
)
from repro.service.queue import TERMINAL_STATES, JobState, QueueFull
from repro.service.supervisor import PoisonJob, SupervisorConfig

pytestmark = pytest.mark.chaos


def chaos_service(mini_app, **kwargs):
    """A supervised service whose executor runs through a fault injector."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault(
        "supervisor_config", SupervisorConfig(interval=0.02, hang_grace=0.2)
    )
    kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
    holder = {}
    injector = ServiceFaultInjector(
        lambda job, worker: holder["service"]._execute(job, worker)
    )
    service = RcaService(mini_app.store, executor=injector, **kwargs)
    holder["service"] = service
    service.register_app("mini", mini_app)
    service.start()
    return service, injector


def wait_for(predicate, timeout=10.0):
    """Poll a condition; chaos recovery is asynchronous by design."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def assert_recovered(service, jobs):
    """The post-chaos invariants every scenario must satisfy."""
    for job in jobs:
        assert job.state in TERMINAL_STATES, f"job {job.job_id} not terminal"
    assert service.drain(timeout=10.0)
    assert service.queue.in_flight == 0
    # capacity heals once every dead worker has been swapped out — a
    # dying thread can briefly still count as alive, so wait for the
    # pool membership to be entirely healthy, not just fully sized
    assert wait_for(
        lambda: service.pool.alive == service.pool.capacity
        and not any(w.crashed for w in service.pool.members())
    )


class TestCrashChaos:
    def test_worker_kill_mid_job_loses_nothing(self, mini_app, seed_scene):
        seed_scene(mini_app.store)
        service, injector = chaos_service(mini_app)
        try:
            injector.crash_when(times=1)
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            jobs = [
                service.submit_diagnosis("mini", [symptom])
                for symptom in symptoms
            ]
            for job in jobs:
                assert job.wait(timeout=10.0)
            assert_recovered(service, jobs)
            # the kill really happened and was really recovered from
            assert injector.fired("crash") == 1
            assert service.metrics.worker_crashes.value == 1
            assert service.metrics.workers_restarted.value == 1
            assert service.metrics.jobs_failed_over.value == 1
            # and every job still produced its diagnoses
            for job in jobs:
                assert job.state is JobState.DONE
                assert len(job.outcome()) == 1
        finally:
            service.shutdown(timeout=10.0)
        assert service.pool.leaked == 0

    def test_poison_job_is_quarantined_while_others_complete(
        self, mini_app, seed_scene
    ):
        seed_scene(mini_app.store)
        service, injector = chaos_service(mini_app)
        try:
            # job_id 1 (the first submission) crashes every worker that
            # touches it; everything else runs clean
            injector.crash_when(
                match=lambda job: job.job_id == 1, times=None
            )
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            poison = service.submit_diagnosis("mini", [symptoms[0]])
            healthy = [
                service.submit_diagnosis("mini", [symptom])
                for symptom in symptoms[1:]
            ]
            assert poison.wait(timeout=15.0)
            assert poison.state is JobState.QUARANTINED
            assert poison.crash_count == 2  # SupervisorConfig.max_crashes
            with pytest.raises(PoisonJob):
                poison.outcome(timeout=1.0)
            # the buffer append trails the terminal transition slightly
            assert wait_for(lambda: len(service.quarantined()) == 1)
            assert [entry.job.job_id for entry in service.quarantined()] == [1]
            for job in healthy:
                assert job.wait(timeout=10.0)
                assert job.state is JobState.DONE
            assert_recovered(service, [poison] + healthy)
            assert service.metrics.jobs_quarantined.value == 1
        finally:
            service.shutdown(timeout=10.0)
        assert service.pool.leaked == 0


class TestHangChaos:
    def test_hung_executor_is_detached_and_timed_out(self, mini_app, seed_scene):
        seed_scene(mini_app.store)
        service, injector = chaos_service(mini_app, workers=1)
        try:
            injector.hang_when(times=1)
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            hung = service.submit_diagnosis(
                "mini", [symptoms[0]], deadline=0.2
            )
            assert hung.wait(timeout=10.0)
            assert hung.state is JobState.TIMED_OUT
            assert isinstance(hung.error, DeadlineExceeded)
            assert service.metrics.workers_detached.value == 1
            # the replacement worker serves later work normally
            after = service.submit_diagnosis("mini", [symptoms[1]])
            assert after.wait(timeout=10.0)
            assert after.state is JobState.DONE
            injector.release()  # let the zombie finish and exit
            assert_recovered(service, [hung, after])
            assert hung.state is JobState.TIMED_OUT  # zombie lost the race
        finally:
            injector.release()
            service.shutdown(timeout=10.0)

    def test_cooperative_stall_stops_at_a_checkpoint(self, mini_app, seed_scene):
        seed_scene(mini_app.store)
        service, injector = chaos_service(
            mini_app,
            workers=1,
            # huge grace: the cooperative path must win, not the detach
            supervisor_config=SupervisorConfig(interval=0.02, hang_grace=60.0),
        )
        try:
            injector.stall_when(times=1)
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            job = service.submit_diagnosis("mini", [symptoms[0]], deadline=0.2)
            assert job.wait(timeout=10.0)
            assert job.state is JobState.TIMED_OUT
            assert isinstance(job.error, DeadlineExceeded)
            # no worker was sacrificed: the executor stopped itself
            assert service.metrics.workers_detached.value == 0
            assert service.metrics.worker_crashes.value == 0
            assert_recovered(service, [job])
        finally:
            injector.release()
            service.shutdown(timeout=10.0)
        assert service.pool.leaked == 0


class TestRetryChaos:
    def test_transient_failures_are_retried_to_success(self, mini_app, seed_scene):
        seed_scene(mini_app.store)
        service, injector = chaos_service(
            mini_app,
            workers=1,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.005,
                              backoff_max=0.01),
        )
        try:
            injector.fail_when(lambda: TransientError("flaky read"), times=2)
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            job = service.submit_diagnosis("mini", [symptoms[0]])
            assert job.wait(timeout=10.0)
            assert job.state is JobState.DONE
            assert job.attempts == 3  # 2 failures + the success
            assert service.metrics.jobs_retried.value == 2
            assert service.metrics.jobs_failed.value == 0
            assert_recovered(service, [job])
        finally:
            service.shutdown(timeout=10.0)

    def test_permanent_failures_fail_fast(self, mini_app, seed_scene):
        seed_scene(mini_app.store)
        service, injector = chaos_service(
            mini_app, workers=1, retry=RetryPolicy(max_attempts=3)
        )
        try:
            injector.fail_when(lambda: ValueError("rule bug"), times=None)
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            job = service.submit_diagnosis("mini", [symptoms[0]])
            assert job.wait(timeout=10.0)
            assert job.state is JobState.FAILED
            assert job.attempts == 1  # permanent: no retry burned
            assert service.metrics.jobs_retried.value == 0
            with pytest.raises(ValueError, match="rule bug"):
                job.outcome(timeout=1.0)
            assert_recovered(service, [job])
        finally:
            service.shutdown(timeout=10.0)


class _Counter:
    def __init__(self, value=0):
        self.value = value


class _Wait:
    def __init__(self, p99=0.0):
        self.p99 = p99

    def percentile(self, q):
        return self.p99


class _Signals:
    """Minimal metrics surface for driving BrownoutController directly."""

    def __init__(self, p99=0.0):
        self.queue_wait = _Wait(p99)
        self.jobs_timed_out = _Counter()
        self.jobs_completed = _Counter()
        self.jobs_failed = _Counter()


class TestBrownout:
    def test_degraded_service_sheds_and_trims_then_recovers(
        self, mini_app, seed_scene
    ):
        seed_scene(mini_app.store)
        # unsupervised on purpose: the test drives the brownout state
        # machine by hand, so no sweep may re-evaluate it concurrently
        service = RcaService(mini_app.store, workers=1, supervise=False)
        service.register_app("mini", mini_app)
        service.start()
        try:
            schedule = service.schedule_periodic("mini", interval=1000.0)
            service.brownout.evaluate(_Signals(p99=60.0), now=1.0)
            assert service.health_state() is ServiceHealth.DEGRADED
            assert any("health: degraded" in line
                       for line in service.metrics_lines())

            # periodic-priority work is shed at the door...
            with pytest.raises(QueueFull, match="shed"):
                service.submit_run("mini", 0.0, 5000.0)
            assert service.metrics.jobs_shed.value == 1
            # ...including scheduler ticks, which skip but keep ticking
            assert service.tick(2000.0) == []
            assert schedule.runs_submitted == 0
            assert schedule.next_due > 2000.0
            assert service.metrics.jobs_shed.value >= 2

            # interactive work still runs, depth-capped and uncached
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            for _ in range(2):
                job = service.submit_diagnosis("mini", [symptoms[0]])
                assert job.wait(timeout=10.0)
                assert job.state is JobState.DONE
            # two identical diagnoses, zero cache hits: capped results
            # must never be stored (they would poison healthy lookups)
            assert service.metrics.cache_hits.value == 0
            assert service.metrics.cache_misses.value == 2

            # recovery restores scheduling, full depth and caching
            service.brownout.evaluate(_Signals(p99=0.0), now=3.0)
            assert service.health_state() is ServiceHealth.OK
            run = service.submit_run("mini", 0.0, 5000.0)
            assert run.wait(timeout=10.0)
            assert run.state is JobState.DONE
            # the healthy run cached its diagnoses (including symptom 0,
            # whose degraded result was rightly never stored), so both
            # repeat lookups now hit
            for _ in range(2):
                job = service.submit_diagnosis("mini", [symptoms[0]])
                assert job.wait(timeout=10.0)
            assert service.metrics.cache_hits.value == 2
        finally:
            service.shutdown(timeout=10.0)


class TestChaosStorm:
    def test_mixed_fault_storm_settles_with_zero_loss(self, mini_app, seed_scene):
        seed_scene(mini_app.store, n=9)
        service, injector = chaos_service(
            mini_app,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.005,
                              backoff_max=0.01),
        )
        try:
            injector.crash_when(times=2)
            injector.fail_when(lambda: TransientError("blip"), times=2)
            injector.delay_when(0.01, times=3)
            symptoms = list(mini_app.find_symptoms(0.0, 10_000.0))
            jobs = [
                service.submit_diagnosis("mini", [symptom])
                for symptom in symptoms
            ]
            for job in jobs:
                assert job.wait(timeout=20.0)
            assert_recovered(service, jobs)
            # zero loss: crashes were failed over, blips retried — every
            # job finished DONE despite 7 injected faults
            assert all(job.state is JobState.DONE for job in jobs)
            assert injector.fired() == 7
            assert service.metrics.worker_crashes.value == 2
            assert service.metrics.workers_restarted.value == 2
        finally:
            service.shutdown(timeout=10.0)
        assert service.pool.leaked == 0
