"""Tests for the priority job queue: ordering, admission, backpressure."""

import threading

import pytest

from repro.service.queue import (
    PRIORITY_INTERACTIVE,
    PRIORITY_PERIODIC,
    Job,
    JobQueue,
    JobState,
    QueueClosed,
    QueueFull,
)


def make_job(priority=PRIORITY_INTERACTIVE, payload=None, kind="diagnose"):
    return Job(kind=kind, app="app", payload=payload, priority=priority)


class TestOrdering:
    def test_lower_priority_number_served_first(self):
        queue = JobQueue()
        periodic = queue.submit(make_job(PRIORITY_PERIODIC, "periodic"))
        interactive = queue.submit(make_job(PRIORITY_INTERACTIVE, "interactive"))
        assert queue.get() is interactive
        assert queue.get() is periodic

    def test_equal_priority_drains_fifo(self):
        queue = JobQueue()
        jobs = [queue.submit(make_job(payload=i)) for i in range(5)]
        assert [queue.get() for _ in jobs] == jobs

    def test_ties_never_compare_payloads(self):
        # dicts are unorderable; the sequence number must break the tie
        queue = JobQueue()
        queue.submit(make_job(payload={"a": 1}))
        queue.submit(make_job(payload={"b": 2}))
        assert queue.get().payload == {"a": 1}

    def test_pending_lists_service_order(self):
        queue = JobQueue()
        queue.submit(make_job(PRIORITY_PERIODIC, "late"))
        queue.submit(make_job(PRIORITY_INTERACTIVE, "soon"))
        assert [job.payload for job in queue.pending()] == ["soon", "late"]
        assert len(queue) == 2  # pending() does not dequeue


class TestAdmissionControl:
    def test_non_blocking_submit_refused_at_depth(self):
        queue = JobQueue(max_depth=2)
        queue.submit(make_job())
        queue.submit(make_job())
        with pytest.raises(QueueFull):
            queue.submit(make_job())
        assert len(queue) == 2

    def test_blocking_submit_times_out(self):
        queue = JobQueue(max_depth=1)
        queue.submit(make_job())
        with pytest.raises(QueueFull):
            queue.submit(make_job(), block=True, timeout=0.05)

    def test_blocking_submit_proceeds_when_capacity_frees(self):
        queue = JobQueue(max_depth=1)
        first = queue.submit(make_job(payload="first"))
        admitted = []

        def submit_blocked():
            admitted.append(queue.submit(make_job(payload="second"), block=True))

        thread = threading.Thread(target=submit_blocked)
        thread.start()
        assert queue.get() is first  # frees capacity
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert admitted and admitted[0].payload == "second"

    def test_min_depth_validated(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)


class TestCloseAndCancel:
    def test_submit_after_close_raises(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(QueueClosed):
            queue.submit(make_job())

    def test_close_keeps_pending_jobs(self):
        queue = JobQueue()
        job = queue.submit(make_job())
        still_pending = queue.close()
        assert still_pending == [job]
        assert queue.get() is job  # closed queue still drains

    def test_get_on_closed_empty_returns_none(self):
        queue = JobQueue()
        queue.close()
        assert queue.get(timeout=1.0) is None

    def test_cancel_pending_marks_jobs_cancelled(self):
        queue = JobQueue()
        jobs = [queue.submit(make_job(payload=i)) for i in range(3)]
        cancelled = queue.cancel_pending()
        assert sorted(job.payload for job in cancelled) == [0, 1, 2]
        assert len(queue) == 0
        for job in jobs:
            assert job.state is JobState.CANCELLED
            with pytest.raises(QueueClosed):
                job.outcome(timeout=0.1)


class TestInFlightTracking:
    def test_join_waits_for_in_flight_work(self):
        queue = JobQueue()
        queue.submit(make_job())
        queue.get()
        assert queue.in_flight == 1
        assert not queue.join(timeout=0.05)
        queue.task_done()
        assert queue.join(timeout=1.0)

    def test_task_done_without_get_raises(self):
        queue = JobQueue()
        with pytest.raises(RuntimeError):
            queue.task_done()

    def test_get_timeout_returns_none(self):
        assert JobQueue().get(timeout=0.05) is None


class TestJobHandle:
    def test_outcome_returns_result(self):
        job = make_job()
        job.mark_running(1.0)
        job.mark_done([42], 2.0)
        assert job.outcome(timeout=0.1) == [42]
        assert job.finished
        assert job.state is JobState.DONE

    def test_outcome_reraises_error(self):
        job = make_job()
        job.mark_failed(ValueError("boom"), 2.0)
        with pytest.raises(ValueError, match="boom"):
            job.outcome(timeout=0.1)

    def test_outcome_times_out_on_unfinished_job(self):
        with pytest.raises(TimeoutError):
            make_job().outcome(timeout=0.01)


class TestRequeue:
    def test_requeue_bypasses_admission_and_close(self):
        queue = JobQueue(max_depth=1)
        job = queue.submit(make_job(payload="x"))
        assert queue.get() is job
        queue.close()
        # closed AND at... the heap is empty, but a closed queue refuses
        # submit; requeue must still re-admit failed-over work
        assert queue.requeue(job) is True
        assert queue.get() is job
        queue.task_done()
        queue.task_done()

    def test_requeue_refuses_terminal_jobs(self):
        queue = JobQueue()
        job = queue.submit(make_job())
        assert queue.get() is job
        job.mark_done("result", now=1.0)
        assert queue.requeue(job) is False
        assert len(queue) == 0
        queue.task_done()

    def test_requeue_resets_state_to_pending(self):
        queue = JobQueue()
        job = queue.submit(make_job())
        assert queue.get() is job
        job.mark_running(1.0)
        assert queue.requeue(job) is True
        assert job.state is JobState.PENDING
        assert job.started_at is None


class TestConcurrencyEdges:
    """Seeded multi-thread races over the queue's accounting edges."""

    def test_submit_racing_close_loses_nothing(self):
        # every submit either lands (job is served or pending) or raises
        # QueueClosed — jobs must never vanish into a closing queue
        for seed in range(5):
            queue = JobQueue(max_depth=1024)
            accepted, refused = [], []
            lock = threading.Lock()
            start = threading.Barrier(5)

            def produce(worker_id):
                start.wait()
                for i in range(20):
                    job = make_job(payload=(worker_id, i))
                    try:
                        queue.submit(job)
                        with lock:
                            accepted.append(job)
                    except QueueClosed:
                        with lock:
                            refused.append(job)

            threads = [
                threading.Thread(target=produce, args=(w,)) for w in range(4)
            ]
            for thread in threads:
                thread.start()
            start.wait()
            queue.close()
            for thread in threads:
                thread.join(5.0)
            assert len(accepted) + len(refused) == 80
            assert sorted(
                job.payload for job in queue.pending()
            ) == sorted(job.payload for job in accepted)

    def test_cancel_pending_racing_get_serves_each_job_exactly_once(self):
        queue = JobQueue(max_depth=1024)
        jobs = [queue.submit(make_job(payload=i)) for i in range(100)]
        served = []
        lock = threading.Lock()
        stop = threading.Event()

        def consume():
            while not stop.is_set() or len(queue):
                job = queue.get(timeout=0.01)
                if job is None:
                    continue
                with lock:
                    served.append(job)
                queue.task_done()

        threads = [threading.Thread(target=consume) for _ in range(3)]
        for thread in threads:
            thread.start()
        cancelled = queue.cancel_pending()
        stop.set()
        for thread in threads:
            thread.join(5.0)
        # partition: every job was served exactly once XOR cancelled
        assert len(served) + len(cancelled) == 100
        assert len({id(job) for job in served}
                   | {id(job) for job in cancelled}) == 100
        for job in cancelled:
            assert job.state is JobState.CANCELLED
        assert queue.in_flight == 0
        assert queue.join(timeout=1.0)

    def test_join_waits_for_in_flight_job_after_cancel_pending(self):
        queue = JobQueue()
        running = queue.submit(make_job(payload="running"))
        queue.submit(make_job(payload="pending"))
        assert queue.get() is running  # now in flight
        cancelled = queue.cancel_pending()
        assert [job.payload for job in cancelled] == ["pending"]
        # the in-flight job is untouched by cancel_pending; join must
        # keep waiting for its task_done
        assert not queue.join(timeout=0.05)
        queue.task_done()
        assert queue.join(timeout=1.0)

    def test_seeded_producer_consumer_stress_settles_idle(self):
        import random

        rng = random.Random(0)
        queue = JobQueue(max_depth=32)
        total = 120
        served = []
        lock = threading.Lock()
        submitted = []

        def produce():
            for i in range(total):
                job = make_job(
                    priority=rng.choice(
                        [PRIORITY_INTERACTIVE, PRIORITY_PERIODIC]
                    ),
                    payload=i,
                )
                queue.submit(job, block=True, timeout=10.0)
                submitted.append(job)

        def consume():
            while True:
                job = queue.get(timeout=0.05)
                if job is None:
                    if queue.closed and len(queue) == 0:
                        return
                    continue
                job.mark_done(job.payload, now=0.0)
                with lock:
                    served.append(job)
                queue.task_done()

        producer = threading.Thread(target=produce)
        consumers = [threading.Thread(target=consume) for _ in range(4)]
        producer.start()
        for thread in consumers:
            thread.start()
        producer.join(30.0)
        assert not producer.is_alive()
        queue.close()
        for thread in consumers:
            thread.join(30.0)
            assert not thread.is_alive()
        assert len(served) == total
        assert len({id(job) for job in served}) == total  # nothing twice
        assert queue.in_flight == 0
        assert len(queue) == 0
        assert queue.join(timeout=1.0)
