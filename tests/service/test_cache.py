"""Tests for the watermark-keyed result cache and its invalidation."""

from dataclasses import dataclass, field
from typing import Tuple

import pytest

from repro.collector.store import DataStore
from repro.core.events import EventInstance
from repro.core.locations import Location
from repro.service.cache import CacheKey, ResultCache, cache_key
from repro.service.metrics import ServiceMetrics


@dataclass
class FakeDiagnosis:
    """Stands in for a Diagnosis: the cache only needs ``footprint``."""

    label: str
    footprint: Tuple = field(default_factory=tuple)


def symptom(start=1000.0, router="nyc-per1", name="s"):
    return EventInstance.make(name, start, start + 5.0, Location.router(router))


class TestCacheKey:
    def test_same_symptom_same_key(self):
        assert cache_key("app", symptom(), "fp") == cache_key("app", symptom(), "fp")

    def test_key_varies_by_app_fingerprint_and_symptom(self):
        base = cache_key("app", symptom(), "fp")
        assert cache_key("other", symptom(), "fp") != base
        assert cache_key("app", symptom(), "fp2") != base
        assert cache_key("app", symptom(start=2000.0), "fp") != base
        assert cache_key("app", symptom(router="chi-per1"), "fp") != base

    def test_sub_tenth_second_jitter_collapses(self):
        # identity rounds start to 0.1 s, matching the streaming dedupe
        assert cache_key("app", symptom(1000.01), "fp") == cache_key(
            "app", symptom(1000.04), "fp"
        )


class TestLookupAndStore:
    def test_miss_then_hit(self):
        metrics = ServiceMetrics()
        cache = ResultCache(metrics=metrics)
        key = cache_key("app", symptom(), "fp")
        assert cache.lookup(key) is None
        diagnosis = FakeDiagnosis("d", (("ta", 970.0, 1030.0),))
        assert cache.store(key, diagnosis, store_revision=0)
        assert cache.lookup(key) is diagnosis
        assert metrics.cache_misses.value == 1
        assert metrics.cache_hits.value == 1

    def test_restore_replaces_entry_without_duplicating_index(self):
        cache = ResultCache()
        key = cache_key("app", symptom(), "fp")
        cache.store(key, FakeDiagnosis("v1", (("ta", 0.0, 10.0),)), 0)
        cache.store(key, FakeDiagnosis("v2", (("ta", 0.0, 10.0),)), 0)
        assert len(cache) == 1
        assert cache.lookup(key).label == "v2"
        assert cache._by_table["ta"].count(key) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestLru:
    def test_oldest_entry_evicted_at_capacity(self):
        cache = ResultCache(capacity=2)
        keys = [cache_key("app", symptom(1000.0 + 100 * i), "fp") for i in range(3)]
        for i, key in enumerate(keys):
            cache.store(key, FakeDiagnosis(str(i)), 0)
        assert cache.lookup(keys[0]) is None
        assert cache.lookup(keys[1]) is not None
        assert cache.lookup(keys[2]) is not None

    def test_lookup_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        keys = [cache_key("app", symptom(1000.0 + 100 * i), "fp") for i in range(3)]
        cache.store(keys[0], FakeDiagnosis("0"), 0)
        cache.store(keys[1], FakeDiagnosis("1"), 0)
        cache.lookup(keys[0])  # 0 becomes most recent
        cache.store(keys[2], FakeDiagnosis("2"), 0)
        assert cache.lookup(keys[0]) is not None
        assert cache.lookup(keys[1]) is None

    def test_eviction_also_unindexes(self):
        cache = ResultCache(capacity=1)
        first = cache_key("app", symptom(1000.0), "fp")
        second = cache_key("app", symptom(2000.0), "fp")
        cache.store(first, FakeDiagnosis("0", (("ta", 0.0, 10.0),)), 0)
        cache.store(second, FakeDiagnosis("1", (("ta", 20.0, 30.0),)), 0)
        assert first not in cache._by_table["ta"]


class TestInvalidation:
    def test_record_inside_footprint_evicts_exactly_that_entry(self):
        metrics = ServiceMetrics()
        cache = ResultCache(metrics=metrics)
        early = cache_key("app", symptom(1000.0), "fp")
        late = cache_key("app", symptom(5000.0), "fp")
        cache.store(early, FakeDiagnosis("e", (("ta", 970.0, 1030.0),)), 0)
        cache.store(late, FakeDiagnosis("l", (("ta", 4970.0, 5030.0),)), 0)

        cache.note_insert("ta", 1010.0, revision=1)  # inside early's window
        assert cache.lookup(early) is None
        assert cache.lookup(late) is not None
        assert metrics.cache_invalidations.value == 1

    def test_record_in_other_table_evicts_nothing(self):
        cache = ResultCache()
        key = cache_key("app", symptom(), "fp")
        cache.store(key, FakeDiagnosis("d", (("ta", 970.0, 1030.0),)), 0)
        cache.note_insert("tb", 1000.0, revision=1)
        cache.note_insert("ta", 2000.0, revision=2)  # outside the window
        assert cache.lookup(key) is not None

    def test_invalidate_all(self):
        cache = ResultCache()
        for i in range(3):
            cache.store(
                cache_key("app", symptom(1000.0 + i * 100), "fp"),
                FakeDiagnosis(str(i)),
                0,
            )
        assert cache.invalidate_all() == 3
        assert len(cache) == 0

    def test_attached_store_drives_eviction(self):
        store = DataStore()
        cache = ResultCache()
        cache.attach(store)
        key = cache_key("app", symptom(), "fp")
        cache.store(key, FakeDiagnosis("d", (("ta", 970.0, 1030.0),)), 0)
        store.insert("ta", 1000.0, router="nyc-per1")  # late record lands
        assert cache.lookup(key) is None
        cache.detach(store)
        cache.store(key, FakeDiagnosis("d", (("ta", 970.0, 1030.0),)), store.revision)
        store.insert("ta", 1001.0, router="nyc-per1")
        assert cache.lookup(key) is not None  # detached: no longer notified


class TestWriteRaceSafety:
    def test_result_raced_by_relevant_insert_is_refused(self):
        cache = ResultCache()
        key = cache_key("app", symptom(), "fp")
        # computation started at revision 4; a record landed (revision 5)
        # inside the footprint before the result was published
        cache.note_insert("ta", 1000.0, revision=5)
        stale = FakeDiagnosis("stale", (("ta", 970.0, 1030.0),))
        assert not cache.store(key, stale, store_revision=4)
        assert cache.lookup(key) is None

    def test_irrelevant_insert_does_not_block_publication(self):
        cache = ResultCache()
        key = cache_key("app", symptom(), "fp")
        cache.note_insert("tb", 1000.0, revision=5)  # different table
        cache.note_insert("ta", 9000.0, revision=6)  # outside the window
        diagnosis = FakeDiagnosis("ok", (("ta", 970.0, 1030.0),))
        assert cache.store(key, diagnosis, store_revision=4)

    def test_insert_seen_before_computation_is_ignored(self):
        cache = ResultCache()
        key = cache_key("app", symptom(), "fp")
        cache.note_insert("ta", 1000.0, revision=5)
        diagnosis = FakeDiagnosis("ok", (("ta", 970.0, 1030.0),))
        # revision 5 was already visible when the diagnosis started
        assert cache.store(key, diagnosis, store_revision=5)

    def test_truncated_log_refuses_unprovable_results(self):
        cache = ResultCache(mutation_log_size=2)
        for revision in range(10, 14):  # log now holds only 12, 13
            cache.note_insert("tz", 0.0, revision=revision)
        key = cache_key("app", symptom(), "fp")
        diagnosis = FakeDiagnosis("d", (("ta", 970.0, 1030.0),))
        # computation started at revision 3: the log cannot prove no
        # relevant insert happened in (3, 12) — must refuse
        assert not cache.store(key, diagnosis, store_revision=3)
        # a current computation is still provable and cacheable
        assert cache.store(key, diagnosis, store_revision=13)


class TestMutationsSince:
    def test_returns_newer_mutations(self):
        cache = ResultCache()
        for revision in range(1, 5):
            cache.note_insert("ta", float(revision), revision=revision)
        assert cache.mutations_since(2) == [(3, "ta", 3.0), (4, "ta", 4.0)]
        assert cache.mutations_since(4) == []

    def test_gap_in_log_returns_none(self):
        cache = ResultCache(mutation_log_size=2)
        for revision in range(1, 6):  # log holds only 4, 5
            cache.note_insert("ta", float(revision), revision=revision)
        assert cache.mutations_since(1) is None
        assert cache.mutations_since(3) == [(4, "ta", 4.0), (5, "ta", 5.0)]
