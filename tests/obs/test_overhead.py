"""Tracing-off must cost (almost) nothing: the no-op path guards.

The engine's hot path is shared by every untraced diagnosis; the
tracing subsystem promises that the default :data:`NULL_TRACER` adds
no spans, no allocations that grow, and no meaningful wall-clock.  The
structural guarantees are asserted exactly; the wall-clock ratio gate
is generous (2x) and skipped on starved runners (fewer than 2 CPUs),
where scheduling noise swamps the thing being measured.
"""

import time

import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.service.workers import available_cpus


@pytest.fixture
def seeded_mini(mini_app, seed_scene):
    times = seed_scene(mini_app.store, n=12)
    symptoms = mini_app.find_symptoms(times[0] - 50.0, times[-1] + 50.0)
    return mini_app, symptoms


class TestNoOpPath:
    def test_untraced_diagnosis_attaches_no_trace(self, seeded_mini):
        mini_app, symptoms = seeded_mini
        for diagnosis in mini_app.engine.diagnose_all(symptoms):
            assert diagnosis.trace is None

    def test_null_tracer_records_nothing_through_a_full_run(self, seeded_mini):
        mini_app, symptoms = seeded_mini
        for symptom in symptoms:
            mini_app.engine.diagnose(symptom, tracer=NULL_TRACER)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.root is None
        assert NULL_TRACER.current() is None

    def test_traced_and_untraced_results_identical(self, seeded_mini):
        mini_app, symptoms = seeded_mini
        untraced = mini_app.engine.isolated().diagnose_all(symptoms)
        traced = mini_app.engine.isolated().diagnose_all(symptoms, traced=True)
        assert traced == untraced  # Diagnosis equality ignores .trace
        assert all(d.trace is not None for d in traced)

    def test_null_span_singletons_stay_empty(self, seeded_mini):
        # the shared null span's meta/children must never accumulate
        # state, no matter how much traffic flows through the engine
        mini_app, symptoms = seeded_mini
        with NULL_TRACER.span("probe") as span:
            pass
        mini_app.engine.diagnose_all(symptoms)
        assert span.meta == {} and span.children == []


class TestOverheadRatio:
    @pytest.mark.skipif(
        available_cpus() < 2,
        reason="wall-clock overhead gate needs >= 2 CPUs to be meaningful",
    )
    def test_null_tracer_overhead_within_ratio(self, seeded_mini):
        mini_app, symptoms = seeded_mini
        # warm both engines' retrieval caches so only per-call tracer
        # plumbing differs between the timed passes
        baseline_engine = mini_app.engine.isolated()
        null_engine = mini_app.engine.isolated()
        baseline_engine.diagnose_all(symptoms)
        null_engine.diagnose_all(symptoms)

        rounds = 20
        started = time.perf_counter()
        for _ in range(rounds):
            baseline_engine.diagnose_all(symptoms)
        baseline = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(rounds):
            for symptom in symptoms:
                null_engine.diagnose(symptom, tracer=NULL_TRACER)
        with_null = time.perf_counter() - started

        # generous 2x gate: the no-op path is a handful of attribute
        # lookups per call site; anything near the gate is a regression
        assert with_null <= baseline * 2.0 + 0.01, (
            f"null-tracer path took {with_null:.4f}s vs baseline "
            f"{baseline:.4f}s"
        )

    def test_enabled_tracer_records_but_stays_bounded(self, seeded_mini):
        # not a timing gate — a sanity bound on tree size so tracing
        # cannot quietly explode memory on big batches
        mini_app, symptoms = seeded_mini
        engine = mini_app.engine.isolated()
        for symptom in symptoms:
            tracer = Tracer()
            engine.diagnose(symptom, tracer=tracer)
            spans = sum(1 for _ in tracer.root.walk())
            # mini graph: 1 diagnose + 1 reason + <=3 nodes, each with
            # <=2 rules of <=4 spans plus store queries — far below 100
            assert spans < 100
