"""Fixtures for the observability tests.

Reuses the service suite's tiny deterministic app (``mini_app`` /
``seed_scene``) so overhead and no-op-path tests exercise the same
engine surface the service tests do.
"""

from tests.service.conftest import (  # noqa: F401
    health_registry,
    mini_app,
    seed_scene,
)
