"""Unit tests for the tracer, span trees and trace reports."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    SteppingClock,
    Tracer,
    format_stage_lines,
    load_trace,
    stage_breakdown,
    stage_counts,
    summarize_stages,
    trace_document,
    trace_to_json,
    write_trace,
)


def build_sample_tree():
    """outer(0..5) containing inner(1..3): 1 s of exclusive inner work."""
    tracer = Tracer(clock=SteppingClock())
    with tracer.span("outer", label="o") as outer:
        with tracer.span("inner", label="i") as inner:
            inner.count("rows", 3)
        outer.annotate(matched=1)
    return tracer


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = build_sample_tree()
        root = tracer.root
        assert root.kind == "outer"
        assert [c.kind for c in root.children] == ["inner"]
        assert tracer.current() is None  # everything closed

    def test_stepping_clock_gives_deterministic_timings(self):
        tracer = build_sample_tree()
        root = tracer.root
        # readings: outer start=0, inner start=1, inner end=2, outer end=3
        assert (root.start, root.end) == (0.0, 3.0)
        assert (root.children[0].start, root.children[0].end) == (1.0, 2.0)

    def test_self_seconds_excludes_children(self):
        root = build_sample_tree().root
        assert root.duration == 3.0
        assert root.self_seconds == 2.0  # 3 minus the child's 1
        assert root.children[0].self_seconds == 1.0

    def test_counters_and_annotations_land_in_meta(self):
        root = build_sample_tree().root
        assert root.meta == {"matched": 1}
        assert root.children[0].meta == {"rows": 3}

    def test_count_on_tracer_targets_innermost_open_span(self):
        tracer = Tracer(clock=SteppingClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.count("evals")
                tracer.count("evals")
            tracer.annotate(note="outer-level")
        assert tracer.root.children[0].meta == {"evals": 2}
        assert tracer.root.meta == {"note": "outer-level"}

    def test_mismatched_finish_raises(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError, match="nesting violated"):
            tracer.finish(outer)

    def test_finish_without_open_span_raises(self):
        with pytest.raises(RuntimeError, match="no span is open"):
            Tracer().finish()

    def test_exception_inside_span_still_closes_it(self):
        tracer = Tracer(clock=SteppingClock())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                raise ValueError("boom")
        assert tracer.current() is None
        assert tracer.root.end > tracer.root.start

    def test_walk_is_preorder(self):
        tracer = Tracer(clock=SteppingClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        assert [s.kind for s in tracer.root.walk()] == ["a", "b", "c", "d"]
        assert [s.kind for s in tracer.root.find("d")] == ["d"]


class TestNullTracer:
    def test_is_disabled_and_recordless(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.root is None
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.current() is None

    def test_span_returns_one_shared_context(self):
        first = NULL_TRACER.span("a", label="x", rows=1)
        second = NULL_TRACER.span("b")
        assert first is second  # no allocation per call
        with first as span:
            span.count("rows")
            span.annotate(ignored=True)
        assert span.meta == {}

    def test_fresh_instances_share_nothing_mutable(self):
        # NullTracer() is stateless; meta/children singletons stay empty
        tracer = NullTracer()
        with tracer.span("a") as span:
            span.count("x")
        assert span.meta == {} and span.children == []


class TestSerialization:
    def test_round_trip_preserves_shape_and_timing(self):
        root = build_sample_tree().root
        clone = Span.from_dict(root.to_dict())
        assert clone.shape() == root.shape()
        assert clone.duration == root.duration
        assert clone.children[0].meta == {"rows": 3}

    def test_shape_drops_timings(self):
        shape = build_sample_tree().root.shape()
        assert set(shape) == {"kind", "label", "meta", "children"}
        assert set(shape["children"][0]) == {"kind", "label", "meta", "children"}

    def test_json_export_is_stable_and_schema_tagged(self):
        root = build_sample_tree().root
        text = trace_to_json(root)
        assert text == trace_to_json(root)  # byte-stable
        document = json.loads(text)
        assert document["schema"] == TRACE_SCHEMA
        assert trace_document(root)["trace"]["kind"] == "outer"

    def test_write_and_load_round_trip(self, tmp_path):
        root = build_sample_tree().root
        path = tmp_path / "trace.json"
        write_trace(str(path), root)
        loaded = load_trace(str(path))
        assert loaded.shape() == root.shape()

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9", "trace": {"kind": "x"}}')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_trace(str(path))


class TestReports:
    def test_stage_breakdown_sums_to_at_most_root(self):
        root = build_sample_tree().root
        breakdown = stage_breakdown(root)
        assert breakdown == {"outer": 2.0, "inner": 1.0}
        assert sum(breakdown.values()) <= root.duration + 1e-9
        assert stage_counts(root) == {"outer": 1, "inner": 1}

    def test_summarize_stages_percentiles(self):
        breakdowns = [{"s": float(v)} for v in range(1, 101)]
        summary = summarize_stages(breakdowns)["s"]
        assert summary["count"] == 100
        assert summary["p50"] == 51.0  # nearest-rank on a sorted 1..100
        assert summary["p95"] == 96.0
        assert summary["max"] == 100.0

    def test_format_stage_lines_renders_every_stage(self):
        summary = summarize_stages([{"alpha": 0.001, "beta": 0.002}])
        lines = format_stage_lines(summary)
        assert len(lines) == 3
        assert "alpha" in lines[1] and "beta" in lines[2]
