"""Unit tests for the scorer: dimension math on synthetic outcomes."""

from types import SimpleNamespace

import pytest

from repro.eval import Scenario, Scorer
from repro.eval.runner import RunOutcome
from repro.eval.scoring import CAUSE_ALIASES, DIMENSION_WEIGHTS, _percentile
from repro.simulation import FeedFault, GroundTruth


def _diagnosis(location, start, cause, caveats=(), gaps=(), confidence=1.0,
               explained=True):
    """A duck-typed Diagnosis stub carrying only what the scorer reads."""
    return SimpleNamespace(
        symptom=SimpleNamespace(
            location=SimpleNamespace(parts=tuple(location.split("~"))),
            start=start,
        ),
        primary_cause=cause,
        caveats=tuple(caveats),
        gaps=tuple(gaps),
        confidence=confidence,
        is_explained=explained,
    )


def _truth(location, time, cause):
    return GroundTruth(symptom="s", cause=cause, time=time, location=location)


def _outcome(diagnoses, truths, app="bgp_flaps", feed_faults=()):
    scenario = Scenario(name="synthetic", description="unit fixture",
                        app=app, seed=7, size=len(truths))
    return RunOutcome(
        scenario=scenario,
        diagnoses=list(diagnoses),
        ground_truth=list(truths),
        n_symptoms=len(diagnoses),
        start=0.0,
        end=1000.0,
        feed_faults=list(feed_faults),
        latencies=[0.01] * len(diagnoses),
        wall_seconds=0.5,
    )


class TestAccuracy:
    def test_perfect_match(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 12.0, "Interface flap")]
        result = Scorer().score(_outcome(diagnoses, truths))
        assert result.dimension("accuracy").score == 100.0
        assert result.composite == 100.0

    def test_wrong_cause_misses(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 12.0, "Router reboot")]
        result = Scorer().score(_outcome(diagnoses, truths))
        assert result.dimension("accuracy").score == 0.0

    def test_nearest_truth_wins(self):
        truths = [
            _truth("a~b", 10.0, "Interface flap"),
            _truth("a~b", 500.0, "Router reboot"),
        ]
        diagnoses = [_diagnosis("a~b", 490.0, "Router reboot")]
        result = Scorer().score(_outcome(diagnoses, truths))
        assert result.dimension("accuracy").score == 100.0

    def test_cause_alias_bridges_vocabularies(self):
        truths = [_truth("dc~client", 10.0, "Link Congestions")]
        diagnoses = [_diagnosis("dc~client", 10.0, "Link congestion alarm")]
        result = Scorer().score(_outcome(diagnoses, truths, app="cdn"))
        assert result.dimension("accuracy").score == 100.0

    def test_alias_table_is_per_app(self):
        truths = [_truth("a~b", 10.0, "Link Congestions")]
        diagnoses = [_diagnosis("a~b", 10.0, "Link congestion alarm")]
        result = Scorer().score(_outcome(diagnoses, truths, app="bgp_flaps"))
        assert result.dimension("accuracy").score == 0.0

    def test_alias_apps_cover_registry_apps(self):
        assert set(CAUSE_ALIASES) == {
            "bgp_flaps", "bgp_storm", "cdn", "pim", "backbone"
        }


class TestCoverageAndLocalization:
    def test_unclaimed_truth_lowers_coverage(self):
        truths = [
            _truth("a~b", 10.0, "Interface flap"),
            _truth("c~d", 10.0, "Interface flap"),
        ]
        diagnoses = [_diagnosis("a~b", 10.0, "Interface flap")]
        result = Scorer().score(_outcome(diagnoses, truths))
        assert result.dimension("coverage").score == 50.0

    def test_far_diagnosis_not_localized(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 10.0 + 7200.0, "Interface flap")]
        result = Scorer(match_tolerance_s=3600.0).score(
            _outcome(diagnoses, truths)
        )
        assert result.dimension("localization").score == 0.0
        assert result.dimension("coverage").score == 0.0

    def test_empty_outcome_scores_zero(self):
        result = Scorer().score(_outcome([], [_truth("a~b", 1.0, "x")]))
        assert result.dimension("accuracy").score == 0.0
        assert result.dimension("coverage").score == 0.0


class TestHonesty:
    def test_no_feed_faults_is_vacuously_honest(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 10.0, "Router reboot")]
        result = Scorer().score(_outcome(diagnoses, truths))
        assert result.dimension("honesty").score == 100.0
        assert "no injected feed degradation" in result.dimension("honesty").notes

    def test_confident_wrong_in_window_is_punished(self):
        faults = [FeedFault(source="snmp", kind="outage", start=0.0, end=100.0)]
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 10.0, "Router reboot")]
        result = Scorer().score(_outcome(diagnoses, truths, feed_faults=faults))
        assert result.dimension("honesty").score == 0.0
        assert result.dimension("honesty").metrics["confident_wrong"] == 1.0

    def test_caveated_wrong_in_window_is_honest(self):
        faults = [FeedFault(source="snmp", kind="outage", start=0.0, end=100.0)]
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [
            _diagnosis("a~b", 10.0, "Router reboot",
                       caveats=("snmp feed degraded",), confidence=0.4),
        ]
        result = Scorer().score(_outcome(diagnoses, truths, feed_faults=faults))
        assert result.dimension("honesty").score == 100.0

    def test_outside_window_not_counted(self):
        faults = [FeedFault(source="snmp", kind="outage", start=500.0, end=600.0)]
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 10.0, "Router reboot")]
        result = Scorer().score(_outcome(diagnoses, truths, feed_faults=faults))
        assert result.dimension("honesty").metrics["in_window"] == 0.0
        assert result.dimension("honesty").score == 100.0


class TestResultShape:
    def test_weights_sum_to_one(self):
        assert abs(sum(DIMENSION_WEIGHTS.values()) - 1.0) < 1e-9

    def test_scores_dict_excludes_timing(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 10.0, "Interface flap")]
        result = Scorer().score(_outcome(diagnoses, truths))
        assert "timing" not in result.scores_dict()
        assert "timing" in result.to_dict(include_timing=True)
        assert "timing" not in result.to_dict(include_timing=False)

    def test_threshold_failures_report_misses(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 10.0, "Router reboot")]
        result = Scorer().score(_outcome(diagnoses, truths))
        result.thresholds = {"accuracy": 0.9, "coverage": 0.0,
                             "composite": 90.0}
        failures = result.threshold_failures()
        assert any("accuracy" in f for f in failures)
        assert any("composite" in f for f in failures)

    def test_format_lines_mention_every_dimension(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        diagnoses = [_diagnosis("a~b", 10.0, "Interface flap")]
        lines = "\n".join(Scorer().score(_outcome(diagnoses, truths)).format_lines())
        for name in DIMENSION_WEIGHTS:
            assert name in lines

    def test_dimension_lookup_raises_on_unknown(self):
        truths = [_truth("a~b", 10.0, "Interface flap")]
        result = Scorer().score(_outcome([], truths))
        with pytest.raises(KeyError):
            result.dimension("vibes")


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.50) == 51.0
        assert _percentile(values, 0.99) == 100.0

    def test_empty_is_zero(self):
        assert _percentile([], 0.5) == 0.0
