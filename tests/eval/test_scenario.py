"""Tests for the declarative scenario / failure-injection specs."""

import pytest

from repro.eval import FailureInjection, Scenario, ScenarioThresholds
from repro.eval.scenario import FEED_FAULT_KINDS, SERVICE_FAULT_KINDS


def _scenario(**overrides):
    base = dict(
        name="t", description="test scenario", app="bgp_flaps",
        seed=1, size=10,
    )
    base.update(overrides)
    return Scenario(**base)


class TestFailureInjection:
    def test_make_sorts_params(self):
        injection = FailureInjection.make(
            "feed_lag", "syslog", at_s=10.0, duration_s=20.0,
            delay=5.0, attempts=2.0,
        )
        assert injection.params == (("attempts", 2.0), ("delay", 5.0))

    def test_make_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown failure-injection kind"):
            FailureInjection.make("power_cut", "snmp")

    def test_param_lookup_and_default(self):
        injection = FailureInjection.make("feed_corruption", "snmp",
                                          probability=0.25)
        assert injection.param("probability", 1.0) == 0.25
        assert injection.param("missing", 7.0) == 7.0

    def test_injections_are_hashable(self):
        a = FailureInjection.make("feed_outage", "snmp", at_s=1.0)
        b = FailureInjection.make("feed_outage", "snmp", at_s=1.0)
        assert len({a, b}) == 1


class TestScenario:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown scenario mode"):
            _scenario(mode="batch")

    def test_engine_mode_rejects_service_faults(self):
        crash = FailureInjection.make("worker_crash", "*", times=1)
        with pytest.raises(ValueError, match="need mode 'service' or 'http'"):
            _scenario(injections=(crash,))

    def test_service_mode_accepts_service_faults(self):
        crash = FailureInjection.make("worker_crash", "*", times=1)
        scenario = _scenario(mode="service", injections=(crash,))
        assert scenario.service_injections() == (crash,)
        assert scenario.feed_injections() == ()

    def test_injection_plane_split(self):
        feed = FailureInjection.make("feed_outage", "snmp")
        svc = FailureInjection.make("worker_fail", "*", times=2)
        scenario = _scenario(mode="http", injections=(feed, svc))
        assert scenario.feed_injections() == (feed,)
        assert scenario.service_injections() == (svc,)

    def test_kind_tables_are_disjoint(self):
        assert not set(FEED_FAULT_KINDS) & set(SERVICE_FAULT_KINDS)

    def test_topology_overrides_dict(self):
        scenario = _scenario(topology=(("n_pops", 4), ("pers_per_pop", 2)))
        assert scenario.topology_overrides() == {
            "n_pops": 4, "pers_per_pop": 2,
        }

    def test_describe_mentions_gate_and_injections(self):
        feed = FailureInjection.make("feed_outage", "snmp")
        text = _scenario(gate=True, injections=(feed,)).describe()
        assert "gated" in text
        assert "1 injected failures" in text
        assert "bgp_flaps/engine" in text


class TestThresholds:
    def test_defaults_are_permissive(self):
        thresholds = ScenarioThresholds()
        assert thresholds.as_dict() == {
            "accuracy": 0.0, "coverage": 0.0, "composite": 0.0,
        }

    def test_as_dict_roundtrip(self):
        thresholds = ScenarioThresholds(accuracy=0.9, coverage=0.8,
                                        composite=85.0)
        assert thresholds.as_dict() == {
            "accuracy": 0.9, "coverage": 0.8, "composite": 85.0,
        }
