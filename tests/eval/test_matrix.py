"""Tests for the matrix artifact: document shape, gate, diff, persistence."""

import json

import pytest

from repro.eval import (
    MATRIX_SCHEMA,
    MatrixGateFailure,
    Scenario,
    ScenarioThresholds,
    Scorer,
    diff_matrices,
    ensure_gate,
    format_diff_lines,
    gate_failures,
    load_matrix,
    matrix_document,
    write_matrix,
)
from repro.eval.runner import RunOutcome
from repro.simulation import GroundTruth

from .test_scoring import _diagnosis


def _result(name="s1", cause="Interface flap", diagnosed="Interface flap",
            gate=False, accuracy_floor=0.0):
    scenario = Scenario(
        name=name, description="matrix fixture", app="bgp_flaps",
        seed=3, size=1, gate=gate,
        thresholds=ScenarioThresholds(accuracy=accuracy_floor),
    )
    outcome = RunOutcome(
        scenario=scenario,
        diagnoses=[_diagnosis("a~b", 10.0, diagnosed)],
        ground_truth=[GroundTruth(symptom="s", cause=cause, time=10.0,
                                  location="a~b")],
        n_symptoms=1,
        start=0.0,
        end=100.0,
        latencies=[0.01],
        wall_seconds=0.1,
    )
    return Scorer().score(outcome)


class TestDocument:
    def test_document_shape(self):
        document = matrix_document([_result()])
        assert document["schema"] == MATRIX_SCHEMA
        assert document["summary"]["count"] == 1
        assert document["summary"]["gate_failures"] == []
        assert document["scenarios"][0]["scenario"] == "s1"

    def test_empty_document(self):
        document = matrix_document([])
        assert document["summary"]["count"] == 0
        assert document["summary"]["composite_mean"] == 0.0

    def test_write_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_scenarios.json"
        written = write_matrix(str(path), [_result()])
        assert load_matrix(str(path)) == written

    def test_written_json_is_stable(self, tmp_path):
        results = [_result()]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_matrix(str(a), results, include_timing=False)
        write_matrix(str(b), results, include_timing=False)
        assert a.read_bytes() == b.read_bytes()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="unsupported matrix schema"):
            load_matrix(str(path))


class TestGate:
    def test_gated_miss_is_reported(self):
        results = [
            _result(name="pass", gate=True, accuracy_floor=0.5),
            _result(name="fail", diagnosed="Router reboot", gate=True,
                    accuracy_floor=0.5),
        ]
        failures = gate_failures(results)
        assert len(failures) == 1
        assert "fail: accuracy" in failures[0]

    def test_ungated_miss_is_ignored(self):
        results = [_result(name="fail", diagnosed="Router reboot",
                           gate=False, accuracy_floor=0.5)]
        assert gate_failures(results) == []
        ensure_gate(results)  # does not raise

    def test_ensure_gate_raises(self):
        results = [_result(name="fail", diagnosed="Router reboot",
                           gate=True, accuracy_floor=0.5)]
        with pytest.raises(MatrixGateFailure) as excinfo:
            ensure_gate(results)
        assert excinfo.value.failures
        assert "accuracy" in str(excinfo.value)


class TestDiff:
    def test_unchanged_added_removed(self):
        old = matrix_document([_result(name="kept"), _result(name="gone")])
        new = matrix_document([_result(name="kept"), _result(name="fresh")])
        rows = {row["scenario"]: row for row in diff_matrices(old, new)}
        assert rows["kept"]["status"] == "unchanged"
        assert rows["gone"]["status"] == "removed"
        assert rows["fresh"]["status"] == "added"

    def test_regression_is_flagged(self):
        old = matrix_document([_result(name="s1")])
        new = matrix_document([_result(name="s1", diagnosed="Router reboot")])
        (row,) = diff_matrices(old, new)
        assert row["status"] == "regressed"
        assert row["composite_delta"] < 0
        assert row["dimension_deltas"]["accuracy"] == -100.0

    def test_improvement_is_flagged(self):
        old = matrix_document([_result(name="s1", diagnosed="Router reboot")])
        new = matrix_document([_result(name="s1")])
        (row,) = diff_matrices(old, new)
        assert row["status"] == "improved"

    def test_format_lines_cover_every_row(self):
        old = matrix_document([_result(name="kept"), _result(name="gone")])
        new = matrix_document([_result(name="kept")])
        lines = format_diff_lines(diff_matrices(old, new))
        assert len(lines) == 2
        assert any("gone: removed" in line for line in lines)
