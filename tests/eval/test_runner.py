"""End-to-end tests for the scenario runner and registry (small runs)."""

import json

import pytest

from repro.eval import (
    FailureInjection,
    Scenario,
    ScenarioRunner,
    ScenarioThresholds,
    Scorer,
    all_scenarios,
    gating_scenarios,
    get_scenario,
    run_matrix,
    scenario_names,
)

TINY_TOPOLOGY = (("n_pops", 3), ("pers_per_pop", 2), ("customers_per_per", 3))


def _tiny(name="tiny_bgp", **overrides):
    base = dict(
        name=name,
        description="small bgp run for tests",
        app="bgp_flaps",
        seed=4242,
        size=20,
        topology=TINY_TOPOLOGY,
        thresholds=ScenarioThresholds(accuracy=0.5),
    )
    base.update(overrides)
    return Scenario(**base)


class TestRegistry:
    def test_names_match_scenarios(self):
        assert scenario_names() == [s.name for s in all_scenarios()]

    def test_gating_scenarios_are_the_paper_apps(self):
        gated = {s.name for s in gating_scenarios()}
        assert gated == {"bgp_month_core", "cdn_month_core",
                         "pim_fortnight_core"}

    def test_every_gated_scenario_has_thresholds(self):
        for scenario in gating_scenarios():
            assert scenario.thresholds.accuracy > 0.0
            assert scenario.thresholds.composite > 0.0

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="registered:"):
            get_scenario("nope")

    def test_no_two_scenarios_replay_the_same_run(self):
        seen = {}
        for scenario in all_scenarios():
            key = (scenario.app, scenario.seed, scenario.mode,
                   scenario.injections)
            assert key not in seen, (
                f"{scenario.name} duplicates {seen.get(key)}"
            )
            seen[key] = scenario.name


class TestEngineRun:
    def test_engine_run_diagnoses_every_symptom(self):
        outcome = ScenarioRunner().run(_tiny())
        assert outcome.n_symptoms > 0
        assert len(outcome.diagnoses) == outcome.n_symptoms
        assert len(outcome.latencies) == outcome.n_symptoms
        assert outcome.ground_truth
        assert outcome.feed_faults == []

    def test_same_seed_scores_are_byte_identical(self):
        runner, scorer = ScenarioRunner(), Scorer()
        docs = [
            json.dumps(scorer.score(runner.run(_tiny())).scores_dict(),
                       sort_keys=True)
            for _ in range(2)
        ]
        assert docs[0] == docs[1]

    def test_different_seed_changes_the_run(self):
        a = ScenarioRunner().run(_tiny())
        b = ScenarioRunner().run(_tiny(name="tiny_bgp_reseeded", seed=999))
        assert [t.time for t in a.ground_truth] != [
            t.time for t in b.ground_truth
        ]

    def test_unknown_app_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario app"):
            ScenarioRunner().simulate(_tiny(app="dns"))


class TestFeedFaultInjection:
    def test_outage_is_recorded_on_the_registry(self):
        day = 86400.0
        scenario = _tiny(
            name="tiny_bgp_outage",
            injections=(
                FailureInjection.make("feed_outage", "snmp",
                                      at_s=2 * day, duration_s=day),
            ),
        )
        outcome = ScenarioRunner().run(scenario)
        assert len(outcome.feed_faults) == 1
        fault = outcome.feed_faults[0]
        assert fault.source == "snmp"
        assert fault.end - fault.start == pytest.approx(day)

    def test_feed_faults_rejected_for_unsupported_workload(self):
        scenario = _tiny(
            name="tiny_pim_outage", app="pim", topology=(),
            injections=(FailureInjection.make("feed_outage", "snmp"),),
        )
        with pytest.raises(ValueError, match="does not support feed-fault"):
            ScenarioRunner().simulate(scenario)


class TestServiceModes:
    def test_service_mode_matches_engine_mode(self):
        engine = ScenarioRunner().run(_tiny())
        service = ScenarioRunner().run(
            _tiny(name="tiny_bgp_service", mode="service", workers=2)
        )
        assert sorted(d.primary_cause for d in service.diagnoses) == sorted(
            d.primary_cause for d in engine.diagnoses
        )
        assert service.service_metrics is not None

    def test_chaos_rules_fire_and_jobs_still_complete(self):
        scenario = _tiny(
            name="tiny_bgp_chaos", mode="service", workers=2,
            injections=(
                FailureInjection.make("worker_crash", "*", times=1),
                FailureInjection.make("worker_fail", "*", times=1),
            ),
        )
        outcome = ScenarioRunner().run(scenario)
        assert len(outcome.diagnoses) == outcome.n_symptoms
        assert outcome.chaos_fired.get("crash") == 1
        assert outcome.chaos_fired.get("fail") == 1

    @pytest.mark.slow
    def test_http_mode_round_trips_diagnoses(self):
        outcome = ScenarioRunner().run(
            _tiny(name="tiny_bgp_http", mode="http", workers=2, shards=2)
        )
        assert len(outcome.diagnoses) == outcome.n_symptoms
        engine = ScenarioRunner().run(_tiny())
        assert sorted(d.primary_cause for d in outcome.diagnoses) == sorted(
            d.primary_cause for d in engine.diagnoses
        )


class TestRunMatrix:
    def test_injected_scenarios_bypass_registry(self):
        lines = []
        results = run_matrix(scenarios=[_tiny()], progress=lines.append)
        assert len(results) == 1
        assert results[0].scenario == "tiny_bgp"
        assert lines and "tiny_bgp" in lines[0]

    def test_names_select_registered_scenarios(self):
        with pytest.raises(KeyError):
            run_matrix(names=["missing_scenario"])
