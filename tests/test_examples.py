"""Smoke tests for the shipped example scripts.

The two fastest examples run end-to-end in-process; all others are
import-checked (their full runs are exercised manually and by the
scenario/benchmark suites that share their code paths).
"""

import importlib.util
import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_module(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_expected_examples_shipped(self):
        assert "quickstart" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 8

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_imports_and_has_main(self, name):
        module = load_module(name)
        assert callable(module.main)
        assert (module.__doc__ or "").strip(), name

    def test_custom_application_runs(self, capsys):
        load_module("custom_application").main()
        out = capsys.readouterr().out
        assert "Link congestion alarm" in out
        assert "root cause:" in out

    def test_score_localization_runs(self, capsys):
        load_module("score_localization").main()
        out = capsys.readouterr().out
        assert "correctly localized" in out
