"""Tests for flap pairing, anomaly detection and interval merging."""

from hypothesis import given, strategies as st

from repro.core.knowledge.detectors import (
    TimedPoint,
    detect_shift,
    merge_intervals,
    pair_flaps,
)

import pytest


def P(t, key="k"):
    return TimedPoint(t, key)


class TestPairFlaps:
    def test_simple_pair(self):
        pairs = pair_flaps([P(100)], [P(105)], window_seconds=600)
        assert [(d.timestamp, u.timestamp) for d, u in pairs] == [(100, 105)]

    def test_up_outside_window_not_paired(self):
        assert pair_flaps([P(100)], [P(800)], window_seconds=600) == []

    def test_up_before_down_not_paired(self):
        assert pair_flaps([P(100)], [P(50)], window_seconds=600) == []

    def test_each_up_consumed_once(self):
        pairs = pair_flaps([P(100), P(110)], [P(105)], window_seconds=600)
        assert len(pairs) == 1
        assert pairs[0][0].timestamp == 100

    def test_two_full_flaps(self):
        pairs = pair_flaps([P(100), P(200)], [P(110), P(210)], window_seconds=600)
        assert [(d.timestamp, u.timestamp) for d, u in pairs] == [(100, 110), (200, 210)]

    def test_keys_kept_separate(self):
        pairs = pair_flaps([P(100, "a")], [P(105, "b")], window_seconds=600)
        assert pairs == []

    def test_unsorted_input(self):
        pairs = pair_flaps([P(200), P(100)], [P(210), P(110)], window_seconds=600)
        assert [(d.timestamp, u.timestamp) for d, u in pairs] == [(100, 110), (200, 210)]

    @given(
        st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False), max_size=30),
        st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False), max_size=30),
        st.floats(min_value=1, max_value=1e4, allow_nan=False),
    )
    def test_property_pairs_are_valid(self, downs, ups, window):
        pairs = pair_flaps([P(t) for t in downs], [P(t) for t in ups], window)
        used_ups = [u.timestamp for _, u in pairs]
        # every pair is ordered and within the window
        for down, up in pairs:
            assert down.timestamp <= up.timestamp <= down.timestamp + window
        # no up consumed twice
        assert len(used_ups) == len(set(zip(used_ups, range(len(used_ups))))) or (
            sorted(used_ups) == used_ups
        )
        assert len(pairs) <= min(len(downs), len(ups))


class TestDetectShift:
    def samples(self, values, key="pair"):
        return [(float(i * 300), key, v) for i, v in enumerate(values)]

    def test_increase_detected(self):
        anomalies = detect_shift(
            self.samples([10, 10, 10, 10, 30]), "increase", factor=1.5
        )
        assert len(anomalies) == 1
        assert anomalies[0].value == 30
        assert anomalies[0].baseline == 10

    def test_decrease_detected(self):
        anomalies = detect_shift(
            self.samples([100, 100, 100, 100, 40]), "decrease", factor=1.5
        )
        assert len(anomalies) == 1

    def test_stable_series_quiet(self):
        assert detect_shift(self.samples([10] * 20), "increase", factor=1.5) == []

    def test_needs_baseline_history(self):
        # too few prior samples: no detection possible
        assert detect_shift(self.samples([10, 100]), "increase", factor=1.5) == []

    def test_absolute_floor_suppresses_zero_baseline_noise(self):
        anomalies = detect_shift(
            self.samples([0.0, 0.0, 0.0, 0.0, 0.4]),
            "increase",
            factor=1.5,
            absolute_floor=0.5,
        )
        assert anomalies == []
        anomalies = detect_shift(
            self.samples([0.0, 0.0, 0.0, 0.0, 0.6]),
            "increase",
            factor=1.5,
            absolute_floor=0.5,
        )
        assert len(anomalies) == 1

    def test_anomalies_do_not_shift_baseline(self):
        # spike then return: second normal sample must not alarm
        values = [10, 10, 10, 10, 50, 10, 10]
        anomalies = detect_shift(self.samples(values), "increase", factor=1.5)
        assert len(anomalies) == 1

    def test_per_key_baselines_independent(self):
        samples = self.samples([10, 10, 10, 10, 30], key="a") + self.samples(
            [30, 30, 30, 30, 30], key="b"
        )
        anomalies = detect_shift(samples, "increase", factor=1.5)
        assert [a.key for a in anomalies] == ["a"]

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            detect_shift([], "sideways", factor=2.0)

    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            detect_shift([], "increase", factor=1.0)


class TestMergeIntervals:
    def test_merge_close_points(self):
        assert merge_intervals([1, 2, 3, 50], gap_seconds=5) == [(1, 3), (50, 50)]

    def test_empty(self):
        assert merge_intervals([], gap_seconds=5) == []

    def test_unsorted(self):
        assert merge_intervals([50, 1, 3, 2], gap_seconds=5) == [(1, 3), (50, 50)]

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50),
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
    )
    def test_property_intervals_cover_all_points(self, points, gap):
        intervals = merge_intervals(points, gap)
        for point in points:
            assert any(lo <= point <= hi for lo, hi in intervals)
        # intervals are disjoint and separated by more than gap
        for (a_lo, a_hi), (b_lo, b_hi) in zip(intervals, intervals[1:]):
            assert b_lo - a_hi > gap
