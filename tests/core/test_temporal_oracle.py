"""Property-based tests: the six-parameter join vs a brute-force oracle.

:meth:`TemporalJoinRule.joined` decides overlap of two expanded windows
with one comparison.  These tests pit it against an *instant-scan*
oracle that knows nothing about interval arithmetic: it walks candidate
time instants at a granularity finer than any window endpoint and asks
"is this instant inside both windows?".  With integer-valued intervals
and margins, every window endpoint (including the midpoint a collapsed
inverted window degenerates to) is a multiple of 0.5, so a 0.5-step
scan anchored on a multiple of 0.5 cannot miss a non-empty overlap.

Also pinned here, across all nine Start-End/Start-Start/End-End option
combinations and positive *and* negative margins:

* side symmetry — mirroring the rule (swapping the symptom and
  diagnostic expansions along with their intervals) never changes the
  verdict;
* containment monotonicity — growing non-negative margins never loses
  a join (not true for negative margins, where a collapsed window's
  midpoint *moves* as margins change — see the inverted-window test);
* search-window soundness — the engine prefilters store records by
  :meth:`TemporalJoinRule.search_window`; a joinable diagnostic
  instance must never fall outside it, else the engine silently drops
  evidence.  This property caught a real bug: the reach of an inverted
  window's midpoint is bounded by the *opposite* margin.
"""

from hypothesis import given, settings, strategies as st

from repro.core.temporal import (
    ExpandOption,
    TemporalExpansion,
    TemporalJoinRule,
)

# -- strategies: integer-valued rules and intervals --------------------

OPTIONS = st.sampled_from(list(ExpandOption))
MARGINS = st.integers(min_value=-60, max_value=60).map(float)
NONNEG_MARGINS = st.integers(min_value=0, max_value=60).map(float)
GROWTH = st.integers(min_value=0, max_value=40).map(float)

INTERVALS = st.tuples(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=0, max_value=50),
).map(lambda p: (float(p[0]), float(p[0] + p[1])))

EXPANSIONS = st.builds(TemporalExpansion, OPTIONS, MARGINS, MARGINS)
NONNEG_EXPANSIONS = st.builds(
    TemporalExpansion, OPTIONS, NONNEG_MARGINS, NONNEG_MARGINS
)
RULES = st.builds(TemporalJoinRule, EXPANSIONS, EXPANSIONS)


# -- the oracle --------------------------------------------------------

def oracle_window(expansion, interval):
    """Fig. 3 window, derived independently of ``expand()``'s algebra."""
    start, end = interval
    anchors = {
        ExpandOption.START_END: (start, end),
        ExpandOption.START_START: (start, start),
        ExpandOption.END_END: (end, end),
    }[expansion.option]
    lo = anchors[0] - expansion.left
    hi = anchors[1] + expansion.right
    if hi < lo:  # inverted: the paper's window is empty; the
        mid = (lo + hi) / 2.0  # implementation keeps a point at the middle
        return (mid, mid)
    return (lo, hi)


def oracle_joined(rule, symptom_interval, diagnostic_interval):
    """Instant-scan overlap: does any instant lie inside both windows?

    All endpoints are multiples of 0.5 (integer inputs), so stepping
    candidate instants by 0.5 from the smallest endpoint is exhaustive.
    """
    s_lo, s_hi = oracle_window(rule.symptom, symptom_interval)
    d_lo, d_hi = oracle_window(rule.diagnostic, diagnostic_interval)
    t = min(s_lo, d_lo)
    stop = max(s_hi, d_hi)
    while t <= stop:
        if s_lo <= t <= s_hi and d_lo <= t <= d_hi:
            return True
        t += 0.5
    return False


# -- properties --------------------------------------------------------

class TestJoinedVsOracle:
    @settings(max_examples=400)
    @given(rule=RULES, symptom=INTERVALS, diagnostic=INTERVALS)
    def test_joined_matches_instant_scan(self, rule, symptom, diagnostic):
        assert rule.joined(symptom, diagnostic) == oracle_joined(
            rule, symptom, diagnostic
        )

    @settings(max_examples=300)
    @given(rule=RULES, symptom=INTERVALS, diagnostic=INTERVALS)
    def test_side_swap_symmetry(self, rule, symptom, diagnostic):
        mirrored = TemporalJoinRule(
            symptom=rule.diagnostic, diagnostic=rule.symptom
        )
        assert rule.joined(symptom, diagnostic) == mirrored.joined(
            diagnostic, symptom
        )

    @settings(max_examples=300)
    @given(
        symptom_exp=NONNEG_EXPANSIONS,
        diagnostic_exp=NONNEG_EXPANSIONS,
        symptom=INTERVALS,
        diagnostic=INTERVALS,
        grow_left=GROWTH,
        grow_right=GROWTH,
    )
    def test_growing_nonnegative_margins_preserves_joins(
        self, symptom_exp, diagnostic_exp, symptom, diagnostic,
        grow_left, grow_right,
    ):
        rule = TemporalJoinRule(symptom_exp, diagnostic_exp)
        if not rule.joined(symptom, diagnostic):
            return
        wider = TemporalJoinRule(
            symptom=TemporalExpansion(
                symptom_exp.option,
                symptom_exp.left + grow_left,
                symptom_exp.right + grow_right,
            ),
            diagnostic=diagnostic_exp,
        )
        assert wider.joined(symptom, diagnostic)

    @settings(max_examples=400)
    @given(rule=RULES, symptom=INTERVALS, diagnostic=INTERVALS)
    def test_search_window_never_drops_joined_candidates(
        self, rule, symptom, diagnostic
    ):
        # the engine keeps a candidate iff its raw interval intersects
        # the search window (closed on both sides) — a joined pair must
        # always survive that prefilter
        if not rule.joined(symptom, diagnostic):
            return
        lo, hi = rule.search_window(symptom)
        assert diagnostic[1] >= lo and diagnostic[0] <= hi


class TestInvertedWindows:
    @settings(max_examples=200)
    @given(
        option=OPTIONS,
        interval=INTERVALS,
        left=MARGINS,
        right=MARGINS,
    )
    def test_inverted_window_collapses_to_midpoint(
        self, option, interval, left, right
    ):
        expansion = TemporalExpansion(option, left, right)
        lo, hi = expansion.expand(*interval)
        assert lo <= hi  # expand never returns an inverted window
        anchors = {
            ExpandOption.START_END: (interval[0], interval[1]),
            ExpandOption.START_START: (interval[0], interval[0]),
            ExpandOption.END_END: (interval[1], interval[1]),
        }[option]
        raw_lo = anchors[0] - left
        raw_hi = anchors[1] + right
        if raw_hi < raw_lo:
            assert lo == hi == (raw_lo + raw_hi) / 2.0
        else:
            assert (lo, hi) == (raw_lo, raw_hi)

    def test_midpoint_drift_is_why_search_window_uses_both_margins(self):
        # regression pin for the bug the oracle caught: a diagnostic
        # expansion of X=-57, Y=3 inverts for short events, and its
        # collapsed midpoint lands ~27 s right of the event — far
        # outside the old max(X, 0)/max(Y, 0) reach
        rule = TemporalJoinRule(
            symptom=TemporalExpansion(ExpandOption.START_START, -5, 27),
            diagnostic=TemporalExpansion(ExpandOption.START_START, -57, 3),
        )
        symptom = (-17.0, 29.0)
        diagnostic = (-36.0, -31.0)
        assert rule.joined(symptom, diagnostic)
        lo, hi = rule.search_window(symptom)
        assert diagnostic[1] >= lo and diagnostic[0] <= hi
