"""Tests for the Result Browser."""

import pytest

from repro.collector.store import DataStore
from repro.core.browser import ResultBrowser
from repro.core.engine import Diagnosis
from repro.core.events import EventInstance
from repro.core.graph import DiagnosisRule
from repro.core.locations import Location, LocationType
from repro.core.reasoning.rule_based import MatchedEvidence, RuleBasedResult
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import default_rule


def make_diagnosis(cause, t=1000.0, router="r1"):
    symptom = EventInstance.make("s", t, t + 10.0, Location.router(router))
    if cause is None:
        result = RuleBasedResult(root_causes=[], priority=0, supporting=[])
        evidence = []
    else:
        rule = DiagnosisRule(
            "s", cause, default_rule(),
            SpatialJoinRule(LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER),
            priority=10,
        )
        instance = EventInstance.make(cause, t, t, Location.router(router))
        evidence = [MatchedEvidence(rule, symptom, instance, 1)]
        result = RuleBasedResult(root_causes=[cause], priority=10, supporting=evidence)
    return Diagnosis(symptom=symptom, evidence=evidence, result=result)


@pytest.fixture
def browser():
    diagnoses = (
        [make_diagnosis("iface-flap", t=1000.0 + i) for i in range(6)]
        + [make_diagnosis("cpu-high", t=90000.0 + i) for i in range(3)]
        + [make_diagnosis(None, t=2000.0 + i) for i in range(1)]
    )
    return ResultBrowser(diagnoses)


class TestBreakdown:
    def test_counts_and_percentages(self, browser):
        rows = {r.root_cause: r for r in browser.breakdown()}
        assert rows["iface-flap"].count == 6
        assert rows["iface-flap"].percentage == pytest.approx(60.0)
        assert rows["cpu-high"].percentage == pytest.approx(30.0)
        assert rows["Unknown"].percentage == pytest.approx(10.0)

    def test_unknown_sorted_last(self, browser):
        assert browser.breakdown()[-1].root_cause == "Unknown"

    def test_explicit_order_respected(self, browser):
        rows = browser.breakdown(order=["cpu-high", "iface-flap"])
        assert [r.root_cause for r in rows] == ["cpu-high", "iface-flap", "Unknown"]

    def test_format_breakdown_is_paper_style(self, browser):
        text = browser.format_breakdown()
        assert "Root Cause" in text
        assert "Percentage (%)" in text
        assert "60.00" in text

    def test_explained_fraction(self, browser):
        assert browser.explained_fraction() == pytest.approx(0.9)

    def test_empty_browser(self):
        assert ResultBrowser([]).explained_fraction() == 0.0
        assert ResultBrowser([]).breakdown() == []


class TestFiltering:
    def test_filter_by_cause(self, browser):
        assert len(browser.with_cause("cpu-high")) == 3

    def test_unexplained(self, browser):
        assert len(browser.unexplained()) == 1

    def test_filter_predicate(self, browser):
        late = browser.filter(predicate=lambda d: d.symptom.start > 50000.0)
        assert len(late) == 3

    def test_filters_compose(self, browser):
        assert len(browser.filter(cause="iface-flap", explained=True)) == 6
        assert len(browser.filter(cause="iface-flap", explained=False)) == 0


class TestDrillDown:
    def test_drill_down_scopes_by_router_and_time(self, browser):
        store = DataStore()
        store.insert("syslog", 1005.0, router="r1", code="X-1-Y")
        store.insert("syslog", 1005.0, router="r2", code="X-1-Y")
        store.insert("syslog", 99999.0, router="r1", code="X-1-Y")
        diagnosis = browser.diagnoses[0]  # r1 at t=1000
        records = browser.drill_down(store, diagnosis, window_seconds=60.0)
        assert list(records) == ["syslog"]
        assert len(records["syslog"]) == 1
        assert records["syslog"][0]["router"] == "r1"

    def test_drill_down_unindexed_table_time_only(self, browser):
        store = DataStore()
        store.insert("custom", 1005.0, info="x")
        records = browser.drill_down(store, browser.diagnoses[0], window_seconds=60.0)
        assert len(records["custom"]) == 1


class TestTrend:
    def test_daily_buckets(self, browser):
        trend = browser.trend(bucket_seconds=86400.0)
        assert trend["iface-flap"] == [(0.0, 6)]
        assert trend["cpu-high"] == [(86400.0, 3)]

    def test_format_trend(self, browser):
        text = browser.format_trend()
        assert "iface-flap" in text
        assert "(no diagnoses)" == ResultBrowser([]).format_trend()

    def test_non_positive_bucket_rejected(self, browser):
        # regression: bucket_seconds=0 used to raise ZeroDivisionError
        # from deep inside the bucketing arithmetic
        for bad in (0.0, -86400.0):
            with pytest.raises(ValueError, match="bucket_seconds"):
                browser.trend(bucket_seconds=bad)
            with pytest.raises(ValueError, match="bucket_seconds"):
                browser.format_trend(bucket_seconds=bad)

    def test_pre_epoch_timestamps_floor_align(self):
        # pins the floor-alignment contract: a symptom just before the
        # epoch lands in the bucket below, not in bucket 0
        browser = ResultBrowser([make_diagnosis("iface-flap", t=-10.0)])
        trend = browser.trend(bucket_seconds=86400.0)
        assert trend["iface-flap"] == [(-86400.0, 1)]
