"""Tests for rule-based and Bayesian reasoning."""

import math

import pytest

from repro.core.events import EventInstance
from repro.core.locations import Location
from repro.core.reasoning.bayesian import (
    BayesianEngine,
    FuzzyRatio,
    RootCauseModel,
    resolve_ratio,
    train_ratios_from_labels,
)
from repro.core.reasoning.rule_based import UNKNOWN, MatchedEvidence, reason

from .test_graph import bgp_like_graph, rule  # noqa: F401  (fixture reuse)


def evidence_for(graph, parent, child, depth):
    edge = graph.rule_for_edge(parent, child)
    assert edge is not None, (parent, child)
    loc = Location.router("r1")
    return MatchedEvidence(
        rule=edge,
        parent_instance=EventInstance.make(parent, 0.0, 1.0, loc),
        instance=EventInstance.make(child, 0.0, 1.0, loc),
        depth=depth,
    )


class TestRuleBased:
    def test_no_evidence_is_unknown(self, bgp_like_graph):
        result = reason(bgp_like_graph, [])
        assert result.root_causes == []
        assert result.primary == UNKNOWN

    def test_single_match(self, bgp_like_graph):
        items = [evidence_for(bgp_like_graph, "ebgp-flap", "router-reboot", 1)]
        result = reason(bgp_like_graph, items)
        assert result.root_causes == ["router-reboot"]
        assert result.priority == 100

    def test_deeper_cause_wins_over_shallow_on_same_branch(self, bgp_like_graph):
        items = [
            evidence_for(bgp_like_graph, "ebgp-flap", "line-protocol-flap", 1),
            evidence_for(bgp_like_graph, "line-protocol-flap", "interface-flap", 2),
        ]
        result = reason(bgp_like_graph, items)
        assert result.root_causes == ["interface-flap"]

    def test_paper_priority_example(self, bgp_like_graph):
        """BGP flap joining high CPU and a layer-1 flap -> layer-1 wins."""
        items = [
            evidence_for(bgp_like_graph, "ebgp-flap", "ebgp-hte", 1),
            evidence_for(bgp_like_graph, "ebgp-hte", "cpu-high-spike", 2),
            evidence_for(bgp_like_graph, "ebgp-flap", "line-protocol-flap", 1),
            evidence_for(bgp_like_graph, "line-protocol-flap", "interface-flap", 2),
            evidence_for(bgp_like_graph, "interface-flap", "sonet-restoration", 3),
        ]
        result = reason(bgp_like_graph, items)
        assert result.root_causes == ["sonet-restoration"]
        assert result.priority == 180

    def test_intermediate_node_as_deepest_match(self, bgp_like_graph):
        """eBGP HTE with no deeper cause is itself the root cause."""
        items = [evidence_for(bgp_like_graph, "ebgp-flap", "ebgp-hte", 1)]
        result = reason(bgp_like_graph, items)
        assert result.root_causes == ["ebgp-hte"]

    def test_tie_outputs_joint_root_causes(self):
        from repro.core.graph import DiagnosisGraph

        graph = DiagnosisGraph(symptom_event="s")
        graph.add_rule(rule("s", "a", priority=10))
        graph.add_rule(rule("s", "b", priority=10))
        items = [
            evidence_for(graph, "s", "a", 1),
            evidence_for(graph, "s", "b", 1),
        ]
        result = reason(graph, items)
        assert result.root_causes == ["a", "b"]

    def test_non_root_cause_evidence_never_reported(self):
        from repro.core.graph import DiagnosisGraph

        graph = DiagnosisGraph(symptom_event="s")
        graph.add_rule(rule("s", "corroborating", priority=99, is_root_cause=False))
        items = [evidence_for(graph, "s", "corroborating", 1)]
        result = reason(graph, items)
        assert result.root_causes == []
        assert result.supporting == items  # still surfaced as evidence


class TestFuzzyRatios:
    def test_fuzzy_values_match_paper(self):
        assert resolve_ratio(FuzzyRatio.LOW) == 2.0
        assert resolve_ratio(FuzzyRatio.MEDIUM) == 100.0
        assert resolve_ratio(FuzzyRatio.HIGH) == 20000.0

    def test_string_names(self):
        assert resolve_ratio("low") == 2.0
        assert resolve_ratio("High") == 20000.0

    def test_unknown_string_rejected(self):
        with pytest.raises(ValueError):
            resolve_ratio("sorta-likely")

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_ratio(0)


class TestBayesian:
    def make_engine(self):
        return BayesianEngine(
            [
                RootCauseModel(
                    "cpu-issue",
                    prior_ratio="low",
                    evidence_ratios={"cpu-high": "high", "ebgp-hte": "medium"},
                ),
                RootCauseModel(
                    "interface-issue",
                    prior_ratio="medium",
                    evidence_ratios={"interface-flap": "high"},
                ),
                RootCauseModel(
                    "line-card-issue",
                    prior_ratio="low",
                    evidence_ratios={
                        "interface-flap": "medium",
                        "multi-session-flap": "high",
                    },
                    virtual=True,
                ),
            ]
        )

    def test_classify_ranks_by_evidence(self):
        engine = self.make_engine()
        verdict = engine.classify({"cpu-high", "ebgp-hte"})
        assert verdict.best == "cpu-issue"

    def test_absence_is_neutral_by_default(self):
        engine = self.make_engine()
        verdict = engine.classify(set())
        # only priors apply; interface-issue has the highest prior
        assert verdict.best == "interface-issue"

    def test_group_inference_flips_to_common_cause(self):
        """Many flaps each look like interface-issue individually, but a
        shared line-card feature dominates when examined together."""
        engine = self.make_engine()
        single = engine.classify({"interface-flap"})
        assert single.best == "interface-issue"
        observations = [{"interface-flap", "multi-session-flap"} for _ in range(50)]
        group = engine.classify_group(observations)
        assert group.best == "line-card-issue"

    def test_group_needs_observations(self):
        with pytest.raises(ValueError):
            self.make_engine().classify_group([])

    def test_margin_confidence(self):
        engine = self.make_engine()
        verdict = engine.classify({"cpu-high", "ebgp-hte"})
        assert verdict.margin() > 0

    def test_duplicate_model_names_rejected(self):
        with pytest.raises(ValueError):
            BayesianEngine([RootCauseModel("x"), RootCauseModel("x")])

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            BayesianEngine([])

    def test_model_lookup(self):
        engine = self.make_engine()
        assert engine.model("cpu-issue").name == "cpu-issue"
        with pytest.raises(KeyError):
            engine.model("ghost")


class TestTraining:
    def test_trained_models_recover_structure(self):
        labelled = []
        for _ in range(40):
            labelled.append(("cpu-issue", {"cpu-high", "ebgp-hte"}))
        for _ in range(60):
            labelled.append(("interface-issue", {"interface-flap"}))
        models = train_ratios_from_labels(labelled)
        engine = BayesianEngine(models)
        assert engine.classify({"cpu-high", "ebgp-hte"}).best == "cpu-issue"
        assert engine.classify({"interface-flap"}).best == "interface-issue"

    def test_training_requires_data(self):
        with pytest.raises(ValueError):
            train_ratios_from_labels([])

    def test_trained_ratios_positive_finite(self):
        labelled = [("a", {"x"}), ("b", {"y"}), ("a", {"x", "y"})]
        for model in train_ratios_from_labels(labelled):
            assert math.isfinite(resolve_ratio(model.prior_ratio))
            for ratio in model.evidence_ratios.values():
                assert resolve_ratio(ratio) > 0
