"""Round-trip tests for the spec formatter (graph -> DSL -> graph)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.bgp_flaps import BGP_FLAPS_SPEC, register_bgp_events
from repro.apps.cdn import build_cdn_graph, register_cdn_events
from repro.apps.pim import build_pim_graph, register_pim_events
from repro.core.graph import DiagnosisGraph, DiagnosisRule
from repro.core.knowledge import KnowledgeLibrary, names
from repro.core.locations import LocationType
from repro.core.rulespec import SpecCompiler, format_graph, format_rule
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import ExpandOption, TemporalExpansion, TemporalJoinRule


@pytest.fixture(scope="module")
def kb():
    return KnowledgeLibrary()


def graph_signature(graph):
    """Comparable structural form: the set of fully expanded rules."""
    return (
        graph.symptom_event,
        frozenset(
            (
                rule.parent_event,
                rule.child_event,
                rule.temporal,
                rule.spatial,
                rule.priority,
                rule.is_root_cause,
                rule.note,
            )
            for rule in graph.all_rules()
        ),
    )


class TestAppGraphRoundTrips:
    def test_bgp_graph_round_trip(self, kb):
        events = kb.scoped_events()
        register_bgp_events(events)
        compiler = SpecCompiler(events, kb.rules)
        graph = compiler.compile_text(BGP_FLAPS_SPEC)
        text = format_graph(graph)
        rebuilt = compiler.compile_text(text)
        assert graph_signature(rebuilt) == graph_signature(graph)

    def test_pim_graph_round_trip(self, kb):
        events = kb.scoped_events()
        register_pim_events(events)
        graph = build_pim_graph()
        compiler = SpecCompiler(events, kb.rules)
        rebuilt = compiler.compile_text(format_graph(graph))
        assert graph_signature(rebuilt) == graph_signature(graph)

    def test_cdn_graph_round_trip(self, kb):
        events = kb.scoped_events()
        register_cdn_events(events)
        graph = build_cdn_graph()
        compiler = SpecCompiler(events, kb.rules)
        rebuilt = compiler.compile_text(format_graph(graph))
        assert graph_signature(rebuilt) == graph_signature(graph)


class TestFormatRule:
    def make_rule(self, **overrides):
        defaults = dict(
            parent_event=names.LINEPROTO_FLAP,
            child_event=names.INTERFACE_FLAP,
            temporal=TemporalJoinRule(
                TemporalExpansion(ExpandOption.START_START, 15, 5),
                TemporalExpansion(ExpandOption.START_END, 5, 5),
            ),
            spatial=SpatialJoinRule(
                LocationType.INTERFACE, LocationType.INTERFACE, JoinLevel.INTERFACE
            ),
            priority=160,
        )
        defaults.update(overrides)
        return DiagnosisRule(**defaults)

    def test_priority_and_flags_serialized(self):
        text = format_rule(self.make_rule(is_root_cause=False, note="corroboration"))
        assert "priority 160" in text
        assert "evidence-only" in text
        assert 'note "corroboration"' in text

    def test_zero_priority_omitted(self):
        assert "priority" not in format_rule(self.make_rule(priority=0))

    def test_fractional_margins_preserved(self, kb):
        rule = self.make_rule(
            temporal=TemporalJoinRule(
                TemporalExpansion(ExpandOption.START_START, 15.5, 5.25),
                TemporalExpansion(ExpandOption.START_END, 5, 5),
            )
        )
        graph = DiagnosisGraph(symptom_event=names.LINEPROTO_FLAP)
        graph.add_rule(rule)
        compiler = SpecCompiler(kb.events, kb.rules)
        rebuilt = compiler.compile_text(format_graph(graph))
        edge = rebuilt.rule_for_edge(names.LINEPROTO_FLAP, names.INTERFACE_FLAP)
        assert edge.temporal.symptom.left == 15.5
        assert edge.temporal.symptom.right == 5.25

    def test_quote_in_name_rejected(self):
        with pytest.raises(ValueError):
            format_rule(self.make_rule(note='has "quotes"'))


# -- property test: random library-derived graphs round-trip ----------------

_LIBRARY = KnowledgeLibrary()
_PAIRS = _LIBRARY.rules.pairs()


@st.composite
def random_graphs(draw):
    """A random diagnosis graph grown from library rule templates."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**31)))
    symptom_candidates = sorted({pair[0] for pair in _PAIRS})
    symptom = rng.choice(symptom_candidates)
    graph = DiagnosisGraph(symptom_event=symptom, name="prop")
    reachable = {symptom}
    n_rules = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_rules):
        candidates = [
            (parent, child)
            for parent, child in _PAIRS
            if parent in reachable
            and graph.rule_for_edge(parent, child) is None
            and child != symptom
        ]
        if not candidates:
            break
        parent, child = rng.choice(candidates)
        priority = rng.randint(1, 300)
        evidence_only = rng.random() < 0.2
        try:
            graph.add_rule(
                _LIBRARY.rules.rule(parent, child, priority, not evidence_only)
            )
        except Exception:
            continue
        reachable.add(child)
    return graph


class TestRoundTripProperty:
    @settings(max_examples=30, deadline=None)
    @given(random_graphs())
    def test_random_graphs_round_trip(self, graph):
        if not graph.all_rules():
            return
        compiler = SpecCompiler(_LIBRARY.events, _LIBRARY.rules)
        rebuilt = compiler.compile_text(format_graph(graph))
        assert graph_signature(rebuilt) == graph_signature(graph)
