"""Tests for the Browser's markdown report and the parser fuzz gate."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.browser import ResultBrowser
from repro.core.rulespec import RuleSpecError, parse

from .test_browser import make_diagnosis


class TestMarkdownReport:
    @pytest.fixture
    def browser(self):
        return ResultBrowser(
            [make_diagnosis("iface-flap", t=1000.0 + i) for i in range(4)]
            + [make_diagnosis(None, t=90000.0)]
        )

    def test_report_sections_present(self, browser):
        text = browser.report()
        assert "# Root cause analysis report" in text
        assert "## Root cause breakdown" in text
        assert "## Daily trend" in text
        assert "## Example diagnoses" in text

    def test_breakdown_rows_rendered(self, browser):
        text = browser.report()
        assert "| iface-flap | 4 | 80.00 |" in text
        assert "| Unknown | 1 | 20.00 |" in text

    def test_one_example_per_cause(self, browser):
        text = browser.report()
        assert text.count("### iface-flap") == 1
        assert text.count("### Unknown") == 1

    def test_custom_title(self, browser):
        assert browser.report("BGP month").startswith("# BGP month")

    def test_pipes_in_cause_names_are_escaped(self):
        # regression: a cause containing "|" used to split its breakdown
        # row into extra markdown columns
        browser = ResultBrowser(
            [make_diagnosis("flap|reset (ambiguous)", t=1000.0)]
        )
        text = browser.report()
        row = next(
            line for line in text.splitlines()
            if "flap" in line and line.startswith("|")
        )
        assert "flap\\|reset (ambiguous)" in row
        # still exactly the 3 declared columns: cause, count, percentage
        assert row.count("|") - row.count("\\|") == 4

    def test_escape_markdown_cell_helper(self):
        from repro.core.browser import escape_markdown_cell

        assert escape_markdown_cell("a|b") == "a\\|b"
        assert escape_markdown_cell("a\\b") == "a\\\\b"
        assert escape_markdown_cell("a\nb") == "a b"
        assert escape_markdown_cell("plain") == "plain"

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(
            ["diagnose", "bgp-month", "--size", "20", "--seed", "6",
             "--report", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert "## Root cause breakdown" in text
        assert "report written" in capsys.readouterr().out


class TestParserFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=300))
    def test_parse_never_hangs_or_raises_foreign_errors(self, text):
        """Arbitrary input either parses or raises RuleSpecError."""
        try:
            parse(text)
        except RuleSpecError:
            pass

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                ['rule', '"a"', '->', '"b"', 'priority', '5', '{', '}',
                 'symptom', 'expand', 'start/end', 'join', 'at', 'use',
                 'library', 'application', 'evidence-only', 'note', '-3.5']
            ),
            max_size=30,
        )
    )
    def test_token_soup_never_crashes(self, tokens):
        """Token-shaped garbage exercises the parser's error paths."""
        try:
            parse(" ".join(tokens))
        except RuleSpecError:
            pass
