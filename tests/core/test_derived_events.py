"""Tests for refined (derived) event signatures — the cyclic-causality
workaround of Sections IV-B / VI."""

import pytest

from repro.collector.store import DataStore
from repro.core.events import EventDefinition, EventInstance, RetrievalContext
from repro.core.knowledge.derived import exclude_preceded_by, require_preceded_by
from repro.core.locations import Location, LocationType


def table_backed(name, table):
    def retrieve(context):
        for record in context.store.table(table).query(context.start, context.end):
            yield EventInstance.make(
                name, record.timestamp, record.timestamp,
                Location.router(record["router"]),
            )

    return EventDefinition(name, LocationType.ROUTER, retrieve)


@pytest.fixture
def setup():
    store = DataStore()
    cpu = table_backed("cpu-high", "cpu")
    flap = table_backed("bgp-flap-burst", "flaps")
    exogenous = exclude_preceded_by(
        "cpu-high-exogenous", cpu, flap, window=120.0
    )
    induced = require_preceded_by(
        "cpu-high-flap-induced", cpu, flap, window=120.0
    )
    return store, exogenous, induced


def ctx(store, start=0.0, end=10000.0):
    return RetrievalContext(store=store, start=start, end=end)


class TestExcludePrecededBy:
    def test_cycle_case_suppressed(self, setup):
        """CPU high right after a flap burst = flap-induced; excluded."""
        store, exogenous, induced = setup
        store.insert("flaps", 1000.0, router="r1")
        store.insert("cpu", 1030.0, router="r1")
        assert exogenous.retrieve(ctx(store)) == []
        assert len(induced.retrieve(ctx(store))) == 1

    def test_exogenous_case_kept(self, setup):
        store, exogenous, induced = setup
        store.insert("cpu", 1030.0, router="r1")  # no preceding flap
        kept = exogenous.retrieve(ctx(store))
        assert len(kept) == 1
        assert kept[0].name == "cpu-high-exogenous"
        assert induced.retrieve(ctx(store)) == []

    def test_suppressor_outside_window_ignored(self, setup):
        store, exogenous, _induced = setup
        store.insert("flaps", 100.0, router="r1")
        store.insert("cpu", 1030.0, router="r1")  # 930 s later: unrelated
        assert len(exogenous.retrieve(ctx(store))) == 1

    def test_suppressor_on_other_router_ignored(self, setup):
        store, exogenous, _induced = setup
        store.insert("flaps", 1000.0, router="r2")
        store.insert("cpu", 1030.0, router="r1")
        assert len(exogenous.retrieve(ctx(store))) == 1

    def test_suppressor_after_base_ignored(self, setup):
        """A flap AFTER the CPU event does not explain it (beyond slack)."""
        store, exogenous, _induced = setup
        store.insert("cpu", 1000.0, router="r1")
        store.insert("flaps", 1060.0, router="r1")
        assert len(exogenous.retrieve(ctx(store))) == 1

    def test_suppressor_just_before_window_edge(self, setup):
        store, exogenous, _induced = setup
        store.insert("flaps", 1000.0, router="r1")
        store.insert("cpu", 1120.0, router="r1")  # exactly window edge
        assert exogenous.retrieve(ctx(store)) == []

    def test_suppressor_straddling_context_start_found(self, setup):
        """The suppressor lookup widens beyond the retrieval window."""
        store, exogenous, _induced = setup
        store.insert("flaps", 980.0, router="r1")
        store.insert("cpu", 1030.0, router="r1")
        # retrieval window starts after the flap
        assert exogenous.retrieve(ctx(store, start=1000.0)) == []

    def test_derived_definition_metadata(self, setup):
        _store, exogenous, induced = setup
        assert exogenous.location_type is LocationType.ROUTER
        assert "not preceded by" in exogenous.description
        assert "preceded by" in induced.description
