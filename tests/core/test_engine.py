"""Tests for the generic RCA engine (correlation + reasoning)."""

import pytest

from repro.collector.store import DataStore
from repro.core.engine import Diagnosis, EngineConfig, RcaEngine
from repro.core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
)
from repro.core.graph import DiagnosisGraph, DiagnosisRule
from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import ExpandOption, TemporalExpansion, TemporalJoinRule


def store_backed_event(name, table, location_type=LocationType.ROUTER):
    """Event definition reading (timestamp, router) rows from a table."""

    def retrieve(context: RetrievalContext):
        for record in context.store.table(table).query(context.start, context.end):
            yield EventInstance.make(
                name, record.timestamp, record.timestamp,
                Location.router(record["router"]),
            )

    return EventDefinition(name, location_type, retrieve)


def symptom_event(name):
    def retrieve(context):
        return []

    return EventDefinition(name, LocationType.ROUTER, retrieve)


ROUTER_JOIN = SpatialJoinRule(LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER)


def temporal(left=30.0, right=30.0):
    exp = TemporalExpansion(ExpandOption.START_END, left, right)
    return TemporalJoinRule(exp, exp)


@pytest.fixture
def setup(resolver):
    """Graph s -> a -> b over store tables 'ta' and 'tb'."""
    store = DataStore()
    library = EventLibrary()
    library.register(symptom_event("s"))
    library.register(store_backed_event("a", "ta"))
    library.register(store_backed_event("b", "tb"))
    graph = DiagnosisGraph(symptom_event="s")
    graph.add_rule(
        DiagnosisRule("s", "a", temporal(), ROUTER_JOIN, priority=10)
    )
    graph.add_rule(
        DiagnosisRule("a", "b", temporal(), ROUTER_JOIN, priority=20)
    )
    engine = RcaEngine(graph, library, resolver, store)
    return store, engine


def symptom_at(t, router="nyc-per1"):
    return EventInstance.make("s", t, t + 10.0, Location.router(router))


class TestDiagnose:
    def test_no_evidence_unknown(self, setup):
        _store, engine = setup
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"
        assert not diagnosis.is_explained

    def test_single_level_match(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.root_causes == ["a"]

    def test_chained_match_goes_deeper(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        store.insert("tb", 1008.0, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.root_causes == ["b"]
        assert {e.rule.child_event for e in diagnosis.evidence} == {"a", "b"}

    def test_deep_event_without_intermediate_not_matched(self, setup):
        store, engine = setup
        store.insert("tb", 1008.0, router="nyc-per1")  # b without a
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"

    def test_temporal_filtering(self, setup):
        store, engine = setup
        store.insert("ta", 5000.0, router="nyc-per1")  # far away in time
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"

    def test_spatial_filtering(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="chi-per1")  # wrong router
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"

    def test_wrong_symptom_name_rejected(self, setup):
        _store, engine = setup
        bad = EventInstance.make("other", 0.0, 1.0, Location.router("nyc-per1"))
        with pytest.raises(ValueError):
            engine.diagnose(bad)

    def test_diagnose_all_order_preserved(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        diagnoses = engine.diagnose_all([symptom_at(1000.0), symptom_at(9000.0)])
        assert [d.primary_cause for d in diagnoses] == ["a", "Unknown"]

    def test_evidence_depth_tracked(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        store.insert("tb", 1008.0, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        depths = {e.rule.child_event: e.depth for e in diagnosis.evidence}
        assert depths == {"a": 1, "b": 2}

    def test_explain_mentions_cause(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        text = engine.diagnose(symptom_at(1000.0)).explain()
        assert "root cause: a" in text
        assert "symptom:" in text

    def test_missing_event_definition_rejected_at_build(self, setup, resolver):
        graph = DiagnosisGraph(symptom_event="ghost-symptom")
        with pytest.raises(KeyError):
            RcaEngine(graph, EventLibrary(), resolver, DataStore())

    def test_max_matches_cap(self, setup, resolver):
        store, engine = setup
        engine.config.max_matches_per_rule = 3
        for i in range(10):
            store.insert("ta", 1001.0 + i, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert len(diagnosis.evidence_for("a")) == 3

    def test_retrieval_cache_shared_across_symptoms(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        engine.diagnose(symptom_at(1000.0))
        cache_size = len(engine._retrieval_cache)
        engine.diagnose(symptom_at(1001.0))  # same bucket
        assert len(engine._retrieval_cache) == cache_size
        engine.clear_cache()
        assert not engine._retrieval_cache


class TestBucketWindow:
    def test_interior_window_rounds_outward(self):
        from repro.core.engine import bucket_window

        assert bucket_window((10.0, 119.0)) == (0.0, 120.0)

    def test_aligned_bounds_stay_put(self):
        # a window ending exactly on a bucket boundary must not pad a
        # whole phantom bucket (the seed rounded (0, 120) to (0, 180))
        from repro.core.engine import bucket_window

        assert bucket_window((0.0, 120.0)) == (0.0, 120.0)
        assert bucket_window((60.0, 60.0)) == (60.0, 60.0)

    def test_negative_timestamps_round_toward_minus_infinity(self):
        # floor semantics: the bucketed window is a superset for
        # pre-epoch timestamps too, never a shifted window
        from repro.core.engine import bucket_window

        assert bucket_window((-130.0, -70.0)) == (-180.0, -60.0)
        assert bucket_window((-10.0, -5.0)) == (-60.0, 0.0)
        assert bucket_window((-60.0, 0.0)) == (-60.0, 0.0)

    def test_cache_key_pinned_for_negative_timestamps(self, setup):
        # symptom interval [-1000, -990], both join expansions add ±30:
        # search window [-1060, -930] buckets to (-1080, -900) — a
        # floor/ceil superset, never a shifted window
        _store, engine = setup
        engine.diagnose(symptom_at(-1000.0))
        assert ("a", -1080.0, -900.0) in engine._retrieval_cache


class TestCoalesceWindows:
    def test_empty_and_single(self):
        from repro.core.engine import coalesce_windows

        assert coalesce_windows([]) == []
        assert coalesce_windows([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_overlapping_and_touching_merge(self):
        from repro.core.engine import coalesce_windows

        assert coalesce_windows([(0.0, 60.0), (30.0, 90.0)]) == [(0.0, 90.0)]
        assert coalesce_windows([(0.0, 60.0), (60.0, 120.0)]) == [(0.0, 120.0)]

    def test_disjoint_stay_separate_and_sorted(self):
        from repro.core.engine import coalesce_windows

        assert coalesce_windows([(200.0, 260.0), (0.0, 60.0)]) == [
            (0.0, 60.0),
            (200.0, 260.0),
        ]


class TestRetrievalPlanner:
    @pytest.fixture
    def counting_setup(self, resolver):
        """Graph s -> a -> b where both retrievals count their calls."""
        store = DataStore()
        library = EventLibrary()
        calls = {"a": 0, "b": 0}

        def counting_event(name, table):
            def retrieve(context):
                calls[name] += 1
                for record in context.store.table(table).query(
                    context.start, context.end
                ):
                    yield EventInstance.make(
                        name, record.timestamp, record.timestamp,
                        Location.router(record["router"]),
                    )

            return EventDefinition(name, LocationType.ROUTER, retrieve)

        library.register(symptom_event("s"))
        library.register(counting_event("a", "ta"))
        library.register(counting_event("b", "tb"))
        graph = DiagnosisGraph(symptom_event="s")
        graph.add_rule(
            DiagnosisRule("s", "a", temporal(), ROUTER_JOIN, priority=10)
        )
        graph.add_rule(
            DiagnosisRule("a", "b", temporal(), ROUTER_JOIN, priority=20)
        )
        engine = RcaEngine(graph, library, resolver, store)
        return store, engine, calls

    def test_sibling_windows_coalesce_to_one_retrieval(self, counting_setup):
        store, engine, calls = counting_setup
        # two matched 'a' parents whose bucketed 'b' windows overlap:
        # [900, 1080] and [1020, 1200] coalesce into one cover window
        store.insert("ta", 1005.0, router="nyc-per1")
        store.insert("ta", 1100.0, router="nyc-per1")
        store.insert("tb", 1008.0, router="nyc-per1")
        symptom = EventInstance.make(
            "s", 1000.0, 1101.0, Location.router("nyc-per1")
        )
        diagnosis = engine.diagnose(symptom)
        assert {e.rule.child_event for e in diagnosis.evidence} == {"a", "b"}
        assert calls["b"] == 1
        # the single cached entry covers both siblings' windows
        b_keys = [k for k in engine._retrieval_cache if k[0] == "b"]
        assert b_keys == [("b", 900.0, 1200.0)]

    def test_cover_reused_across_diagnoses(self, counting_setup):
        store, engine, calls = counting_setup
        store.insert("ta", 1005.0, router="nyc-per1")
        engine.diagnose(symptom_at(1000.0))
        retrievals_after_first = dict(calls)
        # second symptom in the same bucket range: every window is
        # contained in an existing cover, so no new retrievals run
        engine.diagnose(symptom_at(1001.0))
        assert calls == retrievals_after_first

    def test_clear_cache_drops_covers(self, counting_setup):
        store, engine, calls = counting_setup
        store.insert("ta", 1005.0, router="nyc-per1")
        engine.diagnose(symptom_at(1000.0))
        engine.clear_cache()
        assert engine._covers == {}
        engine.diagnose(symptom_at(1000.0))
        assert calls["a"] == 2

    def test_invalidation_rebuilds_covers(self, counting_setup):
        store, engine, calls = counting_setup
        store.insert("ta", 1005.0, router="nyc-per1")
        engine.diagnose(symptom_at(1000.0))
        assert engine._covers
        # a late record inside the read windows drops those entries and
        # their covers, so the next diagnosis re-retrieves
        dropped = engine.invalidate_retrievals("ta", 1006.0)
        assert dropped >= 1
        remaining = {
            (name, lo, hi) for name, windows in engine._covers.items()
            for lo, hi in windows
        }
        assert remaining == set(engine._retrieval_cache)
        calls_before = dict(calls)
        engine.diagnose(symptom_at(1000.0))
        assert calls["a"] == calls_before["a"] + 1

    def test_planner_preserves_results_vs_unplanned(self, counting_setup):
        store, engine, calls = counting_setup
        for i in range(6):
            store.insert("ta", 1000.0 + 7 * i, router="nyc-per1")
            store.insert("tb", 1002.0 + 7 * i, router="nyc-per1")
        symptom = EventInstance.make(
            "s", 1000.0, 1050.0, Location.router("nyc-per1")
        )
        planned = engine.diagnose(symptom)
        engine.clear_cache()
        # force one-retrieval-per-rule by bypassing the level plan
        unplanned_matches = {}
        for item in planned.evidence:
            key = (item.rule.child_event, item.instance)
            unplanned_matches[key] = unplanned_matches.get(key, 0) + 1
        rerun = engine.diagnose(symptom)
        rerun_matches = {}
        for item in rerun.evidence:
            key = (item.rule.child_event, item.instance)
            rerun_matches[key] = rerun_matches.get(key, 0) + 1
        assert rerun_matches == unplanned_matches
        assert rerun.result == planned.result


class TestRetrievalEviction:
    """``evict_retrievals_before``: pure cache policy, never results."""

    @pytest.fixture
    def populated(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        store.insert("tb", 1008.0, router="nyc-per1")
        first = engine.diagnose(symptom_at(1000.0))
        assert engine._retrieval_cache
        return store, engine, first

    def test_cutoff_below_covers_is_a_noop(self, populated):
        _store, engine, _first = populated
        keys = set(engine._retrieval_cache)
        assert engine.evict_retrievals_before(0.0) == 0
        assert set(engine._retrieval_cache) == keys

    def test_cutoff_above_covers_drops_everything(self, populated):
        _store, engine, _first = populated
        count = len(engine._retrieval_cache)
        assert engine.evict_retrievals_before(1e12) == count
        assert engine._retrieval_cache == {}
        assert engine._covers == {}
        assert engine._retrieval_reads == {}

    def test_partial_eviction_keeps_cover_index_consistent(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        engine.diagnose(symptom_at(1000.0))
        engine.diagnose(symptom_at(250_000.0))
        # drop only the early covers; the index must mirror the cache
        dropped = engine.evict_retrievals_before(200_000.0)
        assert dropped >= 1
        assert engine._retrieval_cache
        remaining = {
            (name, lo, hi) for name, windows in engine._covers.items()
            for lo, hi in windows
        }
        assert remaining == set(engine._retrieval_cache)

    def test_rediagnosis_after_eviction_is_identical(self, populated):
        store, engine, first = populated
        engine.evict_retrievals_before(1e12)
        again = engine.diagnose(symptom_at(1000.0))
        assert again.result == first.result
        assert [e.instance for e in again.evidence] == [
            e.instance for e in first.evidence
        ]


class TestColumnarSpatialStage:
    """Batch-mode spatial join: columnar path vs the scalar oracle."""

    def populate(self, store, routers, base=1000.0, per_router=4):
        t = base
        for _ in range(per_router):
            for router in routers:
                store.insert("ta", t, router=router)
                t += 0.25

    def matched_events(self, diagnosis):
        return [(e.rule.child_event, e.instance) for e in diagnosis.evidence]

    def test_modes_agree_across_distinct_locations(self, setup):
        store, engine = setup
        self.populate(
            store, ["nyc-per1", "nyc-per2", "chi-per1", "bos-per1"]
        )
        symptom = symptom_at(1000.0)
        engine.config.batch_joins = True
        batch = engine.diagnose(symptom)
        engine.clear_cache()
        engine.config.batch_joins = False
        scalar = engine.diagnose(symptom)
        assert self.matched_events(batch) == self.matched_events(scalar)
        # only the symptom router's candidates survive the router join
        locations = {
            e.instance.location.value
            for e in batch.evidence
            if e.rule.child_event == "a"
        }
        assert locations == {"nyc-per1"}

    def test_modes_agree_under_match_cap(self, setup):
        store, engine = setup
        self.populate(store, ["nyc-per1", "chi-per1"], per_router=9)
        engine.config.max_matches_per_rule = 5
        symptom = symptom_at(1000.0)
        engine.config.batch_joins = True
        batch = engine.diagnose(symptom)
        engine.clear_cache()
        engine.config.batch_joins = False
        scalar = engine.diagnose(symptom)
        assert self.matched_events(batch) == self.matched_events(scalar)
        assert (
            len([e for e in batch.evidence if e.rule.child_event == "a"]) == 5
        )

    def test_location_index_inverts_the_parts_column(self):
        from repro.core.engine import CandidateSet

        instances = [
            EventInstance.make("e", float(i), float(i), Location.router(name))
            for i, name in enumerate(
                ["nyc-per1", "chi-per1", "nyc-per1", "bos-per1", "nyc-per1"]
            )
        ]
        index = CandidateSet(instances).location_index
        assert index[("nyc-per1",)][1] == [0, 2, 4]
        assert index[("chi-per1",)][1] == [1]
        assert index[("bos-per1",)][1] == [3]

    def test_static_expansions_memoized_per_generation(self, resolver):
        from repro.core.engine import CandidateSet
        from repro.core.spatial import JoinLevel

        instances = [
            EventInstance.make("e", 1.0, 1.0, Location.router("nyc-per1")),
            EventInstance.make("e", 2.0, 2.0, Location.router("chi-per1")),
        ]
        candidates = CandidateSet(instances)
        first = candidates.static_expansions(resolver, JoinLevel.ROUTER, 1.0)
        assert first is not None
        assert set(first) == {("nyc-per1",), ("chi-per1",)}
        # same generation: the exact same map object comes back
        again = candidates.static_expansions(resolver, JoinLevel.ROUTER, 5.0)
        assert again is first
        # a topology change retires the memo entry
        resolver.epoch.bump_topology()
        rebuilt = candidates.static_expansions(resolver, JoinLevel.ROUTER, 5.0)
        assert rebuilt is not first
        assert rebuilt == first

    def test_dynamic_locations_decline_the_static_map(self, resolver):
        from repro.core.engine import CandidateSet
        from repro.core.spatial import JoinLevel

        instances = [
            EventInstance.make("e", 1.0, 1.0, Location.router("nyc-per1")),
            EventInstance.make(
                "e", 2.0, 2.0,
                Location.pair(
                    LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1"
                ),
            ),
        ]
        candidates = CandidateSet(instances)
        assert (
            candidates.static_expansions(resolver, JoinLevel.LOGICAL_LINK, 1.0)
            is None
        )
