"""Tests for the generic RCA engine (correlation + reasoning)."""

import pytest

from repro.collector.store import DataStore
from repro.core.engine import Diagnosis, EngineConfig, RcaEngine
from repro.core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
)
from repro.core.graph import DiagnosisGraph, DiagnosisRule
from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import ExpandOption, TemporalExpansion, TemporalJoinRule


def store_backed_event(name, table, location_type=LocationType.ROUTER):
    """Event definition reading (timestamp, router) rows from a table."""

    def retrieve(context: RetrievalContext):
        for record in context.store.table(table).query(context.start, context.end):
            yield EventInstance.make(
                name, record.timestamp, record.timestamp,
                Location.router(record["router"]),
            )

    return EventDefinition(name, location_type, retrieve)


def symptom_event(name):
    def retrieve(context):
        return []

    return EventDefinition(name, LocationType.ROUTER, retrieve)


ROUTER_JOIN = SpatialJoinRule(LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER)


def temporal(left=30.0, right=30.0):
    exp = TemporalExpansion(ExpandOption.START_END, left, right)
    return TemporalJoinRule(exp, exp)


@pytest.fixture
def setup(resolver):
    """Graph s -> a -> b over store tables 'ta' and 'tb'."""
    store = DataStore()
    library = EventLibrary()
    library.register(symptom_event("s"))
    library.register(store_backed_event("a", "ta"))
    library.register(store_backed_event("b", "tb"))
    graph = DiagnosisGraph(symptom_event="s")
    graph.add_rule(
        DiagnosisRule("s", "a", temporal(), ROUTER_JOIN, priority=10)
    )
    graph.add_rule(
        DiagnosisRule("a", "b", temporal(), ROUTER_JOIN, priority=20)
    )
    engine = RcaEngine(graph, library, resolver, store)
    return store, engine


def symptom_at(t, router="nyc-per1"):
    return EventInstance.make("s", t, t + 10.0, Location.router(router))


class TestDiagnose:
    def test_no_evidence_unknown(self, setup):
        _store, engine = setup
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"
        assert not diagnosis.is_explained

    def test_single_level_match(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.root_causes == ["a"]

    def test_chained_match_goes_deeper(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        store.insert("tb", 1008.0, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.root_causes == ["b"]
        assert {e.rule.child_event for e in diagnosis.evidence} == {"a", "b"}

    def test_deep_event_without_intermediate_not_matched(self, setup):
        store, engine = setup
        store.insert("tb", 1008.0, router="nyc-per1")  # b without a
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"

    def test_temporal_filtering(self, setup):
        store, engine = setup
        store.insert("ta", 5000.0, router="nyc-per1")  # far away in time
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"

    def test_spatial_filtering(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="chi-per1")  # wrong router
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "Unknown"

    def test_wrong_symptom_name_rejected(self, setup):
        _store, engine = setup
        bad = EventInstance.make("other", 0.0, 1.0, Location.router("nyc-per1"))
        with pytest.raises(ValueError):
            engine.diagnose(bad)

    def test_diagnose_all_order_preserved(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        diagnoses = engine.diagnose_all([symptom_at(1000.0), symptom_at(9000.0)])
        assert [d.primary_cause for d in diagnoses] == ["a", "Unknown"]

    def test_evidence_depth_tracked(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        store.insert("tb", 1008.0, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        depths = {e.rule.child_event: e.depth for e in diagnosis.evidence}
        assert depths == {"a": 1, "b": 2}

    def test_explain_mentions_cause(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        text = engine.diagnose(symptom_at(1000.0)).explain()
        assert "root cause: a" in text
        assert "symptom:" in text

    def test_missing_event_definition_rejected_at_build(self, setup, resolver):
        graph = DiagnosisGraph(symptom_event="ghost-symptom")
        with pytest.raises(KeyError):
            RcaEngine(graph, EventLibrary(), resolver, DataStore())

    def test_max_matches_cap(self, setup, resolver):
        store, engine = setup
        engine.config.max_matches_per_rule = 3
        for i in range(10):
            store.insert("ta", 1001.0 + i, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert len(diagnosis.evidence_for("a")) == 3

    def test_retrieval_cache_shared_across_symptoms(self, setup):
        store, engine = setup
        store.insert("ta", 1005.0, router="nyc-per1")
        engine.diagnose(symptom_at(1000.0))
        cache_size = len(engine._retrieval_cache)
        engine.diagnose(symptom_at(1001.0))  # same bucket
        assert len(engine._retrieval_cache) == cache_size
        engine.clear_cache()
        assert not engine._retrieval_cache
