"""Tests for the data-exploration (manual iterative analysis) tool."""

import pytest

from repro.collector.store import DataStore
from repro.core.events import EventInstance
from repro.core.exploration import (
    CoOccurrence,
    co_occurring_signatures,
    format_exploration,
)
from repro.core.locations import Location, LocationType


def anchor(t, router="r1"):
    return EventInstance.make("symptom", t, t + 10.0, Location.router(router))


@pytest.fixture
def store():
    s = DataStore()
    # a signature near every anchor (full support)
    for t in (1000.0, 5000.0, 9000.0):
        s.insert("syslog", t + 20.0, router="r1", code="PIM-5-NBRCHG")
    # a signature near one anchor only
    s.insert("workflow", 1010.0, router="r1", activity="provisioning.mvpn_config")
    # same-time records on another router: excluded by same_router
    s.insert("syslog", 1015.0, router="r9", code="SYS-5-RESTART")
    # far-away record: outside every window
    s.insert("syslog", 99999.0, router="r1", code="LINK-3-UPDOWN")
    return s


ANCHORS = [anchor(1000.0), anchor(5000.0), anchor(9000.0)]


class TestCoOccurrence:
    def test_support_ranking(self, store):
        results = co_occurring_signatures(store, ANCHORS)
        assert results[0].name == "syslog:PIM-5-NBRCHG"
        assert results[0].support == pytest.approx(1.0)
        by_name = {r.name: r for r in results}
        assert by_name["workflow:provisioning.mvpn_config"].support == pytest.approx(1 / 3)

    def test_other_router_excluded(self, store):
        results = co_occurring_signatures(store, ANCHORS)
        assert "syslog:SYS-5-RESTART" not in {r.name for r in results}

    def test_other_router_included_when_disabled(self, store):
        results = co_occurring_signatures(store, ANCHORS, same_router=False)
        assert "syslog:SYS-5-RESTART" in {r.name for r in results}

    def test_far_records_excluded(self, store):
        results = co_occurring_signatures(store, ANCHORS)
        assert "syslog:LINK-3-UPDOWN" not in {r.name for r in results}

    def test_min_support_filter(self, store):
        results = co_occurring_signatures(store, ANCHORS, min_support=0.5)
        assert {r.name for r in results} == {"syslog:PIM-5-NBRCHG"}

    def test_anchor_counted_once_per_signature(self, store):
        # add a second record of the same signature near one anchor
        store.insert("syslog", 1030.0, router="r1", code="PIM-5-NBRCHG")
        results = co_occurring_signatures(store, ANCHORS)
        top = results[0]
        assert top.anchors_hit == 3  # still 3 anchors, not 4
        assert top.record_count == 4

    def test_pair_location_anchor_uses_first_part(self, store):
        pair_anchor = EventInstance.make(
            "symptom", 1000.0, 1010.0,
            Location.pair(LocationType.INGRESS_EGRESS, "r1", "r2"),
        )
        results = co_occurring_signatures(store, [pair_anchor])
        assert "syslog:PIM-5-NBRCHG" in {r.name for r in results}

    def test_no_anchors(self, store):
        assert co_occurring_signatures(store, []) == []

    def test_example_record_kept(self, store):
        results = co_occurring_signatures(store, ANCHORS)
        assert results[0].example is not None
        assert results[0].example["code"] == "PIM-5-NBRCHG"

    def test_table_selection(self, store):
        results = co_occurring_signatures(store, ANCHORS, tables=("workflow",))
        assert {r.table for r in results} == {"workflow"}


class TestFormatting:
    def test_format_lists_ranked(self, store):
        text = format_exploration(co_occurring_signatures(store, ANCHORS))
        assert "syslog:PIM-5-NBRCHG" in text
        assert "support" in text

    def test_format_empty(self):
        assert "no co-occurring" in format_exploration([])

    def test_str_of_co_occurrence(self):
        item = CoOccurrence("syslog", "X-1-Y", 2, 0.5, 3)
        assert "support 50%" in str(item)
