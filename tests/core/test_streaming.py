"""Tests for the streaming (real-time) RCA extension."""

import random

import pytest

from repro.apps.bgp_flaps import BgpFlapApp
from repro.collector import DataCollector
from repro.core.streaming import FeedReplayer, StreamingConfig, StreamingRca
from repro.platform import GrcaPlatform
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
from repro.topology import TopologyParams, build_topology


def make_live_setup():
    """A topology, a stream of injected telemetry, and a streaming app.

    Deterministic: two calls build byte-identical pipelines, so tests
    can hold an incremental run against an independent full-replay
    oracle."""
    topo = build_topology(
        TopologyParams(n_pops=3, pers_per_pop=2, customers_per_per=4, seed=88)
    )
    emitter = TelemetryEmitter(topo, random.Random(1), syslog_jitter=1.0)
    injector = FaultInjector(topo, emitter, random.Random(2))
    customers = sorted(topo.customer_attachments)

    truths = []
    t = BASE_EPOCH + 3600.0
    truths += injector.bgp_interface_flap(t, customers[0])
    truths += injector.bgp_cpu_spike(t + 3600.0, customers[1])
    truths += injector.bgp_unknown(t + 7200.0, customers[2])
    truths += injector.bgp_customer_reset(t + 10800.0, customers[3])

    collector = DataCollector()
    for router in topo.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    platform = GrcaPlatform.from_collector(topo, collector, config_time=BASE_EPOCH)
    app = BgpFlapApp.build(platform)
    replayer = FeedReplayer(collector, emitter.buffers.replay_order())
    return topo, app, replayer, truths, t


@pytest.fixture
def live_setup():
    return make_live_setup()


class TestStreamingRca:
    def test_incremental_matches_batch(self, live_setup):
        topo, app, replayer, truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        collected = []
        now = t0 - 600.0
        while replayer.pending or (streaming.watermark or 0) < t0 + 14400.0:
            now += 900.0
            replayer.deliver_until(now)
            collected.extend(streaming.advance(now))
            if now > t0 + 20000.0:
                break
        assert len(collected) == len(truths)
        causes = sorted(d.primary_cause for d in collected)
        assert causes == sorted(t.cause for t in truths)

    def test_no_duplicate_diagnoses(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        streaming = StreamingRca(app.engine, start=t0 - 600.0)
        first = streaming.advance(t0 + 20000.0)
        again = streaming.advance(t0 + 20001.0)
        more = streaming.advance(t0 + 30000.0)
        assert len(first) == len(truths)
        assert again == []
        assert more == []

    def test_unsettled_symptom_deferred(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        streaming._start = t0 - 600.0
        # deliver everything, but advance only to just after the first flap
        replayer.deliver_until(t0 + 20000.0)
        early = streaming.advance(t0 + 100.0)  # flap not settled yet
        assert early == []
        later = streaming.advance(t0 + 20000.0)
        assert len(later) == len(truths)

    def test_callback_invoked(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        seen = []
        streaming = StreamingRca(app.engine, on_diagnosis=seen.append, start=t0 - 600.0)
        streaming.advance(t0 + 20000.0)
        assert len(seen) == len(truths)
        assert streaming.diagnosed_count == len(truths)

    def test_late_evidence_still_joins(self, live_setup):
        """Evidence delivered after the symptom (but before settling)
        must be used — the point of the settle delay."""
        topo, app, replayer, truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        # deliver only up to the middle of the first flap's message burst
        replayer.deliver_until(t0 + 1.0)
        assert streaming.advance(t0 + 2.0) == []
        replayer.deliver_until(t0 + 20000.0)
        diagnoses = streaming.advance(t0 + 20000.0)
        first = min(diagnoses, key=lambda d: d.symptom.start)
        assert first.primary_cause == "Interface flap"

    def test_watermark_monotonic(self, live_setup):
        _topo, app, replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine)
        streaming.advance(t0)
        w1 = streaming.watermark
        streaming.advance(t0 - 5000.0)  # time going backwards: no-op
        assert streaming.watermark == w1


class TestFeedReplayer:
    def test_delivery_in_time_order(self, live_setup):
        _topo, app, replayer, _truths, t0 = live_setup
        total = replayer.pending
        first = replayer.deliver_until(t0 + 1800.0)
        second = replayer.deliver_until(t0 + 20000.0)
        assert first + second == total
        assert replayer.pending == 0

    def test_nothing_delivered_before_start(self, live_setup):
        _topo, _app, replayer, _truths, t0 = live_setup
        assert replayer.deliver_until(t0 - 7200.0) == 0


class TestPlatformRefresh:
    def test_refresh_routing_picks_up_new_feeds(self):
        topo = build_topology(TopologyParams(n_pops=2, pers_per_pop=1, seed=9))
        collector = DataCollector()
        platform = GrcaPlatform.from_collector(topo, collector)
        link = sorted(topo.network.logical_links)[0]
        assert platform.paths.ospf.history.weights_at(1e9).get(link, 10) == 10
        from repro.collector.sources.ospfmon import render_ospfmon_row
        from repro.collector.sources.bgpmon import render_bgpmon_row

        collector.ingest("ospfmon", [render_ospfmon_row(100.0, link, 65535)])
        collector.ingest(
            "bgpmon", [render_bgpmon_row(100.0, "A", "198.51.100.0/24", "chi-per1")]
        )
        platform.refresh_routing()
        assert platform.paths.ospf.history.weights_at(200.0)[link] == 65535
        decision = platform.paths.bgp.best_egress("nyc-per1", "198.51.100.4", 200.0)
        assert decision.egress_router == "chi-per1"


class TestDedupePruning:
    def test_keys_older_than_horizon_pruned_on_advance(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, dedupe_horizon=3600.0)
        streaming = StreamingRca(app.engine, config, start=t0 - 600.0)
        replayer.deliver_until(t0 + 20000.0)
        # all symptoms end well before (t0 + 20000 - 420) - 3600: they
        # are diagnosed, recorded for dedupe, and immediately pruned
        assert len(streaming.advance(t0 + 20000.0)) == len(truths)
        assert streaming._seen == {}

    def test_stale_keys_pruned_even_on_idle_advance(self, live_setup):
        """Regression: the early-return path (nothing newly settled)
        must still enforce the dedupe_horizon memory bound."""
        _topo, app, replayer, _truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, dedupe_horizon=3600.0)
        streaming = StreamingRca(app.engine, config, start=t0 - 600.0)
        replayer.deliver_until(t0 + 20000.0)
        streaming.advance(t0 + 20000.0)
        # seed a synthetic stale key ending before the horizon
        streaming._seen[("ghost", ("r",), 0.0)] = t0
        # time has not moved: this advance takes the early-return path
        assert streaming.advance(t0 + 20000.0) == []
        assert ("ghost", ("r",), 0.0) not in streaming._seen

    def test_fresh_keys_survive_pruning(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, dedupe_horizon=30000.0)
        streaming = StreamingRca(app.engine, config, start=t0 - 600.0)
        replayer.deliver_until(t0 + 20000.0)
        streaming.advance(t0 + 20000.0)
        assert len(streaming._seen) == len(truths)
        streaming.advance(t0 + 20001.0)  # idle advance, horizon far away
        assert len(streaming._seen) == len(truths)


class TestWatermarkDeferral:
    def test_lagging_feed_defers_settling(self, live_setup):
        _topo, app, replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        registry = app.engine.config.health
        # the snmp feed (backing "CPU high (average)") trails by 700 s
        registry.observe("snmp", t0, 1, 0, watermark=t0 - 700.0)
        streaming.advance(t0)
        assert streaming.watermark == t0 - 700.0  # not t0 - 420

    def test_deferral_bounded(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, max_watermark_defer=300.0)
        streaming = StreamingRca(app.engine, config)
        registry = app.engine.config.health
        registry.observe("snmp", t0, 1, 0, watermark=t0 - 3000.0)
        streaming.advance(t0)
        # still LAGGING (staleness 3000 < down_seconds) but capped
        assert streaming.watermark == t0 - 420.0 - 300.0

    def test_down_feed_never_stalls_pipeline(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        registry = app.engine.config.health
        registry.observe("snmp", t0, 1, 0, watermark=t0 - 5000.0)
        assert registry.state("snmp").value == "down"
        streaming.advance(t0)
        assert streaming.watermark == t0 - 420.0

    def test_unobserved_feeds_do_not_defer(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        streaming.advance(t0)
        assert streaming.watermark == t0 - 420.0

    def test_advance_ticks_the_registry(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        registry = app.engine.config.health
        registry.observe("snmp", t0 - 5000.0, 1, 0, watermark=t0 - 5000.0)
        assert registry.state("snmp").value == "healthy"
        streaming.advance(t0)  # silence since t0-5000 noticed here
        assert registry.state("snmp").value == "down"


class TestBatchDispatcher:
    def test_dispatcher_replaces_inline_diagnosis(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        inline = StreamingRca(app.engine, start=t0 - 600.0)
        expected = inline.advance(t0 + 20000.0)

        batches = []

        def dispatch(instances):
            batches.append(list(instances))
            return app.engine.diagnose_all(instances)

        seen = []
        streaming = StreamingRca(
            app.engine, on_diagnosis=seen.append, start=t0 - 600.0,
            dispatcher=dispatch,
        )
        dispatched = streaming.advance(t0 + 20000.0)
        assert dispatched == expected
        assert len(dispatched) == len(truths)
        assert sum(len(batch) for batch in batches) == len(truths)
        assert seen == dispatched  # callback still fires per diagnosis
        assert streaming.diagnosed_count == len(truths)

    def test_dispatcher_and_inline_share_dedupe_identity(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        streaming = StreamingRca(
            app.engine, start=t0 - 600.0,
            dispatcher=lambda batch: app.engine.diagnose_all(batch),
        )
        first = streaming.advance(t0 + 20000.0)
        assert len(first) == len(truths)
        # re-advancing must not re-dispatch already-diagnosed symptoms
        assert streaming.advance(t0 + 30000.0) == []


def _staged_run(setup, config, withhold=None):
    """Drive a streaming run in 900 s ticks; return (rca, diagnoses).

    ``withhold`` keeps matching telemetry lines out of the replay; the
    caller delivers them late by hand.
    """
    _topo, app, replayer, _truths, t0 = setup
    if withhold is not None:
        replayer._stream = [
            entry for entry in replayer._stream if not withhold(entry)
        ]
    streaming = StreamingRca(app.engine, config, start=t0 - 600.0)
    collected = []
    now = t0 - 600.0
    while now < t0 + 20000.0:
        now += 900.0
        replayer.deliver_until(now)
        collected.extend(streaming.advance(now))
    return streaming, collected


class TestIncrementalRediagnosis:
    """The tentpole contract: delta-driven invalidation plus bounded
    re-diagnosis must converge to exactly what a full replay produces —
    late and out-of-order records included."""

    def test_incremental_equals_legacy_discipline(self):
        # same staged delivery, two cache disciplines: the selective
        # invalidation path must be observationally identical to
        # clear-everything-per-advance
        legacy, by_legacy = _staged_run(
            make_live_setup(), StreamingConfig(incremental=False)
        )
        incremental, by_incremental = _staged_run(
            make_live_setup(), StreamingConfig(incremental=True)
        )
        assert not legacy._subscribed and incremental._subscribed
        assert by_incremental == by_legacy  # byte-identical diagnoses

    def test_covers_behind_the_horizon_evicted_without_effect(self):
        # a tight re-open horizon lets the loop drop covers that no
        # fresh or re-opened symptom can ever request again; eviction
        # is pure cache policy, so the stream must stay byte-identical
        _legacy, by_legacy = _staged_run(
            make_live_setup(), StreamingConfig(incremental=False)
        )
        streaming, collected = _staged_run(
            make_live_setup(),
            StreamingConfig(incremental=True, reopen_horizon=900.0),
        )
        assert streaming.evicted_count > 0
        assert collected == by_legacy
        # whatever survives in the cache still ends inside the slack
        # of the final cutoff
        cutoff = (
            streaming.watermark - streaming.config.reopen_horizon - 3600.0
        )
        assert all(
            hi >= cutoff for _name, _lo, hi in streaming.engine._retrieval_cache
        )

    def test_late_evidence_reopens_and_corrects(self):
        # withhold the CPU spike's only evidence line; the symptom
        # settles with the wrong conclusion, and the late arrival must
        # re-open exactly that diagnosis and re-emit the corrected one
        # the oracle runs the same staged delivery schedule with nothing
        # withheld (feed-health history depends on the schedule, and the
        # diagnoses legitimately reflect it)
        oracle_setup = make_live_setup()
        _topo, _oracle_app, _oracle_replayer, truths, t0 = oracle_setup
        _oracle_rca, oracle_diagnoses = _staged_run(
            oracle_setup, StreamingConfig()
        )
        by_oracle = {d.symptom.interval: d for d in oracle_diagnoses}

        setup = make_live_setup()
        _topo2, app, replayer, _truths, _t0 = setup
        held = [e for e in replayer._stream if "CPUHOG" in e[2]]
        assert len(held) == 1
        streaming, collected = _staged_run(
            setup, StreamingConfig(), withhold=lambda e: "CPUHOG" in e[2]
        )
        assert len(collected) == len(truths)
        cpu_truth = next(t for t in truths if t.cause == "CPU high (spike)")
        wrong = next(
            d for d in collected
            if abs(d.symptom.start - cpu_truth.time) < 120.0
        )
        assert wrong.primary_cause != "CPU high (spike)"
        assert wrong.symptom.interval in by_oracle

        # deliver the withheld line late (out of order by hours)
        emitted = []
        streaming.on_diagnosis = emitted.append
        FeedReplayer(replayer.collector, held).deliver_until(t0 + 20000.0)
        corrected = streaming.advance(t0 + 20900.0)
        assert streaming.reopened_count >= 1
        assert streaming.reemitted_count == 1
        assert corrected == emitted
        (fixed,) = corrected
        assert fixed.symptom.interval == wrong.symptom.interval
        assert fixed.primary_cause == "CPU high (spike)"
        # the corrected diagnosis is byte-identical to the full-replay
        # oracle's (footprint and trace are provenance, excluded)
        assert fixed == by_oracle[fixed.symptom.interval]

    def test_reopen_works_even_when_nothing_new_settles(self):
        # the early-return path (watermark unchanged) must still drain
        # deltas and process re-opens: a late record with no new symptom
        # is exactly the hard case
        setup = make_live_setup()
        _topo, app, replayer, truths, t0 = setup
        held = [e for e in replayer._stream if "CPUHOG" in e[2]]
        streaming, collected = _staged_run(
            setup, StreamingConfig(), withhold=lambda e: "CPUHOG" in e[2]
        )
        assert len(collected) == len(truths)
        watermark = streaming.watermark
        FeedReplayer(replayer.collector, held).deliver_until(t0 + 20000.0)
        corrected = streaming.advance(watermark)  # time has not moved
        assert streaming.watermark == watermark
        assert [d.primary_cause for d in corrected] == ["CPU high (spike)"]

    def test_unrelated_deltas_do_not_reopen(self):
        setup = make_live_setup()
        _topo, app, replayer, truths, t0 = setup
        streaming, collected = _staged_run(setup, StreamingConfig())
        assert len(collected) == len(truths)
        # a record far outside every settled footprint
        app.engine.store.insert("syslog", t0 - 90000.0, router="chi-per1")
        assert streaming.advance(streaming.watermark) == []
        assert streaming.reopened_count == 0
        assert streaming.reemitted_count == 0

    def test_unchanged_rediagnosis_is_absorbed_silently(self):
        # a delta inside a settled footprint that does not change the
        # conclusion re-opens but must not re-emit
        setup = make_live_setup()
        _topo, app, replayer, truths, t0 = setup
        streaming, collected = _staged_run(setup, StreamingConfig())
        assert len(collected) == len(truths)
        flap = next(d for d in collected if d.primary_cause == "Interface flap")
        # a syslog record (the table every walk reads) from a router no
        # detector knows, inside the settled symptom's read windows
        app.engine.store.insert(
            "syslog", flap.symptom.start, router="ghost-per9"
        )
        assert streaming.advance(streaming.watermark) == []
        assert streaming.reopened_count >= 1
        assert streaming.reemitted_count == 0

    def test_reopen_cap_bounds_work_per_advance(self):
        setup = make_live_setup()
        _topo, app, replayer, truths, t0 = setup
        streaming, collected = _staged_run(
            setup, StreamingConfig(max_reopen_per_advance=1)
        )
        assert len(collected) == len(truths)
        # one delta per settled symptom: all four footprints are hit,
        # but only the most recent symptom may re-open
        for d in collected:
            app.engine.store.insert("syslog", d.symptom.start, router="x")
        streaming.advance(streaming.watermark)
        assert streaming.reopened_count == 1

    def test_settled_set_respects_reopen_horizon(self):
        setup = make_live_setup()
        _topo, app, replayer, truths, t0 = setup
        streaming, collected = _staged_run(
            setup, StreamingConfig(reopen_horizon=900.0)
        )
        assert len(collected) == len(truths)
        # only symptoms ending within 900 s of the watermark survive GC
        horizon = streaming.watermark - 900.0
        assert all(
            instance.end >= horizon
            for instance, _d in streaming._settled.values()
        )
        assert len(streaming._settled) < len(truths)

    def test_close_detaches_from_store(self):
        setup = make_live_setup()
        _topo, app, replayer, truths, t0 = setup
        streaming, collected = _staged_run(setup, StreamingConfig())
        assert len(collected) == len(truths)
        streaming.close()
        streaming.close()  # idempotent
        app.engine.store.insert("syslog", t0, router="chi-per1")
        assert streaming._pending == {}

    def test_lagging_feed_defers_then_incremental_catches_up(self):
        # watermark deferral and incremental re-diagnosis compose: a
        # lagging feed holds settling back, and once it heals the same
        # staged run converges to the full-replay conclusions
        setup = make_live_setup()
        _topo, app, replayer, truths, t0 = setup
        registry = app.engine.config.health
        streaming = StreamingRca(
            app.engine, StreamingConfig(settle_seconds=420.0), start=t0 - 600.0
        )
        replayer.deliver_until(t0 + 11400.0)
        # snmp trails by ~1900 s: LAGGING, so settling is held back to
        # its watermark and the customer-reset symptom (ending later)
        # stays open
        registry.observe("snmp", t0 + 11400.0, 1, 0, watermark=t0 + 9500.0)
        deferred = streaming.advance(t0 + 11400.0)
        assert streaming.watermark == t0 + 9500.0
        assert len(deferred) == len(truths) - 1
        # the feed catches up; the held symptom settles incrementally
        replayer.deliver_until(t0 + 20000.0)
        registry.observe("snmp", t0 + 20000.0, 1, 0, watermark=t0 + 20000.0)
        caught_up = streaming.advance(t0 + 20000.0)
        assert len(caught_up) == 1
        causes = sorted(d.primary_cause for d in deferred + caught_up)
        assert causes == sorted(t.cause for t in truths)
