"""Tests for the streaming (real-time) RCA extension."""

import random

import pytest

from repro.apps.bgp_flaps import BgpFlapApp
from repro.collector import DataCollector
from repro.core.streaming import FeedReplayer, StreamingConfig, StreamingRca
from repro.platform import GrcaPlatform
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
from repro.topology import TopologyParams, build_topology


@pytest.fixture
def live_setup():
    """A topology, a stream of injected telemetry, and a streaming app."""
    topo = build_topology(
        TopologyParams(n_pops=3, pers_per_pop=2, customers_per_per=4, seed=88)
    )
    emitter = TelemetryEmitter(topo, random.Random(1), syslog_jitter=1.0)
    injector = FaultInjector(topo, emitter, random.Random(2))
    customers = sorted(topo.customer_attachments)

    truths = []
    t = BASE_EPOCH + 3600.0
    truths += injector.bgp_interface_flap(t, customers[0])
    truths += injector.bgp_cpu_spike(t + 3600.0, customers[1])
    truths += injector.bgp_unknown(t + 7200.0, customers[2])
    truths += injector.bgp_customer_reset(t + 10800.0, customers[3])

    collector = DataCollector()
    for router in topo.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    platform = GrcaPlatform.from_collector(topo, collector, config_time=BASE_EPOCH)
    app = BgpFlapApp.build(platform)
    replayer = FeedReplayer(collector, emitter.buffers.replay_order())
    return topo, app, replayer, truths, t


class TestStreamingRca:
    def test_incremental_matches_batch(self, live_setup):
        topo, app, replayer, truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        collected = []
        now = t0 - 600.0
        while replayer.pending or (streaming.watermark or 0) < t0 + 14400.0:
            now += 900.0
            replayer.deliver_until(now)
            collected.extend(streaming.advance(now))
            if now > t0 + 20000.0:
                break
        assert len(collected) == len(truths)
        causes = sorted(d.primary_cause for d in collected)
        assert causes == sorted(t.cause for t in truths)

    def test_no_duplicate_diagnoses(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        streaming = StreamingRca(app.engine, start=t0 - 600.0)
        first = streaming.advance(t0 + 20000.0)
        again = streaming.advance(t0 + 20001.0)
        more = streaming.advance(t0 + 30000.0)
        assert len(first) == len(truths)
        assert again == []
        assert more == []

    def test_unsettled_symptom_deferred(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        streaming._start = t0 - 600.0
        # deliver everything, but advance only to just after the first flap
        replayer.deliver_until(t0 + 20000.0)
        early = streaming.advance(t0 + 100.0)  # flap not settled yet
        assert early == []
        later = streaming.advance(t0 + 20000.0)
        assert len(later) == len(truths)

    def test_callback_invoked(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        seen = []
        streaming = StreamingRca(app.engine, on_diagnosis=seen.append, start=t0 - 600.0)
        streaming.advance(t0 + 20000.0)
        assert len(seen) == len(truths)
        assert streaming.diagnosed_count == len(truths)

    def test_late_evidence_still_joins(self, live_setup):
        """Evidence delivered after the symptom (but before settling)
        must be used — the point of the settle delay."""
        topo, app, replayer, truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        # deliver only up to the middle of the first flap's message burst
        replayer.deliver_until(t0 + 1.0)
        assert streaming.advance(t0 + 2.0) == []
        replayer.deliver_until(t0 + 20000.0)
        diagnoses = streaming.advance(t0 + 20000.0)
        first = min(diagnoses, key=lambda d: d.symptom.start)
        assert first.primary_cause == "Interface flap"

    def test_watermark_monotonic(self, live_setup):
        _topo, app, replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine)
        streaming.advance(t0)
        w1 = streaming.watermark
        streaming.advance(t0 - 5000.0)  # time going backwards: no-op
        assert streaming.watermark == w1


class TestFeedReplayer:
    def test_delivery_in_time_order(self, live_setup):
        _topo, app, replayer, _truths, t0 = live_setup
        total = replayer.pending
        first = replayer.deliver_until(t0 + 1800.0)
        second = replayer.deliver_until(t0 + 20000.0)
        assert first + second == total
        assert replayer.pending == 0

    def test_nothing_delivered_before_start(self, live_setup):
        _topo, _app, replayer, _truths, t0 = live_setup
        assert replayer.deliver_until(t0 - 7200.0) == 0


class TestPlatformRefresh:
    def test_refresh_routing_picks_up_new_feeds(self):
        topo = build_topology(TopologyParams(n_pops=2, pers_per_pop=1, seed=9))
        collector = DataCollector()
        platform = GrcaPlatform.from_collector(topo, collector)
        link = sorted(topo.network.logical_links)[0]
        assert platform.paths.ospf.history.weights_at(1e9).get(link, 10) == 10
        from repro.collector.sources.ospfmon import render_ospfmon_row
        from repro.collector.sources.bgpmon import render_bgpmon_row

        collector.ingest("ospfmon", [render_ospfmon_row(100.0, link, 65535)])
        collector.ingest(
            "bgpmon", [render_bgpmon_row(100.0, "A", "198.51.100.0/24", "chi-per1")]
        )
        platform.refresh_routing()
        assert platform.paths.ospf.history.weights_at(200.0)[link] == 65535
        decision = platform.paths.bgp.best_egress("nyc-per1", "198.51.100.4", 200.0)
        assert decision.egress_router == "chi-per1"


class TestDedupePruning:
    def test_keys_older_than_horizon_pruned_on_advance(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, dedupe_horizon=3600.0)
        streaming = StreamingRca(app.engine, config, start=t0 - 600.0)
        replayer.deliver_until(t0 + 20000.0)
        # all symptoms end well before (t0 + 20000 - 420) - 3600: they
        # are diagnosed, recorded for dedupe, and immediately pruned
        assert len(streaming.advance(t0 + 20000.0)) == len(truths)
        assert streaming._seen == {}

    def test_stale_keys_pruned_even_on_idle_advance(self, live_setup):
        """Regression: the early-return path (nothing newly settled)
        must still enforce the dedupe_horizon memory bound."""
        _topo, app, replayer, _truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, dedupe_horizon=3600.0)
        streaming = StreamingRca(app.engine, config, start=t0 - 600.0)
        replayer.deliver_until(t0 + 20000.0)
        streaming.advance(t0 + 20000.0)
        # seed a synthetic stale key ending before the horizon
        streaming._seen[("ghost", ("r",), 0.0)] = t0
        # time has not moved: this advance takes the early-return path
        assert streaming.advance(t0 + 20000.0) == []
        assert ("ghost", ("r",), 0.0) not in streaming._seen

    def test_fresh_keys_survive_pruning(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, dedupe_horizon=30000.0)
        streaming = StreamingRca(app.engine, config, start=t0 - 600.0)
        replayer.deliver_until(t0 + 20000.0)
        streaming.advance(t0 + 20000.0)
        assert len(streaming._seen) == len(truths)
        streaming.advance(t0 + 20001.0)  # idle advance, horizon far away
        assert len(streaming._seen) == len(truths)


class TestWatermarkDeferral:
    def test_lagging_feed_defers_settling(self, live_setup):
        _topo, app, replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        registry = app.engine.config.health
        # the snmp feed (backing "CPU high (average)") trails by 700 s
        registry.observe("snmp", t0, 1, 0, watermark=t0 - 700.0)
        streaming.advance(t0)
        assert streaming.watermark == t0 - 700.0  # not t0 - 420

    def test_deferral_bounded(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        config = StreamingConfig(settle_seconds=420.0, max_watermark_defer=300.0)
        streaming = StreamingRca(app.engine, config)
        registry = app.engine.config.health
        registry.observe("snmp", t0, 1, 0, watermark=t0 - 3000.0)
        streaming.advance(t0)
        # still LAGGING (staleness 3000 < down_seconds) but capped
        assert streaming.watermark == t0 - 420.0 - 300.0

    def test_down_feed_never_stalls_pipeline(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        registry = app.engine.config.health
        registry.observe("snmp", t0, 1, 0, watermark=t0 - 5000.0)
        assert registry.state("snmp").value == "down"
        streaming.advance(t0)
        assert streaming.watermark == t0 - 420.0

    def test_unobserved_feeds_do_not_defer(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        streaming.advance(t0)
        assert streaming.watermark == t0 - 420.0

    def test_advance_ticks_the_registry(self, live_setup):
        _topo, app, _replayer, _truths, t0 = live_setup
        streaming = StreamingRca(app.engine, StreamingConfig(settle_seconds=420.0))
        registry = app.engine.config.health
        registry.observe("snmp", t0 - 5000.0, 1, 0, watermark=t0 - 5000.0)
        assert registry.state("snmp").value == "healthy"
        streaming.advance(t0)  # silence since t0-5000 noticed here
        assert registry.state("snmp").value == "down"


class TestBatchDispatcher:
    def test_dispatcher_replaces_inline_diagnosis(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        inline = StreamingRca(app.engine, start=t0 - 600.0)
        expected = inline.advance(t0 + 20000.0)

        batches = []

        def dispatch(instances):
            batches.append(list(instances))
            return app.engine.diagnose_all(instances)

        seen = []
        streaming = StreamingRca(
            app.engine, on_diagnosis=seen.append, start=t0 - 600.0,
            dispatcher=dispatch,
        )
        dispatched = streaming.advance(t0 + 20000.0)
        assert dispatched == expected
        assert len(dispatched) == len(truths)
        assert sum(len(batch) for batch in batches) == len(truths)
        assert seen == dispatched  # callback still fires per diagnosis
        assert streaming.diagnosed_count == len(truths)

    def test_dispatcher_and_inline_share_dedupe_identity(self, live_setup):
        _topo, app, replayer, truths, t0 = live_setup
        replayer.deliver_until(t0 + 20000.0)
        streaming = StreamingRca(
            app.engine, start=t0 - 600.0,
            dispatcher=lambda batch: app.engine.diagnose_all(batch),
        )
        first = streaming.advance(t0 + 20000.0)
        assert len(first) == len(truths)
        # re-advancing must not re-dispatch already-diagnosed symptoms
        assert streaming.advance(t0 + 30000.0) == []
