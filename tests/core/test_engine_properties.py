"""Engine-level properties: determinism and margin monotonicity."""

import pytest

from repro.collector.store import DataStore
from repro.core.engine import EngineConfig, RcaEngine
from repro.core.events import EventLibrary
from repro.core.graph import DiagnosisGraph, DiagnosisRule
from repro.core.locations import LocationType
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import ExpandOption, TemporalExpansion, TemporalJoinRule

from .test_engine import ROUTER_JOIN, store_backed_event, symptom_at, symptom_event


def build_engine(resolver, store, margin):
    library = EventLibrary()
    library.register(symptom_event("s"))
    library.register(store_backed_event("a", "ta"))
    graph = DiagnosisGraph(symptom_event="s")
    expansion = TemporalExpansion(ExpandOption.START_END, margin, margin)
    graph.add_rule(
        DiagnosisRule(
            "s", "a", TemporalJoinRule(expansion, expansion), ROUTER_JOIN, priority=10
        )
    )
    return RcaEngine(graph, library, resolver, store)


@pytest.fixture
def populated_store():
    store = DataStore()
    for offset in (-500.0, -120.0, -30.0, 5.0, 40.0, 300.0, 900.0):
        store.insert("ta", 1000.0 + offset, router="nyc-per1")
    store.insert("ta", 1000.0, router="chi-per1")  # wrong router, never joins
    return store


class TestMarginMonotonicity:
    def test_wider_margins_never_lose_evidence(self, resolver, populated_store):
        """Evidence sets grow monotonically with the temporal margin."""
        previous: set = set()
        for margin in (0.0, 10.0, 60.0, 200.0, 600.0, 2000.0):
            engine = build_engine(resolver, populated_store, margin)
            diagnosis = engine.diagnose(symptom_at(1000.0))
            current = {e.instance.start for e in diagnosis.evidence}
            assert previous <= current, margin
            previous = current
        # the widest margin sees every same-router record
        assert len(previous) == 7

    def test_zero_margin_sees_only_overlap(self, resolver, populated_store):
        engine = build_engine(resolver, populated_store, 0.0)
        diagnosis = engine.diagnose(symptom_at(1000.0))
        starts = {e.instance.start for e in diagnosis.evidence}
        assert starts == {1005.0}  # inside the symptom's [1000, 1010]


class TestDeterminism:
    def test_repeated_diagnosis_identical(self, resolver, populated_store):
        engine = build_engine(resolver, populated_store, 100.0)
        first = engine.diagnose(symptom_at(1000.0))
        second = engine.diagnose(symptom_at(1000.0))
        assert first.root_causes == second.root_causes
        assert [e.instance for e in first.evidence] == [
            e.instance for e in second.evidence
        ]

    def test_fresh_engine_agrees_with_warm_cache(self, resolver, populated_store):
        warm = build_engine(resolver, populated_store, 100.0)
        warm.diagnose(symptom_at(900.0))  # populate cache
        cached = warm.diagnose(symptom_at(1000.0))
        fresh = build_engine(resolver, populated_store, 100.0).diagnose(
            symptom_at(1000.0)
        )
        assert {e.instance for e in cached.evidence} == {
            e.instance for e in fresh.evidence
        }
