"""Tests for temporal join rules, including the paper's worked example."""

import pytest
from hypothesis import given, strategies as st

from repro.core.temporal import (
    ExpandOption,
    TemporalExpansion,
    TemporalJoinRule,
    default_rule,
)


class TestExpansion:
    def test_paper_example_symptom(self):
        # eBGP flap (Start/Start, X=180, Y=5) at [1000, 2000] -> [820, 1005]
        expansion = TemporalExpansion(ExpandOption.START_START, 180, 5)
        assert expansion.expand(1000, 2000) == (820.0, 1005.0)

    def test_paper_example_diagnostic(self):
        # Interface flap (Start/End, X=5, Y=5) at [900, 901] -> [895, 906]
        expansion = TemporalExpansion(ExpandOption.START_END, 5, 5)
        assert expansion.expand(900, 901) == (895.0, 906.0)

    def test_end_end(self):
        expansion = TemporalExpansion(ExpandOption.END_END, 10, 20)
        assert expansion.expand(100, 200) == (190.0, 220.0)

    def test_negative_margins_shift_inward(self):
        expansion = TemporalExpansion(ExpandOption.START_END, -10, -10)
        assert expansion.expand(100, 200) == (110.0, 190.0)

    def test_inverted_window_collapses(self):
        expansion = TemporalExpansion(ExpandOption.START_START, -50, -50)
        lo, hi = expansion.expand(100, 200)
        assert lo == hi  # empty window

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TemporalExpansion(ExpandOption.START_END, 0, 0).expand(200, 100)


class TestJoin:
    def test_paper_example_joins(self):
        rule = TemporalJoinRule(
            symptom=TemporalExpansion(ExpandOption.START_START, 180, 5),
            diagnostic=TemporalExpansion(ExpandOption.START_END, 5, 5),
        )
        assert rule.joined((1000, 2000), (900, 901))

    def test_far_apart_does_not_join(self):
        rule = default_rule()
        assert not rule.joined((1000, 1001), (2000, 2001))

    def test_touching_windows_join(self):
        rule = TemporalJoinRule(
            symptom=TemporalExpansion(ExpandOption.START_END, 0, 0),
            diagnostic=TemporalExpansion(ExpandOption.START_END, 0, 0),
        )
        assert rule.joined((100, 200), (200, 300))  # closed intervals touch

    def test_hold_timer_modelling(self):
        # diagnostic 180 s before symptom start should join via X=180
        rule = TemporalJoinRule(
            symptom=TemporalExpansion(ExpandOption.START_START, 180, 5),
            diagnostic=TemporalExpansion(ExpandOption.START_END, 5, 5),
        )
        assert rule.joined((1000, 1060), (821, 822))
        assert not rule.joined((1000, 1060), (700, 701))


class TestSearchWindow:
    def test_search_window_covers_joinable_instants(self):
        rule = TemporalJoinRule(
            symptom=TemporalExpansion(ExpandOption.START_START, 180, 5),
            diagnostic=TemporalExpansion(ExpandOption.START_END, 5, 5),
        )
        lo, hi = rule.search_window((1000, 2000))
        # a diagnostic at 820 (the left edge) must be inside
        assert lo <= 820 - 5
        assert hi >= 1005 + 5


intervals = st.tuples(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0, max_value=1e4, allow_nan=False),
).map(lambda pair: (pair[0], pair[0] + pair[1]))

margins = st.floats(min_value=0, max_value=1000, allow_nan=False)
options = st.sampled_from(list(ExpandOption))


class TestProperties:
    @given(intervals, margins, margins, options)
    def test_expansion_contains_anchor(self, interval, left, right, option):
        expansion = TemporalExpansion(option, left, right)
        lo, hi = expansion.expand(*interval)
        start, end = interval
        anchor = {
            ExpandOption.START_END: start,
            ExpandOption.START_START: start,
            ExpandOption.END_END: end,
        }[option]
        assert lo <= anchor <= hi

    @given(intervals, intervals, margins, margins, options, options)
    def test_join_is_symmetric_in_overlap(self, si, di, x, y, so, do):
        """Swapping the roles (and their expansions) preserves the join."""
        rule = TemporalJoinRule(TemporalExpansion(so, x, y), TemporalExpansion(do, x, y))
        flipped = TemporalJoinRule(TemporalExpansion(do, x, y), TemporalExpansion(so, x, y))
        assert rule.joined(si, di) == flipped.joined(di, si)

    @given(intervals, intervals, margins, margins)
    def test_wider_margins_never_unjoin(self, si, di, x, y):
        narrow = TemporalJoinRule(
            TemporalExpansion(ExpandOption.START_END, x, y),
            TemporalExpansion(ExpandOption.START_END, x, y),
        )
        wide = TemporalJoinRule(
            TemporalExpansion(ExpandOption.START_END, x + 10, y + 10),
            TemporalExpansion(ExpandOption.START_END, x + 10, y + 10),
        )
        if narrow.joined(si, di):
            assert wide.joined(si, di)

    @given(intervals, margins, margins, options, options)
    def test_search_window_is_sound(self, si, x, y, so, do):
        """Any diagnostic instant outside the search window cannot join."""
        rule = TemporalJoinRule(TemporalExpansion(so, x, y), TemporalExpansion(do, x, y))
        lo, hi = rule.search_window(si)
        for instant in (lo - 1.0, hi + 1.0):
            assert not rule.joined(si, (instant, instant))

    @given(intervals, intervals)
    def test_zero_margin_start_end_equals_interval_overlap(self, si, di):
        rule = TemporalJoinRule(
            TemporalExpansion(ExpandOption.START_END, 0, 0),
            TemporalExpansion(ExpandOption.START_END, 0, 0),
        )
        expected = si[0] <= di[1] and di[0] <= si[1]
        assert rule.joined(si, di) == expected
