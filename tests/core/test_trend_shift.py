"""Tests for the Result Browser's trend-shift view."""

import pytest

from repro.core.browser import ResultBrowser

from .test_browser import make_diagnosis


DAY = 86400.0


class TestTrendShift:
    def test_rate_jump_detected(self):
        # 5/day of cause A before the split, 20/day after
        diagnoses = []
        for day in range(4):
            for i in range(5):
                diagnoses.append(make_diagnosis("A", t=day * DAY + i * 1000.0))
        for day in range(4, 8):
            for i in range(20):
                diagnoses.append(make_diagnosis("A", t=day * DAY + i * 1000.0))
        browser = ResultBrowser(diagnoses)
        rates = browser.trend_shift(split_time=4 * DAY)
        before, after = rates["A"]
        assert after / before == pytest.approx(4.0, rel=0.3)

    def test_stable_cause_flat(self):
        diagnoses = [
            make_diagnosis("B", t=day * DAY + i * 2000.0)
            for day in range(8)
            for i in range(10)
        ]
        browser = ResultBrowser(diagnoses)
        before, after = browser.trend_shift(split_time=4 * DAY)["B"]
        assert after == pytest.approx(before, rel=0.25)

    def test_small_causes_omitted(self):
        diagnoses = [make_diagnosis("rare", t=1000.0)] + [
            make_diagnosis("common", t=i * 5000.0) for i in range(20)
        ]
        rates = ResultBrowser(diagnoses).trend_shift(split_time=50000.0)
        assert "rare" not in rates
        assert "common" in rates

    def test_empty_browser(self):
        assert ResultBrowser([]).trend_shift(split_time=0.0) == {}

    def test_unknown_tracked_as_a_cause(self):
        diagnoses = [make_diagnosis(None, t=i * 1000.0) for i in range(10)]
        rates = ResultBrowser(diagnoses).trend_shift(split_time=5000.0)
        assert "Unknown" in rates
