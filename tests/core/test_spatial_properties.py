"""Consistency properties of the location resolver.

Containment expansions must form a Galois-style correspondence: if an
interface expands to a router, that router's interface expansion must
contain the interface; cross-layer mappings must invert likewise.  The
join predicate itself must be symmetric at every level.
"""

import pytest

from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel

T = 500.0


def all_interfaces(topo):
    return [
        iface.fqname
        for router in topo.network.routers.values()
        for iface in router.interfaces
    ]


class TestContainmentDuality:
    def test_interface_router_duality(self, resolver, small_topology):
        for fq in all_interfaces(small_topology)[:40]:
            loc = Location.interface(fq)
            routers = resolver.expand(loc, JoinLevel.ROUTER, T)
            assert len(routers) == 1
            router = next(iter(routers))
            back = resolver.expand(Location.router(router), JoinLevel.INTERFACE, T)
            assert fq in back

    def test_interface_linecard_duality(self, resolver, small_topology):
        for fq in all_interfaces(small_topology)[:40]:
            loc = Location.interface(fq)
            cards = resolver.expand(loc, JoinLevel.LINE_CARD, T)
            assert len(cards) == 1
            card = next(iter(cards))
            back = resolver.expand(Location.line_card(card), JoinLevel.INTERFACE, T)
            assert fq in back

    def test_logical_physical_duality(self, resolver, small_topology):
        for link in small_topology.network.logical_links.values():
            loc = Location.logical_link(link.name)
            physical = resolver.expand(loc, JoinLevel.PHYSICAL_LINK, T)
            for phys in physical:
                back = resolver.expand(
                    Location.physical_link(phys), JoinLevel.LOGICAL_LINK, T
                )
                assert link.name in back

    def test_layer1_logical_duality(self, resolver, small_topology):
        for device in small_topology.network.layer1_devices:
            loc = Location.layer1_device(device)
            links = resolver.expand(loc, JoinLevel.LOGICAL_LINK, T)
            for link in links:
                back = resolver.expand(
                    Location.logical_link(link), JoinLevel.LAYER1_DEVICE, T
                )
                assert device in back


class TestJoinSymmetry:
    @pytest.mark.parametrize(
        "level",
        [JoinLevel.ROUTER, JoinLevel.INTERFACE, JoinLevel.LINE_CARD,
         JoinLevel.POP, JoinLevel.NETWORK],
    )
    def test_joined_is_symmetric(self, resolver, small_topology, level):
        samples = [
            Location.router("nyc-per1"),
            Location.router("chi-cr1"),
            Location.interface(all_interfaces(small_topology)[0]),
            Location.interface(all_interfaces(small_topology)[-1]),
            Location.line_card("nyc-per1:slot0"),
        ]
        for a in samples:
            for b in samples:
                assert resolver.joined(a, b, level, T) == resolver.joined(b, a, level, T)

    def test_every_resolvable_location_self_joins(self, resolver, small_topology):
        samples = [
            Location.router("nyc-per1"),
            Location.interface(all_interfaces(small_topology)[0]),
            Location.line_card("nyc-per1:slot0"),
            Location.logical_link(sorted(small_topology.network.logical_links)[0]),
        ]
        for loc in samples:
            assert resolver.joined(loc, loc, JoinLevel.ROUTER, T) or resolver.joined(
                loc, loc, JoinLevel.LOGICAL_LINK, T
            )


class TestPathExpansionConsistency:
    def test_path_interfaces_belong_to_path_routers(self, resolver):
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "dfw-per1")
        routers = resolver.expand(pair, JoinLevel.ROUTER, T)
        interfaces = resolver.expand(pair, JoinLevel.INTERFACE, T)
        for fq in interfaces:
            assert fq.partition(":")[0] in routers

    def test_path_links_connect_path_routers(self, resolver, small_topology):
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "dfw-per1")
        routers = resolver.expand(pair, JoinLevel.ROUTER, T)
        links = resolver.expand(pair, JoinLevel.LOGICAL_LINK, T)
        for name in links:
            link = small_topology.network.logical_link(name)
            assert link.router_a in routers
            assert link.router_z in routers

    def test_pop_expansion_covers_endpoints(self, resolver):
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "dfw-per1")
        pops = resolver.expand(pair, JoinLevel.POP, T)
        assert {"nyc", "dfw"} <= pops

    def test_expansion_is_deterministic(self, resolver):
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per2")
        assert resolver.expand(pair, JoinLevel.ROUTER, T) == resolver.expand(
            pair, JoinLevel.ROUTER, T
        )
