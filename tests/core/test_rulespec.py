"""Tests for the rule-specification language."""

import pytest

from repro.core.knowledge import KnowledgeLibrary, names
from repro.core.locations import LocationType
from repro.core.rulespec import RuleSpecError, SpecCompiler, parse, tokenize
from repro.core.spatial import JoinLevel
from repro.core.temporal import ExpandOption


@pytest.fixture(scope="module")
def kb():
    return KnowledgeLibrary()


@pytest.fixture
def compiler(kb):
    return SpecCompiler(kb.events, kb.rules)


GOOD_SPEC = f'''
application "demo"
symptom "{names.LINEPROTO_FLAP}"

# both styles: explicit clauses and library reuse
rule "{names.LINEPROTO_FLAP}" -> "{names.INTERFACE_FLAP}" priority 160 {{
    symptom expand start/start 15 5
    diagnostic expand start/end 5 5
    join interface interface at interface
}}
rule "{names.INTERFACE_FLAP}" -> "{names.SONET_RESTORATION}" use library priority 180
'''


class TestTokenizer:
    def test_strings_and_idents(self):
        tokens = tokenize('rule "a b" -> "c" priority 5')
        kinds = [t.kind for t in tokens]
        assert kinds == ["IDENT", "STRING", "ARROW", "STRING", "IDENT", "NUMBER"]
        assert tokens[1].text == "a b"

    def test_comments_skipped(self):
        assert tokenize("# a comment\nsymptom")[0].text == "symptom"

    def test_negative_numbers(self):
        tokens = tokenize("-5 3.5")
        assert [t.text for t in tokens] == ["-5", "3.5"]

    def test_bad_character_reports_line(self):
        with pytest.raises(RuleSpecError, match="line 2"):
            tokenize('symptom\n"unterminated @')


class TestParser:
    def test_full_spec(self):
        ast = parse(GOOD_SPEC)
        assert ast.application == "demo"
        assert ast.symptom == names.LINEPROTO_FLAP
        assert len(ast.rules) == 2
        assert ast.rules[0].priority == 160
        assert ast.rules[0].join.level == "interface"
        assert ast.rules[1].use_library

    def test_missing_symptom_rejected(self):
        with pytest.raises(RuleSpecError, match="symptom"):
            parse('application "x"')

    def test_bad_expand_option(self):
        spec = (
            'symptom "s"\nrule "s" -> "d" { symptom expand sideways 1 2 }'
        )
        with pytest.raises(RuleSpecError, match="expand option"):
            parse(spec)

    def test_unknown_statement(self):
        with pytest.raises(RuleSpecError, match="unknown statement"):
            parse('frobnicate "x"')

    def test_unknown_clause(self):
        with pytest.raises(RuleSpecError, match="unknown clause"):
            parse('symptom "s"\nrule "s" -> "d" { wibble }')

    def test_truncated_spec(self):
        with pytest.raises(RuleSpecError, match="end of specification"):
            parse('symptom "s"\nrule "s" ->')

    def test_evidence_only_and_note(self):
        ast = parse(
            'symptom "s"\nrule "s" -> "d" evidence-only note "corroboration"'
        )
        assert ast.rules[0].evidence_only
        assert ast.rules[0].note == "corroboration"


class TestCompiler:
    def test_compiles_good_spec(self, compiler):
        graph = compiler.compile_text(GOOD_SPEC)
        assert graph.symptom_event == names.LINEPROTO_FLAP
        edge = graph.rule_for_edge(names.LINEPROTO_FLAP, names.INTERFACE_FLAP)
        assert edge.priority == 160
        assert edge.temporal.symptom.option is ExpandOption.START_START
        assert edge.spatial.level is JoinLevel.INTERFACE
        library_edge = graph.rule_for_edge(
            names.INTERFACE_FLAP, names.SONET_RESTORATION
        )
        assert library_edge.priority == 180
        assert library_edge.spatial.level is JoinLevel.LAYER1_DEVICE

    def test_unknown_event_rejected(self, compiler):
        spec = 'symptom "No such event"\n'
        with pytest.raises(RuleSpecError, match="unknown symptom"):
            compiler.compile_text(spec)

    def test_unknown_library_pair_rejected(self, compiler):
        spec = (
            f'symptom "{names.LINEPROTO_FLAP}"\n'
            f'rule "{names.LINEPROTO_FLAP}" -> "{names.ROUTER_REBOOT}" use library'
        )
        with pytest.raises(RuleSpecError, match="no library rule"):
            compiler.compile_text(spec)

    def test_location_type_mismatch_rejected(self, compiler):
        spec = (
            f'symptom "{names.LINEPROTO_FLAP}"\n'
            f'rule "{names.LINEPROTO_FLAP}" -> "{names.ROUTER_REBOOT}" {{\n'
            "    symptom expand start/end 5 5\n"
            "    diagnostic expand start/end 5 5\n"
            "    join interface interface at router\n"
            "}"
        )
        with pytest.raises(RuleSpecError, match="location type"):
            compiler.compile_text(spec)

    def test_rule_without_joins_rejected(self, compiler):
        spec = (
            f'symptom "{names.LINEPROTO_FLAP}"\n'
            f'rule "{names.LINEPROTO_FLAP}" -> "{names.INTERFACE_FLAP}" priority 5'
        )
        with pytest.raises(RuleSpecError, match="use library"):
            compiler.compile_text(spec)

    def test_library_rule_with_temporal_override(self, compiler):
        spec = (
            f'symptom "{names.LINEPROTO_FLAP}"\n'
            f'rule "{names.LINEPROTO_FLAP}" -> "{names.INTERFACE_FLAP}" use library {{\n'
            "    symptom expand start/start 60 10\n"
            "}"
        )
        graph = compiler.compile_text(spec)
        edge = graph.rule_for_edge(names.LINEPROTO_FLAP, names.INTERFACE_FLAP)
        assert edge.temporal.symptom.left == 60
        # diagnostic side kept from the library template
        assert edge.temporal.diagnostic.left == 5

    def test_orphan_rule_parent_rejected(self, compiler):
        spec = (
            f'symptom "{names.LINEPROTO_FLAP}"\n'
            f'rule "{names.INTERFACE_FLAP}" -> "{names.SONET_RESTORATION}" use library'
        )
        with pytest.raises(RuleSpecError, match="not reachable"):
            compiler.compile_text(spec)

    def test_evidence_only_compiles_to_non_root_cause(self, compiler):
        spec = (
            f'symptom "{names.LINEPROTO_FLAP}"\n'
            f'rule "{names.LINEPROTO_FLAP}" -> "{names.INTERFACE_FLAP}"'
            " use library evidence-only"
        )
        graph = compiler.compile_text(spec)
        edge = graph.rule_for_edge(names.LINEPROTO_FLAP, names.INTERFACE_FLAP)
        assert not edge.is_root_cause
