"""Tests for the location model."""

import pytest

from repro.core.locations import Location, LocationType


class TestConstruction:
    def test_router(self):
        loc = Location.router("nyc-per1")
        assert loc.type is LocationType.ROUTER
        assert loc.value == "nyc-per1"

    def test_interface_requires_fqname(self):
        with pytest.raises(ValueError):
            Location.interface("se1/0")
        assert Location.interface("r1:se1/0").value == "r1:se1/0"

    def test_pair_arity_enforced(self):
        with pytest.raises(ValueError):
            Location(LocationType.INGRESS_EGRESS, ("only-one",))
        with pytest.raises(ValueError):
            Location(LocationType.ROUTER, ("a", "b"))

    def test_empty_part_rejected(self):
        with pytest.raises(ValueError):
            Location(LocationType.ROUTER, ("",))

    def test_pair_constructor(self):
        loc = Location.pair(LocationType.INGRESS_EGRESS, "a", "b")
        assert loc.parts == ("a", "b")

    def test_router_neighbor(self):
        loc = Location.router_neighbor("nyc-per1", "10.0.0.2")
        assert loc.type is LocationType.ROUTER_NEIGHBOR
        assert loc.router_part == "nyc-per1"


class TestAccessors:
    def test_value_rejects_pairs(self):
        loc = Location.pair(LocationType.SOURCE_DESTINATION, "a", "b")
        with pytest.raises(ValueError):
            _ = loc.value

    def test_router_part_of_interface(self):
        assert Location.interface("nyc-per1:se1/0").router_part == "nyc-per1"

    def test_router_part_of_line_card(self):
        assert Location.line_card("nyc-per1:slot2").router_part == "nyc-per1"

    def test_router_part_undefined_for_links(self):
        with pytest.raises(ValueError):
            _ = Location.logical_link("a--b").router_part

    def test_str_rendering(self):
        assert str(Location.router("r1")) == "router[r1]"
        assert (
            str(Location.pair(LocationType.INGRESS_EGRESS, "a", "b"))
            == "ingress:egress[a:b]"
        )

    def test_hashable_and_equal(self):
        a = Location.router("r1")
        b = Location.router("r1")
        assert a == b
        assert len({a, b}) == 1

    def test_arity_property(self):
        assert LocationType.ROUTER.arity == 1
        assert LocationType.SOURCE_DESTINATION.arity == 2
