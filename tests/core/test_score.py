"""Tests for the SCORE-style shared-risk set-cover engine."""

import pytest

from repro.core.locations import Location
from repro.core.reasoning.score import (
    RiskGroup,
    ScoreEngine,
    risk_groups_from_topology,
)
from repro.core.spatial import JoinLevel


def group(name, members, kind="layer1-device"):
    return RiskGroup(name=name, kind=kind, members=frozenset(members))


class TestGreedyCover:
    def test_single_group_explains_all(self):
        engine = ScoreEngine([group("adm-1", {"a", "b", "c"})])
        result = engine.localize({"a", "b", "c"})
        assert [h.group.name for h in result.hypotheses] == ["adm-1"]
        assert result.unexplained == frozenset()
        assert result.explained_fraction == 1.0

    def test_minimal_cover_preferred(self):
        engine = ScoreEngine(
            [
                group("big", {"a", "b", "c", "d"}),
                group("half1", {"a", "b"}),
                group("half2", {"c", "d"}),
            ]
        )
        result = engine.localize({"a", "b", "c", "d"})
        assert [h.group.name for h in result.hypotheses] == ["big"]

    def test_hit_ratio_threshold_blocks_weak_groups(self):
        # the group would explain the failure but most of its members
        # did NOT fail -> implausible shared cause
        engine = ScoreEngine(
            [group("adm-1", {"a", "b", "c", "d", "e", "f"})], min_hit_ratio=0.5
        )
        result = engine.localize({"a"})
        assert result.hypotheses == []
        assert result.unexplained == frozenset({"a"})

    def test_multiple_independent_causes(self):
        engine = ScoreEngine(
            [group("adm-1", {"a", "b"}), group("adm-2", {"c", "d"})]
        )
        result = engine.localize({"a", "b", "c", "d"})
        assert sorted(h.group.name for h in result.hypotheses) == ["adm-1", "adm-2"]

    def test_partial_cover_reports_unexplained(self):
        engine = ScoreEngine([group("adm-1", {"a", "b"})])
        result = engine.localize({"a", "b", "z"})
        assert result.unexplained == frozenset({"z"})
        assert 0 < result.explained_fraction < 1

    def test_hit_ratio_and_coverage_recorded(self):
        engine = ScoreEngine([group("adm-1", {"a", "b", "c", "d"})])
        result = engine.localize({"a", "b", "c"})
        hypothesis = result.hypotheses[0]
        assert hypothesis.hit_ratio == pytest.approx(0.75)
        assert hypothesis.coverage == pytest.approx(1.0)

    def test_deterministic_tie_break_by_name(self):
        engine = ScoreEngine([group("z", {"a"}), group("b", {"a"})])
        result = engine.localize({"a"})
        assert result.hypotheses[0].group.name == "b"

    def test_empty_failures(self):
        engine = ScoreEngine([group("adm-1", {"a"})])
        result = engine.localize(set())
        assert result.hypotheses == []
        assert result.explained_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoreEngine([], min_hit_ratio=0.0)
        with pytest.raises(ValueError):
            ScoreEngine([group("x", {"a"}), group("x", {"b"})])


class TestRiskModelFromTopology:
    def test_linecard_crash_localized(self, resolver, small_topology):
        """Interfaces on one card fail together -> the card is blamed."""
        router = small_topology.network.router("nyc-per1")
        slot0 = [i.fqname for i in router.interfaces_on_slot(0)]
        locations = [Location.interface(fq) for fq in slot0]
        groups = risk_groups_from_topology(resolver, locations, timestamp=0.0)
        engine = ScoreEngine(groups, min_hit_ratio=0.6)
        result = engine.localize({str(l) for l in locations})
        names = [h.group.name for h in result.hypotheses]
        assert "nyc-per1:slot0" in names
        assert result.unexplained == frozenset()

    def test_router_level_failure_prefers_router_group(
        self, resolver, small_topology
    ):
        """Every interface of the router failing points at the router,
        not its individual cards."""
        router = small_topology.network.router("nyc-per1")
        locations = [Location.interface(i.fqname) for i in router.interfaces]
        groups = risk_groups_from_topology(resolver, locations, timestamp=0.0)
        engine = ScoreEngine(groups, min_hit_ratio=0.9)
        result = engine.localize({str(l) for l in locations})
        assert result.hypotheses[0].group.name == "nyc-per1"
        assert len(result.hypotheses) == 1

    def test_shared_layer1_device_localized(self, resolver, small_topology):
        """Two logical links over the same ADM failing together blame
        the ADM rather than the links' routers."""
        network = small_topology.network
        device = next(
            d
            for d in sorted(network.layer1_devices)
            if len(network.logical_links_riding(d)) >= 2
        )
        riding = network.logical_links_riding(device)
        locations = [Location.logical_link(link.name) for link in riding]
        groups = risk_groups_from_topology(
            resolver, locations, 0.0, kinds=(JoinLevel.LAYER1_DEVICE, JoinLevel.ROUTER)
        )
        engine = ScoreEngine(groups, min_hit_ratio=0.9)
        result = engine.localize({str(l) for l in locations})
        assert result.hypotheses[0].group.kind == "layer1-device"
        assert result.hypotheses[0].group.name == device
