"""Tests for empirical temporal-rule calibration."""

import random

import pytest

from repro.core.calibration import (
    CalibrationResult,
    LagSample,
    calibrate_temporal_rule,
    coverage_curve,
    pair_for_calibration,
)
from repro.core.events import EventInstance
from repro.core.locations import Location


def instance(name, t, router="r1", duration=0.0):
    return EventInstance.make(name, t, t + duration, Location.router(router))


def lag_samples(lags, base=10000.0):
    samples = []
    for index, lag in enumerate(lags):
        t = base + index * 1000.0
        samples.append(
            LagSample(
                symptom=instance("s", t),
                diagnostic=instance("d", t - lag),
            )
        )
    return samples


class TestCalibrateTemporalRule:
    def test_hold_timer_like_lags_recovered(self):
        rng = random.Random(1)
        lags = [180.0 + rng.uniform(-3.0, 3.0) for _ in range(200)]
        result = calibrate_temporal_rule(lag_samples(lags), coverage=0.98, slack=5.0)
        # margin must cover the ~183 s tail plus slack, but not balloon
        assert 183.0 <= result.rule.symptom.left <= 200.0
        assert result.n_samples == 200

    def test_calibrated_rule_joins_the_samples(self):
        rng = random.Random(2)
        lags = [rng.uniform(0.0, 120.0) for _ in range(100)]
        samples = lag_samples(lags)
        result = calibrate_temporal_rule(samples, coverage=1.0)
        joined = sum(
            1
            for sample in samples
            if result.rule.joined(sample.symptom.interval, sample.diagnostic.interval)
        )
        assert joined == len(samples)

    def test_negative_lags_covered_by_right_margin(self):
        # diagnostic recorded after the symptom (clock skew)
        result = calibrate_temporal_rule(lag_samples([-8.0, -5.0, -2.0]), coverage=1.0)
        assert result.rule.symptom.right >= 8.0

    def test_bad_coverage_rejected(self):
        with pytest.raises(ValueError):
            calibrate_temporal_rule(lag_samples([1.0]), coverage=0.3)

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            calibrate_temporal_rule([])

    def test_describe(self):
        result = calibrate_temporal_rule(lag_samples([10.0, 20.0]))
        assert "pairs" in result.describe()
        assert isinstance(result, CalibrationResult)


class TestPairing:
    def test_nearest_pairing_same_router(self):
        symptoms = [instance("s", 1000.0), instance("s", 5000.0)]
        diagnostics = [
            instance("d", 820.0),
            instance("d", 4810.0),
            instance("d", 900.0, router="r9"),  # other router: ignored
        ]
        samples = pair_for_calibration(symptoms, diagnostics, max_lag=300.0)
        assert len(samples) == 2
        assert samples[0].start_lag == pytest.approx(180.0)
        assert samples[1].start_lag == pytest.approx(190.0)

    def test_diagnostic_used_once(self):
        symptoms = [instance("s", 1000.0), instance("s", 1010.0)]
        diagnostics = [instance("d", 995.0)]
        samples = pair_for_calibration(symptoms, diagnostics, max_lag=300.0)
        assert len(samples) == 1

    def test_max_lag_respected(self):
        symptoms = [instance("s", 1000.0)]
        diagnostics = [instance("d", 0.0)]
        assert pair_for_calibration(symptoms, diagnostics, max_lag=300.0) == []

    def test_cross_router_allowed_when_disabled(self):
        symptoms = [instance("s", 1000.0, router="a")]
        diagnostics = [instance("d", 990.0, router="b")]
        assert pair_for_calibration(symptoms, diagnostics, 300.0, same_router=False)


class TestCoverageCurve:
    def test_monotone_nondecreasing(self):
        rng = random.Random(3)
        samples = lag_samples([rng.uniform(0, 200) for _ in range(100)])
        curve = coverage_curve(samples, margins=[0, 50, 100, 150, 200, 250])
        fractions = [fraction for _margin, fraction in curve]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_hold_timer_step(self):
        """Coverage jumps once the margin crosses the 180 s hold timer."""
        samples = lag_samples([180.0] * 50)
        curve = dict(coverage_curve(samples, margins=[100.0, 200.0]))
        assert curve[100.0] < 0.1
        assert curve[200.0] == 1.0

    def test_empty_samples(self):
        assert coverage_curve([], [10.0]) == [(10.0, 0.0)]
