"""Property test: the epoch-keyed resolution cache is semantically invisible.

A cached :class:`LocationResolver` and an uncached one (``cache_size=0``,
the oracle) share one :class:`PathService` and must return identical
expansions for every (location, level, timestamp) — before, between and
after arbitrary interleaved routing-state mutations (OSPF weight floods,
BGP announces/withdrawals, ingress-map learning, including out-of-order
records that renumber history versions).
"""

from hypothesis import given, settings, strategies as st

from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel, LocationResolver
from repro.routing.bgp import BgpEmulator, BgpUpdateLog
from repro.routing.ospf import OspfSimulator, WeightChange
from repro.routing.paths import IngressMap, PathService

PREFIXES = ["198.51.100.0/24", "198.51.0.0/16", "203.0.113.0/24"]
DEST_IPS = ["198.51.100.9", "198.51.7.9", "203.0.113.77", "8.8.8.8"]
LEVELS = [
    JoinLevel.ROUTER,
    JoinLevel.LOGICAL_LINK,
    JoinLevel.INTERFACE,
    JoinLevel.POP,
]
WEIGHTS = [10, 99, 65535]
TIMES = st.integers(min_value=0, max_value=2000).map(float)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_cached_expansion_matches_uncached_oracle(small_topology, data):
    network = small_topology.network
    routers = sorted(network.routers)
    links = sorted(network.logical_links)
    servers = sorted(network.cdn_servers)

    ospf = OspfSimulator(network)
    log = BgpUpdateLog()
    ingress_map = IngressMap()
    for server in servers:
        ingress_map.learn(server, network.cdn_servers[server].attached_router)
    service = PathService(
        network=network,
        ospf=ospf,
        bgp=BgpEmulator(log, ospf),
        ingress_map=ingress_map,
    )
    # a tiny cache exercises the eviction path as hard as the hit path
    cache_size = data.draw(st.sampled_from([3, 4096]), label="cache_size")
    cached = LocationResolver(service, cache_size=cache_size)
    oracle = LocationResolver(service, cache_size=0)

    def draw_location():
        kind = data.draw(
            st.sampled_from(
                ["router", "interface", "pair", "prefix", "ingress_dest", "source_dest"]
            ),
            label="location_kind",
        )
        if kind == "router":
            return Location.router(data.draw(st.sampled_from(routers)))
        if kind == "interface":
            router = network.router(data.draw(st.sampled_from(routers)))
            index = data.draw(st.integers(0, len(router.interfaces) - 1))
            return Location.interface(router.interfaces[index].fqname)
        if kind == "pair":
            return Location.pair(
                LocationType.INGRESS_EGRESS,
                data.draw(st.sampled_from(routers)),
                data.draw(st.sampled_from(routers)),
            )
        if kind == "prefix":
            return Location.prefix(data.draw(st.sampled_from(PREFIXES)))
        if kind == "ingress_dest":
            return Location.pair(
                LocationType.INGRESS_DESTINATION,
                data.draw(st.sampled_from(routers)),
                data.draw(st.sampled_from(DEST_IPS)),
            )
        return Location.pair(
            LocationType.SOURCE_DESTINATION,
            data.draw(st.sampled_from(servers)),
            data.draw(st.sampled_from(DEST_IPS)),
        )

    queries = [
        (draw_location(), data.draw(st.sampled_from(LEVELS)), data.draw(TIMES))
        for _ in range(data.draw(st.integers(2, 5), label="n_queries"))
    ]

    def check():
        for location, level, timestamp in queries:
            got = cached.expand(location, level, timestamp)
            want = oracle.expand(location, level, timestamp)
            assert got == want, (
                f"cached {location} @ {level} t={timestamp} diverged from oracle"
            )

    check()  # cold cache
    check()  # warm cache, unchanged state
    for _ in range(data.draw(st.integers(1, 5), label="n_mutations")):
        kind = data.draw(
            st.sampled_from(["weight", "announce", "withdraw", "learn"]),
            label="mutation",
        )
        timestamp = data.draw(TIMES)
        if kind == "weight":
            ospf.history.record(
                WeightChange(
                    timestamp,
                    data.draw(st.sampled_from(links)),
                    data.draw(st.sampled_from(WEIGHTS)),
                )
            )
        elif kind == "announce":
            log.announce(
                timestamp,
                data.draw(st.sampled_from(PREFIXES)),
                data.draw(st.sampled_from(routers)),
                local_pref=data.draw(st.sampled_from([50, 100, 200])),
            )
        elif kind == "withdraw":
            log.withdraw(
                timestamp,
                data.draw(st.sampled_from(PREFIXES)),
                data.draw(st.sampled_from(routers)),
            )
        else:
            ingress_map.learn(
                data.draw(st.sampled_from(servers + ["roaming-agent"])),
                data.draw(st.sampled_from(routers)),
            )
        check()  # every mutation must invalidate exactly what it touched
