"""Tests for the Table II rule catalog."""

import pytest

from repro.core.knowledge import KnowledgeLibrary, names
from repro.core.knowledge.rules import TABLE2_PAIRS
from repro.core.spatial import JoinLevel
from repro.core.temporal import ExpandOption


@pytest.fixture(scope="module")
def kb():
    return KnowledgeLibrary()


class TestCatalogCoverage:
    def test_every_table2_pair_present(self, kb):
        for symptom, diagnostic in TABLE2_PAIRS:
            assert (symptom, diagnostic) in kb.rules, (symptom, diagnostic)

    def test_catalog_size(self, kb):
        # Table II has 30 rows; state-expanded they exceed 50 templates
        assert len(kb.rules) >= 50

    def test_every_template_references_defined_events(self, kb):
        for symptom, diagnostic in kb.rules.pairs():
            assert symptom in kb.events, symptom
            assert diagnostic in kb.events, diagnostic

    def test_template_location_types_match_event_definitions(self, kb):
        for symptom, diagnostic in kb.rules.pairs():
            template = kb.rules.get(symptom, diagnostic)
            assert (
                template.spatial.symptom_type
                is kb.events.get(symptom).location_type
            ), (symptom, diagnostic)
            assert (
                template.spatial.diagnostic_type
                is kb.events.get(diagnostic).location_type
            ), (symptom, diagnostic)


class TestInstantiation:
    def test_rule_attaches_priority(self, kb):
        rule = kb.rules.rule(names.LINEPROTO_FLAP, names.INTERFACE_FLAP, priority=160)
        assert rule.priority == 160
        assert rule.parent_event == names.LINEPROTO_FLAP
        assert rule.is_root_cause

    def test_rule_non_root_cause_flag(self, kb):
        rule = kb.rules.rule(
            names.LINK_LOSS, names.LINK_CONGESTION, priority=10, is_root_cause=False
        )
        assert not rule.is_root_cause

    def test_unknown_pair_raises(self, kb):
        with pytest.raises(KeyError):
            kb.rules.rule("no-such-event", names.INTERFACE_FLAP, priority=1)

    def test_duplicate_registration_rejected(self, kb):
        template = kb.rules.get(names.LINEPROTO_FLAP, names.INTERFACE_FLAP)
        with pytest.raises(ValueError):
            kb.rules.register(template)


class TestJoinParameters:
    def test_restoration_rules_join_at_layer1(self, kb):
        template = kb.rules.get(names.INTERFACE_FLAP, names.SONET_RESTORATION)
        assert template.spatial.level is JoinLevel.LAYER1_DEVICE

    def test_congestion_from_reconvergence_is_network_wide(self, kb):
        template = kb.rules.get(names.LINK_CONGESTION, names.OSPF_RECONVERGENCE)
        assert template.spatial.level is JoinLevel.NETWORK

    def test_lineproto_looks_back_for_interface(self, kb):
        template = kb.rules.get(names.LINEPROTO_DOWN, names.INTERFACE_DOWN)
        assert template.temporal.symptom.option is ExpandOption.START_START
        assert template.temporal.symptom.left > 0

    def test_e2e_rules_use_measurement_sized_margins(self, kb):
        template = kb.rules.get(names.DELAY_INCREASE, names.LINK_CONGESTION)
        assert template.temporal.symptom.left >= 300
