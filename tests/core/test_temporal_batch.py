"""Property-based tests: the columnar batch join vs the scalar oracle.

:meth:`TemporalJoinRule.joined_batch` answers "which of these N
candidates join?" with two bisects over start/end-sorted vectors instead
of N window expansions.  Its case analysis (contiguous runs for
Start-Start and End-End, prefix-∩-suffix for Start-End, a scalar
fallback when negative margins can invert per-candidate windows) is held
here against the one implementation that is already oracle-verified:
:meth:`TemporalJoinRule.joined` applied per candidate.

The candidate vectors follow the engine's retrieval contract —
:meth:`EventDefinition.retrieve` returns instances sorted by
``(start, end)`` — and all values are integer-valued so every window
endpoint (including collapsed-midpoint halves) is exactly representable.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.temporal import (
    ExpandOption,
    IntervalColumns,
    TemporalExpansion,
    TemporalJoinRule,
)

# -- strategies: integer-valued rules, intervals, candidate vectors ----

OPTIONS = st.sampled_from(list(ExpandOption))
MARGINS = st.integers(min_value=-60, max_value=60).map(float)

INTERVALS = st.tuples(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=0, max_value=50),
).map(lambda p: (float(p[0]), float(p[0] + p[1])))

EXPANSIONS = st.builds(TemporalExpansion, OPTIONS, MARGINS, MARGINS)
RULES = st.builds(TemporalJoinRule, EXPANSIONS, EXPANSIONS)

CANDIDATES = st.lists(
    st.tuples(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=30,
).map(
    lambda pairs: sorted(
        ((float(s), float(s + d)) for s, d in pairs),
        key=lambda iv: (iv[0], iv[1]),
    )
)


def columns_of(candidates):
    return IntervalColumns(
        [start for start, _end in candidates],
        [end for _start, end in candidates],
    )


def scalar_survivors(rule, symptom, candidates):
    return [
        k
        for k, candidate in enumerate(candidates)
        if rule.joined(symptom, candidate)
    ]


# -- the central property ----------------------------------------------

class TestBatchVsScalar:
    @settings(max_examples=500)
    @given(rule=RULES, symptom=INTERVALS, candidates=CANDIDATES)
    def test_batch_matches_scalar_per_candidate(
        self, rule, symptom, candidates
    ):
        got = rule.joined_batch(symptom, columns_of(candidates))
        assert got == scalar_survivors(rule, symptom, candidates)

    @settings(max_examples=200)
    @given(rule=RULES, symptom=INTERVALS, candidates=CANDIDATES)
    def test_raw_sequences_equal_interval_columns(
        self, rule, symptom, candidates
    ):
        starts = [start for start, _end in candidates]
        ends = [end for _start, end in candidates]
        assert rule.joined_batch(symptom, starts, ends) == rule.joined_batch(
            symptom, columns_of(candidates)
        )

    @settings(max_examples=200)
    @given(rule=RULES, symptom=INTERVALS, candidates=CANDIDATES)
    def test_survivor_indices_are_sorted_and_unique(
        self, rule, symptom, candidates
    ):
        got = rule.joined_batch(symptom, columns_of(candidates))
        assert got == sorted(set(got))
        assert all(0 <= k < len(candidates) for k in got)


# -- per-option coverage (each exercises one code path deliberately) ---

def _rule(option, x, y, symptom_option=ExpandOption.START_END):
    return TemporalJoinRule(
        symptom=TemporalExpansion(symptom_option, 0, 0),
        diagnostic=TemporalExpansion(option, float(x), float(y)),
    )


class TestCasePaths:
    def test_start_start_contiguous_run(self):
        rule = _rule(ExpandOption.START_START, 10, 10)
        candidates = [(0.0, 5.0), (40.0, 45.0), (50.0, 90.0), (80.0, 81.0)]
        got = rule.joined_batch((45.0, 60.0), columns_of(candidates))
        assert got == scalar_survivors(rule, (45.0, 60.0), candidates)
        assert got == [1, 2]  # ends are irrelevant under Start-Start

    def test_end_end_uses_end_order_then_resorts(self):
        rule = _rule(ExpandOption.END_END, 5, 5)
        # start order and end order disagree: candidate 1 starts later
        # but ends earlier than candidate 2
        candidates = [(0.0, 100.0), (40.0, 48.0), (10.0, 90.0)]
        got = rule.joined_batch((45.0, 60.0), columns_of(candidates))
        assert got == scalar_survivors(rule, (45.0, 60.0), candidates)
        assert got == [1]

    def test_start_end_prefix_suffix_intersection(self):
        rule = _rule(ExpandOption.START_END, 5, 5)
        candidates = [(0.0, 10.0), (20.0, 70.0), (48.0, 49.0), (90.0, 95.0)]
        got = rule.joined_batch((45.0, 60.0), columns_of(candidates))
        assert got == scalar_survivors(rule, (45.0, 60.0), candidates)
        assert got == [1, 2]

    def test_start_end_negative_sum_falls_back_to_scalar(self):
        # X + Y < 0: short candidates invert individually and collapse
        # to midpoints; no single contiguous structure exists
        rule = _rule(ExpandOption.START_END, -30, 3)
        candidates = [
            (40.0, 41.0),   # inverts: midpoint 55.5 — inside
            (40.0, 90.0),   # long enough: window [70, 93] — outside
            (0.0, 200.0),   # window [30, 203] — inside
        ]
        symptom = (45.0, 60.0)
        got = rule.joined_batch(symptom, columns_of(candidates))
        assert got == scalar_survivors(rule, symptom, candidates)
        assert got == [0, 2]

    def test_inverted_symptom_window_collapses(self):
        rule = TemporalJoinRule(
            symptom=TemporalExpansion(ExpandOption.START_START, -20, -20),
            diagnostic=TemporalExpansion(ExpandOption.START_START, 1, 1),
        )
        # symptom window inverts to the single instant 45.0
        candidates = [(44.5, 46.0), (46.5, 47.0), (100.0, 101.0)]
        got = rule.joined_batch((45.0, 60.0), columns_of(candidates))
        assert got == scalar_survivors(rule, (45.0, 60.0), candidates)
        assert got == [0]


class TestIntervalColumns:
    def test_empty_columns_yield_no_survivors(self):
        rule = _rule(ExpandOption.START_END, 5, 5)
        assert rule.joined_batch((0.0, 1.0), IntervalColumns([], [])) == []

    def test_length_mismatch_is_rejected(self):
        with pytest.raises(ValueError):
            IntervalColumns([1.0, 2.0], [3.0])

    def test_end_order_is_memoized(self):
        columns = IntervalColumns([0.0, 1.0], [5.0, 2.0])
        assert columns.end_order == [1, 0]
        assert columns.end_order is columns.end_order
        assert columns.sorted_ends == [2.0, 5.0]
