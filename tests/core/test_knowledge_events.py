"""Tests for the Table I event definitions against synthetic raw data."""

import pytest

from repro.collector import DataCollector
from repro.collector.sources.bgpmon import render_bgpmon_row, update_log_from_store
from repro.collector.sources.misc import (
    render_layer1_row,
    render_perfmon_row,
    render_tacacs_row,
)
from repro.collector.sources.ospfmon import render_ospfmon_row, weight_history_from_store
from repro.collector.sources.snmp import render_snmp_row
from repro.collector.sources.syslog import render_syslog_line
from repro.core.events import RetrievalContext
from repro.core.knowledge import KnowledgeLibrary, names
from repro.core.locations import LocationType

BASE = 1262692800.0


@pytest.fixture(scope="module")
def kb():
    return KnowledgeLibrary()


@pytest.fixture
def collector():
    return DataCollector()


def ctx(collector, start=BASE - 3600, end=BASE + 7200, services=None, **params):
    return RetrievalContext(
        store=collector.store, start=start, end=end,
        params=params, services=services or {},
    )


def syslog(collector, t, router, code, message):
    collector.ingest(
        "syslog", [render_syslog_line(t, router, "UTC", code, message)]
    )


class TestTable1Catalog:
    def test_all_table1_events_defined(self, kb):
        for name in names.TABLE1_EVENTS:
            assert name in kb.events, name

    def test_event_count_at_least_table1(self, kb):
        assert len(kb.events.names()) >= len(names.TABLE1_EVENTS)

    def test_location_types_match_table1(self, kb):
        expected = {
            names.ROUTER_REBOOT: LocationType.ROUTER,
            names.CPU_HIGH_AVG: LocationType.ROUTER,
            names.CPU_HIGH_SPIKE: LocationType.ROUTER,
            names.INTERFACE_FLAP: LocationType.INTERFACE,
            names.LINEPROTO_FLAP: LocationType.INTERFACE,
            names.SONET_RESTORATION: LocationType.LAYER1_DEVICE,
            names.LINK_CONGESTION: LocationType.INTERFACE,
            names.ROUTER_COST_IN_OUT: LocationType.ROUTER,
            names.DELAY_INCREASE: LocationType.INGRESS_EGRESS,
        }
        for name, location_type in expected.items():
            assert kb.events.get(name).location_type is location_type, name


class TestSyslogEvents:
    def test_router_reboot(self, kb, collector):
        syslog(collector, BASE, "nyc-per1", "SYS-5-RESTART", "System restarted")
        instances = kb.events.get(names.ROUTER_REBOOT).retrieve(ctx(collector))
        assert len(instances) == 1
        assert instances[0].location.value == "nyc-per1"

    def test_cpu_spike_thresholded(self, kb, collector):
        syslog(collector, BASE, "nyc-per1", "SYS-3-CPUHOG",
               "CPU utilization over last 5 seconds: 95%")
        syslog(collector, BASE + 10, "nyc-per1", "SYS-3-CPUHOG",
               "CPU utilization over last 5 seconds: 85%")
        instances = kb.events.get(names.CPU_HIGH_SPIKE).retrieve(ctx(collector))
        assert len(instances) == 1
        assert instances[0].get("cpu_pct") == 95

    def test_interface_down_up_flap(self, kb, collector):
        syslog(collector, BASE, "nyc-per1", "LINK-3-UPDOWN",
               "Interface Serial1/0, changed state to down")
        syslog(collector, BASE + 30, "nyc-per1", "LINK-3-UPDOWN",
               "Interface Serial1/0, changed state to up")
        context = ctx(collector)
        downs = kb.events.get(names.INTERFACE_DOWN).retrieve(context)
        ups = kb.events.get(names.INTERFACE_UP).retrieve(context)
        flaps = kb.events.get(names.INTERFACE_FLAP).retrieve(context)
        assert len(downs) == len(ups) == len(flaps) == 1
        assert flaps[0].start == pytest.approx(downs[0].start, abs=1.0)
        assert flaps[0].duration == pytest.approx(30.0, abs=2.0)
        assert flaps[0].location.value == "nyc-per1:se1/0"

    def test_unpaired_down_is_not_a_flap(self, kb, collector):
        syslog(collector, BASE, "nyc-per1", "LINK-3-UPDOWN",
               "Interface Serial1/0, changed state to down")
        flaps = kb.events.get(names.INTERFACE_FLAP).retrieve(ctx(collector))
        assert flaps == []

    def test_line_protocol_flap(self, kb, collector):
        syslog(collector, BASE, "nyc-per1", "LINEPROTO-5-UPDOWN",
               "Line protocol on Interface Serial1/0, changed state to down")
        syslog(collector, BASE + 5, "nyc-per1", "LINEPROTO-5-UPDOWN",
               "Line protocol on Interface Serial1/0, changed state to up")
        flaps = kb.events.get(names.LINEPROTO_FLAP).retrieve(ctx(collector))
        assert len(flaps) == 1


class TestSnmpEvents:
    def test_cpu_average_threshold(self, kb, collector):
        collector.ingest("snmp", [
            render_snmp_row(BASE, "nyc-per1", "cpu_util_5min", "", 85.0),
            render_snmp_row(BASE + 300, "nyc-per1", "cpu_util_5min", "", 40.0),
        ])
        instances = kb.events.get(names.CPU_HIGH_AVG).retrieve(ctx(collector))
        assert len(instances) == 1
        assert instances[0].duration == pytest.approx(300.0)

    def test_link_congestion_redefinable(self, kb, collector):
        collector.ingest("snmp", [
            render_snmp_row(BASE, "nyc-per1", "link_util", "se1/0", 85.0),
        ])
        default = kb.events.get(names.LINK_CONGESTION).retrieve(ctx(collector))
        assert len(default) == 1
        stricter = kb.events.get(names.LINK_CONGESTION).retrieve(
            ctx(collector, link_congestion_threshold=90.0)
        )
        assert stricter == []

    def test_link_loss_alarm(self, kb, collector):
        collector.ingest("snmp", [
            render_snmp_row(BASE, "nyc-per1", "corrupted_packets", "se1/0", 150.0),
            render_snmp_row(BASE, "nyc-per1", "corrupted_packets", "se1/1", 10.0),
        ])
        instances = kb.events.get(names.LINK_LOSS).retrieve(ctx(collector))
        assert [i.location.value for i in instances] == ["nyc-per1:se1/0"]


class TestLayer1Events:
    @pytest.mark.parametrize(
        "event_name,raw_event",
        [
            (names.SONET_RESTORATION, "sonet_restoration"),
            (names.MESH_RESTORATION_REGULAR, "mesh_restoration_regular"),
            (names.MESH_RESTORATION_FAST, "mesh_restoration_fast"),
        ],
    )
    def test_restorations(self, kb, collector, event_name, raw_event):
        collector.ingest("layer1", [render_layer1_row(BASE, "adm-1", raw_event, "c-x")])
        instances = kb.events.get(event_name).retrieve(ctx(collector))
        assert len(instances) == 1
        assert instances[0].location.value == "adm-1"


class TestOspfEvents:
    def ingest_weights(self, collector, rows):
        collector.ingest("ospfmon", [render_ospfmon_row(*row) for row in rows])
        return {"weight_history": weight_history_from_store(collector.store)}

    def test_reconvergence_groups_updates(self, kb, collector):
        services = self.ingest_weights(collector, [
            (BASE, "l1", 65535), (BASE + 3, "l1", 65535), (BASE + 400, "l1", 10),
        ])
        instances = kb.events.get(names.OSPF_RECONVERGENCE).retrieve(
            ctx(collector, services=services)
        )
        assert len(instances) == 2  # two episodes on l1

    def test_link_cost_out_then_in(self, kb, collector):
        services = self.ingest_weights(collector, [
            (BASE - 7200, "l1", 10),
            (BASE, "l1", 65535),
            (BASE + 600, "l1", 10),
        ])
        context = ctx(collector, services=services)
        outs = kb.events.get(names.LINK_COST_OUT).retrieve(context)
        ins = kb.events.get(names.LINK_COST_IN).retrieve(context)
        assert [i.start for i in outs] == [BASE]
        assert [i.start for i in ins] == [BASE + 600]

    def test_weight_tweak_is_not_cost_out(self, kb, collector):
        services = self.ingest_weights(collector, [
            (BASE - 7200, "l1", 10), (BASE, "l1", 20),
        ])
        outs = kb.events.get(names.LINK_COST_OUT).retrieve(
            ctx(collector, services=services)
        )
        assert outs == []

    def test_router_cost_out_requires_all_links(self, kb, collector, small_topology):
        network = small_topology.network
        router = "nyc-cr1"
        links = network.logical_links_of_router(router)
        assert len(links) >= 2
        rows = [(BASE + i, link.name, 65535) for i, link in enumerate(links)]
        rows = [(BASE - 7200, links[0].name, 10)] + rows
        services = self.ingest_weights(collector, rows)
        services["network"] = network
        instances = kb.events.get(names.ROUTER_COST_IN_OUT).retrieve(
            ctx(collector, services=services)
        )
        routers = {i.location.value for i in instances}
        assert router in routers

    def test_single_link_out_is_not_router_cost(self, kb, collector, small_topology):
        network = small_topology.network
        link = network.logical_links_of_router("nyc-cr1")[0]
        services = self.ingest_weights(collector, [(BASE, link.name, 65535)])
        services["network"] = network
        instances = kb.events.get(names.ROUTER_COST_IN_OUT).retrieve(
            ctx(collector, services=services)
        )
        assert instances == []


class TestCommandEvents:
    def test_cost_out_command(self, kb, collector):
        collector.ingest("tacacs", [
            render_tacacs_row(BASE, "nyc-cr1", "op1",
                              "conf t; interface Serial0/1; ip ospf cost 65535"),
            render_tacacs_row(BASE + 60, "nyc-cr1", "op1",
                              "conf t; interface Serial0/1; ip ospf cost 10"),
            render_tacacs_row(BASE + 120, "nyc-cr1", "op1", "show ip route"),
        ])
        context = ctx(collector)
        outs = kb.events.get(names.CMD_COST_OUT).retrieve(context)
        ins = kb.events.get(names.CMD_COST_IN).retrieve(context)
        assert len(outs) == 1 and outs[0].location.value == "nyc-cr1:se0/1"
        assert len(ins) == 1


class TestBgpEgressChange:
    def test_egress_change_detected(self, kb, collector):
        collector.ingest("bgpmon", [
            render_bgpmon_row(BASE - 7200, "A", "198.51.100.0/24", "chi-per1"),
            render_bgpmon_row(BASE, "W", "198.51.100.0/24", "chi-per1"),
            render_bgpmon_row(BASE + 1, "A", "198.51.100.0/24", "dfw-per1"),
        ])
        services = {"bgp_log": update_log_from_store(collector.store)}
        instances = kb.events.get(names.BGP_EGRESS_CHANGE).retrieve(
            ctx(collector, services=services)
        )
        assert len(instances) >= 1
        assert instances[0].location.type is LocationType.PREFIX

    def test_refresh_announcement_is_not_change(self, kb, collector):
        collector.ingest("bgpmon", [
            render_bgpmon_row(BASE - 7200, "A", "198.51.100.0/24", "chi-per1"),
            render_bgpmon_row(BASE, "A", "198.51.100.0/24", "chi-per1"),
        ])
        services = {"bgp_log": update_log_from_store(collector.store)}
        instances = kb.events.get(names.BGP_EGRESS_CHANGE).retrieve(
            ctx(collector, services=services)
        )
        assert instances == []


class TestPerfEvents:
    def perf_rows(self, metric, values, src="nyc-per1", dst="chi-per1"):
        return [
            render_perfmon_row(BASE + i * 300, src, dst, metric, v)
            for i, v in enumerate(values)
        ]

    def test_delay_increase(self, kb, collector):
        collector.ingest("perfmon", self.perf_rows("delay_ms", [30, 30, 31, 30, 80]))
        instances = kb.events.get(names.DELAY_INCREASE).retrieve(ctx(collector))
        assert len(instances) == 1
        assert instances[0].location.parts == ("nyc-per1", "chi-per1")

    def test_throughput_drop(self, kb, collector):
        collector.ingest(
            "perfmon", self.perf_rows("throughput_mbps", [900, 905, 910, 900, 300])
        )
        instances = kb.events.get(names.THROUGHPUT_DROP).retrieve(ctx(collector))
        assert len(instances) == 1

    def test_stable_series_no_event(self, kb, collector):
        collector.ingest("perfmon", self.perf_rows("loss_pct", [0.1] * 10))
        assert kb.events.get(names.LOSS_INCREASE).retrieve(ctx(collector)) == []
