"""Tests for diagnosis graphs."""

import pytest

from repro.core.graph import DiagnosisGraph, DiagnosisRule, GraphError
from repro.core.locations import LocationType
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import default_rule


def rule(parent, child, priority=0, is_root_cause=True):
    return DiagnosisRule(
        parent_event=parent,
        child_event=child,
        temporal=default_rule(),
        spatial=SpatialJoinRule(LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER),
        priority=priority,
        is_root_cause=is_root_cause,
    )


@pytest.fixture
def bgp_like_graph():
    graph = DiagnosisGraph(symptom_event="ebgp-flap", name="bgp")
    graph.add_rule(rule("ebgp-flap", "router-reboot", 100))
    graph.add_rule(rule("ebgp-flap", "ebgp-hte", 20))
    graph.add_rule(rule("ebgp-hte", "cpu-high-spike", 50))
    graph.add_rule(rule("ebgp-flap", "line-protocol-flap", 150))
    graph.add_rule(rule("line-protocol-flap", "interface-flap", 160))
    graph.add_rule(rule("interface-flap", "sonet-restoration", 180))
    return graph


class TestConstruction:
    def test_events_and_leaves(self, bgp_like_graph):
        assert "ebgp-flap" in bgp_like_graph.events()
        assert bgp_like_graph.leaves() == {
            "router-reboot",
            "cpu-high-spike",
            "sonet-restoration",
        }

    def test_diagnostic_events_excludes_symptom(self, bgp_like_graph):
        assert "ebgp-flap" not in bgp_like_graph.diagnostic_events()

    def test_orphan_parent_rejected(self):
        graph = DiagnosisGraph(symptom_event="s")
        with pytest.raises(GraphError):
            graph.add_rule(rule("not-reachable", "x"))

    def test_symptom_as_child_rejected(self):
        graph = DiagnosisGraph(symptom_event="s")
        graph.add_rule(rule("s", "a"))
        with pytest.raises(GraphError):
            graph.add_rule(rule("a", "s"))

    def test_cycle_rejected_and_rolled_back(self):
        graph = DiagnosisGraph(symptom_event="s")
        graph.add_rule(rule("s", "a"))
        graph.add_rule(rule("a", "b"))
        with pytest.raises(GraphError):
            graph.add_rule(rule("b", "a"))
        # rollback: the offending edge is not present
        assert graph.rule_for_edge("b", "a") is None

    def test_dag_with_shared_child_allowed(self):
        graph = DiagnosisGraph(symptom_event="s")
        graph.add_rule(rule("s", "a"))
        graph.add_rule(rule("s", "b"))
        graph.add_rule(rule("a", "c"))
        graph.add_rule(rule("b", "c"))  # diamond, not a cycle
        assert graph.depth_of("c") == 2


class TestQueries:
    def test_rules_from(self, bgp_like_graph):
        children = {r.child_event for r in bgp_like_graph.rules_from("ebgp-flap")}
        assert children == {"router-reboot", "ebgp-hte", "line-protocol-flap"}

    def test_rule_for_edge(self, bgp_like_graph):
        edge = bgp_like_graph.rule_for_edge("interface-flap", "sonet-restoration")
        assert edge is not None
        assert edge.priority == 180
        assert bgp_like_graph.rule_for_edge("ebgp-flap", "sonet-restoration") is None

    def test_depth(self, bgp_like_graph):
        assert bgp_like_graph.depth_of("ebgp-flap") == 0
        assert bgp_like_graph.depth_of("interface-flap") == 2
        assert bgp_like_graph.depth_of("sonet-restoration") == 3

    def test_depth_of_unknown_event(self, bgp_like_graph):
        with pytest.raises(GraphError):
            bgp_like_graph.depth_of("ghost")

    def test_all_rules_count(self, bgp_like_graph):
        assert len(bgp_like_graph.all_rules()) == 6
