"""Tests for the spatial model: location expansion and joins (Fig. 2)."""

import pytest

from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel, LocationResolver, SpatialJoinRule
from repro.routing.ospf import COST_OUT_WEIGHT, WeightChange

T = 1000.0


class TestContainmentExpansion:
    def test_router_to_itself(self, resolver):
        assert resolver.expand(Location.router("nyc-per1"), JoinLevel.ROUTER, T) == {
            "nyc-per1"
        }

    def test_interface_to_router(self, resolver, small_topology):
        iface = small_topology.network.router("nyc-per1").interfaces[0]
        got = resolver.expand(Location.interface(iface.fqname), JoinLevel.ROUTER, T)
        assert got == {"nyc-per1"}

    def test_interface_to_line_card(self, resolver, small_topology):
        iface = small_topology.network.router("nyc-per1").interfaces[0]
        got = resolver.expand(Location.interface(iface.fqname), JoinLevel.LINE_CARD, T)
        assert got == {f"nyc-per1:slot{iface.slot}"}

    def test_router_to_interfaces_covers_all(self, resolver, small_topology):
        router = small_topology.network.router("nyc-cr1")
        got = resolver.expand(Location.router("nyc-cr1"), JoinLevel.INTERFACE, T)
        assert got == {i.fqname for i in router.interfaces}

    def test_line_card_to_interfaces(self, resolver, small_topology):
        router = small_topology.network.router("nyc-cr1")
        got = resolver.expand(Location.line_card("nyc-cr1:slot0"), JoinLevel.INTERFACE, T)
        assert got == {i.fqname for i in router.interfaces_on_slot(0)}

    def test_pop_level(self, resolver):
        assert resolver.expand(Location.router("nyc-per1"), JoinLevel.POP, T) == {"nyc"}

    def test_unknown_element_expands_empty(self, resolver):
        assert resolver.expand(Location.router("ghost"), JoinLevel.ROUTER, T) == frozenset()

    def test_same_location_level(self, resolver):
        loc = Location.router("nyc-per1")
        assert resolver.expand(loc, JoinLevel.SAME_LOCATION, T) == {str(loc)}


class TestCrossLayerExpansion:
    def backbone_link(self, topo):
        network = topo.network
        for link in network.logical_links.values():
            if network.layer1_devices_of_logical(link.name):
                return link
        pytest.fail("no backbone link with layer-1 devices")

    def test_logical_link_to_layer1(self, resolver, small_topology):
        link = self.backbone_link(small_topology)
        got = resolver.expand(Location.logical_link(link.name), JoinLevel.LAYER1_DEVICE, T)
        assert got == set(small_topology.network.layer1_devices_of_logical(link.name))

    def test_layer1_to_logical_links(self, resolver, small_topology):
        link = self.backbone_link(small_topology)
        device = small_topology.network.layer1_devices_of_logical(link.name)[0]
        got = resolver.expand(Location.layer1_device(device), JoinLevel.LOGICAL_LINK, T)
        assert link.name in got

    def test_interface_to_layer1_via_link(self, resolver, small_topology):
        link = self.backbone_link(small_topology)
        got = resolver.expand(
            Location.interface(link.interface_a), JoinLevel.LAYER1_DEVICE, T
        )
        assert got == set(small_topology.network.layer1_devices_of_logical(link.name))

    def test_physical_link_expansions(self, resolver, small_topology):
        link = self.backbone_link(small_topology)
        phys = link.physical_links[0]
        assert resolver.expand(
            Location.physical_link(phys), JoinLevel.LOGICAL_LINK, T
        ) == {link.name}
        routers = resolver.expand(Location.physical_link(phys), JoinLevel.ROUTER, T)
        assert routers == set(link.routers)

    def test_customer_facing_interface_has_no_logical_link(
        self, resolver, small_topology
    ):
        _, iface, _ = next(iter(small_topology.customer_attachments.values()))
        got = resolver.expand(Location.interface(iface), JoinLevel.LOGICAL_LINK, T)
        assert got == frozenset()


class TestNeighborExpansion:
    def test_neighbor_ip_resolves_to_customer_interface(
        self, resolver, small_topology
    ):
        customer, (per, iface, neighbor_ip) = next(
            iter(small_topology.customer_attachments.items())
        )
        loc = Location.router_neighbor(per, neighbor_ip)
        assert resolver.expand(loc, JoinLevel.INTERFACE, T) == {iface}
        assert resolver.expand(loc, JoinLevel.ROUTER, T) == {per}

    def test_unknown_neighbor_expands_empty_at_interface_level(self, resolver):
        loc = Location.router_neighbor("nyc-per1", "203.0.113.200")
        assert resolver.expand(loc, JoinLevel.INTERFACE, T) == frozenset()


class TestPathExpansion:
    def test_ingress_egress_router_path(self, resolver, path_service):
        loc = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        routers = resolver.expand(loc, JoinLevel.ROUTER, T)
        assert "nyc-per1" in routers
        assert "chi-per1" in routers
        assert len(routers) >= 3  # at least one core in between

    def test_path_changes_with_weights(self, resolver, path_service, small_topology):
        loc = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        before = resolver.expand(loc, JoinLevel.LOGICAL_LINK, T)
        # cost out every link on the current path that touches nyc-cr1
        for link_name in sorted(before):
            link = small_topology.network.logical_link(link_name)
            if "nyc-cr1" in link.routers:
                path_service.ospf.history.record(
                    WeightChange(2000.0, link_name, COST_OUT_WEIGHT)
                )
        after = resolver.expand(loc, JoinLevel.LOGICAL_LINK, 3000.0)
        assert after, "path must re-route, not vanish"
        assert after != before
        # historical query still sees the old path
        assert resolver.expand(loc, JoinLevel.LOGICAL_LINK, T) == before

    def test_ingress_destination_resolves_egress_via_bgp(
        self, resolver, path_service, bgp_log
    ):
        bgp_log.announce(0.0, "198.51.100.0/24", "chi-per1")
        loc = Location.pair(LocationType.INGRESS_DESTINATION, "nyc-per1", "198.51.100.9")
        routers = resolver.expand(loc, JoinLevel.ROUTER, T)
        assert "chi-per1" in routers

    def test_unroutable_destination_expands_empty(self, resolver):
        loc = Location.pair(LocationType.INGRESS_DESTINATION, "nyc-per1", "8.8.8.8")
        assert resolver.expand(loc, JoinLevel.ROUTER, T) == frozenset()

    def test_source_destination_via_ingress_map(
        self, resolver, path_service, bgp_log, small_topology
    ):
        bgp_log.announce(0.0, "198.51.100.0/24", "chi-per1")
        server = next(iter(small_topology.network.cdn_servers))
        loc = Location.pair(LocationType.SOURCE_DESTINATION, server, "198.51.100.9")
        routers = resolver.expand(loc, JoinLevel.ROUTER, T)
        assert "nyc-per1" in routers  # CDN attachment
        assert "chi-per1" in routers

    def test_unknown_source_expands_empty(self, resolver, bgp_log):
        bgp_log.announce(0.0, "198.51.100.0/24", "chi-per1")
        loc = Location.pair(
            LocationType.SOURCE_DESTINATION, "mystery-agent", "198.51.100.9"
        )
        assert resolver.expand(loc, JoinLevel.ROUTER, T) == frozenset()

    def test_server_expands_to_attachment_router(self, resolver, small_topology):
        server = next(iter(small_topology.network.cdn_servers))
        assert resolver.expand(Location.server(server), JoinLevel.ROUTER, T) == {
            "nyc-per1"
        }

    def test_prefix_includes_old_and_new_egress(self, resolver, bgp_log):
        bgp_log.announce(0.0, "198.51.100.0/24", "chi-per1")
        bgp_log.withdraw(980.0, "198.51.100.0/24", "chi-per1")
        bgp_log.announce(980.0, "198.51.100.0/24", "dfw-per1")
        routers = resolver.expand(Location.prefix("198.51.100.0/24"), JoinLevel.ROUTER, T)
        assert routers == {"chi-per1", "dfw-per1"}

    def test_prefix_expansion_honours_configured_lookback(
        self, path_service, bgp_log
    ):
        """Regression: ``_expand_prefix`` hardcoded a 60 s lookback and
        silently ignored ``path_lookback``."""
        bgp_log.announce(0.0, "198.51.100.0/24", "chi-per1")
        bgp_log.withdraw(900.0, "198.51.100.0/24", "chi-per1")
        bgp_log.announce(900.0, "198.51.100.0/24", "dfw-per1")
        loc = Location.prefix("198.51.100.0/24")
        narrow = LocationResolver(path_service, path_lookback=30.0)
        assert narrow.expand(loc, JoinLevel.ROUTER, T) == {"dfw-per1"}
        wide = LocationResolver(path_service, path_lookback=200.0)
        assert wide.expand(loc, JoinLevel.ROUTER, T) == {"chi-per1", "dfw-per1"}

    def test_router_path_alias_behaves_like_router(self, resolver):
        loc = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        assert resolver.expand(loc, JoinLevel.ROUTER_PATH, T) == resolver.expand(
            loc, JoinLevel.ROUTER, T
        )


class TestSpatialJoinRule:
    def test_paper_cpu_on_path_example(self, resolver):
        """End-to-end symptom joins CPU overload only on on-path routers."""
        rule = SpatialJoinRule(
            LocationType.INGRESS_EGRESS, LocationType.ROUTER, JoinLevel.ROUTER_PATH
        )
        symptom = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        on_path = Location.router("nyc-per1")
        assert rule.joined(resolver, symptom, on_path, T)
        # a router in a PoP not on the path must not join
        off_path = Location.router("lax-per2")
        assert not rule.joined(resolver, symptom, off_path, T)

    def test_paper_same_router_example(self, resolver, small_topology):
        """Uplink loss and customer-facing loss join at router level."""
        rule = SpatialJoinRule(
            LocationType.INTERFACE, LocationType.INTERFACE, JoinLevel.ROUTER
        )
        router = small_topology.network.router("nyc-per1")
        a = Location.interface(router.interfaces[0].fqname)
        b = Location.interface(router.interfaces[1].fqname)
        assert rule.joined(resolver, a, b, T)
        other = small_topology.network.router("chi-per1").interfaces[0]
        assert not rule.joined(resolver, a, Location.interface(other.fqname), T)

    def test_type_mismatch_raises(self, resolver):
        rule = SpatialJoinRule(
            LocationType.INTERFACE, LocationType.ROUTER, JoinLevel.ROUTER
        )
        with pytest.raises(ValueError):
            rule.joined(resolver, Location.router("r"), Location.router("r"), T)
        with pytest.raises(ValueError):
            rule.joined(
                resolver,
                Location.interface("r:se0/0"),
                Location.interface("r:se0/0"),
                T,
            )

    def test_interface_joins_layer1_device(self, resolver, small_topology):
        network = small_topology.network
        link = next(
            l
            for l in network.logical_links.values()
            if network.layer1_devices_of_logical(l.name)
        )
        device = network.layer1_devices_of_logical(link.name)[0]
        rule = SpatialJoinRule(
            LocationType.INTERFACE, LocationType.LAYER1_DEVICE, JoinLevel.LAYER1_DEVICE
        )
        assert rule.joined(
            resolver,
            Location.interface(link.interface_a),
            Location.layer1_device(device),
            T,
        )
