"""Tests for the routing-epoch resolution cache and batch spatial joins."""

import threading

from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel, LocationResolver, SpatialJoinRule
from repro.obs import Tracer
from repro.routing.ospf import WeightChange

T = 1000.0


def make_resolver(path_service, **kwargs):
    return LocationResolver(path_service, **kwargs)


class TestCacheHitsAndMisses:
    def test_repeat_expansion_hits(self, path_service):
        resolver = make_resolver(path_service)
        loc = Location.router("nyc-per1")
        resolver.expand(loc, JoinLevel.INTERFACE, T)
        resolver.expand(loc, JoinLevel.INTERFACE, T)
        stats = resolver.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_same_epoch_different_timestamp_hits(self, path_service):
        resolver = make_resolver(path_service)
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        first = resolver.expand(pair, JoinLevel.ROUTER, T)
        # no routing change between the instants: same epoch, cache hit
        second = resolver.expand(pair, JoinLevel.ROUTER, T + 5.0)
        assert first == second
        assert resolver.cache_stats()["hits"] == 1

    def test_distinct_levels_are_distinct_entries(self, path_service):
        resolver = make_resolver(path_service)
        loc = Location.router("nyc-per1")
        resolver.expand(loc, JoinLevel.ROUTER, T)
        resolver.expand(loc, JoinLevel.INTERFACE, T)
        assert resolver.cache_stats()["misses"] == 2

    def test_disabled_cache_never_counts(self, path_service):
        resolver = make_resolver(path_service, cache_size=0)
        loc = Location.router("nyc-per1")
        resolver.expand(loc, JoinLevel.ROUTER, T)
        resolver.expand(loc, JoinLevel.ROUTER, T)
        stats = resolver.cache_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["size"] == 0

    def test_clear_cache_forces_recompute(self, path_service):
        resolver = make_resolver(path_service)
        loc = Location.router("nyc-per1")
        resolver.expand(loc, JoinLevel.ROUTER, T)
        resolver.clear_cache()
        resolver.expand(loc, JoinLevel.ROUTER, T)
        stats = resolver.cache_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 0


class TestInvalidation:
    def test_ospf_change_invalidates_path_expansion(self, path_service):
        resolver = make_resolver(path_service)
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        resolver.expand(pair, JoinLevel.ROUTER, T)
        link = sorted(path_service.network.logical_links)[0]
        path_service.ospf.history.record(WeightChange(T - 10.0, link, 99))
        resolver.expand(pair, JoinLevel.ROUTER, T)
        stats = resolver.cache_stats()
        assert stats["misses"] == 2
        assert stats["invalidations"] == 1

    def test_bgp_announce_leaves_ospf_only_entries_alone(
        self, path_service, bgp_log
    ):
        resolver = make_resolver(path_service)
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        resolver.expand(pair, JoinLevel.ROUTER, T)
        bgp_log.announce(T - 10.0, "198.51.100.0/24", "chi-per1")
        resolver.expand(pair, JoinLevel.ROUTER, T)
        stats = resolver.cache_stats()
        assert stats["hits"] == 1
        assert stats["invalidations"] == 0

    def test_bgp_announce_invalidates_destination_pair(
        self, path_service, bgp_log
    ):
        resolver = make_resolver(path_service)
        bgp_log.announce(0.0, "198.51.100.0/24", "chi-per1")
        pair = Location.pair(
            LocationType.INGRESS_DESTINATION, "nyc-per1", "198.51.100.9"
        )
        before = resolver.expand(pair, JoinLevel.ROUTER, T)
        assert "chi-per1" in before
        bgp_log.withdraw(T - 10.0, "198.51.100.0/24", "chi-per1")
        bgp_log.announce(T - 10.0, "198.51.100.0/24", "dfw-per1")
        after = resolver.expand(pair, JoinLevel.ROUTER, T)
        assert "dfw-per1" in after
        assert resolver.cache_stats()["invalidations"] == 1

    def test_unrelated_prefix_update_keeps_prefix_entry(
        self, path_service, bgp_log
    ):
        resolver = make_resolver(path_service)
        bgp_log.announce(0.0, "198.51.100.0/24", "chi-per1")
        loc = Location.prefix("198.51.100.0/24")
        resolver.expand(loc, JoinLevel.ROUTER, T)
        bgp_log.announce(500.0, "203.0.113.0/24", "dfw-per1")
        resolver.expand(loc, JoinLevel.ROUTER, T)
        assert resolver.cache_stats()["hits"] == 1


class TestEviction:
    def test_lru_bound_is_respected(self, path_service):
        resolver = make_resolver(path_service, cache_size=4)
        routers = sorted(path_service.network.routers)[:6]
        for name in routers:
            resolver.expand(Location.router(name), JoinLevel.ROUTER, T)
        stats = resolver.cache_stats()
        assert stats["size"] <= 4
        assert stats["evictions"] == 2

    def test_recently_used_entry_survives(self, path_service):
        resolver = make_resolver(path_service, cache_size=2)
        a, b, c = [
            Location.router(name)
            for name in sorted(path_service.network.routers)[:3]
        ]
        resolver.expand(a, JoinLevel.ROUTER, T)
        resolver.expand(b, JoinLevel.ROUTER, T)
        resolver.expand(a, JoinLevel.ROUTER, T)  # refresh a
        resolver.expand(c, JoinLevel.ROUTER, T)  # evicts b
        resolver.expand(a, JoinLevel.ROUTER, T)
        stats = resolver.cache_stats()
        assert stats["hits"] == 2


class TestTraceCounters:
    def test_cache_counters_land_on_open_span(self, path_service):
        resolver = make_resolver(path_service)
        loc = Location.router("nyc-per1")
        tracer = Tracer()
        with tracer.span("spatial-join", label="test") as span:
            resolver.expand(loc, JoinLevel.ROUTER, T, trace=tracer)
            resolver.expand(loc, JoinLevel.ROUTER, T, trace=tracer)
        assert span.meta["spatial_cache_misses"] == 1
        assert span.meta["spatial_cache_hits"] == 1


class TestBatchJoin:
    def test_batch_matches_one_shot_joins(self, path_service, small_topology):
        resolver = make_resolver(path_service)
        rule = SpatialJoinRule(
            LocationType.INGRESS_EGRESS, LocationType.ROUTER, JoinLevel.ROUTER
        )
        symptom = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        candidates = [
            Location.router(name) for name in sorted(small_topology.network.routers)
        ]
        oracle = LocationResolver(path_service, cache_size=0)
        batch = rule.batch(resolver, symptom, T)
        for candidate in candidates:
            assert batch.joined(candidate) == rule.joined(
                oracle, symptom, candidate, T
            )

    def test_symptom_expanded_lazily_and_once(self, path_service, small_topology):
        resolver = make_resolver(path_service)
        rule = SpatialJoinRule(
            LocationType.INGRESS_EGRESS, LocationType.ROUTER, JoinLevel.ROUTER
        )
        symptom = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        batch = rule.batch(resolver, symptom, T)
        assert resolver.cache_stats()["misses"] == 0  # nothing yet
        for name in sorted(small_topology.network.routers)[:4]:
            batch.joined(Location.router(name))
        # one pair expansion + one per candidate; no re-expansion of the pair
        assert resolver.cache_stats()["misses"] == 5

    def test_batch_rejects_wrong_types(self, path_service):
        import pytest

        rule = SpatialJoinRule(
            LocationType.INGRESS_EGRESS, LocationType.ROUTER, JoinLevel.ROUTER
        )
        resolver = make_resolver(path_service)
        with pytest.raises(ValueError):
            rule.batch(resolver, Location.router("nyc-per1"), T)
        batch = rule.batch(
            resolver,
            Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1"),
            T,
        )
        with pytest.raises(ValueError):
            batch.joined(Location.interface("nyc-per1:se0/0"))


class TestThreadSafety:
    def test_concurrent_expansions_are_consistent(self, path_service):
        resolver = make_resolver(path_service, cache_size=8)
        pair = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
        expected = resolver.expand(pair, JoinLevel.ROUTER, T)
        errors = []

        def worker():
            for _ in range(50):
                if resolver.expand(pair, JoinLevel.ROUTER, T) != expected:
                    errors.append("mismatch")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = resolver.cache_stats()
        assert stats["hits"] + stats["misses"] == 201
