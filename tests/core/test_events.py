"""Tests for event definitions, instances and the library."""

import pytest

from repro.collector.store import DataStore
from repro.core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
    retrieve_events,
)
from repro.core.locations import Location, LocationType


def make_context(**params):
    return RetrievalContext(store=DataStore(), start=0.0, end=100.0, params=params)


def constant_retrieval(instances):
    return lambda context: list(instances)


class TestEventInstance:
    def test_make_and_accessors(self):
        instance = EventInstance.make(
            "link-congestion", 10.0, 20.0, Location.interface("r1:se0/0"), util=97.0
        )
        assert instance.interval == (10.0, 20.0)
        assert instance.duration == 10.0
        assert instance.get("util") == 97.0
        assert instance.get("missing", -1) == -1

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            EventInstance.make("x", 20.0, 10.0, Location.router("r1"))

    def test_point_event_allowed(self):
        instance = EventInstance.make("x", 10.0, 10.0, Location.router("r1"))
        assert instance.duration == 0.0

    def test_str(self):
        instance = EventInstance.make("x", 10.0, 20.0, Location.router("r1"))
        assert "x@router[r1]" in str(instance)


class TestEventDefinition:
    def test_retrieve_sorts_instances(self):
        loc = Location.router("r1")
        instances = [
            EventInstance.make("e", 20.0, 21.0, loc),
            EventInstance.make("e", 10.0, 11.0, loc),
        ]
        definition = EventDefinition(
            "e", LocationType.ROUTER, constant_retrieval(instances)
        )
        retrieved = definition.retrieve(make_context())
        assert [i.start for i in retrieved] == [10.0, 20.0]

    def test_retrieve_rejects_wrong_name(self):
        bad = [EventInstance.make("other", 0.0, 1.0, Location.router("r1"))]
        definition = EventDefinition("e", LocationType.ROUTER, constant_retrieval(bad))
        with pytest.raises(ValueError):
            definition.retrieve(make_context())

    def test_retrieve_rejects_wrong_location_type(self):
        bad = [EventInstance.make("e", 0.0, 1.0, Location.interface("r1:se0/0"))]
        definition = EventDefinition("e", LocationType.ROUTER, constant_retrieval(bad))
        with pytest.raises(ValueError):
            definition.retrieve(make_context())

    def test_redefined_keeps_identity(self):
        definition = EventDefinition("e", LocationType.ROUTER, constant_retrieval([]))
        new = definition.redefined(
            constant_retrieval([EventInstance.make("e", 0.0, 1.0, Location.router("r"))]),
            description="stricter",
        )
        assert new.name == "e"
        assert new.description == "stricter"
        assert len(new.retrieve(make_context())) == 1


class TestRetrievalContext:
    def test_params_and_services(self):
        context = RetrievalContext(
            store=DataStore(), start=0, end=1, params={"threshold": 90},
            services={"ospf": "handle"},
        )
        assert context.param("threshold") == 90
        assert context.param("missing", 5) == 5
        assert context.service("ospf") == "handle"

    def test_missing_service_raises_with_inventory(self):
        context = RetrievalContext(store=DataStore(), start=0, end=1)
        with pytest.raises(KeyError, match="available"):
            context.service("ospf")


class TestEventLibrary:
    def test_register_and_get(self):
        library = EventLibrary()
        definition = EventDefinition("e", LocationType.ROUTER, constant_retrieval([]))
        library.register(definition)
        assert library.get("e") is definition
        assert "e" in library

    def test_duplicate_register_rejected(self):
        library = EventLibrary()
        definition = EventDefinition("e", LocationType.ROUTER, constant_retrieval([]))
        library.register(definition)
        with pytest.raises(ValueError):
            library.register(definition)

    def test_override_replaces(self):
        library = EventLibrary()
        library.register(EventDefinition("e", LocationType.ROUTER, constant_retrieval([])))
        replacement = EventDefinition("e", LocationType.ROUTER, constant_retrieval([]))
        library.override(replacement)
        assert library.get("e") is replacement

    def test_scoped_library_sees_base_but_overrides_locally(self):
        base = EventLibrary()
        shared = EventDefinition("e", LocationType.ROUTER, constant_retrieval([]))
        base.register(shared)
        app = base.scoped()
        assert app.get("e") is shared
        local = EventDefinition("e", LocationType.ROUTER, constant_retrieval([]))
        app.override(local)
        assert app.get("e") is local
        assert base.get("e") is shared  # base untouched

    def test_names_union(self):
        base = EventLibrary()
        base.register(EventDefinition("a", LocationType.ROUTER, constant_retrieval([])))
        app = base.scoped()
        app.register(EventDefinition("b", LocationType.ROUTER, constant_retrieval([])))
        assert app.names() == ["a", "b"]

    def test_missing_event_raises(self):
        with pytest.raises(KeyError):
            EventLibrary().get("ghost")

    def test_retrieve_events_helper(self):
        library = EventLibrary()
        loc = Location.router("r1")
        library.register(
            EventDefinition(
                "e",
                LocationType.ROUTER,
                constant_retrieval([EventInstance.make("e", 0.0, 1.0, loc)]),
            )
        )
        result = retrieve_events(library, ["e"], make_context())
        assert len(result["e"]) == 1
