"""Tests for time series, the NICE tester and the rule miner."""

import numpy as np
import pytest

from repro.collector.store import DataStore
from repro.core.correlation import (
    BinSpec,
    CorrelationTester,
    EventSeries,
    RuleMiner,
    candidate_series_from_store,
    from_event_instances,
    pearson,
)
from repro.core.events import EventInstance
from repro.core.locations import Location


class TestBinSpec:
    def test_n_bins(self):
        spec = BinSpec(0.0, 3000.0, 300.0)
        assert spec.n_bins == 10

    def test_bin_of(self):
        spec = BinSpec(0.0, 3000.0, 300.0)
        assert spec.bin_of(0.0) == 0
        assert spec.bin_of(299.0) == 0
        assert spec.bin_of(300.0) == 1

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            BinSpec(10.0, 10.0)
        with pytest.raises(ValueError):
            BinSpec(0.0, 10.0, width=0)


class TestEventSeries:
    def test_from_intervals_marks_touched_bins(self):
        spec = BinSpec(0.0, 1500.0, 300.0)
        series = EventSeries.from_intervals("e", spec, [(310.0, 620.0)])
        assert list(series.values) == [0, 1, 1, 0, 0]

    def test_margin_widens(self):
        spec = BinSpec(0.0, 1500.0, 300.0)
        series = EventSeries.from_intervals("e", spec, [(310.0, 320.0)], margin=300.0)
        assert list(series.values) == [1, 1, 1, 0, 0]

    def test_out_of_window_intervals_ignored(self):
        spec = BinSpec(0.0, 1500.0, 300.0)
        series = EventSeries.from_intervals("e", spec, [(-900.0, -700.0), (9000.0, 9100.0)])
        assert series.count == 0

    def test_interval_clamped_to_window(self):
        spec = BinSpec(0.0, 1500.0, 300.0)
        series = EventSeries.from_intervals("e", spec, [(-100.0, 100.0)])
        assert list(series.values) == [1, 0, 0, 0, 0]

    def test_from_event_instances(self):
        spec = BinSpec(0.0, 1500.0, 300.0)
        instances = [
            EventInstance.make("e", 310.0, 320.0, Location.router("r1")),
        ]
        series = from_event_instances("e", spec, instances)
        assert series.count == 1

    def test_occupancy(self):
        spec = BinSpec(0.0, 1000.0, 100.0)
        series = EventSeries.from_timestamps("e", spec, [50.0, 150.0])
        assert series.occupancy == pytest.approx(0.2)


class TestPearson:
    def test_perfect_correlation(self):
        a = np.array([0, 1, 0, 1, 0], dtype=float)
        assert pearson(a, a) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        a = np.array([0, 1, 0, 1], dtype=float)
        assert pearson(a, 1 - a) == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        a = np.zeros(10)
        b = np.ones(10)
        assert pearson(a, b) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.zeros(3), np.zeros(4))


def correlated_pair(n_bins=600, n_events=40, lag_bins=0, seed=7):
    """Symptom series + diagnostic series co-occurring at a fixed lag."""
    rng = np.random.default_rng(seed)
    spec = BinSpec(0.0, n_bins * 300.0, 300.0)
    positions = rng.choice(n_bins - 10, size=n_events, replace=False)
    symptom = EventSeries.empty("symptom", spec)
    diagnostic = EventSeries.empty("diagnostic", spec)
    for p in positions:
        symptom.values[p + lag_bins] = 1.0
        diagnostic.values[p] = 1.0
    return symptom, diagnostic, spec


class TestCorrelationTester:
    def test_aligned_series_significant(self):
        symptom, diagnostic, _ = correlated_pair()
        result = CorrelationTester().test(symptom, diagnostic)
        assert result.significant
        assert result.r > 0.9

    def test_independent_series_not_significant(self):
        rng = np.random.default_rng(1)
        spec = BinSpec(0.0, 600 * 300.0, 300.0)
        a = EventSeries("a", spec, (rng.random(600) < 0.05).astype(float))
        b = EventSeries("b", spec, (rng.random(600) < 0.05).astype(float))
        result = CorrelationTester().test(a, b)
        assert not result.significant

    def test_sparse_series_declared_not_significant(self):
        spec = BinSpec(0.0, 600 * 300.0, 300.0)
        a = EventSeries.from_timestamps("a", spec, [100.0])
        b = EventSeries.from_timestamps("b", spec, [100.0])
        result = CorrelationTester().test(a, b)
        assert not result.significant
        assert result.p_value == 1.0

    def test_autocorrelated_bursts_handled(self):
        """Two bursty but unrelated series must not test significant.

        This is NICE's raison d'être: burstiness fools naive tests, the
        circular permutation preserves it in the null distribution.
        """
        rng = np.random.default_rng(3)
        spec = BinSpec(0.0, 800 * 300.0, 300.0)

        def bursty(seed):
            r = np.random.default_rng(seed)
            values = np.zeros(800)
            for _ in range(6):
                start = r.integers(0, 760)
                values[start : start + 30] = 1.0  # long bursts
            return values

        a = EventSeries("a", spec, bursty(10))
        b = EventSeries("b", spec, bursty(20))
        result = CorrelationTester(n_permutations=400).test(a, b)
        assert not result.significant
        del rng

    def test_grid_mismatch_rejected(self):
        a = EventSeries.empty("a", BinSpec(0.0, 3000.0, 300.0))
        b = EventSeries.empty("b", BinSpec(0.0, 6000.0, 300.0))
        with pytest.raises(ValueError):
            CorrelationTester().test(a, b)

    def test_result_str(self):
        symptom, diagnostic, _ = correlated_pair()
        result = CorrelationTester().test(symptom, diagnostic)
        assert "SIGNIFICANT" in str(result)

    def test_deterministic_given_seed(self):
        symptom, diagnostic, _ = correlated_pair(n_bins=2000)
        r1 = CorrelationTester(seed=5).test(symptom, diagnostic)
        r2 = CorrelationTester(seed=5).test(symptom, diagnostic)
        assert r1 == r2


class TestRuleMiner:
    def test_mines_only_significant(self):
        symptom, diagnostic, spec = correlated_pair()
        rng = np.random.default_rng(9)
        noise = EventSeries("noise", spec, (rng.random(spec.n_bins) < 0.05).astype(float))
        mined = RuleMiner().mine(symptom, [diagnostic, noise])
        assert [m.diagnostic_name for m in mined] == ["diagnostic"]

    def test_ranked_by_score(self):
        symptom, diagnostic, spec = correlated_pair()
        partial = EventSeries("partial", spec, diagnostic.values.copy())
        # degrade half the co-occurrences
        on_bins = np.flatnonzero(partial.values)
        partial.values[on_bins[::2]] = 0.0
        mined = RuleMiner().mine(symptom, [partial, diagnostic])
        assert mined[0].diagnostic_name == "diagnostic"

    def test_candidate_series_from_store(self):
        store = DataStore()
        spec = BinSpec(0.0, 3000.0, 300.0)
        store.insert("syslog", 100.0, router="r1", code="BGP-5-NOTIFICATION")
        store.insert("syslog", 200.0, router="r2", code="BGP-5-NOTIFICATION")
        store.insert("workflow", 300.0, router="r1", activity="provisioning.add")
        series = candidate_series_from_store(store, spec)
        names = {s.name for s in series}
        assert names == {
            "syslog:BGP-5-NOTIFICATION@r1",
            "syslog:BGP-5-NOTIFICATION@r2",
            "workflow:provisioning.add@r1",
        }

    def test_candidate_router_filter(self):
        store = DataStore()
        spec = BinSpec(0.0, 3000.0, 300.0)
        store.insert("syslog", 100.0, router="r1", code="X-1-Y")
        store.insert("syslog", 100.0, router="r2", code="X-1-Y")
        series = candidate_series_from_store(store, spec, routers=["r1"])
        assert [s.name for s in series] == ["syslog:X-1-Y@r1"]
