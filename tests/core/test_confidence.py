"""Confidence annotation of diagnoses under impaired evidence feeds.

Covers :func:`assess_confidence` / :class:`EvidenceGap` in isolation and
the engine integration: an impairment interval recorded against a feed
that backs a diagnostic event must surface as a gap, a caveat and a
discounted confidence on every diagnosis whose retrieval window overlaps
it — and must leave diagnoses outside the interval untouched.
"""

import pytest

from repro.collector.health import FeedState, HealthRegistry
from repro.collector.store import DataStore
from repro.core.engine import EngineConfig, RcaEngine
from repro.core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
)
from repro.core.graph import DiagnosisGraph, DiagnosisRule
from repro.core.locations import Location, LocationType
from repro.core.reasoning.rule_based import (
    GAP_PENALTIES,
    MIN_CONFIDENCE,
    UNKNOWN_DEGRADED,
    UNKNOWN_NO_EVIDENCE,
    EvidenceGap,
    assess_confidence,
)
from repro.core.spatial import JoinLevel, SpatialJoinRule
from repro.core.temporal import ExpandOption, TemporalExpansion, TemporalJoinRule


def gap(source="syslog", state=FeedState.DOWN, start=0.0, end=100.0,
        event="a", parent="s"):
    return EvidenceGap(source=source, state=state, start=start, end=end,
                       event=event, parent_event=parent)


class TestAssessConfidence:
    def test_no_gaps_full_confidence(self):
        assert assess_confidence([]) == (1.0, [])

    @pytest.mark.parametrize("state", list(GAP_PENALTIES))
    def test_single_gap_charges_state_penalty(self, state):
        confidence, caveats = assess_confidence([gap(state=state)])
        assert confidence == round(1.0 - GAP_PENALTIES[state], 2)
        assert len(caveats) == 1

    def test_same_feed_does_not_compound(self):
        gaps = [gap(start=0.0), gap(start=500.0, end=600.0)]
        confidence, caveats = assess_confidence(gaps)
        assert confidence == round(1.0 - GAP_PENALTIES[FeedState.DOWN], 2)
        assert len(caveats) == 2  # but every gap still gets its caveat

    def test_same_feed_worst_state_wins(self):
        gaps = [gap(state=FeedState.LAGGING), gap(state=FeedState.DOWN)]
        confidence, _ = assess_confidence(gaps)
        assert confidence == round(1.0 - GAP_PENALTIES[FeedState.DOWN], 2)

    def test_distinct_feeds_compound(self):
        gaps = [gap(source="syslog"), gap(source="bgpmon")]
        confidence, _ = assess_confidence(gaps)
        assert confidence == round(1.0 - 2 * GAP_PENALTIES[FeedState.DOWN], 2)

    def test_confidence_floor(self):
        gaps = [gap(source=s) for s in ("a", "b", "c", "d", "e")]
        confidence, _ = assess_confidence(gaps)
        assert confidence == MIN_CONFIDENCE

    def test_describe_names_feed_state_interval_and_events(self):
        text = gap(source="bgpmon", state=FeedState.LAGGING,
                   start=10.0, end=20.0, event="flap", parent="loss").describe()
        assert "'bgpmon'" in text
        assert "LAGGING" in text
        assert "[10, 20]" in text
        assert "'flap'" in text and "'loss'" in text


# ---------------------------------------------------------------------------
# engine integration


def store_backed_event(name, table, data_source=""):
    """Event definition reading (timestamp, router) rows from a table."""

    def retrieve(context: RetrievalContext):
        for record in context.store.table(table).query(context.start, context.end):
            yield EventInstance.make(
                name, record.timestamp, record.timestamp,
                Location.router(record["router"]),
            )

    return EventDefinition(
        name, LocationType.ROUTER, retrieve, data_source=data_source
    )


ROUTER_JOIN = SpatialJoinRule(LocationType.ROUTER, LocationType.ROUTER, JoinLevel.ROUTER)


def temporal(left=30.0, right=30.0):
    exp = TemporalExpansion(ExpandOption.START_END, left, right)
    return TemporalJoinRule(exp, exp)


@pytest.fixture
def setup(resolver):
    """Graph s -> a -> b; 'a' rides syslog, 'b' rides the bgp monitor."""
    store = DataStore()
    library = EventLibrary()
    library.register(
        EventDefinition("s", LocationType.ROUTER, lambda context: [])
    )
    library.register(store_backed_event("a", "syslog", data_source="syslog"))
    library.register(store_backed_event("b", "bgpmon", data_source="bgp monitor"))
    graph = DiagnosisGraph(symptom_event="s")
    graph.add_rule(DiagnosisRule("s", "a", temporal(), ROUTER_JOIN, priority=10))
    graph.add_rule(DiagnosisRule("a", "b", temporal(), ROUTER_JOIN, priority=20))
    health = HealthRegistry()
    engine = RcaEngine(
        graph, library, resolver, store, config=EngineConfig(health=health)
    )
    return store, engine, health


def symptom_at(t, router="nyc-per1"):
    return EventInstance.make("s", t, t + 10.0, Location.router(router))


class TestEngineGapIntegration:
    def test_healthy_feeds_full_confidence(self, setup):
        store, engine, _health = setup
        store.insert("syslog", 1005.0, router="nyc-per1")
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.confidence == 1.0
        assert not diagnosis.gaps and not diagnosis.caveats
        assert not diagnosis.is_degraded

    def test_outage_overlapping_window_recorded_as_gap(self, setup):
        _store, engine, health = setup
        health.record_outage("syslog", 900.0, 2000.0)
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.is_degraded
        assert diagnosis.confidence == round(
            1.0 - GAP_PENALTIES[FeedState.DOWN], 2
        )
        (recorded,) = [g for g in diagnosis.gaps if g.event == "a"]
        assert recorded.source == "syslog"
        assert recorded.state is FeedState.DOWN
        # the gap is clamped to the rule's search window
        assert recorded.start >= 900.0
        assert recorded.end <= 2000.0

    def test_outage_outside_window_ignored(self, setup):
        store, engine, health = setup
        store.insert("syslog", 1005.0, router="nyc-per1")
        health.record_outage("syslog", 5000.0, 6000.0)
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.confidence == 1.0
        assert not diagnosis.gaps

    def test_gap_recorded_even_for_unmatched_rules(self, setup):
        """'b' never matched (no rows), but its feed being down still
        taints the conclusion — absence of evidence was not reliable."""
        store, engine, health = setup
        store.insert("syslog", 1005.0, router="nyc-per1")
        health.record_outage("bgpmon", 0.0, 9000.0)
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.primary_cause == "a"  # still explained
        assert diagnosis.is_degraded
        assert {g.source for g in diagnosis.gaps} == {"bgpmon"}

    def test_unknown_splits_by_evidence_health(self, setup):
        _store, engine, health = setup
        clean = engine.diagnose(symptom_at(1000.0))
        assert clean.annotated_cause == UNKNOWN_NO_EVIDENCE
        health.record_outage("syslog", 900.0, 2000.0)
        blind = engine.diagnose(symptom_at(1000.0))
        assert blind.annotated_cause == UNKNOWN_DEGRADED
        assert blind.primary_cause == "Unknown"  # plain label unchanged

    def test_explained_diagnosis_keeps_cause_as_annotation(self, setup):
        store, engine, health = setup
        store.insert("syslog", 1005.0, router="nyc-per1")
        health.record_outage("bgpmon", 0.0, 9000.0)
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.annotated_cause == "a"

    def test_explain_carries_confidence_and_caveats(self, setup):
        _store, engine, health = setup
        health.record_outage("syslog", 900.0, 2000.0)
        text = engine.diagnose(symptom_at(1000.0)).explain()
        assert UNKNOWN_DEGRADED in text
        assert "confidence:" in text
        assert "'syslog'" in text and "DOWN" in text

    def test_open_ended_outage_clamped_to_window(self, setup):
        _store, engine, health = setup
        health.record_outage("syslog", 900.0, None)  # still down
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.is_degraded
        for recorded in diagnosis.gaps:
            assert recorded.end <= 2000.0  # bounded by the search window

    def test_no_health_registry_disables_gap_tracking(self, resolver, setup):
        store, engine, _health = setup
        engine.config.health = None
        diagnosis = engine.diagnose(symptom_at(1000.0))
        assert diagnosis.confidence == 1.0
        assert diagnosis.annotated_cause == UNKNOWN_NO_EVIDENCE
