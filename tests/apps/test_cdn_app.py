"""Tests for the CDN RCA application (Fig. 5, Tables V/VI)."""

import random

import pytest

from repro.apps.cdn import CdnApp, build_cdn_graph
from repro.collector import DataCollector
from repro.core.knowledge import names
from repro.platform import GrcaPlatform
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
from repro.topology import TopologyParams, build_topology

INTERVAL = 1800.0
T0 = BASE_EPOCH
FAULT_SLOT = 8
T_FAULT = T0 + FAULT_SLOT * INTERVAL + 60.0


@pytest.fixture
def harness():
    topo = build_topology(
        TopologyParams(
            n_pops=4, pers_per_pop=2, customers_per_per=2,
            cdn_pops=("nyc",), peering_pops=("chi",), cdn_servers_per_dc=2, seed=55,
        )
    )
    emitter = TelemetryEmitter(topo, random.Random(1), syslog_jitter=1.0)
    injector = FaultInjector(topo, emitter, random.Random(2))
    server = sorted(topo.network.cdn_servers)[0]
    client_ip = "198.51.100.25"
    # steady state: client prefix egresses at chi, server enters at nyc-per1
    emitter.bgp_update(T0 - 86400.0, "A", "198.51.100.0/24", "chi-cr1")
    emitter.netflow(T0 - 86400.0, server, "203.0.113.1", "nyc-per1")

    def emit_rtt(elevated_slots=frozenset(), n_slots=16, base=50.0):
        rng = random.Random(7)
        for slot in range(n_slots):
            t = T0 + (slot + 1) * INTERVAL
            value = base + rng.gauss(0.0, 1.0)
            if slot in elevated_slots:
                value *= 2.5
            emitter.perf(t, server, client_ip, "rtt_ms", value)

    def build_app():
        collector = DataCollector()
        for router in topo.network.routers.values():
            collector.registry.register_device(router.name, router.timezone)
        emitter.buffers.ingest_into(collector)
        platform = GrcaPlatform.from_collector(
            topo, collector, config_time=T0 - 2 * 86400.0
        )
        return CdnApp.build(platform)

    return topo, injector, emitter, server, client_ip, emit_rtt, build_app


def diagnose_single(app, t0=T0):
    symptoms = app.find_symptoms(t0, t0 + 20 * INTERVAL)
    assert len(symptoms) == 1, symptoms
    return app.engine.diagnose(symptoms[0])


class TestGraphStructure:
    def test_graph_children(self):
        graph = build_cdn_graph()
        children = {r.child_event for r in graph.rules_from(graph.symptom_event)}
        assert children == {
            names.CDN_SERVER_ISSUE,
            names.CDN_POLICY_CHANGE,
            names.INTERFACE_FLAP,
            names.BGP_EGRESS_CHANGE,
            names.LINK_LOSS,
            names.LINK_CONGESTION,
            names.OSPF_RECONVERGENCE,
        }


class TestSymptomDetection:
    def test_stable_rtt_no_symptoms(self, harness):
        *_, emit_rtt, build_app = harness
        emit_rtt()
        app = build_app()
        assert app.find_symptoms(T0, T0 + 20 * INTERVAL) == []

    def test_elevated_sample_detected(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        emit_rtt(elevated_slots={FAULT_SLOT})
        app = build_app()
        symptoms = app.find_symptoms(T0, T0 + 20 * INTERVAL)
        assert len(symptoms) == 1
        assert symptoms[0].location.parts == (server, client_ip)


class TestDiagnosisPerCause:
    def path_link(self, injector, topo):
        paths = injector.paths_between("nyc-per1", "chi-cr1", T_FAULT - 10.0)
        assert paths.reachable
        return sorted(paths.links)[0]

    def test_outside_network_unknown(self, harness):
        *_, emit_rtt, build_app = harness
        emit_rtt(elevated_slots={FAULT_SLOT})
        diagnosis = diagnose_single(build_app())
        assert diagnosis.primary_cause == "Unknown"

    def test_policy_change(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        injector.cdn_policy_change(T_FAULT, [server])
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == names.CDN_POLICY_CHANGE

    def test_server_issue(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        injector.cdn_server_overload(T_FAULT, server, INTERVAL)
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == names.CDN_SERVER_ISSUE

    def test_other_servers_issue_does_not_join(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        other = sorted(topo.network.cdn_servers)[1]
        injector.cdn_server_overload(T_FAULT, other, INTERVAL)
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == "Unknown"

    def test_link_congestion_on_path(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        link = self.path_link(injector, topo)
        iface = topo.network.logical_link(link).interface_a
        injector.cdn_link_congestion(T_FAULT, iface, INTERVAL)
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == names.LINK_CONGESTION

    def test_link_loss_on_path(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        link = self.path_link(injector, topo)
        iface = topo.network.logical_link(link).interface_a
        injector.cdn_link_loss(T_FAULT, iface, INTERVAL)
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == names.LINK_LOSS

    def test_congestion_off_path_does_not_join(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        # an interface in a PoP that cannot be on the nyc->chi path
        off_path = topo.network.router("lax-per2").interfaces[0].fqname
        injector.cdn_link_congestion(T_FAULT, off_path, INTERVAL)
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == "Unknown"

    def test_interface_flap_on_path(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        link = self.path_link(injector, topo)
        injector.cdn_backbone_interface_flap(T_FAULT, link)
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == names.INTERFACE_FLAP

    def test_ospf_reconvergence_on_path(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        link = self.path_link(injector, topo)
        injector.cdn_ospf_reconvergence(T_FAULT, link)
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == names.OSPF_RECONVERGENCE

    def test_egress_change(self, harness):
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        injector.cdn_egress_change(T_FAULT, "198.51.100.0/24", "chi-cr1", "dfw-cr1")
        emit_rtt(elevated_slots={FAULT_SLOT})
        assert diagnose_single(build_app()).primary_cause == names.BGP_EGRESS_CHANGE


class TestManualEntry:
    def test_operator_entered_event_diagnosed(self, harness):
        """Section III-B: operators may enter an event directly (e.g. a
        customer service call) instead of a traffic-monitor detection."""
        topo, injector, emitter, server, client_ip, emit_rtt, build_app = harness
        injector.cdn_policy_change(T_FAULT, [server])
        emit_rtt()  # no detectable elevation at all
        app = build_app()
        diagnosis = app.diagnose_manual_event(
            T_FAULT - 60.0, T_FAULT + 600.0, server, client_ip
        )
        assert diagnosis.primary_cause == names.CDN_POLICY_CHANGE
