"""Tests for the Section IV correlation study harness."""

import pytest

from repro.apps import BgpFlapApp
from repro.apps.studies import CPU_RELATED_CAUSES, cpu_correlation_study
from repro.core.correlation import CorrelationTester
from repro.simulation import cpu_bgp_study


@pytest.fixture(scope="module")
def outcome():
    result = cpu_bgp_study(
        seed=201, duration_days=20, n_provisioning=120,
        provisioning_flap_probability=0.15, n_other_flaps=400, n_pure_cpu_flaps=10,
    )
    app = BgpFlapApp.build(result.platform())
    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
    return result, app, diagnoses


class TestCpuCorrelationStudy:
    def test_counts_reported(self, outcome):
        result, app, diagnoses = outcome
        study = cpu_correlation_study(app, diagnoses, result.start, result.end)
        assert study.n_all_flaps == len(diagnoses)
        assert study.n_cpu_related == sum(
            1 for d in diagnoses if d.primary_cause in CPU_RELATED_CAUSES
        )
        assert study.n_candidates > 5

    def test_every_candidate_tested_in_both_modes(self, outcome):
        result, app, diagnoses = outcome
        study = cpu_correlation_study(app, diagnoses, result.start, result.end)
        assert len(study.prefiltered) == study.n_candidates
        assert len(study.unfiltered) == study.n_candidates

    def test_lookup_helpers(self, outcome):
        result, app, diagnoses = outcome
        study = cpu_correlation_study(app, diagnoses, result.start, result.end)
        assert study.prefiltered_result("provisioning.port_turnup") is not None
        assert study.prefiltered_result("no-such-series") is None

    def test_prefiltered_provisioning_scores_higher(self, outcome):
        result, app, diagnoses = outcome
        study = cpu_correlation_study(app, diagnoses, result.start, result.end)
        pre = study.prefiltered_result("provisioning.port_turnup")
        unf = study.unfiltered_result("provisioning.port_turnup")
        assert pre.score > unf.score

    @pytest.mark.slow
    def test_per_router_universe_is_larger(self, outcome):
        result, app, diagnoses = outcome
        aggregated = cpu_correlation_study(
            app, diagnoses, result.start, result.end, per_router=False
        )
        per_router = cpu_correlation_study(
            app, diagnoses, result.start, result.end, per_router=True
        )
        assert per_router.n_candidates > aggregated.n_candidates

    def test_custom_tester_respected(self, outcome):
        result, app, diagnoses = outcome
        strict = CorrelationTester(score_threshold=1e9)
        study = cpu_correlation_study(
            app, diagnoses, result.start, result.end, tester=strict
        )
        assert study.significant_prefiltered() == []
