"""Tests for the backbone probe-loss application (zero custom rules)."""

from collections import Counter

import pytest

from repro.apps import BackboneApp
from repro.apps.backbone import BACKBONE_LOSS_SPEC
from repro.core.knowledge import names
from repro.simulation import backbone_probe_month
from repro.topology import TopologyParams


@pytest.fixture(scope="module")
def outcome():
    result = backbone_probe_month(
        total_losses=100,
        params=TopologyParams(n_pops=4, pers_per_pop=2, customers_per_per=2, seed=62),
        seed=62,
        duration_days=15,
    )
    app = BackboneApp.build(result.platform())
    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
    return result, app, diagnoses


class TestPureLibraryConstruction:
    def test_spec_uses_only_library_rules(self):
        assert BACKBONE_LOSS_SPEC.count("use library") == 3
        assert "{" not in BACKBONE_LOSS_SPEC  # no explicit clauses at all

    def test_graph_events_all_from_table1(self, outcome):
        _result, app, _diagnoses = outcome
        assert app.engine.graph.events() <= set(names.TABLE1_EVENTS)


class TestDiagnosis:
    def test_symptom_count_matches_truth(self, outcome):
        result, _app, diagnoses = outcome
        assert len(diagnoses) == len(result.ground_truth)

    def test_breakdown_matches_injected_mixture(self, outcome):
        result, _app, diagnoses = outcome
        truth = result.truth_counts()
        counts = Counter(d.primary_cause for d in diagnoses)
        assert counts[names.LINK_CONGESTION] == truth["Link Congestions"]
        assert counts[names.OSPF_RECONVERGENCE] == truth["OSPF re-convergence"]
        assert counts["Unknown"] == truth["Unknown"]

    def test_congestion_dominates(self, outcome):
        _result, _app, diagnoses = outcome
        counts = Counter(d.primary_cause for d in diagnoses)
        assert counts[names.LINK_CONGESTION] == max(counts.values())


class TestAdvice:
    def test_capacity_recommendation_when_congestion_dominates(self, outcome):
        result, app, diagnoses = outcome
        from repro.core import ResultBrowser

        advice = BackboneApp.advise(ResultBrowser(diagnoses))
        assert advice.congestion_share > advice.reconvergence_share
        assert "capacity" in advice.recommendation

    def test_frr_recommendation_when_reconvergence_dominates(self, outcome):
        _result, _app, diagnoses = outcome
        from repro.core import ResultBrowser

        reconvergence_only = [
            d for d in diagnoses if d.primary_cause == names.OSPF_RECONVERGENCE
        ]
        advice = BackboneApp.advise(ResultBrowser(reconvergence_only))
        assert "fast reroute" in advice.recommendation

    def test_tie_recommendation(self):
        from repro.core import ResultBrowser

        advice = BackboneApp.advise(ResultBrowser([]))
        assert "monitoring" in advice.recommendation
