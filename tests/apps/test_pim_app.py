"""Tests for the PIM/MVPN RCA application (Fig. 6, Tables VII/VIII)."""

import random

import pytest

from repro.apps.pim import CUSTOMER_IFACE_FLAP, PimApp, build_pim_graph
from repro.collector import DataCollector
from repro.core.knowledge import names
from repro.platform import GrcaPlatform
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
from repro.topology import TopologyParams, build_topology

T = BASE_EPOCH + 7200.0


@pytest.fixture
def harness():
    topo = build_topology(
        TopologyParams(n_pops=4, pers_per_pop=2, customers_per_per=3, seed=44)
    )
    emitter = TelemetryEmitter(topo, random.Random(1), syslog_jitter=1.0)
    injector = FaultInjector(topo, emitter, random.Random(2))

    def build_app():
        collector = DataCollector()
        for router in topo.network.routers.values():
            collector.registry.register_device(router.name, router.timezone)
        emitter.buffers.ingest_into(collector)
        platform = GrcaPlatform.from_collector(topo, collector, config_time=BASE_EPOCH)
        return PimApp.build(platform)

    return topo, injector, build_app


class TestGraphStructure:
    def test_graph_shape(self):
        graph = build_pim_graph()
        assert graph.symptom_event == names.PIM_ADJACENCY_CHANGE
        children = {r.child_event for r in graph.rules_from(graph.symptom_event)}
        assert CUSTOMER_IFACE_FLAP in children
        assert names.ROUTER_COST_IN_OUT in children
        assert names.OSPF_RECONVERGENCE in children
        assert len(children) == 7

    def test_customer_flap_has_top_priority(self):
        graph = build_pim_graph()
        priorities = {
            r.child_event: r.priority for r in graph.rules_from(graph.symptom_event)
        }
        assert priorities[CUSTOMER_IFACE_FLAP] == max(priorities.values())
        assert priorities[names.LINK_COST_OUT] > priorities[names.OSPF_RECONVERGENCE]


class TestDiagnosisPerCause:
    def run_one(self, build_app, expected, n_min=1):
        app = build_app()
        symptoms = app.find_symptoms(T - 7200, T + 7200)
        assert len(symptoms) >= n_min
        causes = {app.engine.diagnose(s).primary_cause for s in symptoms}
        assert causes == {expected}

    def test_config_change(self, harness):
        topo, injector, build_app = harness
        injector.pim_config_change(T, topo.provider_edges[0])
        self.run_one(build_app, names.PIM_CONFIG_CHANGE)

    def test_router_cost(self, harness):
        topo, injector, build_app = harness
        core = f"{sorted(topo.network.pops)[0]}-cr1"
        truths = injector.pim_router_cost(T, core)
        if not truths:
            pytest.skip("no PE pair crossed the chosen core in this draw")
        self.run_one(build_app, names.ROUTER_COST_IN_OUT)

    def test_link_cost_out(self, harness):
        topo, injector, build_app = harness
        backbone = [
            l.name for l in topo.network.logical_links.values()
            if l.router_a.endswith("cr1") and l.router_z.endswith("cr1")
        ]
        truths = []
        for link in backbone:
            truths = injector.pim_link_cost_out(T, link)
            if truths:
                break
        assert truths, "need a backbone link with a crossing PE pair"
        self.run_one(build_app, names.LINK_COST_OUT)

    def test_ospf_reconvergence(self, harness):
        topo, injector, build_app = harness
        backbone = [
            l.name for l in topo.network.logical_links.values()
            if l.router_a.endswith("cr1") and l.router_z.endswith("cr1")
        ]
        truths = []
        for link in backbone:
            truths = injector.pim_ospf_reconvergence(T, link)
            if truths:
                break
        assert truths
        self.run_one(build_app, names.OSPF_RECONVERGENCE)

    def test_uplink_adjacency(self, harness):
        topo, injector, build_app = harness
        injector.pim_uplink_adjacency(T, topo.provider_edges[0])
        self.run_one(build_app, names.UPLINK_PIM_ADJACENCY_CHANGE)

    def test_customer_interface_flap(self, harness):
        topo, injector, build_app = harness
        customer = sorted(topo.customer_attachments)[0]
        injector.pim_customer_interface_flap(T, customer)
        self.run_one(build_app, CUSTOMER_IFACE_FLAP)

    def test_unknown(self, harness):
        topo, injector, build_app = harness
        injector.pim_unknown(T, topo.provider_edges[0])
        self.run_one(build_app, "Unknown")


class TestSymptomRetrieval:
    def test_uplink_changes_are_not_symptoms(self, harness):
        topo, injector, build_app = harness
        injector.pim_uplink_adjacency(T, topo.provider_edges[0])
        app = build_app()
        symptoms = app.find_symptoms(T - 3600, T + 3600)
        # only the vrf-scoped changes count as symptoms, not the uplink one
        assert all(
            s.name == names.PIM_ADJACENCY_CHANGE for s in symptoms
        )
        uplink_events = app.events.get(names.UPLINK_PIM_ADJACENCY_CHANGE)
        assert uplink_events is not None

    def test_symptom_location_is_pe_pair(self, harness):
        topo, injector, build_app = harness
        injector.pim_unknown(T, topo.provider_edges[0])
        app = build_app()
        symptom = app.find_symptoms(T - 3600, T + 3600)[0]
        local, remote = symptom.location.parts
        assert local == topo.provider_edges[0]
        assert remote in topo.provider_edges

    def test_backbone_interface_flap_not_customer_facing(self, harness):
        """A backbone flap must not be classified as a customer-facing
        flap: the app-specific event filters to link-less interfaces."""
        topo, injector, build_app = harness
        backbone = [
            l.name for l in topo.network.logical_links.values()
            if l.router_a.endswith("cr1") and l.router_z.endswith("cr1")
        ]
        truths = []
        for link in backbone:
            pairs = injector.pe_pairs_crossing(link, T - 1.0, limit=1)
            if not pairs:
                continue
            # flap the backbone interface AND ripple OSPF, then a PIM change
            injector.emitter.interface_flap(
                T, topo.network.logical_link(link).interface_a, 20.0
            )
            truths = injector.pim_link_cost_out(T + 1.0, link)
            break
        assert truths
        app = build_app()
        symptoms = app.find_symptoms(T - 3600, T + 3600)
        causes = {app.engine.diagnose(s).primary_cause for s in symptoms}
        assert CUSTOMER_IFACE_FLAP not in causes
