"""Tests for the BGP flap RCA application (Fig. 4, Tables III/IV)."""

import random

import pytest

from repro.collector import DataCollector
from repro.core.knowledge import names
from repro.platform import GrcaPlatform
from repro.apps.bgp_flaps import BgpFlapApp, SESSION_FLAP_WINDOW
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
from repro.topology import TopologyParams, build_topology

T = BASE_EPOCH + 7200.0


@pytest.fixture
def harness():
    """Topology + injector + a function building the app after injection."""
    topo = build_topology(
        TopologyParams(
            n_pops=3, pers_per_pop=2, customers_per_per=4,
            access_sonet_fraction=0.5, access_mesh_fraction=0.2, seed=33,
        )
    )
    emitter = TelemetryEmitter(topo, random.Random(1), syslog_jitter=1.0)
    injector = FaultInjector(topo, emitter, random.Random(2))

    def build_app():
        collector = DataCollector()
        for router in topo.network.routers.values():
            collector.registry.register_device(router.name, router.timezone)
        emitter.buffers.ingest_into(collector)
        platform = GrcaPlatform.from_collector(topo, collector, config_time=BASE_EPOCH)
        return BgpFlapApp.build(platform)

    return topo, injector, build_app


def diagnose_single(app, start=T - 3600, end=T + 3600):
    symptoms = app.find_symptoms(start, end)
    assert len(symptoms) == 1, symptoms
    return app.engine.diagnose(symptoms[0])


class TestGraphStructure:
    def test_graph_compiles_from_spec(self, harness):
        _topo, _injector, build_app = harness
        app = build_app()
        graph = app.engine.graph
        assert graph.symptom_event == names.EBGP_FLAP
        assert names.CPU_HIGH_SPIKE in graph.events()
        assert graph.rule_for_edge("Interface flap", "SONET restoration").priority == 180

    def test_table3_events_registered(self, harness):
        _topo, _injector, build_app = harness
        app = build_app()
        for event in (names.EBGP_FLAP, names.CUSTOMER_RESET, names.EBGP_HTE):
            assert event in app.events


@pytest.mark.parametrize(
    "recipe,expected",
    [
        ("bgp_interface_flap", "Interface flap"),
        ("bgp_lineproto_flap", "Line protocol flap"),
        ("bgp_cpu_spike", "CPU high (spike)"),
        ("bgp_cpu_average", "CPU high (average)"),
        ("bgp_customer_reset", "Customer reset session"),
        ("bgp_hte_unknown", names.EBGP_HTE),
        ("bgp_unknown", "Unknown"),
    ],
)
class TestSingleCauseDiagnosis:
    def test_recipe_diagnosed_correctly(self, harness, recipe, expected):
        topo, injector, build_app = harness
        customer = sorted(topo.customer_attachments)[0]
        getattr(injector, recipe)(T, customer)
        app = build_app()
        diagnosis = diagnose_single(app)
        assert diagnosis.primary_cause == expected


class TestLayer1Diagnosis:
    @pytest.mark.parametrize(
        "kind",
        [
            "SONET restoration",
            "Fast optical mesh network restoration",
            "Regular optical mesh network restoration",
        ],
    )
    def test_restoration_beats_interface_flap(self, harness, kind):
        topo, injector, build_app = harness
        prefix = "adm-" if kind == "SONET restoration" else "omx-"
        riding = sorted(
            c for c, d in topo.customer_layer1.items() if d.startswith(prefix)
        )
        assert riding, "fixture lacks layer-1 access customers"
        injector.bgp_layer1_restoration(T, riding[0], kind)
        app = build_app()
        diagnosis = diagnose_single(app)
        assert diagnosis.primary_cause == kind
        # the interface flap is in the evidence, outranked by layer-1
        assert diagnosis.evidence_for("Interface flap")


class TestRebootDiagnosis:
    def test_every_session_blamed_on_reboot(self, harness):
        topo, injector, build_app = harness
        per = topo.provider_edges[0]
        truths = injector.bgp_router_reboot(T, per)
        app = build_app()
        symptoms = app.find_symptoms(T - 3600, T + 3600)
        assert len(symptoms) == len(truths)
        for symptom in symptoms:
            assert app.engine.diagnose(symptom).primary_cause == "Router reboot"


class TestPriorityInteraction:
    def test_layer1_beats_cpu_when_both_join(self, harness):
        """The paper's example: flap joins high CPU and a layer-1 flap;
        the layer-1 flap (priority 180) is the diagnosed cause."""
        topo, injector, build_app = harness
        riding = sorted(topo.customer_layer1)
        customer = riding[0]
        per, _iface, _ip = topo.customer_attachments[customer]
        injector.emitter.cpu_spike(T - 10.0, per)
        injector.bgp_layer1_restoration(T, customer, "SONET restoration")
        app = build_app()
        diagnosis = diagnose_single(app)
        assert diagnosis.primary_cause == "SONET restoration"


class TestSessionIsolation:
    def test_flap_on_one_session_does_not_explain_another(self, harness):
        topo, injector, build_app = harness
        customers = sorted(topo.customer_attachments)
        per0 = topo.customer_attachments[customers[0]][0]
        sibling = next(
            c for c in customers[1:] if topo.customer_attachments[c][0] == per0
        )
        injector.bgp_interface_flap(T, customers[0])
        injector.bgp_unknown(T + 20.0, sibling)  # same router, same time
        app = build_app()
        symptoms = app.find_symptoms(T - 3600, T + 3600)
        assert len(symptoms) == 2
        causes = {
            tuple(s.location.parts): app.engine.diagnose(s).primary_cause
            for s in symptoms
        }
        assert sorted(causes.values()) == ["Interface flap", "Unknown"]


class TestBayesianConfig:
    def test_engine_has_three_virtual_causes(self):
        engine = BgpFlapApp.bayesian_engine()
        assert {m.name for m in engine.models} == {
            "CPU High Issue", "Interface Issue", "Line-card Issue",
        }
        assert all(m.virtual for m in engine.models)

    def test_cpu_evidence_classified_cpu(self):
        engine = BgpFlapApp.bayesian_engine()
        verdict = engine.classify({names.CPU_HIGH_SPIKE, names.EBGP_HTE})
        assert verdict.best == "CPU High Issue"

    def test_single_interface_flap_classified_interface(self):
        engine = BgpFlapApp.bayesian_engine()
        verdict = engine.classify({names.INTERFACE_FLAP, names.LINEPROTO_FLAP})
        assert verdict.best == "Interface Issue"
