"""Tests for per-application event redefinition and engine parameters.

Section II-A: "any event defined in the Knowledge Library can be
redefined by an application", e.g. re-thresholding link congestion to
90% for a throughput analysis.  Two mechanisms exist: engine ``params``
(threshold pushdown into the shared retrieval) and a scoped library
``override`` (a wholly different retrieval).  Both must stay local to
the application.
"""

import pytest

from repro.collector import DataCollector
from repro.collector.sources.snmp import render_snmp_row
from repro.core.engine import EngineConfig, RcaEngine
from repro.core.events import EventDefinition, EventInstance, RetrievalContext
from repro.core.graph import DiagnosisGraph
from repro.core.knowledge import KnowledgeLibrary, names
from repro.core.locations import Location, LocationType

BASE = 1262692800.0


@pytest.fixture
def collector():
    c = DataCollector()
    c.ingest("snmp", [
        render_snmp_row(BASE, "r1", "link_util", "se0/0", 85.0),
        render_snmp_row(BASE, "r1", "link_util", "se0/1", 95.0),
    ])
    return c


def retrieve_congestion(collector, kb_events, **params):
    context = RetrievalContext(
        store=collector.store, start=BASE - 3600, end=BASE + 3600, params=params
    )
    return kb_events.get(names.LINK_CONGESTION).retrieve(context)


class TestParamOverride:
    def test_default_threshold_80(self, collector):
        kb = KnowledgeLibrary()
        instances = retrieve_congestion(collector, kb.events)
        assert len(instances) == 2

    def test_app_raises_threshold_to_90(self, collector):
        """The paper's web-hosting example: >= 90% utilization."""
        kb = KnowledgeLibrary()
        instances = retrieve_congestion(
            collector, kb.events, link_congestion_threshold=90.0
        )
        assert [i.location.value for i in instances] == ["r1:se0/1"]

    def test_engine_params_flow_into_retrievals(self, collector, resolver):
        kb = KnowledgeLibrary()
        graph = DiagnosisGraph(symptom_event=names.LINK_LOSS)
        graph.add_rule(kb.rules.rule(names.LINK_LOSS, names.LINK_CONGESTION, 10))
        engine = RcaEngine(
            graph, kb.events, resolver, collector.store,
            EngineConfig(params={"link_congestion_threshold": 90.0}),
        )
        # symptom at the 85% interface: its congestion is below the
        # app's stricter threshold, so no evidence joins
        symptom = EventInstance.make(
            names.LINK_LOSS, BASE - 150, BASE,
            Location.interface("r1:se0/0"),
        )
        diagnosis = engine.diagnose(symptom)
        assert diagnosis.primary_cause == "Unknown"


class TestScopedOverride:
    def test_override_stays_local_to_the_app(self, collector):
        kb = KnowledgeLibrary()
        app_events = kb.scoped_events()

        def stricter(context):
            base = kb.events.get(names.LINK_CONGESTION)
            for instance in base.retrieve(context):
                if instance.get("value", 0) >= 90.0:
                    yield instance

        app_events.override(
            EventDefinition(
                names.LINK_CONGESTION, LocationType.INTERFACE, stricter,
                ">= 90% link utilization", "SNMP",
            )
        )
        app_instances = retrieve_congestion(collector, app_events)
        shared_instances = retrieve_congestion(collector, kb.events)
        assert len(app_instances) == 1
        assert len(shared_instances) == 2  # the shared library is untouched

    def test_two_apps_do_not_interfere(self, collector):
        kb = KnowledgeLibrary()
        app_a = kb.scoped_events()
        app_b = kb.scoped_events()
        app_a.override(
            EventDefinition(
                names.LINK_CONGESTION, LocationType.INTERFACE,
                lambda context: [], "disabled", "SNMP",
            )
        )
        assert retrieve_congestion(collector, app_a) == []
        assert len(retrieve_congestion(collector, app_b)) == 2
