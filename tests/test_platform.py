"""Tests for platform assembly and the top-level public API."""

import pytest

import repro
from repro.collector import DataCollector
from repro.collector.sources.bgpmon import render_bgpmon_row
from repro.collector.sources.misc import render_netflow_row
from repro.collector.sources.ospfmon import render_ospfmon_row
from repro.platform import GrcaPlatform
from repro.topology import TopologyParams, build_topology


@pytest.fixture
def topo():
    return build_topology(
        TopologyParams(n_pops=3, pers_per_pop=1, customers_per_per=2, cdn_pops=("nyc",))
    )


@pytest.fixture
def collector(topo):
    c = DataCollector()
    for router in topo.network.routers.values():
        c.registry.register_device(router.name, router.timezone)
    return c


class TestFromCollector:
    def test_routing_state_rebuilt_from_feeds(self, topo, collector):
        link = sorted(topo.network.logical_links)[0]
        collector.ingest("ospfmon", [render_ospfmon_row(100.0, link, 42)])
        collector.ingest(
            "bgpmon", [render_bgpmon_row(100.0, "A", "198.51.100.0/24", "chi-per1")]
        )
        platform = GrcaPlatform.from_collector(topo, collector)
        assert platform.paths.ospf.history.weights_at(200.0)[link] == 42
        decision = platform.paths.bgp.best_egress("nyc-per1", "198.51.100.9", 200.0)
        assert decision.egress_router == "chi-per1"

    def test_ingress_map_learned_from_netflow(self, topo, collector):
        collector.ingest(
            "netflow", [render_netflow_row(100.0, "agent-x", "1.2.3.4", "chi-per1")]
        )
        platform = GrcaPlatform.from_collector(topo, collector)
        assert platform.paths.ingress_map.ingress_for("agent-x") == "chi-per1"

    def test_cdn_servers_auto_mapped(self, topo, collector):
        platform = GrcaPlatform.from_collector(topo, collector)
        server = sorted(topo.network.cdn_servers)[0]
        assert platform.paths.ingress_map.ingress_for(server) == "nyc-per1"

    def test_loopback_service_present(self, topo, collector):
        platform = GrcaPlatform.from_collector(topo, collector)
        loopbacks = platform.services["loopbacks"]
        for router in topo.network.routers.values():
            assert loopbacks[router.loopback] == router.name

    def test_configs_snapshotted_at_config_time(self, topo, collector):
        platform = GrcaPlatform.from_collector(topo, collector, config_time=500.0)
        assert platform.paths.configs.config_at("nyc-per1", 600.0) is not None
        assert platform.paths.configs.config_at("nyc-per1", 400.0) is None

    def test_store_property(self, topo, collector):
        platform = GrcaPlatform.from_collector(topo, collector)
        assert platform.store is collector.store


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_shape(self):
        """The docstring quickstart actually runs (tiny scale)."""
        result = repro.bgp_month(
            total_flaps=20,
            params=repro.TopologyParams(n_pops=2, pers_per_pop=1, customers_per_per=3),
            seed=3,
            duration_days=3,
        )
        platform = result.platform()
        from repro.apps import BgpFlapApp

        app = BgpFlapApp.build(platform)
        browser = app.run(result.start, result.end)
        assert len(browser) >= 20
        assert "Root Cause" in browser.format_breakdown()
