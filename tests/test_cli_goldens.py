"""Golden-file tests for the ``diagnose`` CLI text output.

One canonical scenario per paper application, pinned seed and size.
The full stdout — breakdown table, explained fraction, degraded-evidence
summary — must match the checked-in golden byte for byte: the CLI's
human-facing rendering is part of the reproduction's contract.

When an intentional change shifts the output, regenerate with::

    pytest tests/test_cli_goldens.py --regen-goldens

and review the golden diff like any other code change.
"""

import pathlib

import pytest

from repro.cli import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

CASES = [
    ("bgp-month", 40),
    ("cdn-month", 30),
    ("pim-fortnight", 30),
]


@pytest.mark.parametrize("scenario,size", CASES, ids=[c[0] for c in CASES])
def test_diagnose_output_matches_golden(scenario, size, capsys, regen_goldens):
    code = main(["diagnose", scenario, "--size", str(size), "--seed", "2"])
    assert code == 0
    out = capsys.readouterr().out
    golden = GOLDEN_DIR / f"diagnose_{scenario}.txt"
    if regen_goldens:
        golden.write_text(out)
        pytest.skip(f"regenerated {golden.name}")
    assert golden.exists(), (
        f"{golden} missing; run with --regen-goldens to create it"
    )
    assert out == golden.read_text(), (
        f"diagnose {scenario} output drifted from {golden.name}; "
        f"if intentional, regenerate with --regen-goldens"
    )


INCIDENT_CASES = [
    ("incidents_report_bgp-storm", ["incidents", "report", "bgp-storm",
                                    "--size", "40", "--seed", "7"]),
    ("incidents_list_bgp-storm", ["incidents", "list", "bgp-storm",
                                  "--size", "40", "--seed", "7"]),
]


@pytest.mark.parametrize(
    "name,argv", INCIDENT_CASES, ids=[c[0] for c in INCIDENT_CASES]
)
def test_incidents_output_matches_golden(name, argv, capsys, regen_goldens):
    """The standardized RCA report (and list digest) are part of the
    incident layer's contract: same seed, byte-identical rendering."""
    code = main(argv)
    assert code == 0
    out = capsys.readouterr().out
    golden = GOLDEN_DIR / f"{name}.txt"
    if regen_goldens:
        golden.write_text(out)
        pytest.skip(f"regenerated {golden.name}")
    assert golden.exists(), (
        f"{golden} missing; run with --regen-goldens to create it"
    )
    assert out == golden.read_text(), (
        f"{' '.join(argv)} output drifted from {golden.name}; "
        f"if intentional, regenerate with --regen-goldens"
    )
