"""Documentation quality gates.

Every public module, class and function in the library must carry a
docstring (deliverable e of the reproduction: "doc comments on every
public item"), and the shipped docs must reference real code.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, member


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__
            for module in walk_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, member in public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_classes_document_public_methods(self):
        undocumented = []
        for module in walk_modules():
            for name, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ or "").strip():
                        # dataclass-generated members are exempt
                        if getattr(member, "__dataclass_fields__", None) and (
                            method_name in ("make",)
                        ):
                            continue
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
        # allow a small number of self-evident one-line delegates
        assert len(undocumented) <= 25, sorted(undocumented)


class TestDocsReferenceRealCode:
    def test_readme_module_paths_exist(self):
        import os

        with open("README.md") as handle:
            text = handle.read()
        for path in ("src/repro", "examples/quickstart.py", "DESIGN.md",
                     "EXPERIMENTS.md"):
            assert path.split("/")[-1] in text or path in text
        assert os.path.exists("docs/rulespec.md")
        assert os.path.exists("docs/observability.md")
        assert "docs/observability.md" in text

    def test_observability_doc_names_real_surfaces(self):
        with open("docs/observability.md") as handle:
            text = handle.read()
        for surface in ("Tracer", "NULL_TRACER", "stage_breakdown",
                        "--trace", "grca-trace/1",
                        "regen_trace_goldens.py"):
            assert surface in text, surface

    def test_design_md_mentions_every_subpackage(self):
        with open("DESIGN.md") as handle:
            text = handle.read()
        for subpackage in ("collector", "topology", "routing", "simulation",
                           "apps", "core"):
            assert subpackage in text, subpackage

    def test_experiments_md_covers_every_table_and_figure(self):
        with open("EXPERIMENTS.md") as handle:
            text = handle.read()
        for anchor in ("Table I", "Table II", "Table IV", "Table VI",
                       "Table VIII", "Fig. 7", "Fig. 8", "latency",
                       "Ablations"):
            assert anchor in text, anchor
