"""Regenerate the golden trace-shape fixtures.

Run from the repository root after an *intentional* change to the
diagnosis walk or the trace schema::

    PYTHONPATH=src python tests/integration/regen_trace_goldens.py

Each fixture freezes the timing-free *shape* of traced diagnoses for
one small, seeded scenario: span kinds, labels, rule identities and
record counts, in walk order.  ``test_trace_golden.py`` fails when the
current engine produces a different shape — a reviewable diff of what
the walk now does differently.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from tests.integration.test_trace_golden import (  # noqa: E402
    GOLDEN_DIR,
    SCENARIOS,
    scenario_shape_document,
)


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in sorted(SCENARIOS):
        document = scenario_shape_document(name)
        path = os.path.join(GOLDEN_DIR, f"trace_shape_{name}.json")
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote {path} ({document['symptoms']} symptoms, "
            f"{sum(document['kind_counts'].values())} spans)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
