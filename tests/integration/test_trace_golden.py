"""Golden-trace regression tests: the walk's shape is pinned.

A diagnosis trace mirrors the engine's graph walk — which nodes were
visited in which order, which rules fired with which six-parameter
identities, how many records each retrieval returned.  These tests
freeze that *shape* (never timings) for one small seeded scenario per
example application, so any change to walk order, rule wiring, join
semantics or retrieval behaviour shows up as a reviewable fixture diff
instead of a silent drift.

To bless an intentional change, regenerate the fixtures::

    PYTHONPATH=src python tests/integration/regen_trace_goldens.py
"""

import json
import os

import pytest

from repro.apps import BgpFlapApp, CdnApp, PimApp
from repro.simulation import bgp_month, cdn_month, pim_fortnight

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: how many leading diagnoses get their full span-tree shape pinned
#: (the rest are covered by aggregate span-kind counts)
PINNED_TRACES = 3

#: scenario name -> (simulator kwargs-applied, application class)
SCENARIOS = {
    "bgp": (lambda: bgp_month(total_flaps=12, seed=5), BgpFlapApp),
    "cdn": (lambda: cdn_month(total_degradations=10, seed=5), CdnApp),
    "pim": (lambda: pim_fortnight(total_changes=10, seed=5), PimApp),
}


def scenario_shape_document(name):
    """Trace every symptom of one scenario; reduce to a shape document.

    The document holds the full timing-free shape of the first
    :data:`PINNED_TRACES` diagnoses plus aggregate span-kind counts
    over all of them — small enough to review, strict enough to catch
    walk-order, rule-identity and record-count drift.
    """
    build_scenario, app_cls = SCENARIOS[name]
    result = build_scenario()
    app = app_cls.build(result.platform())
    symptoms = app.find_symptoms(result.start, result.end)
    diagnoses = app.engine.diagnose_all(symptoms, traced=True)
    kind_counts = {}
    for diagnosis in diagnoses:
        for span in diagnosis.trace.walk():
            kind_counts[span.kind] = kind_counts.get(span.kind, 0) + 1
    return {
        "symptoms": len(diagnoses),
        "causes": [d.primary_cause for d in diagnoses],
        "kind_counts": kind_counts,
        "shapes": [d.trace.shape() for d in diagnoses[:PINNED_TRACES]],
    }


def _load_golden(name):
    path = os.path.join(GOLDEN_DIR, f"trace_shape_{name}.json")
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden fixture {path}; regenerate with "
            f"PYTHONPATH=src python tests/integration/regen_trace_goldens.py"
        )
    with open(path) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_shape_matches_golden(name):
    golden = _load_golden(name)
    current = scenario_shape_document(name)
    assert current["symptoms"] == golden["symptoms"]
    assert current["causes"] == golden["causes"]
    assert current["kind_counts"] == golden["kind_counts"]
    for index, (got, want) in enumerate(
        zip(current["shapes"], golden["shapes"])
    ):
        assert got == want, (
            f"span-tree shape drifted for {name} diagnosis #{index}; if "
            f"intentional, regenerate via tests/integration/"
            f"regen_trace_goldens.py and review the diff"
        )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_shape_is_deterministic(name):
    # two fresh runs of the same seeded scenario produce identical
    # shapes — the precondition for golden pinning to be meaningful
    assert scenario_shape_document(name) == scenario_shape_document(name)
