"""Multiple RCA applications over one shared platform.

G-RCA is a *platform*: many applications run against the same Data
Collector, Knowledge Library and spatial model at once ("existing RCA
applications include various diagnostic systems ...").  This test runs
the BGP-flap and PIM applications over one combined telemetry store and
checks that scoped event libraries, engine caches and diagnoses do not
interfere.
"""

import random

import pytest

from repro.apps import BgpFlapApp, PimApp
from repro.collector import DataCollector
from repro.core.knowledge import names
from repro.platform import GrcaPlatform
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
from repro.topology import TopologyParams, build_topology

T = BASE_EPOCH + 3600.0


@pytest.fixture(scope="module")
def shared_platform():
    topo = build_topology(
        TopologyParams(n_pops=4, pers_per_pop=2, customers_per_per=4, seed=99)
    )
    emitter = TelemetryEmitter(topo, random.Random(1), syslog_jitter=1.0)
    injector = FaultInjector(topo, emitter, random.Random(2))
    customers = sorted(topo.customer_attachments)
    # interleaved symptoms for both applications in one telemetry stream
    bgp_truths = injector.bgp_interface_flap(T, customers[0])
    bgp_truths += injector.bgp_cpu_spike(T + 3600.0, customers[1])
    pim_truths = injector.pim_customer_interface_flap(T + 7200.0, customers[2])
    pim_truths += injector.pim_config_change(T + 10800.0, topo.provider_edges[1])
    collector = DataCollector()
    for router in topo.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    emitter.buffers.ingest_into(collector)
    platform = GrcaPlatform.from_collector(topo, collector, config_time=BASE_EPOCH)
    return platform, bgp_truths, pim_truths


class TestSharedPlatform:
    def test_both_apps_build_on_one_platform(self, shared_platform):
        platform, _bgp, _pim = shared_platform
        bgp_app = BgpFlapApp.build(platform)
        pim_app = PimApp.build(platform)
        assert bgp_app.platform is pim_app.platform
        assert bgp_app.engine.store is pim_app.engine.store

    def test_each_app_sees_only_its_symptoms(self, shared_platform):
        platform, bgp_truths, pim_truths = shared_platform
        bgp_app = BgpFlapApp.build(platform)
        pim_app = PimApp.build(platform)
        window = (BASE_EPOCH, BASE_EPOCH + 86400.0)
        bgp_symptoms = bgp_app.find_symptoms(*window)
        pim_symptoms = pim_app.find_symptoms(*window)
        assert len(bgp_symptoms) == len(bgp_truths)
        assert len(pim_symptoms) == len(pim_truths)
        assert all(s.name == names.EBGP_FLAP for s in bgp_symptoms)
        assert all(s.name == names.PIM_ADJACENCY_CHANGE for s in pim_symptoms)

    def test_diagnoses_correct_in_both_apps(self, shared_platform):
        platform, _bgp, _pim = shared_platform
        bgp_app = BgpFlapApp.build(platform)
        pim_app = PimApp.build(platform)
        window = (BASE_EPOCH, BASE_EPOCH + 86400.0)
        bgp_causes = sorted(
            d.primary_cause
            for d in bgp_app.engine.diagnose_all(bgp_app.find_symptoms(*window))
        )
        pim_causes = sorted(
            d.primary_cause
            for d in pim_app.engine.diagnose_all(pim_app.find_symptoms(*window))
        )
        assert bgp_causes == ["CPU high (spike)", "Interface flap"]
        assert pim_causes == [
            names.PIM_CONFIG_CHANGE, "interface (customer facing) flap",
        ]

    def test_scoped_libraries_do_not_leak(self, shared_platform):
        platform, _bgp, _pim = shared_platform
        bgp_app = BgpFlapApp.build(platform)
        pim_app = PimApp.build(platform)
        assert names.EBGP_FLAP in bgp_app.events
        assert names.EBGP_FLAP not in pim_app.events
        assert names.PIM_ADJACENCY_CHANGE in pim_app.events
        assert names.PIM_ADJACENCY_CHANGE not in bgp_app.events
        # and the shared library never gained either
        assert names.EBGP_FLAP not in platform.knowledge.events
        assert names.PIM_ADJACENCY_CHANGE not in platform.knowledge.events

    def test_apps_rebuildable_without_side_effects(self, shared_platform):
        platform, bgp_truths, _pim = shared_platform
        for _ in range(2):  # building twice must not double-register
            app = BgpFlapApp.build(platform)
            window = (BASE_EPOCH, BASE_EPOCH + 86400.0)
            assert len(app.find_symptoms(*window)) == len(bgp_truths)
