"""Integration tests: scaled-down versions of the paper's experiments.

Each test runs a full scenario through the collector, platform and the
relevant RCA application, then checks the *shape* of the result against
the paper's tables: who dominates, the rank order of major causes, and
the accuracy against injected ground truth.  The benchmark harness runs
the same pipelines at larger scale and prints paper-vs-measured rows.
"""

from collections import Counter

import pytest

from repro.apps.bgp_flaps import BgpFlapApp
from repro.apps.cdn import CdnApp
from repro.apps.pim import CUSTOMER_IFACE_FLAP, PimApp
from repro.apps.studies import cpu_correlation_study
from repro.core.knowledge import names
from repro.simulation import (
    bgp_month,
    cdn_month,
    cpu_bgp_study,
    linecard_crash,
    pim_fortnight,
)
from repro.topology import TopologyParams


def accuracy(diagnoses, ground_truth, cause_map=None):
    """Fraction of symptoms whose diagnosis matches the injected cause."""
    cause_map = cause_map or {}
    truths = {}
    for truth in ground_truth:
        truths.setdefault(truth.location, []).append(truth)
    hits = total = 0
    for diagnosis in diagnoses:
        key = "~".join(diagnosis.symptom.location.parts)
        candidates = truths.get(key, [])
        if not candidates:
            continue
        best = min(candidates, key=lambda g: abs(g.time - diagnosis.symptom.start))
        got = cause_map.get(diagnosis.primary_cause, diagnosis.primary_cause)
        total += 1
        hits += got == best.cause
    assert total > 0
    return hits / total


class TestTable4Bgp:
    @pytest.fixture(scope="class")
    def outcome(self):
        result = bgp_month(
            total_flaps=300,
            params=TopologyParams(n_pops=4, pers_per_pop=2, customers_per_per=6, seed=71),
            seed=71,
            duration_days=20,
        )
        app = BgpFlapApp.build(result.platform())
        diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
        return result, diagnoses

    def test_all_symptoms_found(self, outcome):
        result, diagnoses = outcome
        assert len(diagnoses) == len(result.ground_truth)

    def test_interface_flap_dominates_like_paper(self, outcome):
        _result, diagnoses = outcome
        counts = Counter(d.primary_cause for d in diagnoses)
        assert counts.most_common(1)[0][0] == "Interface flap"
        # paper: 63.94%; shape check: majority
        assert counts["Interface flap"] / len(diagnoses) > 0.5

    def test_secondary_causes_rank_order(self, outcome):
        _result, diagnoses = outcome
        counts = Counter(d.primary_cause for d in diagnoses)
        # paper order: interface flap > line protocol flap > unknown-ish
        assert counts["Interface flap"] > counts["Line protocol flap"]
        assert counts["Line protocol flap"] > counts["CPU high (spike)"]

    def test_accuracy_vs_ground_truth(self, outcome):
        result, diagnoses = outcome
        assert accuracy(diagnoses, result.ground_truth) >= 0.95


class TestTable8Pim:
    @pytest.fixture(scope="class")
    def outcome(self):
        result = pim_fortnight(
            total_changes=200,
            params=TopologyParams(n_pops=5, pers_per_pop=2, customers_per_per=4, seed=72),
            seed=72,
        )
        app = PimApp.build(result.platform())
        diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
        return result, diagnoses

    #: engine event names -> paper Table VIII row labels
    CAUSE_MAP = {
        names.OSPF_RECONVERGENCE: "OSPF re-convergence",
        names.UPLINK_PIM_ADJACENCY_CHANGE: "Uplink PIM adjacency loss",
    }

    def test_customer_flap_dominates_like_paper(self, outcome):
        _result, diagnoses = outcome
        counts = Counter(d.primary_cause for d in diagnoses)
        # paper: 69.21% customer-facing interface flap
        assert counts[CUSTOMER_IFACE_FLAP] / len(diagnoses) > 0.5

    def test_classification_coverage_98_percent(self, outcome):
        """Paper: root causes identified for more than 98% of events."""
        _result, diagnoses = outcome
        explained = sum(1 for d in diagnoses if d.is_explained)
        assert explained / len(diagnoses) >= 0.95

    def test_accuracy_vs_ground_truth(self, outcome):
        result, diagnoses = outcome
        assert accuracy(diagnoses, result.ground_truth, self.CAUSE_MAP) >= 0.9


class TestTable6Cdn:
    @pytest.fixture(scope="class")
    def outcome(self):
        result = cdn_month(total_degradations=150, duration_days=20, n_clients=16, seed=73)
        app = CdnApp.build(result.platform())
        diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
        return result, diagnoses

    CAUSE_MAP = {
        names.BGP_EGRESS_CHANGE: "Egress Change due to Inter-domain routing change",
        names.LINK_CONGESTION: "Link Congestions",
        names.LINK_LOSS: "Link Loss",
        names.OSPF_RECONVERGENCE: "OSPF re-convergence",
        "Unknown": "Outside of our network (Unknown)",
    }

    def test_outside_network_dominates_like_paper(self, outcome):
        _result, diagnoses = outcome
        counts = Counter(d.primary_cause for d in diagnoses)
        # paper: 74.83% outside the network
        assert counts["Unknown"] / len(diagnoses) > 0.6

    def test_in_network_causes_all_observed(self, outcome):
        _result, diagnoses = outcome
        causes = {d.primary_cause for d in diagnoses}
        for cause in (
            names.CDN_POLICY_CHANGE,
            names.BGP_EGRESS_CHANGE,
            names.LINK_CONGESTION,
            names.LINK_LOSS,
            names.INTERFACE_FLAP,
            names.OSPF_RECONVERGENCE,
        ):
            assert cause in causes, cause

    def test_accuracy_vs_ground_truth(self, outcome):
        result, diagnoses = outcome
        assert accuracy(diagnoses, result.ground_truth, self.CAUSE_MAP) >= 0.9


@pytest.mark.slow
class TestFig7CorrelationStudy:
    def test_prefiltering_flips_significance(self):
        result = cpu_bgp_study(
            seed=74, duration_days=45, n_provisioning=300,
            provisioning_flap_probability=0.04, n_other_flaps=1800,
            n_pure_cpu_flaps=20,
        )
        app = BgpFlapApp.build(result.platform())
        diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
        study = cpu_correlation_study(app, diagnoses, result.start, result.end)
        pre = study.prefiltered_result("provisioning.port_turnup")
        unf = study.unfiltered_result("provisioning.port_turnup")
        assert pre is not None and unf is not None
        assert pre.significant, pre
        assert not unf.significant, unf
        assert pre.score > unf.score

    def test_benign_activities_not_significant(self):
        result = cpu_bgp_study(
            seed=75, duration_days=30, n_provisioning=200,
            provisioning_flap_probability=0.05, n_other_flaps=1000,
            n_pure_cpu_flaps=15,
        )
        app = BgpFlapApp.build(result.platform())
        diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
        study = cpu_correlation_study(app, diagnoses, result.start, result.end)
        for benign in ("maintenance.card_swap", "audit.config_scan"):
            found = study.prefiltered_result(benign)
            assert found is None or not found.significant, found


class TestFig8Bayesian:
    def test_linecard_issue_found_behind_interface_flaps(self):
        result = linecard_crash(seed=76, n_background_flaps=80)
        app = BgpFlapApp.build(result.platform())
        diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
        # rule-based reasoning calls the crash flaps "Interface flap"
        crash_card = f"{result.extras['crash_router']}:slot{result.extras['crash_slot']}"
        groups = app.group_by_line_card(diagnoses)
        matching = [g for card, g in groups if card == crash_card]
        assert matching, f"no group on {crash_card}: {[c for c, _ in groups]}"
        group = matching[0]
        assert {d.primary_cause for d in group} == {"Interface flap"}
        # ...but joint Bayesian inference identifies the line card
        verdict = app.classify_group_bayesian(crash_card, group)
        assert verdict.best == "Line-card Issue"
        assert verdict.margin() > 0

    def test_background_flaps_stay_interface_issue(self):
        result = linecard_crash(seed=77, n_background_flaps=80)
        app = BgpFlapApp.build(result.platform())
        diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
        engine = app.bayesian_engine()
        crash_times = {
            t.time for t in result.ground_truth if t.cause == "Line-card crash"
        }
        lone = [
            d for d in diagnoses
            if all(abs(d.symptom.start - t) > 600 for t in crash_times)
        ][:10]
        for diagnosis in lone:
            verdict = engine.classify(app.bayesian_features(diagnosis))
            assert verdict.best == "Interface Issue"
