"""Integration: bootstrap Bayesian ratios from rule-based history.

Section II-D: the likelihood ratios "can be trained from classified
historical data, which we can bootstrap using the rule-based reasoning".
This test runs the full loop: simulate a month, classify with the
rule-based engine, train a Naive-Bayes model on the (cause, evidence)
pairs, and check the trained classifier agrees with the rule-based
labels on held-out flaps.
"""

import pytest

from repro.apps import BgpFlapApp
from repro.core.reasoning.bayesian import BayesianEngine, train_ratios_from_labels
from repro.simulation import bgp_month
from repro.topology import TopologyParams


@pytest.fixture(scope="module")
def labelled_history():
    result = bgp_month(
        total_flaps=400,
        params=TopologyParams(n_pops=5, pers_per_pop=2, customers_per_per=6, seed=301),
        seed=301,
        duration_days=20,
    )
    app = BgpFlapApp.build(result.platform())
    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
    labelled = [
        (d.primary_cause, app.bayesian_features(d))
        for d in diagnoses
        if d.is_explained
    ]
    return app, diagnoses, labelled


class TestBootstrapTraining:
    def test_enough_history_to_train(self, labelled_history):
        _app, _diagnoses, labelled = labelled_history
        assert len(labelled) > 300
        assert len({cause for cause, _ in labelled}) >= 6

    def test_trained_classifier_agrees_with_rule_based(self, labelled_history):
        app, diagnoses, labelled = labelled_history
        split = int(len(labelled) * 0.7)
        models = train_ratios_from_labels(labelled[:split])
        engine = BayesianEngine(models)
        holdout = labelled[split:]
        agree = sum(
            1 for cause, evidence in holdout if engine.classify(evidence).best == cause
        )
        assert agree / len(holdout) >= 0.9

    def test_trained_model_ranks_true_cause_highly(self, labelled_history):
        _app, _diagnoses, labelled = labelled_history
        models = train_ratios_from_labels(labelled)
        engine = BayesianEngine(models)
        misses = 0
        for cause, evidence in labelled[:100]:
            ranked = engine.classify(evidence).ranked
            if cause not in ranked[:2]:
                misses += 1
        assert misses <= 5

    def test_unknown_labels_excluded_from_training(self, labelled_history):
        _app, diagnoses, labelled = labelled_history
        causes = {cause for cause, _ in labelled}
        assert "Unknown" not in causes
        # but unknowns exist in the raw diagnoses
        assert any(not d.is_explained for d in diagnoses)
