"""Table VI: root-cause breakdown of a month of CDN RTT degradations.

Paper setting: RTT degradations over one month between millions of
users and one northeast CDN node; only 25.17% are explained by
in-network (or in-network-visible) events — the rest originate in other
ISPs on the end-to-end path.  Shape targets: "outside of our network"
dominates (~75%); egress changes are the largest in-network category.
"""

from collections import Counter

from repro.core import ResultBrowser
from repro.core.knowledge import names

PAPER_TABLE6 = {
    "CDN assignment policy change": 3.83,
    "Egress Change due to Inter-domain routing change": 5.71,
    "Link Congestions": 3.50,
    "Link Loss": 3.32,
    "Interface flap": 4.65,
    "OSPF re-convergence": 4.16,
    "Outside of our network (Unknown)": 74.83,
}

CAUSE_MAP = {
    names.BGP_EGRESS_CHANGE: "Egress Change due to Inter-domain routing change",
    names.LINK_CONGESTION: "Link Congestions",
    names.LINK_LOSS: "Link Loss",
    names.OSPF_RECONVERGENCE: "OSPF re-convergence",
    "Unknown": "Outside of our network (Unknown)",
}


def test_table6_breakdown(cdn_outcome, benchmark, console):
    result, app, symptoms, diagnoses = cdn_outcome
    browser = ResultBrowser(diagnoses)

    def run():
        return app.engine.diagnose_all(symptoms[:100])

    benchmark.pedantic(run, rounds=1, iterations=1)

    console.report_table(
        f"Table VI: CDN RTT degradation root causes ({len(diagnoses)} events)",
        browser.breakdown(), PAPER_TABLE6, CAUSE_MAP,
    )

    counts = Counter(d.primary_cause for d in diagnoses)
    total = len(diagnoses)
    # shape: most degradations have no in-network explanation
    assert counts["Unknown"] / total > 0.6
    explained = 1.0 - counts["Unknown"] / total
    console.emit(
        f"in-network explained: {100 * explained:.2f}% (paper: 25.17%)"
    )
    # shape: every in-network category is observed and each stays small
    for cause in (
        names.CDN_POLICY_CHANGE, names.BGP_EGRESS_CHANGE, names.LINK_CONGESTION,
        names.LINK_LOSS, names.INTERFACE_FLAP, names.OSPF_RECONVERGENCE,
    ):
        assert 0 < counts.get(cause, 0) / total < 0.15, cause
