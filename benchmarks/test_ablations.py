"""Ablations of the design choices DESIGN.md calls out.

1. *Temporal margins*: the BGP application models the eBGP hold timer
   with a 200 s symptom margin.  Shrinking it to 30 s loses the
   line-protocol-flap causes (which act through the 180 s hold timer) —
   supporting the paper's future-work note on making temporal joining
   rules "less sensitive".
2. *NICE vs naive Pearson*: on bursty (autocorrelated) but unrelated
   series, a naive fixed-r threshold raises false alarms that the
   circular-permutation null model suppresses — the reason G-RCA adopts
   NICE for its Correlation Tester.
3. *Prefiltering*: covered quantitatively by the Fig. 7 benchmark; here
   the prefiltered-vs-unfiltered score ratio is recorded as a metric.
"""

from collections import Counter

import numpy as np
import pytest

from repro.apps.bgp_flaps import BGP_FLAPS_SPEC, BgpFlapApp, register_bgp_events
from repro.core.correlation import BinSpec, CorrelationTester, EventSeries, pearson
from repro.core.engine import EngineConfig, RcaEngine
from repro.core.rulespec import SpecCompiler


class TestTemporalMarginAblation:
    def build_engine_with_margin(self, app, margin: int) -> RcaEngine:
        spec = BGP_FLAPS_SPEC.replace(
            "symptom expand start/start 200 10",
            f"symptom expand start/start {margin} 10",
        )
        events = app.platform.knowledge.scoped_events()
        register_bgp_events(events)
        compiler = SpecCompiler(events, app.platform.knowledge.rules)
        graph = compiler.compile_text(spec)
        return RcaEngine(
            graph=graph,
            library=events,
            resolver=app.platform.resolver,
            store=app.platform.store,
            config=EngineConfig(services=app.platform.services),
        )

    def test_shrinking_hold_timer_margin_loses_lineproto_causes(
        self, bgp_outcome, benchmark, console
    ):
        result, app, symptoms, baseline = bgp_outcome
        narrow_engine = self.build_engine_with_margin(app, margin=30)

        def run():
            return narrow_engine.diagnose_all(symptoms)

        narrow = benchmark.pedantic(run, rounds=1, iterations=1)

        base_counts = Counter(d.primary_cause for d in baseline)
        narrow_counts = Counter(d.primary_cause for d in narrow)
        console.emit("\n=== Ablation: eBGP hold-timer margin 200 s -> 30 s ===")
        console.emit(
            f"{'cause':<22} {'margin=200':>10} {'margin=30':>10}"
        )
        for cause in ("Line protocol flap", "Interface flap", "eBGP HTE", "Unknown"):
            console.emit(
                f"{cause:<22} {base_counts.get(cause, 0):>10} "
                f"{narrow_counts.get(cause, 0):>10}"
            )
        # hold-timer-delayed causes vanish without the margin ...
        assert narrow_counts["Line protocol flap"] < base_counts["Line protocol flap"] / 2
        # ... and resurface as unexplained or shallow HTE diagnoses
        assert (
            narrow_counts["Unknown"] + narrow_counts["eBGP HTE"]
            > base_counts["Unknown"] + base_counts["eBGP HTE"]
        )


class TestNiceVsNaivePearson:
    @staticmethod
    def bursty_series(name, spec, seed, n_bursts=6, burst_len=30):
        rng = np.random.default_rng(seed)
        values = np.zeros(spec.n_bins)
        for _ in range(n_bursts):
            start = rng.integers(0, spec.n_bins - burst_len)
            values[start : start + burst_len] = 1.0
        return EventSeries(name, spec, values)

    def test_circular_permutation_suppresses_burst_false_alarms(
        self, benchmark, console
    ):
        spec = BinSpec(0.0, 800 * 300.0, 300.0)
        naive_threshold = 0.1  # a plausible fixed-r rule of thumb
        tester = CorrelationTester(n_permutations=300)

        pairs = [
            (self.bursty_series("a", spec, seed), self.bursty_series("b", spec, seed + 1000))
            for seed in range(20)
        ]

        def run():
            naive_alarms = nice_alarms = 0
            for a, b in pairs:
                if abs(pearson(a.values, b.values)) >= naive_threshold:
                    naive_alarms += 1
                if tester.test(a, b).significant:
                    nice_alarms += 1
            return naive_alarms, nice_alarms

        naive_alarms, nice_alarms = benchmark.pedantic(run, rounds=1, iterations=1)
        console.emit(
            "\n=== Ablation: NICE circular permutation vs naive Pearson ===\n"
            f"20 unrelated bursty series pairs: naive r>={naive_threshold} flags "
            f"{naive_alarms}, NICE flags {nice_alarms}"
        )
        assert naive_alarms >= 3  # burstiness fools the naive test
        assert nice_alarms <= 1  # the permutation null absorbs it

    def test_nice_still_detects_true_association(self, benchmark, console):
        spec = BinSpec(0.0, 800 * 300.0, 300.0)
        rng = np.random.default_rng(42)
        a = EventSeries.empty("cause", spec)
        b = EventSeries.empty("effect", spec)
        for position in rng.choice(spec.n_bins, size=40, replace=False):
            a.values[position] = 1.0
            b.values[position] = 1.0
        tester = CorrelationTester()
        result = benchmark(lambda: tester.test(a, b))
        console.emit(f"true association detected: {result}")
        assert result.significant
