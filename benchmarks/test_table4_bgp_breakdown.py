"""Table IV: root-cause breakdown of a month of customer eBGP flaps.

Paper setting: 600+ provider edge routers, several hundred eBGP
sessions each, one month.  Here: a seeded scenario whose injected cause
mixture follows Table IV (the mixture itself is the proprietary part;
everything downstream — detection, correlation, reasoning — is live).

Shape targets: Interface flap dominates (~64%), Line protocol flap and
Unknown around 11%, CPU spike mid-single digits, layer-1 categories
sub-1%.
"""

from collections import Counter

#: Table IV of the paper.
PAPER_TABLE4 = {
    "Router reboot": 0.33,
    "Customer reset session": 1.84,
    "CPU high (average)": 0.02,
    "CPU high (spike)": 6.44,
    "Interface flap": 63.94,
    "Line protocol flap": 11.15,
    "eBGP HTE (due to unknown reasons)": 4.86,
    "Regular optical mesh network restoration": 0.04,
    "Fast optical mesh network restoration": 0.14,
    "SONET restoration": 0.29,
    "Unknown": 10.95,
}

CAUSE_MAP = {"eBGP HTE": "eBGP HTE (due to unknown reasons)"}


def test_table4_breakdown(bgp_outcome, benchmark, console):
    result, app, symptoms, diagnoses = bgp_outcome
    from repro.core import ResultBrowser

    browser = ResultBrowser(diagnoses)

    # benchmark: full diagnosis of one month of flaps (engine cache warm)
    def run():
        return app.engine.diagnose_all(symptoms[:200])

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = browser.breakdown()
    console.report_table(
        f"Table IV: BGP flap root causes ({len(diagnoses)} flaps)",
        rows, PAPER_TABLE4, CAUSE_MAP,
    )

    counts = Counter(d.primary_cause for d in diagnoses)
    total = len(diagnoses)
    # shape: interface flap dominates by a wide margin
    assert counts["Interface flap"] / total > 0.5
    assert counts["Interface flap"] > 4 * counts["Line protocol flap"]
    # shape: line protocol flap and unknown are the next tier (~11% each)
    assert counts["Line protocol flap"] > counts["CPU high (spike)"]
    assert counts["Unknown"] > counts["CPU high (spike)"]
    # shape: rare categories stay rare
    for rare in (
        "Router reboot",
        "SONET restoration",
        "Fast optical mesh network restoration",
        "Regular optical mesh network restoration",
        "CPU high (average)",
    ):
        assert counts.get(rare, 0) / total < 0.05, rare

    # accuracy against injected ground truth
    truths = {}
    for truth in result.ground_truth:
        truths.setdefault(truth.location, []).append(truth)
    hits = 0
    for diagnosis in diagnoses:
        key = "~".join(diagnosis.symptom.location.parts)
        best = min(
            truths.get(key, []),
            key=lambda g: abs(g.time - diagnosis.symptom.start),
            default=None,
        )
        if best is not None and best.cause == diagnosis.primary_cause:
            hits += 1
    console.emit(f"ground-truth agreement: {100 * hits / total:.1f}%")
    assert hits / total >= 0.95
