"""Service recovery under injected faults: MTTR, job loss, overhead.

The paper positions G-RCA as an always-on platform that operations
teams depend on during network incidents (Sections I, VI) — exactly
when its own infrastructure is most likely to misbehave.  This
benchmark measures the supervised runtime's three recovery claims on
the Table IV scenario:

* **MTTR after a worker kill** — from the moment a worker thread dies
  mid-job to the moment the supervisor has restored full pool
  capacity;
* **job loss under crashes** — every job submitted across the crash
  must still reach a terminal state with a result (loss count 0);
* **supervision overhead** — fault-free batch wall-clock with the
  supervisor on vs. off; the runtime budget is < 5% regression, the
  gate here leaves headroom for shared-runner noise.

Results land in ``BENCH_service_chaos.json`` (one key per test) so CI
can archive the measurements per run.
"""

import json
import time
from pathlib import Path

from repro.service.api import RcaService
from repro.service.faults import ServiceFaultInjector
from repro.service.queue import JobState
from repro.service.supervisor import SupervisorConfig

BENCH_FILE = Path("BENCH_service_chaos.json")


def _record(key, payload):
    """Merge one test's measurements into the benchmark artifact."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _chaos_service(result, app, workers=2):
    """A supervised service whose executor runs through a fault injector."""
    holder = {}
    injector = ServiceFaultInjector(
        lambda job, worker: holder["service"]._execute(job, worker)
    )
    service = RcaService(
        result.collector.store,
        workers=workers,
        executor=injector,
        supervisor_config=SupervisorConfig(interval=0.05),
    )
    holder["service"] = service
    service.register_app("bgp_flaps", app)
    service.start()
    return service, injector


def test_recovery_after_worker_kill(bgp_outcome, console):
    result, app, symptoms, _diagnoses = bgp_outcome
    batch = symptoms[:40]
    service, injector = _chaos_service(result, app, workers=2)
    try:
        injector.crash_when(times=1)  # the first execution kills its worker
        jobs = [
            service.submit_diagnosis("bgp_flaps", [symptom], block=True,
                                     timeout=30.0)
            for symptom in batch
        ]

        capacity = service.pool.capacity
        deadline = time.perf_counter() + 30.0
        died_at = restored_at = None
        while time.perf_counter() < deadline:
            alive = service.pool.alive
            if died_at is None and alive < capacity:
                died_at = time.perf_counter()
            if (
                died_at is not None
                and alive == capacity
                and service.metrics.workers_restarted.value >= 1
            ):
                restored_at = time.perf_counter()
                break
            time.sleep(0.0005)
        assert died_at is not None, "the injected crash never killed a worker"
        assert restored_at is not None, "the supervisor never restored capacity"
        mttr = restored_at - died_at

        assert service.drain(timeout=120.0)
        lost = [job for job in jobs if job.state is not JobState.DONE]
        assert lost == [], f"{len(lost)} job(s) lost across the crash"
        assert injector.fired("crash") == 1
        assert service.metrics.jobs_failed_over.value == 1
    finally:
        service.shutdown(graceful=True, timeout=60.0)
    assert service.pool.leaked == 0

    console.emit(
        f"\n=== service crash recovery (bgp_month, {len(batch)} jobs, "
        f"{service.pool.capacity} workers) ==="
    )
    console.emit(
        f"MTTR: {1000 * mttr:.1f} ms (sweep interval 50 ms); "
        f"jobs lost: {len(lost)}; leaked workers: {service.pool.leaked}"
    )
    _record(
        "crash_recovery",
        {
            "scenario": "bgp_month",
            "jobs": len(batch),
            "workers": service.pool.capacity,
            "sweep_interval_seconds": 0.05,
            "mttr_seconds": round(mttr, 4),
            "jobs_lost": len(lost),
            "jobs_failed_over": service.metrics.jobs_failed_over.value,
            "workers_restarted": service.metrics.workers_restarted.value,
            "leaked_workers": service.pool.leaked,
        },
    )


def _timed_batch(result, app, symptoms, supervise):
    """Wall-clock for a fault-free single-symptom job batch."""
    # a deliberately aggressive sweep interval: the overhead number must
    # include real sweep work, not just an idle supervisor thread
    service = RcaService(result.collector.store, workers=2,
                         supervise=supervise,
                         supervisor_config=SupervisorConfig(interval=0.01))
    service.register_app("bgp_flaps", app)
    service.start()
    try:
        started = time.perf_counter()
        jobs = [
            service.submit_diagnosis("bgp_flaps", [symptom], block=True,
                                     timeout=30.0)
            for symptom in symptoms
        ]
        for job in jobs:
            job.outcome(timeout=120.0)
        elapsed = time.perf_counter() - started
        sweeps = service.metrics.supervisor_sweeps.value
    finally:
        service.shutdown(graceful=True, timeout=60.0)
    return elapsed, sweeps


def test_supervision_overhead_is_negligible(bgp_outcome, console):
    result, app, symptoms, _diagnoses = bgp_outcome
    batch = symptoms[:200]

    bare_seconds, _ = _timed_batch(result, app, batch, supervise=False)
    supervised_seconds, sweeps = _timed_batch(result, app, batch,
                                              supervise=True)
    overhead = supervised_seconds / bare_seconds if bare_seconds else 1.0

    console.emit(
        f"\n=== supervision overhead (bgp_month, {len(batch)} jobs) ==="
    )
    console.emit(
        f"unsupervised: {bare_seconds:.2f} s; supervised: "
        f"{supervised_seconds:.2f} s ({100 * (overhead - 1):+.1f}%, "
        f"{sweeps} sweeps)"
    )
    _record(
        "supervision_overhead",
        {
            "scenario": "bgp_month",
            "jobs": len(batch),
            "unsupervised_seconds": round(bare_seconds, 4),
            "supervised_seconds": round(supervised_seconds, 4),
            "overhead_ratio": round(overhead, 4),
            "supervisor_sweeps": sweeps,
        },
    )

    # runtime budget is < 1.05x; the gate leaves headroom for noisy
    # shared runners while still catching a real regression
    assert overhead < 1.25, (
        f"supervision cost {100 * (overhead - 1):.1f}% on a fault-free batch"
    )
