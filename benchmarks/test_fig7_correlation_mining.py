"""Fig. 7 / Section IV-B: engine + Correlation Tester interaction.

Paper numbers: 3 months of data; a time series of prefiltered
CPU-related BGP flaps tested against 831 workflow and 2533 syslog
series; 80 come back significant, among them an unexpected provisioning
activity (a router-software bug later fixed by the vendor).  Feeding
*all* BGP flaps instead, the provisioning correlation disappears.

Shape targets reproduced here: (a) the provisioning association is
significant on the prefiltered series and NOT significant on the
unfiltered one; (b) expected associations (BGP notifications, CPU
spikes) test significant; (c) benign activities do not.
"""

import pytest

from repro.apps import BgpFlapApp
from repro.apps.studies import cpu_correlation_study
from repro.simulation import cpu_bgp_study


@pytest.fixture(scope="module")
def study_outcome():
    result = cpu_bgp_study(seed=104)
    app = BgpFlapApp.build(result.platform())
    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
    return result, app, diagnoses


def test_fig7_prefiltering_reveals_provisioning_bug(study_outcome, benchmark, console):
    result, app, diagnoses = study_outcome

    def run():
        return cpu_correlation_study(app, diagnoses, result.start, result.end)

    study = benchmark.pedantic(run, rounds=1, iterations=1)

    console.emit("\n=== Fig. 7 / Section IV-B: correlation mining study ===")
    console.emit(f"flaps diagnosed: {study.n_all_flaps}; "
                 f"prefiltered CPU-related subset: {study.n_cpu_related}")
    console.emit(f"candidate series tested: {study.n_candidates} "
                 "(paper: 831 workflow + 2533 syslog = 3361)")

    pre = study.prefiltered_result("provisioning.port_turnup")
    unf = study.unfiltered_result("provisioning.port_turnup")
    console.emit(f"\nprefiltered : {pre}")
    console.emit(f"unfiltered  : {unf}")

    sig_pre = study.significant_prefiltered()
    console.emit(f"\nsignificant associations (prefiltered): {len(sig_pre)} "
                 "(paper: 80 of 3361)")
    for mined in sig_pre:
        console.emit(f"  {mined}")

    # the paper's punchline, as assertions
    assert pre is not None and pre.significant
    assert unf is not None and not unf.significant
    assert pre.score > 2 * max(unf.score, 0.1)

    # expected associations also surface (BGP notifications are "a
    # generic message logged for any BGP flap")
    significant_names = {r.diagnostic for r in sig_pre}
    assert any("BGP-5-NOTIFICATION" in n for n in significant_names)
    assert any("SYS-3-CPUHOG" in n for n in significant_names)

    # benign activities stay quiet
    for benign in ("maintenance.card_swap", "audit.config_scan",
                   "backup.config_pull", "qos.policy_update"):
        found = study.prefiltered_result(benign)
        assert found is None or not found.significant, found
