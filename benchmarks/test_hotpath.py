"""Hot-path speedup gate: columnar batch joins + incremental streaming.

The paper sizes the platform for event storms — PIM adjacency changes
"arrive by the thousands per day", and a single provisioning action on
one PE disturbs its MVPN adjacencies towards *every* remote PE in
every customer VPN at once.  That is the shape that makes the join
stage the hot path: dozens of symptom instances share one retrieval
cover, and each of them must be joined against every OSPF-monitor
candidate in the window.

This benchmark replays one month of daily MVPN provisioning storms
twice through the same streaming loop:

* **legacy** — the pre-optimization discipline: scalar per-candidate
  temporal joins (``EngineConfig.batch_joins = False``) and a full
  retrieval-cache clear on every advance
  (``StreamingConfig.incremental = False``);
* **optimized** — the defaults: columnar batch joins over the store's
  zero-copy views plus delta-driven invalidation and horizon eviction,
  so covers built for one symptom serve every sibling symptom of the
  storm, and surviving covers are dropped only when a record actually
  lands in them.

Telemetry is delivered strictly in order, so the two disciplines must
produce byte-identical diagnosis streams (no re-opens fire; the
late-data paths are covered by the incremental oracle tests in
``tests/core/test_streaming.py``).  The gate asserts the optimized
replay's diagnosis loop — every ``advance()`` call, detection included
— is at least 5x faster.  Results land in ``BENCH_hotpath.json``.
"""

import json
import random
import time
from pathlib import Path

from repro.apps import PimApp
from repro.collector import DataCollector
from repro.collector.sources.ospfmon import render_ospfmon_row
from repro.core.streaming import FeedReplayer, StreamingConfig, StreamingRca
from repro.platform import GrcaPlatform
from repro.simulation.faults import FaultInjector
from repro.simulation.scenarios import DAY
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter
from repro.topology import TopologyParams, build_topology

BENCH_FILE = Path("BENCH_hotpath.json")

#: replay clock step (the paper's near-real-time cadence)
TICK = 600.0
DURATION_DAYS = 30.0
#: storm shape: one provisioning action every 15 minutes, daily
FAULTS_PER_STORM = 3
FAULT_SPACING = 900.0
#: MVPN customer VPNs disturbed per provisioning action
VRFS = 10
#: OSPFMon LSA-churn cadence around each action (reconvergence noise)
CHURN_REFRESH = 12.0
CHURN_SPAN = 300.0
#: quiet-hours LSA refresh cadence
IDLE_REFRESH = 1800.0
GATE_SPEEDUP = 5.0


def _record(key, payload):
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _storm_month():
    """A month of daily MVPN provisioning storms with OSPFMon churn.

    Each provisioning action on a PE flaps its PIM adjacencies towards
    every remote PE across ``VRFS`` customer VPNs — dozens of symptom
    instances within one second, exactly the storm fan-out the paper
    reports.  Around every action the OSPF monitor sees a burst of LSA
    re-announcements (one per link every ``CHURN_REFRESH`` seconds),
    each of which the knowledge library treats as a re-convergence
    point; off-hours the feed idles at ``IDLE_REFRESH``.
    """
    topology = build_topology(
        TopologyParams(n_pops=8, pers_per_pop=2, customers_per_per=4, seed=77)
    )
    emitter = TelemetryEmitter(topology, random.Random(78))
    # storms need exact sub-second fan-out: jitter would collide the
    # per-vrf instance identities (rounded to deciseconds) and scatter
    # siblings across retrieval buckets in both configurations alike
    emitter.syslog_jitter = 0.0
    injector = FaultInjector(topology, emitter, random.Random(79))
    start = BASE_EPOCH
    end = start + DURATION_DAYS * DAY
    pes = sorted(topology.provider_edges)
    links = sorted(topology.network.logical_links)

    truths = []
    churn_spans = []
    storm_start = start + 0.5 * DAY
    n = 0
    while storm_start < end - 0.5 * DAY:
        for k in range(FAULTS_PER_STORM):
            t = storm_start + k * FAULT_SPACING
            pe = pes[(n + k) % len(pes)]
            remotes = [p for p in pes if p != pe]
            emitter.tacacs(
                t - 8.0, pe, "prov-sys",
                "conf t; ip vrf cust-vpn-1; mdt default 239.1.1.1",
            )
            for v in range(VRFS):
                # whole-second offsets (syslog timestamp resolution)
                # keep the instances' identities distinct while still
                # sharing retrieval covers across the whole fan-out
                truths += injector._pim_changes(
                    t + 2.0 * v, pe, remotes,
                    "PIM Configuration change", vrf=f"cust-vpn-{v + 1}",
                )
            churn_spans.append((t - CHURN_SPAN, t + CHURN_SPAN))
        storm_start += DAY
        n += 1
    stream = emitter.buffers.replay_order()

    # the quiet-but-heavy feed, delivered strictly in order
    t = start
    while t < end:
        for link in links:
            stream.append((t, "ospfmon", render_ospfmon_row(t, link, 10)))
        t += IDLE_REFRESH
    for lo, hi in churn_spans:
        t = lo
        while t <= hi:
            for link in links:
                stream.append((t, "ospfmon", render_ospfmon_row(t, link, 10)))
            t += CHURN_REFRESH
    return topology, stream, truths, start, end


def _replay(topology, stream, start, end, *, batch_joins, incremental):
    """Stream the scenario through one configuration; return results.

    The timed section is the diagnosis loop — every ``advance()`` call,
    including symptom detection — not ingestion, which is identical
    (and untouched) in both configurations.
    """
    collector = DataCollector()
    for router in topology.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    platform = GrcaPlatform.from_collector(
        topology, collector, config_time=start - DAY
    )
    app = PimApp.build(platform)
    app.engine.config.batch_joins = batch_joins
    # feed-health gap annotation is orthogonal to the cache/join
    # disciplines under test; disabling it keeps the loop cost honest
    app.engine.config.health = None
    streaming = StreamingRca(
        app.engine,
        StreamingConfig(incremental=incremental, reopen_horizon=1800.0),
        start=start,
    )
    replayer = FeedReplayer(collector, stream)
    diagnoses = []
    advances = 0
    rca_seconds = 0.0
    now = start
    while now < end + TICK:
        now += TICK
        replayer.deliver_until(now)
        t0 = time.perf_counter()
        diagnoses.extend(streaming.advance(now))
        rca_seconds += time.perf_counter() - t0
        advances += 1
    streaming.close()
    return {
        "diagnoses": diagnoses,
        "advances": advances,
        "rca_seconds": rca_seconds,
        "invalidated": streaming.invalidated_count,
        "reopened": streaming.reopened_count,
        "reemitted": streaming.reemitted_count,
        "evicted": streaming.evicted_count,
    }


def test_month_replay_speedup_and_equivalence(console):
    topology, stream, truths, start, end = _storm_month()

    legacy = _replay(
        topology, stream, start, end, batch_joins=False, incremental=False
    )
    optimized = _replay(
        topology, stream, start, end, batch_joins=True, incremental=True
    )

    # correctness first: the speedup must not change a single diagnosis
    assert len(optimized["diagnoses"]) == len(truths)
    assert optimized["reopened"] == 0  # in-order delivery: no re-opens
    assert optimized["diagnoses"] == legacy["diagnoses"]

    speedup = legacy["rca_seconds"] / optimized["rca_seconds"]
    per_symptom_ms = (
        1000.0 * optimized["rca_seconds"] / len(optimized["diagnoses"])
    )
    console.emit(
        f"\n=== Streaming hot path: month of MVPN provisioning storms "
        f"({len(optimized['diagnoses'])} symptoms, "
        f"{optimized['advances']} advances) ===\n"
        f"legacy (scalar joins, clear-cache): "
        f"{legacy['rca_seconds']:.2f} s\n"
        f"optimized (batch joins, incremental): "
        f"{optimized['rca_seconds']:.2f} s\n"
        f"speedup: {speedup:.1f}x (gate: >= {GATE_SPEEDUP:.0f}x)   "
        f"per-symptom: {per_symptom_ms:.2f} ms"
    )
    _record(
        "month_storm_replay",
        {
            "symptoms": len(optimized["diagnoses"]),
            "advances": optimized["advances"],
            "tick_seconds": TICK,
            "duration_days": DURATION_DAYS,
            "legacy_rca_seconds": round(legacy["rca_seconds"], 3),
            "optimized_rca_seconds": round(optimized["rca_seconds"], 3),
            "speedup": round(speedup, 2),
            "per_symptom_ms": round(per_symptom_ms, 3),
            "invalidated": optimized["invalidated"],
            "reopened": optimized["reopened"],
            "reemitted": optimized["reemitted"],
            "evicted": optimized["evicted"],
            "gate_speedup": GATE_SPEEDUP,
            "identical_diagnoses": True,
        },
    )
    assert speedup >= GATE_SPEEDUP
