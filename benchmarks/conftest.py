"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down (documented) size, prints a paper-vs-measured comparison
directly to the terminal (bypassing pytest capture), and asserts that
the *shape* holds: who dominates, rank order of the major causes, and
significance flips.
"""

import sys

import pytest

from repro.apps import BgpFlapApp, CdnApp, PimApp
from repro.simulation import bgp_month, cdn_month, pim_fortnight
from repro.topology import TopologyParams


class Console:
    """Reporting helper that bypasses pytest's output capture."""

    def __init__(self, capsys) -> None:
        self._capsys = capsys

    def emit(self, text: str) -> None:
        if self._capsys is None:
            sys.stdout.write(text + "\n")
            return
        with self._capsys.disabled():
            print(text)

    def report_table(self, title: str, rows, paper, cause_map=None) -> None:
        """Print a 'Root Cause | paper % | measured %' comparison table.

        ``rows`` are BreakdownRow objects; ``paper`` maps paper row label
        -> paper percentage; ``cause_map`` maps engine cause names to
        paper row labels.
        """
        cause_map = cause_map or {}
        measured = {}
        for row in rows:
            label = cause_map.get(row.root_cause, row.root_cause)
            measured[label] = measured.get(label, 0.0) + row.percentage
        width = max(len(label) for label in list(paper) + list(measured))
        lines = [f"\n=== {title} ===",
                 f"{'Root Cause':<{width}}  {'paper %':>8}  {'measured %':>10}"]
        for label, paper_pct in paper.items():
            got = measured.pop(label, 0.0)
            lines.append(f"{label:<{width}}  {paper_pct:>8.2f}  {got:>10.2f}")
        for label, got in sorted(measured.items()):
            lines.append(f"{label:<{width}}  {'-':>8}  {got:>10.2f}")
        self.emit("\n".join(lines))


def pytest_collection_modifyitems(items):
    """Mark every benchmark ``bench`` + ``slow`` (chaos suites also ``chaos``).

    The benchmarks tree is excluded from tier-1 (``testpaths`` points at
    ``tests/``) and only runs when named explicitly, but the markers keep
    ``-m`` selections meaningful across the whole collection.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)
        if "chaos" in item.nodeid:
            item.add_marker(pytest.mark.chaos)


@pytest.fixture
def console(capsys):
    return Console(capsys)


@pytest.fixture(scope="session")
def bgp_outcome():
    """Table IV scenario: ~1200 flaps on an 18-PER network."""
    result = bgp_month(
        total_flaps=1200,
        params=TopologyParams(n_pops=6, pers_per_pop=3, customers_per_per=8, seed=101),
        seed=101,
    )
    app = BgpFlapApp.build(result.platform())
    symptoms = app.find_symptoms(result.start, result.end)
    diagnoses = app.engine.diagnose_all(symptoms)
    return result, app, symptoms, diagnoses


@pytest.fixture(scope="session")
def pim_outcome():
    """Table VIII scenario: ~700 adjacency changes over two weeks."""
    result = pim_fortnight(
        total_changes=700,
        params=TopologyParams(n_pops=6, pers_per_pop=3, customers_per_per=6, seed=102),
        seed=102,
    )
    app = PimApp.build(result.platform())
    symptoms = app.find_symptoms(result.start, result.end)
    diagnoses = app.engine.diagnose_all(symptoms)
    return result, app, symptoms, diagnoses


@pytest.fixture(scope="session")
def cdn_outcome():
    """Table VI scenario: ~500 RTT degradations over a month."""
    result = cdn_month(total_degradations=500, n_clients=24, seed=103)
    app = CdnApp.build(result.platform())
    symptoms = app.find_symptoms(result.start, result.end)
    diagnoses = app.engine.diagnose_all(symptoms)
    return result, app, symptoms, diagnoses
