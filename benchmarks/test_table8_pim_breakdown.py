"""Table VIII: root-cause breakdown of two weeks of PIM adjacency losses.

Paper setting: all PIM neighbor adjacency changes over 2 weeks on 600+
provider edge routers; >98% classified.  Shape targets: customer-facing
interface flap dominates (~69%), Router Cost In/Out and OSPF
re-convergence around 10% each, the remaining categories small.
"""

from collections import Counter

from repro.apps.pim import CUSTOMER_IFACE_FLAP
from repro.core import ResultBrowser
from repro.core.knowledge import names

PAPER_TABLE8 = {
    "PIM Configuration Change (to add and remove customers)": 4.04,
    "Router Cost In/Out": 10.34,
    "Link Cost Out/Down": 1.50,
    "Link Cost In/Up": 0.84,
    "OSPF re-convergence": 10.36,
    "Uplink PIM adjacency loss": 1.95,
    "interface (customer facing) flap": 69.21,
    "Unknown": 1.76,
}

CAUSE_MAP = {
    names.PIM_CONFIG_CHANGE: "PIM Configuration Change (to add and remove customers)",
    names.OSPF_RECONVERGENCE: "OSPF re-convergence",
    names.UPLINK_PIM_ADJACENCY_CHANGE: "Uplink PIM adjacency loss",
}


def test_table8_breakdown(pim_outcome, benchmark, console):
    result, app, symptoms, diagnoses = pim_outcome
    browser = ResultBrowser(diagnoses)

    def run():
        return app.engine.diagnose_all(symptoms[:150])

    benchmark.pedantic(run, rounds=1, iterations=1)

    console.report_table(
        f"Table VIII: PIM adjacency loss root causes ({len(diagnoses)} events)",
        browser.breakdown(), PAPER_TABLE8, CAUSE_MAP,
    )

    counts = Counter(d.primary_cause for d in diagnoses)
    total = len(diagnoses)
    # shape: customer-facing interface flap dominates
    assert counts[CUSTOMER_IFACE_FLAP] / total > 0.55
    # shape: Router Cost and OSPF re-convergence are the ~10% tier
    assert counts[names.ROUTER_COST_IN_OUT] / total > 0.04
    assert counts[names.OSPF_RECONVERGENCE] / total > 0.04
    # shape: link cost and uplink categories stay small
    assert counts.get(names.LINK_COST_OUT, 0) / total < 0.06
    assert counts.get(names.LINK_COST_IN, 0) / total < 0.06

    # paper: root causes identified for more than 98% of events
    coverage = browser.explained_fraction()
    console.emit(f"classification coverage: {100 * coverage:.2f}% (paper: >98%)")
    assert coverage >= 0.95
