"""Spatial-join and BGP-lookup microbenchmarks.

Location expansion is the engine's hottest path: every spatial join of a
pair location re-ran OSPF/ECMP simulation and BGP emulation per
candidate.  This benchmark measures the two fixes from the
routing-epoch work against faithful copies of the seed paths:

* **pair-join** — one symptom pair joined against every router in the
  network, repeated across many timestamps inside one routing epoch.
  The acceptance gate: the epoch-keyed resolution cache makes the loop
  >= 5x faster than the uncached oracle (``cache_size=0``), with a hit
  rate that shows the cache — not noise — did it.
* **bgp-lookup** — longest-prefix match over a 2 000-prefix feed: the
  indexed per-length tables vs the seed full-scan (every prefix parsed
  and liveness-checked per query).

Results land in ``BENCH_spatial.json`` (one key per test) so CI can
archive the measurements per run.
"""

import json
import time
from pathlib import Path

from repro.core.locations import Location, LocationType
from repro.core.spatial import JoinLevel, LocationResolver, SpatialJoinRule
from repro.netutils import longest_prefix_match
from repro.routing.bgp import BgpEmulator, BgpUpdateLog
from repro.routing.ospf import OspfSimulator
from repro.routing.paths import IngressMap, PathService
from repro.topology import TopologyParams, build_topology, snapshot_network

BENCH_FILE = Path("BENCH_spatial.json")

SPEEDUP_GATE = 5.0
N_PREFIXES = 2_000
N_LOOKUPS = 300


def _record(key, payload):
    """Merge one test's measurements into the benchmark artifact."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def build_service():
    topology = build_topology(
        TopologyParams(
            n_pops=6,
            pers_per_pop=3,
            customers_per_per=4,
            cdn_pops=("nyc",),
            peering_pops=("chi",),
            seed=7,
        )
    )
    network = topology.network
    ospf = OspfSimulator(network)
    log = BgpUpdateLog()
    service = PathService(
        network=network,
        ospf=ospf,
        bgp=BgpEmulator(log, ospf),
        configs=snapshot_network(topology, timestamp=0.0),
        ingress_map=IngressMap(),
    )
    return topology, service, log


def seed_lookup_prefix(log, dest_ip, timestamp):
    """The pre-index lookup path, kept verbatim as the yardstick:
    liveness-check every prefix ever seen, then linear-scan LPM."""
    live = [
        prefix for prefix in log.prefixes() if log.routes_at(prefix, timestamp)
    ]
    return longest_prefix_match(live, dest_ip)


def test_cached_pair_join_speedup(console):
    topology, service, log = build_service()
    routers = sorted(topology.network.routers)
    rule = SpatialJoinRule(
        LocationType.INGRESS_EGRESS, LocationType.ROUTER, JoinLevel.INTERFACE
    )
    symptom = Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")
    candidates = [Location.router(name) for name in routers]
    # many distinct symptom instants inside one routing epoch: exactly
    # the engine's workload when diagnosing a burst of symptoms
    timestamps = [1000.0 + 7.0 * i for i in range(40)]
    repeats = 3  # best-of-N guards the measurement against runner noise

    def run_seed(resolver):
        """The pre-refactor engine loop: one-shot joins that re-expand
        the symptom pair for every candidate, nothing memoized."""
        joined = 0
        best = float("inf")
        for _ in range(repeats):
            joined = 0
            started = time.perf_counter()
            for timestamp in timestamps:
                for candidate in candidates:
                    if rule.joined(resolver, symptom, candidate, timestamp):
                        joined += 1
            best = min(best, time.perf_counter() - started)
        return best, joined

    def run_cached(resolver):
        """The refactored loop: one lazy batch per (rule, symptom) and
        epoch-keyed memoization underneath."""
        joined = 0
        best = float("inf")
        for _ in range(repeats):
            joined = 0
            started = time.perf_counter()
            for timestamp in timestamps:
                batch = rule.batch(resolver, symptom, timestamp)
                for candidate in candidates:
                    if batch.joined(candidate):
                        joined += 1
            best = min(best, time.perf_counter() - started)
        return best, joined

    oracle = LocationResolver(service, cache_size=0)
    cached = LocationResolver(service)
    # run the seed path first: the shared SPF cache it warms can only
    # *narrow* the measured gap
    uncached_seconds, uncached_joined = run_seed(oracle)
    cached_seconds, cached_joined = run_cached(cached)
    assert cached_joined == uncached_joined  # same verdicts, or the race is void

    stats = cached.cache_stats()
    evaluations = len(timestamps) * len(candidates)
    speedup = uncached_seconds / cached_seconds
    payload = {
        "evaluations": evaluations,
        "uncached_seconds": round(uncached_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "speedup": round(speedup, 1),
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
    }
    console.emit(
        f"\n=== spatial pair-join ({evaluations} evaluations, "
        f"{len(timestamps)} instants x {len(candidates)} candidates) ==="
    )
    console.emit(
        f"uncached {uncached_seconds:>8.3f} s   cached {cached_seconds:>8.3f} s   "
        f"speedup {speedup:.1f}x (gate: >= {SPEEDUP_GATE}x)"
    )
    console.emit(
        f"cache: {stats['hits']} hits / {stats['misses']} misses "
        f"({100 * stats['hits'] / (stats['hits'] + stats['misses']):.1f}% hit rate)"
    )
    _record("pair_join", payload)

    # the acceptance gate: memoizing expansions under the routing epoch
    # beats re-simulating OSPF/BGP per candidate by >= 5x
    assert speedup >= SPEEDUP_GATE
    # and it is the cache doing it: one miss per distinct (location,
    # level, epoch), everything else served from memory
    assert stats["hits"] > stats["misses"]


def test_indexed_bgp_lookup(console):
    topology, service, log = build_service()
    routers = sorted(topology.network.routers)
    emulator = service.bgp
    for i in range(N_PREFIXES):
        egress = routers[i % len(routers)]
        log.announce(float(i % 977), f"10.{i // 256}.{i % 256}.0/24", egress)
    lookups = [f"10.{(13 * k) % (N_PREFIXES // 256 + 1)}.{(37 * k) % 256}.9" for k in range(N_LOOKUPS)]
    timestamp = 2000.0

    started = time.perf_counter()
    seed_results = [seed_lookup_prefix(log, ip, timestamp) for ip in lookups]
    seed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    indexed_results = [emulator.lookup_prefix(ip, timestamp) for ip in lookups]
    indexed_seconds = time.perf_counter() - started

    assert indexed_results == seed_results  # the index changes cost, not answers

    speedup = seed_seconds / indexed_seconds
    payload = {
        "prefixes": N_PREFIXES,
        "lookups": N_LOOKUPS,
        "seed_scan_seconds": round(seed_seconds, 4),
        "indexed_seconds": round(indexed_seconds, 4),
        "speedup": round(speedup, 1),
    }
    console.emit(
        f"\n=== bgp longest-prefix match ({N_LOOKUPS} lookups over "
        f"{N_PREFIXES} prefixes) ==="
    )
    console.emit(
        f"seed scan {seed_seconds:>8.3f} s   indexed {indexed_seconds:>8.3f} s   "
        f"speedup {speedup:.1f}x"
    )
    _record("bgp_lookup", payload)

    # per-length hash probing must beat the full parse-and-scan
    assert speedup >= SPEEDUP_GATE
