"""Store ingest + query microbenchmark across storage backends.

The Data Collector "stores them in database tables in real time" across
~600 feeds; the wall the seed store hit was out-of-order ingest — every
late record triggered a wholesale O(n·k) index rebuild.  This benchmark
measures the refactored engines against a faithful copy of that seed
insert path:

* **ingest** — 100k records, ordered and with 0.5% late arrivals, per
  backend (``seed-baseline``, ``memory``, ``sqlite``).  The acceptance
  gate: the tail-buffered :class:`MemoryBackend` ingests the
  out-of-order stream >= 5x faster than the seed path, with zero
  wholesale rebuilds (its ``merges`` counter is amortized, the seed's
  ``rebuilds`` counter is per-late-record).
* **query** — indexed equality vs unindexed filter over the 100k rows,
  per backend.

Results land in ``BENCH_store.json`` (one key per test) so CI can
archive the measurements per run.
"""

import bisect
import json
import time
from pathlib import Path

from repro.collector.backends import MemoryBackend, SqliteBackend
from repro.collector.store import Record

BENCH_FILE = Path("BENCH_store.json")

N_RECORDS = 100_000
LATE_EVERY = 200  # 0.5% of records arrive ~150s late
LATE_BY = 150.0
ROUTERS = 20
SPEEDUP_GATE = 5.0


def _record(key, payload):
    """Merge one test's measurements into the benchmark artifact."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


class SeedBaselineTable:
    """The pre-refactor insert path, kept verbatim as the yardstick.

    In-order inserts append; any out-of-order insert bisects into the
    sorted lists and rebuilds every index posting list from scratch —
    the O(n·k) behavior the tail-buffered MemoryBackend replaces.
    """

    def __init__(self, indexed_columns=("router",)):
        self._records = []
        self._timestamps = []
        self._indexes = {column: {} for column in indexed_columns}
        self.rebuilds = 0

    def insert(self, record):
        if self._timestamps and record.timestamp < self._timestamps[-1]:
            position = bisect.bisect_right(self._timestamps, record.timestamp)
            self._records.insert(position, record)
            self._timestamps.insert(position, record.timestamp)
            for column in self._indexes:
                rebuilt = {}
                for pos, rec in enumerate(self._records):
                    value = rec.get(column)
                    if value is not None:
                        rebuilt.setdefault(value, []).append(pos)
                self._indexes[column] = rebuilt
            self.rebuilds += 1
        else:
            position = len(self._records)
            self._records.append(record)
            self._timestamps.append(record.timestamp)
            for column, index in self._indexes.items():
                value = record.get(column)
                if value is not None:
                    index.setdefault(value, []).append(position)

    def query(self, start, end, equals):
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_right(self._timestamps, end)
        indexed = [
            (c, v) for c, v in equals.items() if c in self._indexes
        ]
        if indexed:
            column, value = indexed[0]
            positions = self._indexes[column].get(value, [])
            p_lo = bisect.bisect_left(positions, lo)
            p_hi = bisect.bisect_left(positions, hi)
            candidates = (self._records[p] for p in positions[p_lo:p_hi])
        else:
            candidates = self._records[lo:hi]
        return [
            r for r in candidates
            if all(r.get(c) == v for c, v in equals.items())
        ]


def make_rows(out_of_order):
    rows = []
    for i in range(N_RECORDS):
        t = float(i)
        if out_of_order and i % LATE_EVERY == LATE_EVERY - 1:
            t -= LATE_BY
        rows.append(Record.make(t, router=f"r{i % ROUTERS}", value=i))
    return rows


def fresh_backends(tmp_path):
    return {
        "seed-baseline": SeedBaselineTable(("router",)),
        "memory": MemoryBackend(("router",)),
        "sqlite": SqliteBackend(
            "bench", ("router",), path=str(tmp_path / "bench.sqlite")
        ),
    }


def _ingest_seconds(backend, rows):
    started = time.perf_counter()
    for row in rows:
        backend.insert(row)
    return time.perf_counter() - started


def test_ingest_ordered_vs_out_of_order(tmp_path, console):
    ordered_rows = make_rows(out_of_order=False)
    late_rows = make_rows(out_of_order=True)
    payload = {}
    console.emit(
        f"\n=== store ingest ({N_RECORDS} records, "
        f"{N_RECORDS // LATE_EVERY} late arrivals in the out-of-order run) ==="
    )
    for mode, rows in (("ordered", ordered_rows), ("out_of_order", late_rows)):
        for name, backend in fresh_backends(tmp_path / mode).items():
            seconds = _ingest_seconds(backend, rows)
            entry = {
                "seconds": round(seconds, 4),
                "records_per_second": round(N_RECORDS / seconds),
            }
            if isinstance(backend, SeedBaselineTable):
                entry["rebuilds"] = backend.rebuilds
            else:
                entry.update(
                    {
                        k: v
                        for k, v in backend.stats().items()
                        if k in ("out_of_order", "tail", "max_tail", "merges")
                    }
                )
                backend.close()
            payload.setdefault(mode, {})[name] = entry
            console.emit(
                f"{mode:<13} {name:<14} {seconds:>8.3f} s "
                f"({entry['records_per_second']:>9,} rec/s)"
            )

    seed_late = payload["out_of_order"]["seed-baseline"]["seconds"]
    memory_late = payload["out_of_order"]["memory"]["seconds"]
    speedup = seed_late / memory_late
    payload["out_of_order_speedup_memory_vs_seed"] = round(speedup, 1)
    console.emit(
        f"memory vs seed-baseline out-of-order speedup: {speedup:.1f}x "
        f"(gate: >= {SPEEDUP_GATE}x)"
    )
    _record("ingest", payload)

    # the acceptance gate: amortized tail merging beats per-record
    # wholesale rebuilds by >= 5x at 100k records
    assert speedup >= SPEEDUP_GATE
    # the seed path rebuilt once per late record; the memory backend
    # never rebuilt wholesale (merges are amortized and bounded)
    assert payload["out_of_order"]["seed-baseline"]["rebuilds"] == (
        N_RECORDS // LATE_EVERY
    )
    assert payload["out_of_order"]["memory"]["merges"] <= (
        N_RECORDS // LATE_EVERY
    ) // 10 + 1


def test_query_indexed_vs_unindexed(tmp_path, console):
    rows = make_rows(out_of_order=True)
    repeats = 50
    payload = {}
    console.emit(
        f"\n=== store query over {N_RECORDS} records ({repeats} repeats) ==="
    )
    for name, backend in fresh_backends(tmp_path).items():
        for row in rows:
            backend.insert(row)
        timings = {}
        for label, equals in (
            ("indexed", {"router": "r7"}),
            ("unindexed", {"value": 4321}),
        ):
            started = time.perf_counter()
            for k in range(repeats):
                window = (1000.0 * k % 50_000.0, 1000.0 * k % 50_000.0 + 5000.0)
                backend.query(window[0], window[1], equals)
            elapsed = time.perf_counter() - started
            timings[label] = round(elapsed * 1000.0 / repeats, 3)
        payload[name] = {f"{label}_ms": ms for label, ms in timings.items()}
        console.emit(
            f"{name:<14} indexed {timings['indexed']:>8.3f} ms/query   "
            f"unindexed {timings['unindexed']:>8.3f} ms/query"
        )
        if isinstance(backend, SqliteBackend):
            backend.close()
    _record("query", payload)
    # the hash/SQL index must beat the scan on the selective filter
    assert payload["memory"]["indexed_ms"] <= payload["memory"]["unindexed_ms"]
