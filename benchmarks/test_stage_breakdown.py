"""Per-stage latency breakdown of traced diagnoses (repro.obs).

Where does a diagnosis spend its time?  This benchmark traces every
symptom of the three table scenarios (bgp / cdn / pim), aggregates the
span trees into per-stage *exclusive* times (`stage_breakdown`), and
reports p50/p95 per stage and scenario.  Two structural assertions are
gated — they hold on any machine:

* every traced diagnosis's stage times sum to at most its root span's
  duration (exclusive time cannot double-count);
* the traced diagnoses equal an untraced run of the same symptoms
  (tracing observes, never changes results).

Measurements land in ``BENCH_trace_stages.json`` (per-stage p50/p95 per
scenario) and one full span tree per scenario is exported as
``BENCH_trace_<scenario>.json`` for CI to archive.
"""

import json
from pathlib import Path

from repro.obs import stage_breakdown, summarize_stages, trace_to_json

BENCH_FILE = Path("BENCH_trace_stages.json")

#: wiggle room for float summation when comparing stage sums to roots
EPSILON = 1e-9


def _record(key, payload):
    """Merge one scenario's stage summary into the benchmark artifact."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _traced_stage_summary(app, symptoms, scenario, console):
    """Trace every symptom, summarize stages, gate the invariants."""
    engine = app.engine.isolated()  # cold cache: retrieval cost is visible
    diagnoses = engine.diagnose_all(symptoms, traced=True)

    breakdowns = []
    for diagnosis in diagnoses:
        root = diagnosis.trace
        assert root is not None, "traced run must attach a span tree"
        breakdown = stage_breakdown(root)
        assert sum(breakdown.values()) <= root.duration + EPSILON, (
            "exclusive stage times exceed the root span duration"
        )
        breakdowns.append(breakdown)

    untraced = app.engine.isolated().diagnose_all(symptoms)
    assert diagnoses == untraced  # tracing observes, never changes results

    summary = summarize_stages(breakdowns)
    console.emit(
        f"\n=== stage breakdown ({scenario}, {len(symptoms)} symptoms) ==="
    )
    width = max(len(stage) for stage in summary)
    for stage, stats in summary.items():
        console.emit(
            f"{stage:<{width}}  p50 {1000 * stats['p50']:8.3f} ms  "
            f"p95 {1000 * stats['p95']:8.3f} ms  ({stats['count']:.0f} samples)"
        )

    _record(
        scenario,
        {
            "symptoms": len(symptoms),
            "stages": {
                stage: {k: round(v, 6) for k, v in stats.items()}
                for stage, stats in summary.items()
            },
        },
    )
    trace_path = Path(f"BENCH_trace_{scenario}.json")
    trace_path.write_text(trace_to_json(diagnoses[0].trace))
    console.emit(f"sample span tree written to {trace_path}")
    return summary


def test_bgp_stage_breakdown(bgp_outcome, console):
    _result, app, symptoms, _diagnoses = bgp_outcome
    summary = _traced_stage_summary(app, symptoms, "bgp_month", console)
    # the walk always retrieves and joins: the core stages must appear
    for stage in ("retrieve", "temporal-join", "spatial-join", "reason"):
        assert stage in summary, f"stage {stage!r} missing from traced runs"


def test_cdn_stage_breakdown(cdn_outcome, console):
    _result, app, symptoms, _diagnoses = cdn_outcome
    _traced_stage_summary(app, symptoms, "cdn_month", console)


def test_pim_stage_breakdown(pim_outcome, console):
    _result, app, symptoms, _diagnoses = pim_outcome
    _traced_stage_summary(app, symptoms, "pim_fortnight", console)
