"""Tables I / III / V / VII: the event-definition catalogs.

The paper's Table I lists the common event definitions of the Knowledge
Library (200+ in production); Tables III, V and VII list the handful of
application-specific events each RCA tool adds.  This benchmark prints
the reproduced catalogs and measures retrieval throughput over a month
of data.
"""

from repro.core.events import EventLibrary, RetrievalContext
from repro.core.knowledge import KnowledgeLibrary, names
from repro.apps import register_bgp_events, register_cdn_events, register_pim_events


def catalog_lines(library: EventLibrary, event_names) -> list:
    width = max(len(n) for n in event_names)
    lines = [f"{'Event Name':<{width}}  {'Location Type':<20}  Data Source"]
    for name in event_names:
        definition = library.get(name)
        lines.append(
            f"{definition.name:<{width}}  "
            f"{definition.location_type.value:<20}  {definition.data_source}"
        )
    return lines


def test_table1_event_catalog(console, benchmark, bgp_outcome):
    kb = KnowledgeLibrary()
    console.emit("\n=== Table I: common event definitions (Knowledge Library) ===")
    for line in catalog_lines(kb.events, names.TABLE1_EVENTS):
        console.emit(line)
    console.emit(f"total common events: {len(kb.events.names())} "
                 "(paper: 200+ in production)")

    app_events = kb.scoped_events()
    register_bgp_events(app_events)
    register_cdn_events(app_events)
    register_pim_events(app_events)
    console.emit("\n=== Tables III/V/VII: application-specific events ===")
    app_specific = [
        names.EBGP_FLAP, names.CUSTOMER_RESET, names.EBGP_HTE,
        names.CDN_RTT_INCREASE, names.CDN_SERVER_ISSUE, names.CDN_POLICY_CHANGE,
        names.PIM_ADJACENCY_CHANGE, names.PIM_CONFIG_CHANGE,
        names.UPLINK_PIM_ADJACENCY_CHANGE,
    ]
    for line in catalog_lines(app_events, app_specific):
        console.emit(line)

    # benchmark: retrieving every Table I event over a month of records
    result, app, _symptoms, _diagnoses = bgp_outcome
    context = RetrievalContext(
        store=result.collector.store,
        start=result.start,
        end=result.end,
        services=app.platform.services,
    )

    def retrieve_all():
        total = 0
        for name in names.TABLE1_EVENTS:
            total += len(kb.events.get(name).retrieve(context))
        return total

    total = benchmark.pedantic(retrieve_all, rounds=1, iterations=1)
    console.emit(f"\nretrieved {total} common-event instances over one month")
    assert total > 1000
