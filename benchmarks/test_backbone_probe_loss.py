"""The introduction's motivating workload: backbone probe losses.

Not a numbered table in the paper — the introduction describes it
qualitatively ("should link congestion be determined to be the primary
root cause, capacity augmentation is needed ...; if packet losses are
found to be largely due to intradomain routing reconvergence, deploying
technologies such as MPLS fast reroute becomes a priority").  This
benchmark runs that workflow end to end and checks the decision falls
out of the aggregate breakdown.
"""

from collections import Counter

import pytest

from repro.apps import BackboneApp
from repro.core import ResultBrowser
from repro.core.knowledge import names
from repro.simulation import PROBE_LOSS_MIXTURE, backbone_probe_month


@pytest.fixture(scope="module")
def outcome():
    result = backbone_probe_month(total_losses=200, seed=106)
    app = BackboneApp.build(result.platform())
    symptoms = app.find_symptoms(result.start, result.end)
    diagnoses = app.engine.diagnose_all(symptoms)
    return result, app, diagnoses


def test_backbone_probe_loss(outcome, benchmark, console):
    result, app, diagnoses = outcome
    browser = ResultBrowser(diagnoses)

    def run():
        return app.engine.diagnose_all(
            app.find_symptoms(result.start, result.end)[:100]
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    console.emit("\n=== Intro workload: backbone probe-loss aggregate analysis ===")
    console.emit(f"probe pairs: {len(result.extras['probe_pairs'])}; "
                 f"loss events diagnosed: {len(diagnoses)}")
    paper = {cause: pct for cause, pct in PROBE_LOSS_MIXTURE}
    cause_map = {
        names.LINK_CONGESTION: "Link Congestions",
        names.OSPF_RECONVERGENCE: "OSPF re-convergence",
    }
    console.report_table("injected mixture vs diagnosed", browser.breakdown(),
                         paper, cause_map)

    advice = BackboneApp.advise(browser)
    console.emit(f"decision: {advice.recommendation} "
                 f"(congestion {advice.congestion_share:.1f}% vs "
                 f"reconvergence {advice.reconvergence_share:.1f}%)")

    counts = Counter(d.primary_cause for d in diagnoses)
    total = len(diagnoses)
    truth = result.truth_counts()
    # every diagnosed count matches the injected mixture exactly
    assert counts[names.LINK_CONGESTION] == truth["Link Congestions"]
    assert counts[names.OSPF_RECONVERGENCE] == truth["OSPF re-convergence"]
    assert counts["Unknown"] == truth["Unknown"]
    # the intro's decision: congestion dominates -> capacity
    assert counts[names.LINK_CONGESTION] / total > 0.4
    assert "capacity" in advice.recommendation
