"""Table II: the common diagnosis-rule catalog.

Prints every reproduced Table II (symptom, diagnostic) pair with its
join parameters, and measures how fast a full application diagnosis
graph compiles from the rule-specification language — the paper's
"quick customization" claim (the PIM application took <10 hours to
build; compilation here is milliseconds).
"""

from repro.apps import build_cdn_graph, build_pim_graph
from repro.apps.backbone import BACKBONE_LOSS_SPEC
from repro.apps.bgp_flaps import BGP_FLAPS_SPEC, register_bgp_events
from repro.apps.cdn import register_cdn_events
from repro.apps.pim import register_pim_events
from repro.core.knowledge import KnowledgeLibrary, names
from repro.core.rulespec import SpecCompiler


def test_table2_rule_catalog(console, benchmark):
    kb = KnowledgeLibrary()
    pairs = kb.rules.pairs()
    console.emit("\n=== Table II: common diagnosis rules (Knowledge Library) ===")
    width = max(len(s) for s, _ in pairs)
    console.emit(f"{'Symptom Event':<{width}}  Diagnostic Event")
    for symptom, diagnostic in pairs:
        console.emit(f"{symptom:<{width}}  {diagnostic}")
    console.emit(
        f"total rule templates: {len(pairs)} "
        "(Table II lists 30 state-grouped rows; paper: 300+ in production)"
    )
    assert len(pairs) >= 50

    # benchmark: compile the Fig. 4 application from its DSL spec
    def compile_app():
        events = kb.scoped_events()
        register_bgp_events(events)
        compiler = SpecCompiler(events, kb.rules)
        return compiler.compile_text(BGP_FLAPS_SPEC)

    graph = benchmark(compile_app)
    console.emit(
        f"\ncompiled the Fig. 4 BGP application: {len(graph.all_rules())} rules, "
        f"{len(graph.events())} events"
    )
    assert len(graph.all_rules()) == 11


def test_knowledge_reuse_across_applications(console, benchmark):
    """The paper's reuse claim, quantified per application.

    Section III: the BGP app adds only 3 events (Table III), the PIM app
    3 events + 7 app-specific rules (built in <10 h), the CDN app 2-3
    events; the backbone app here adds zero of either.
    """
    kb = KnowledgeLibrary()
    table1 = set(names.TABLE1_EVENTS)

    def build_all():
        apps = {}
        events = kb.scoped_events()
        register_bgp_events(events)
        apps["BGP flaps (Fig. 4)"] = SpecCompiler(events, kb.rules).compile_text(
            BGP_FLAPS_SPEC
        )
        cdn_events = kb.scoped_events()
        register_cdn_events(cdn_events)
        apps["CDN RTT (Fig. 5)"] = build_cdn_graph()
        pim_events = kb.scoped_events()
        register_pim_events(pim_events)
        apps["PIM MVPN (Fig. 6)"] = build_pim_graph()
        backbone_events = kb.scoped_events()
        apps["backbone loss"] = SpecCompiler(
            backbone_events, kb.rules
        ).compile_text(BACKBONE_LOSS_SPEC)
        return apps

    apps = benchmark.pedantic(build_all, rounds=1, iterations=1)
    console.emit("\n=== Knowledge Library reuse per application ===")
    console.emit(f"{'application':<20} {'events':>7} {'app-events':>10} "
                 f"{'rules':>6} {'library-rules':>14}")
    for title, graph in apps.items():
        events = graph.events()
        app_events = sorted(e for e in events if e not in table1)
        rules = graph.all_rules()
        library_rules = sum(
            1 for r in rules if (r.parent_event, r.child_event) in kb.rules
        )
        console.emit(
            f"{title:<20} {len(events):>7} {len(app_events):>10} "
            f"{len(rules):>6} {library_rules:>14}"
        )
    # paper: only three application-specific events for the BGP app
    bgp_events = apps["BGP flaps (Fig. 4)"].events()
    assert len([e for e in bgp_events if e not in table1]) == 3
    # the backbone app is pure library
    backbone_events = apps["backbone loss"].events()
    assert all(e in table1 for e in backbone_events)
