"""HTTP gateway load benchmark: latency, throughput, clean overload.

Drives the sharded RCA gateway over real loopback sockets with a
multi-threaded load generator, the way operators and tooling would hit
the deployed platform:

* **steady load** — concurrent clients submit single-symptom diagnosis
  jobs (Table IV scenario) and long-poll each to completion; reports
  submit latency p50/p99, end-to-end job latency p50/p99 and jobs/s
  across 2 shards;
* **saturation** — a burst far beyond a deliberately tiny queue must
  split cleanly into 202s and 429s: every accepted job reaches a
  terminal state (no lost jobs), every rejection is a well-formed 429
  with Retry-After, and nothing hangs or errors.

Results land in ``BENCH_service_http.json`` (one key per test).
"""

import http.client
import json
import threading
import time
from pathlib import Path

from repro.core.serialize import instance_to_dict
from repro.service.api import RcaService
from repro.service.http import RcaGateway, ShardRouter, build_shards

BENCH_FILE = Path("BENCH_service_http.json")

STEADY_CLIENTS = 8
STEADY_JOBS_PER_CLIENT = 25
BURST_JOBS = 80
BURST_QUEUE_DEPTH = 4


def _record(key, payload):
    """Merge one test's measurements into the benchmark artifact."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


class GatewayClient:
    """Keep-alive JSON client over one persistent connection."""

    def __init__(self, gateway):
        self.conn = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=120
        )

    def request(self, method, path, body=None):
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        self.conn.request(method, path, body=payload, headers=headers)
        response = self.conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), (
            json.loads(raw) if raw else None
        )

    def close(self):
        self.conn.close()


def test_steady_load_latency_and_throughput(bgp_outcome, console):
    result, app, symptoms, diagnoses = bgp_outcome
    router = ShardRouter(
        build_shards(result.collector.store, shards=2, workers=2)
    )
    router.register_app("bgp_flaps", app)
    router.start()
    gateway = RcaGateway(router).start()

    total_jobs = STEADY_CLIENTS * STEADY_JOBS_PER_CLIENT
    work = [symptoms[i % len(symptoms)] for i in range(total_jobs)]
    submit_latencies, e2e_latencies, failures = [], [], []
    lock = threading.Lock()
    shard_hits = {0: 0, 1: 0}

    def client_loop(worker_index):
        client = GatewayClient(gateway)
        try:
            for k in range(STEADY_JOBS_PER_CLIENT):
                symptom = work[worker_index * STEADY_JOBS_PER_CLIENT + k]
                body = {
                    "kind": "diagnose",
                    "app": "bgp_flaps",
                    "symptoms": [instance_to_dict(symptom)],
                }
                started = time.perf_counter()
                status, _, doc = client.request("POST", "/v1/jobs", body)
                submitted = time.perf_counter()
                if status != 202:
                    with lock:
                        failures.append((status, doc))
                    continue
                status, _, done = client.request(
                    "GET", f"/v1/jobs/{doc['job_id']}?wait=60"
                )
                finished = time.perf_counter()
                if status != 200 or done["state"] != "done":
                    with lock:
                        failures.append((status, done))
                    continue
                with lock:
                    submit_latencies.append(submitted - started)
                    e2e_latencies.append(finished - started)
                    shard_hits[doc["shard"]] += 1
        finally:
            client.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(STEADY_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600.0)
        assert not thread.is_alive(), "load generator thread hung"
    elapsed = time.perf_counter() - started
    gateway.stop()

    assert not failures, failures[:5]
    assert len(e2e_latencies) == total_jobs  # no lost jobs
    # both shards actually served traffic (distinct symptom keyspaces)
    assert all(hits > 0 for hits in shard_hits.values()), shard_hits

    throughput = total_jobs / elapsed
    payload = {
        "scenario": "bgp_month",
        "clients": STEADY_CLIENTS,
        "jobs": total_jobs,
        "shards": 2,
        "workers_per_shard": 2,
        "seconds": round(elapsed, 3),
        "jobs_per_second": round(throughput, 1),
        "submit_p50_ms": round(1000 * _percentile(submit_latencies, 0.50), 2),
        "submit_p99_ms": round(1000 * _percentile(submit_latencies, 0.99), 2),
        "e2e_p50_ms": round(1000 * _percentile(e2e_latencies, 0.50), 2),
        "e2e_p99_ms": round(1000 * _percentile(e2e_latencies, 0.99), 2),
        "shard_split": {str(k): v for k, v in shard_hits.items()},
    }
    console.emit(
        f"\n=== HTTP gateway steady load ({STEADY_CLIENTS} clients, "
        f"{total_jobs} jobs, 2 shards x 2 workers) ==="
    )
    console.emit(
        f"throughput: {payload['jobs_per_second']} jobs/s over "
        f"{payload['seconds']} s; shard split {payload['shard_split']}"
    )
    console.emit(
        f"submit latency: p50 {payload['submit_p50_ms']} ms, "
        f"p99 {payload['submit_p99_ms']} ms"
    )
    console.emit(
        f"end-to-end latency: p50 {payload['e2e_p50_ms']} ms, "
        f"p99 {payload['e2e_p99_ms']} ms"
    )
    _record("steady_load", payload)


def test_saturation_sheds_cleanly_and_loses_nothing(bgp_outcome, console):
    result, app, symptoms, _diagnoses = bgp_outcome
    service = RcaService(
        store=result.collector.store, workers=1,
        queue_depth=BURST_QUEUE_DEPTH,
    )
    service.register_app("bgp_flaps", app)
    service.start()
    router = ShardRouter([service])
    gateway = RcaGateway(router).start()

    accepted, rejected, anomalies = [], [], []
    lock = threading.Lock()

    def fire(index):
        client = GatewayClient(gateway)
        try:
            body = {
                "kind": "diagnose",
                "app": "bgp_flaps",
                "symptoms": [instance_to_dict(symptoms[index % len(symptoms)])],
            }
            status, headers, doc = client.request("POST", "/v1/jobs", body)
            with lock:
                if status == 202:
                    accepted.append(doc["job_id"])
                elif status == 429:
                    if headers.get("Retry-After") != "1" or "error" not in doc:
                        anomalies.append(("malformed 429", headers, doc))
                    else:
                        rejected.append(doc["error"])
                else:
                    anomalies.append((status, doc))
        finally:
            client.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=fire, args=(i,), daemon=True)
        for i in range(BURST_JOBS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "burst thread hung"
    burst_seconds = time.perf_counter() - started

    # every accepted job reaches a terminal state: nothing is lost
    client = GatewayClient(gateway)
    lost = []
    for job_id in accepted:
        status, _, doc = client.request("GET", f"/v1/jobs/{job_id}?wait=120")
        if status != 200 or not doc["finished"]:
            lost.append((job_id, status, doc))
    client.close()
    gateway.stop()

    assert not anomalies, anomalies[:5]
    assert not lost, lost[:5]
    assert len(accepted) + len(rejected) == BURST_JOBS
    # the burst genuinely overran the queue: both outcomes occurred
    assert accepted and rejected, (len(accepted), len(rejected))

    payload = {
        "burst_jobs": BURST_JOBS,
        "queue_depth": BURST_QUEUE_DEPTH,
        "accepted": len(accepted),
        "rejected_429": len(rejected),
        "lost": 0,
        "burst_seconds": round(burst_seconds, 3),
    }
    console.emit(
        f"\n=== HTTP gateway saturation (burst {BURST_JOBS} jobs into "
        f"depth-{BURST_QUEUE_DEPTH} queue, 1 worker) ==="
    )
    console.emit(
        f"accepted: {payload['accepted']} (all finished), "
        f"clean 429s: {payload['rejected_429']}, lost: 0"
    )
    _record("saturation", payload)
