"""Fig. 8 / Section IV-C: Bayesian inference finds an unobservable
line-card issue.

Paper numbers: one month of eBGP flaps on a PER with several hundred
sessions; 133 flaps (on 125 sessions, within 3 minutes) that rule-based
reasoning calls "Interface flap" are jointly re-classified by the
Bayesian engine as "Line-card Issue" — later confirmed as a real
line-card crash whose signature was not in the Knowledge Library.

Shape targets: rule-based says Interface flap for every crash-window
flap; grouped Bayesian inference flips them to Line-card Issue; flaps
outside the crash window stay Interface Issue.
"""

import pytest

from repro.apps import BgpFlapApp
from repro.simulation import linecard_crash
from repro.topology import TopologyParams


@pytest.fixture(scope="module")
def crash_outcome():
    result = linecard_crash(
        seed=105,
        n_background_flaps=200,
        params=TopologyParams(n_pops=3, pers_per_pop=2, customers_per_per=12, seed=105),
    )
    app = BgpFlapApp.build(result.platform())
    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
    return result, app, diagnoses


def test_fig8_linecard_issue(crash_outcome, benchmark, console):
    result, app, diagnoses = crash_outcome
    crash_card = f"{result.extras['crash_router']}:slot{result.extras['crash_slot']}"

    groups = app.group_by_line_card(diagnoses)

    def classify_all():
        return [
            (card, app.classify_group_bayesian(card, group))
            for card, group in groups
        ]

    verdicts = benchmark.pedantic(classify_all, rounds=1, iterations=1)

    console.emit("\n=== Fig. 8 / Section IV-C: Bayesian line-card study ===")
    console.emit(f"flaps diagnosed: {len(diagnoses)}; "
                 f"near-simultaneous same-card groups: {len(groups)}")
    console.emit(f"ground truth: card {crash_card} crashed (unobservable)")

    crash_groups = [
        (card, group) for card, group in groups if card == crash_card
    ]
    assert crash_groups, "the crash group must be detected"
    card, group = crash_groups[0]
    rule_based = sorted({d.primary_cause for d in group})
    verdict = dict(verdicts)[card]
    console.emit(f"\ncrash group ({len(group)} flaps, paper: 133):")
    console.emit(f"  rule-based per-flap diagnosis : {', '.join(rule_based)}")
    console.emit(f"  Bayesian joint diagnosis      : {verdict.best} "
                 f"(margin {verdict.margin():.1f})")

    # the paper's flip
    assert rule_based == ["Interface flap"]
    assert verdict.best == "Line-card Issue"

    # flaps away from the crash stay Interface Issue individually
    engine = app.bayesian_engine()
    crash_times = [t.time for t in result.ground_truth if t.cause == "Line-card crash"]
    lone = [
        d for d in diagnoses
        if all(abs(d.symptom.start - t) > 600.0 for t in crash_times)
    ]
    misflips = sum(
        1
        for d in lone[:50]
        if engine.classify(app.bayesian_features(d)).best == "Line-card Issue"
    )
    console.emit(f"isolated flaps misclassified as Line-card Issue: {misflips}/50")
    assert misflips == 0
