"""Diagnosis accuracy under injected feed degradation.

The deployed G-RCA's ~600 feeds can silently drop out; an RCA platform
that keeps answering "Unknown" over a half-blind store is worse than one
that says "I could not see".  This benchmark runs the Table VI CDN
scenario three ways — clean, with the CDN control-plane/server-log feed
completely down, and with that feed's lines corrupted — and measures
what the degradation-aware pipeline reports:

* clean: every diagnosis at full confidence, no caveats (the published
  Table VI breakdown is untouched by the health machinery);
* outage: the diagnoses that depended on the lost feed degrade to
  ``Unknown (evidence unavailable)`` — annotated, never silent — with
  caveats naming the feed and interval;
* corruption: the parser rejects the garbage, the feed goes DEGRADED,
  and the rejected lines land in the dead-letter buffer for replay.
"""

from collections import Counter

import pytest

from repro.apps import CdnApp
from repro.core import ResultBrowser
from repro.core.knowledge import names
from repro.core.reasoning.rule_based import UNKNOWN_DEGRADED
from repro.collector.health import FeedState
from repro.simulation import BASE_EPOCH, cdn_month

DAY = 86400.0

#: scenario size — small enough to run the workload three times
N_DEGRADATIONS = 200
N_CLIENTS = 16
SEED = 103


def _run_cdn(feed_faults=None):
    """One full simulate + diagnose pass of the CDN scenario."""
    result = cdn_month(
        total_degradations=N_DEGRADATIONS,
        n_clients=N_CLIENTS,
        seed=SEED,
        feed_faults=feed_faults,
    )
    app = CdnApp.build(result.platform())
    symptoms = app.find_symptoms(result.start, result.end)
    diagnoses = app.engine.diagnose_all(symptoms)
    return result, diagnoses


@pytest.fixture(scope="module")
def clean_outcome():
    """The scenario with every feed healthy."""
    return _run_cdn()


@pytest.fixture(scope="module")
def outage_outcome():
    """The scenario with the cdn feed down for the whole month."""
    def kill_cdn(injector):
        injector.outage("cdn", BASE_EPOCH - 2 * DAY, BASE_EPOCH + 31 * DAY)

    return _run_cdn(kill_cdn)


def test_clean_run_full_confidence(clean_outcome):
    """No injected feed faults -> no caveats, confidence 1.0 everywhere."""
    result, diagnoses = clean_outcome
    assert diagnoses
    assert all(d.confidence == 1.0 for d in diagnoses)
    assert all(not d.gaps and not d.caveats for d in diagnoses)
    browser = ResultBrowser(diagnoses)
    assert len(browser.degraded()) == 0
    assert browser.mean_confidence() == 1.0
    # the health machinery saw only healthy batch feeds
    assert all(
        state is FeedState.HEALTHY
        for state in result.collector.health.summary().values()
    )


def test_cdn_outage_annotates_unknowns(clean_outcome, outage_outcome, console):
    """A dead evidence feed yields annotated Unknowns, not silent ones."""
    _clean_result, clean_diagnoses = clean_outcome
    result, diagnoses = outage_outcome

    # the feed is actually gone from the store
    assert "cdn" not in result.collector.store.watermarks()

    clean_counts = Counter(d.primary_cause for d in clean_diagnoses)
    counts = Counter(d.primary_cause for d in diagnoses)

    # accuracy loss: causes whose evidence lived on the cdn feed can no
    # longer be diagnosed...
    assert clean_counts[names.CDN_POLICY_CHANGE] > 0
    assert counts[names.CDN_POLICY_CHANGE] == 0
    # ...and their instances fall into the Unknown bucket
    assert counts["Unknown"] > clean_counts["Unknown"]

    # every diagnosis carries the caveat: the lost feed overlapped every
    # retrieval window, so nothing can rule out a policy change
    assert all(d.is_degraded for d in diagnoses)
    assert all(0.0 < d.confidence < 1.0 for d in diagnoses)
    assert all(any("'cdn'" in c and "DOWN" in c for c in d.caveats) for d in diagnoses)

    # the Unknowns split: evidence unavailable, not evidence absent
    unknowns = [d for d in diagnoses if not d.is_explained]
    assert unknowns
    assert all(d.annotated_cause == UNKNOWN_DEGRADED for d in unknowns)
    for d in unknowns[:5]:
        text = d.explain()
        assert UNKNOWN_DEGRADED in text and "'cdn'" in text

    browser = ResultBrowser(diagnoses)
    annotated = {row.root_cause: row.count for row in browser.breakdown(annotated=True)}
    assert annotated.get(UNKNOWN_DEGRADED, 0) == len(unknowns)
    assert "Unknown" not in annotated

    console.emit("\n=== CDN feed outage: diagnosis accuracy impact ===")
    width = max(len(c) for c in set(clean_counts) | set(counts))
    console.emit(f"{'Root Cause':<{width}}  {'clean':>6}  {'outage':>6}")
    for cause in sorted(set(clean_counts) | set(counts)):
        console.emit(
            f"{cause:<{width}}  {clean_counts.get(cause, 0):>6}  {counts.get(cause, 0):>6}"
        )
    console.emit(
        f"mean confidence: clean {ResultBrowser(clean_diagnoses).mean_confidence():.2f}"
        f" -> outage {browser.mean_confidence():.2f}"
    )


def test_cdn_corruption_degrades_feed(console):
    """Garbled lines are rejected, counted, dead-lettered — never raised."""
    window = (BASE_EPOCH + 2 * DAY, BASE_EPOCH + 9 * DAY)
    hits = {}

    def garble_cdn(injector):
        hits["lines"] = injector.corruption(
            "cdn", window[0], window[1], probability=1.0
        )

    result, diagnoses = _run_cdn(garble_cdn)
    stats = result.collector.parsers["cdn"].stats

    # every garbled line was rejected (counted), none raised
    assert hits["lines"] > 0
    assert stats.rejected == hits["lines"]
    assert stats.top_reasons(1)  # reject reasons were counted

    # the corrupted lines are waiting in the dead-letter buffer
    letters = result.collector.dead_letters.entries("cdn")
    assert len(letters) == stats.rejected
    assert all(e.line.startswith("~CORRUPT~") for e in letters)

    # the injected interval is on record as a DEGRADED span
    intervals = result.collector.health.impaired_intervals("cdn", *window)
    assert any(i.state is FeedState.DEGRADED for i in intervals)

    # diagnoses inside the corruption window carry the caveat
    inside = [
        d for d in diagnoses if window[0] <= d.symptom.start <= window[1]
    ]
    if inside:  # the fault planner may not land a symptom in any window
        assert all(
            any("'cdn'" in c and "DEGRADED" in c for c in d.caveats) for d in inside
        )

    for line in result.collector.feed_stats_lines():
        console.emit(line)
