"""Section IV-A: learning diagnosis rules via manual iterative analysis.

The paper narrates how the PIM application was built: start with an
incomplete diagnosis graph, run it, explore the *unexplained* adjacency
changes with a data-exploration tool, spot a recurring signature,
codify it as a rule, and repeat — "continually whittling down the
number of unexplained flaps."

This benchmark replays that loop mechanically on the PIM scenario:

1. iteration 0 — a degraded graph missing the configuration-change and
   uplink rules leaves a visible unexplained residue;
2. exploration over the unexplained events surfaces the provisioning
   signature with high support;
3. adding the codified rules back drives the explained fraction to the
   paper's >98%.
"""

import pytest

from repro.apps.pim import PimApp, build_pim_graph
from repro.core import ResultBrowser
from repro.core.engine import EngineConfig, RcaEngine
from repro.core.exploration import co_occurring_signatures, format_exploration
from repro.core.graph import DiagnosisGraph
from repro.core.knowledge import names
from repro.simulation import pim_fortnight
from repro.topology import TopologyParams

#: rules the "initial operator knowledge" lacks
MISSING = {names.PIM_CONFIG_CHANGE, names.UPLINK_PIM_ADJACENCY_CHANGE}


def degraded_graph() -> DiagnosisGraph:
    """The full Fig. 6 graph minus the two to-be-discovered rules."""
    full = build_pim_graph()
    graph = DiagnosisGraph(symptom_event=full.symptom_event, name="pim-initial")
    for rule in full.all_rules():
        if rule.child_event not in MISSING:
            graph.add_rule(rule)
    return graph


@pytest.fixture(scope="module")
def scenario():
    result = pim_fortnight(
        total_changes=400,
        params=TopologyParams(n_pops=5, pers_per_pop=3, customers_per_per=5, seed=107),
        seed=107,
    )
    return result, PimApp.build(result.platform())


def test_sec4a_iterative_rule_learning(scenario, benchmark, console):
    result, app = scenario
    symptoms = app.find_symptoms(result.start, result.end)

    def engine_for(graph):
        services = dict(app.platform.services)
        services["event_library"] = app.events
        return RcaEngine(
            graph, app.events, app.platform.resolver, app.platform.store,
            EngineConfig(services=services),
        )

    # iteration 0: incomplete domain knowledge
    initial = engine_for(degraded_graph())

    def run_initial():
        return initial.diagnose_all(symptoms)

    diagnoses0 = benchmark.pedantic(run_initial, rounds=1, iterations=1)
    browser0 = ResultBrowser(diagnoses0)
    unexplained0 = browser0.unexplained()

    console.emit("\n=== Section IV-A: manual iterative rule learning (PIM) ===")
    console.emit(
        f"iteration 0 (graph missing {len(MISSING)} rules): "
        f"{len(unexplained0)}/{len(browser0)} unexplained "
        f"({100 * browser0.explained_fraction():.1f}% explained)"
    )

    # explore the unexplained residue, as the PIM developer did
    anchors = [d.symptom for d in unexplained0.diagnoses]
    findings = co_occurring_signatures(
        app.platform.store, anchors, window_seconds=120.0
    )
    console.emit("\nexploration over the unexplained events:")
    console.emit(format_exploration(findings, limit=6))
    names_found = {f.name for f in findings if f.support >= 0.05}
    # the provisioning signature is discoverable in the residue
    assert "workflow:provisioning.mvpn_config" in names_found, sorted(names_found)

    # iteration 1: codify the discovered rules (the full Fig. 6 graph)
    final = engine_for(build_pim_graph())
    browser1 = ResultBrowser(final.diagnose_all(symptoms))
    console.emit(
        f"\niteration 1 (rules codified): "
        f"{len(browser1.unexplained())}/{len(browser1)} unexplained "
        f"({100 * browser1.explained_fraction():.1f}% explained, paper: >98%)"
    )

    # the whittling-down effect
    assert len(browser1.unexplained()) < len(unexplained0)
    assert browser1.explained_fraction() > browser0.explained_fraction()
    assert browser1.explained_fraction() >= 0.95
    # the discovered categories now appear in the breakdown
    causes1 = {row.root_cause for row in browser1.breakdown()}
    assert names.PIM_CONFIG_CHANGE in causes1
    assert names.UPLINK_PIM_ADJACENCY_CHANGE in causes1
