"""Service-layer throughput: batch parallelism and result caching.

The paper runs G-RCA as a shared platform serving many applications and
operators concurrently (Sections I, VI).  This benchmark measures the
two service-layer speed claims on the Table IV scenario (~1200 flaps):

* **batch throughput vs worker count** — `parallel_diagnose` must
  return byte-identical diagnoses at every worker count; with >= 2 CPUs
  available, 4 workers must deliver >= 2x the serial throughput (on a
  single-CPU runner the parallel numbers are recorded but not gated —
  no backend can beat the GIL or physics there);
* **cached repeat** — re-running a whole window through the
  :class:`RcaService` must be served from the result cache: zero new
  engine diagnoses and far less wall-clock than the first pass.

Results land in ``BENCH_service.json`` (one key per test) so CI can
archive the measurements per run.
"""

import json
import time
from pathlib import Path

from repro.service.api import RcaService
from repro.service.workers import available_cpus, default_backend, parallel_diagnose

BENCH_FILE = Path("BENCH_service.json")
WORKER_COUNTS = (2, 4)


def _record(key, payload):
    """Merge one test's measurements into the benchmark artifact."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_batch_throughput_vs_worker_count(bgp_outcome, console):
    _result, app, symptoms, _diagnoses = bgp_outcome
    engine = app.engine

    cold = engine.isolated()  # cold private retrieval cache, like a worker
    started = time.perf_counter()
    serial = cold.diagnose_all(symptoms)
    serial_seconds = time.perf_counter() - started

    backend = default_backend()
    runs = {}
    for jobs in WORKER_COUNTS:
        started = time.perf_counter()
        parallel = parallel_diagnose(engine, symptoms, jobs=jobs)
        elapsed = time.perf_counter() - started
        assert parallel == serial  # identical diagnoses at any worker count
        runs[jobs] = {
            "seconds": round(elapsed, 4),
            "speedup": round(serial_seconds / elapsed, 3) if elapsed else 0.0,
        }

    cpus = available_cpus()
    console.emit(
        f"\n=== service batch throughput (bgp_month, {len(symptoms)} symptoms, "
        f"{cpus} CPU(s), backend={backend}) ==="
    )
    console.emit(
        f"serial: {serial_seconds:.2f} s "
        f"({len(symptoms) / serial_seconds:.0f} symptoms/s)"
    )
    for jobs, run in runs.items():
        console.emit(
            f"{jobs} workers: {run['seconds']:.2f} s ({run['speedup']:.2f}x)"
        )

    _record(
        "batch_throughput",
        {
            "scenario": "bgp_month",
            "symptoms": len(symptoms),
            "cpus": cpus,
            "backend": backend,
            "serial_seconds": round(serial_seconds, 4),
            "workers": {str(jobs): run for jobs, run in runs.items()},
        },
    )

    if cpus >= 2:
        # the acceptance gate only binds where parallel speedup is
        # physically possible; a 1-CPU container records numbers only
        assert runs[4]["speedup"] >= 2.0, (
            f"4 workers on {cpus} CPUs delivered only "
            f"{runs[4]['speedup']:.2f}x over serial"
        )
    else:
        console.emit("single CPU: speedup gate skipped (results recorded)")


def test_cached_repeat_run_is_near_free(bgp_outcome, console):
    result, app, symptoms, _diagnoses = bgp_outcome
    service = RcaService(store=result.collector.store, workers=2)
    service.register_app("bgp_flaps", app)
    service.start()
    try:
        started = time.perf_counter()
        first = service.submit_run(
            "bgp_flaps", result.start, result.end, block=True
        ).outcome(timeout=600.0)
        first_seconds = time.perf_counter() - started
        diagnosed = service.metrics.symptoms_diagnosed.value
        assert diagnosed == len(symptoms)

        started = time.perf_counter()
        repeat = service.submit_run(
            "bgp_flaps", result.start, result.end, block=True
        ).outcome(timeout=600.0)
        repeat_seconds = time.perf_counter() - started

        assert repeat == first
        # served entirely from the result cache: no engine re-runs
        assert service.metrics.symptoms_diagnosed.value == diagnosed
        assert service.metrics.cache_hits.value == len(symptoms)
        assert repeat_seconds < first_seconds / 2
    finally:
        service.shutdown(graceful=True, timeout=60.0)

    console.emit(
        f"\n=== service cached repeat (bgp_month, {len(symptoms)} symptoms) ==="
    )
    console.emit(
        f"first run: {first_seconds:.2f} s; cached repeat: "
        f"{repeat_seconds:.3f} s ({first_seconds / repeat_seconds:.0f}x faster, "
        f"hit rate {100 * service.metrics.cache_hit_rate():.1f}%)"
    )
    _record(
        "cached_repeat",
        {
            "scenario": "bgp_month",
            "symptoms": len(symptoms),
            "first_seconds": round(first_seconds, 4),
            "repeat_seconds": round(repeat_seconds, 4),
            "speedup": round(first_seconds / repeat_seconds, 1),
            "hit_rate": round(service.metrics.cache_hit_rate(), 4),
        },
    )
