"""Diagnosis-latency claims from Section III.

Paper numbers (wall clock on the production platform):

* BGP RCA: "the average diagnosis time per symptom event is less than
  5 s";
* CDN RCA: "less than 3 min", dominated by inter-domain (BGP) and
  intra-domain (OSPF) route computation;
* PIM RCA: "similar to the BGP RCA application ... typically less than
  5 s"; a day's worth of events takes 1-2 h.

These are upper bounds from a system querying production databases; the
reproduction runs in-memory and must land far below them — the
benchmark records per-symptom latency and asserts the paper's bounds
with two orders of magnitude to spare.
"""


def test_bgp_diagnosis_latency(bgp_outcome, benchmark, console):
    _result, app, symptoms, _diagnoses = bgp_outcome
    app.engine.clear_cache()
    sample = symptoms[: min(100, len(symptoms))]
    index = {"i": 0}

    def diagnose_one():
        symptom = sample[index["i"] % len(sample)]
        index["i"] += 1
        return app.engine.diagnose(symptom)

    benchmark(diagnose_one)
    mean = benchmark.stats["mean"]
    console.emit(
        f"\nBGP RCA per-symptom diagnosis: {1000 * mean:.2f} ms "
        "(paper bound: < 5 s)"
    )
    assert mean < 5.0


def test_cdn_diagnosis_latency(cdn_outcome, benchmark, console):
    _result, app, symptoms, _diagnoses = cdn_outcome
    app.engine.clear_cache()
    app.platform.paths.ospf._spf_cache.clear()
    sample = symptoms[: min(50, len(symptoms))]
    index = {"i": 0}

    def diagnose_one():
        symptom = sample[index["i"] % len(sample)]
        index["i"] += 1
        return app.engine.diagnose(symptom)

    benchmark(diagnose_one)
    mean = benchmark.stats["mean"]
    console.emit(
        f"CDN RCA per-symptom diagnosis: {1000 * mean:.2f} ms "
        "(paper bound: < 3 min, dominated by route computation)"
    )
    assert mean < 180.0


def test_pim_diagnosis_latency(pim_outcome, benchmark, console):
    _result, app, symptoms, _diagnoses = pim_outcome
    app.engine.clear_cache()
    sample = symptoms[: min(100, len(symptoms))]
    index = {"i": 0}

    def diagnose_one():
        symptom = sample[index["i"] % len(sample)]
        index["i"] += 1
        return app.engine.diagnose(symptom)

    benchmark(diagnose_one)
    mean = benchmark.stats["mean"]
    console.emit(
        f"PIM RCA per-symptom diagnosis: {1000 * mean:.2f} ms "
        "(paper bound: < 5 s)"
    )
    assert mean < 5.0
