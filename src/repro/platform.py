"""Platform assembly: wire G-RCA from a topology plus collected data.

The deployed system builds its service-dependency state purely from
*proactively collected* feeds (Section I): OSPF paths from the route
monitor, BGP egresses from the reflector feed, containment from config
snapshots, source-to-ingress mappings from NetFlow.  This module does
the same wiring from the Data Collector's store, producing the
:class:`GrcaPlatform` bundle every RCA application starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .collector import DataCollector
from .collector.sources.bgpmon import update_log_from_store
from .collector.sources.ospfmon import weight_history_from_store
from .core.knowledge import KnowledgeLibrary
from .core.spatial import LocationResolver
from .routing.bgp import BgpEmulator
from .routing.ospf import OspfSimulator
from .routing.paths import IngressMap, PathService
from .topology.builder import BuiltTopology
from .topology.config_parser import ConfigArchive, snapshot_network


@dataclass
class GrcaPlatform:
    """Everything an RCA application needs, wired together."""

    topology: BuiltTopology
    collector: DataCollector
    paths: PathService
    resolver: LocationResolver
    knowledge: KnowledgeLibrary
    #: substrate handles passed into retrieval contexts
    services: Dict[str, Any] = field(default_factory=dict)

    @property
    def store(self):
        return self.collector.store

    @property
    def health(self):
        """The collector's feed-health registry (for engine configs)."""
        return self.collector.health

    def serve(
        self,
        apps: Dict[str, Any],
        workers: int = 4,
        start: bool = True,
        incidents: Any = False,
        incident_gap: float = 3600.0,
        **service_options: Any,
    ):
        """Wrap this platform in a running :class:`RcaService`.

        ``apps`` maps service names to built application objects (e.g.
        ``{"bgp_flaps": BgpFlapApp.build(platform)}``).  Extra keyword
        options go to the :class:`~repro.service.RcaService`
        constructor (queue depth, cache capacity, metrics, clock).

        ``incidents=True`` attaches incident tracking: every diagnosis
        the workers produce is folded live into an
        :class:`~repro.incident.IncidentAggregator` (dedupe window
        ``incident_gap`` seconds) persisting to an
        :class:`~repro.incident.IncidentStore` exposed as
        ``service.incidents``.  Pass an ``IncidentStore`` instead of
        ``True`` to choose the backing store (e.g.
        ``IncidentStore.sqlite(directory)`` for durability).
        """
        from .service import RcaService  # local import: service is optional wiring

        incident_store = aggregator = None
        if incidents:
            from .incident import IncidentAggregator, IncidentStore

            incident_store = (
                incidents if isinstance(incidents, IncidentStore)
                else IncidentStore()
            )
            aggregator = IncidentAggregator(
                gap_seconds=incident_gap, sink=incident_store.record
            )
            service_options.setdefault("incident_sink", aggregator.observe)
        service = RcaService(
            store=self.store, health=self.health, workers=workers, **service_options
        )
        service.incidents = incident_store
        service.incident_aggregator = aggregator
        for name, app in apps.items():
            service.register_app(name, app)
        if start:
            service.start()
        return service

    def serve_sharded(
        self,
        apps: Dict[str, Any],
        shards: int = 2,
        workers: int = 2,
        start: bool = True,
        incidents: Any = False,
        incident_gap: float = 3600.0,
        **service_options: Any,
    ):
        """Wrap this platform in a :class:`~repro.service.http.ShardRouter`.

        Builds ``shards`` independent :class:`~repro.service.RcaService`
        instances (each with its own ``workers``-thread pool) over this
        platform's shared store and health registry, registers every app
        on all of them, and returns the router.  Hand it to
        :class:`~repro.service.http.RcaGateway` for the HTTP front end.

        ``incidents=True`` (or an :class:`~repro.incident.IncidentStore`)
        wires **one** shared aggregator + store across every shard's
        ``incident_sink`` — incidents dedupe platform-wide, not per
        shard — exposed as ``router.incidents`` and served by the
        gateway's ``GET /v1/incidents`` routes.
        """
        from .service.http import ShardRouter, build_shards

        incident_store = aggregator = None
        if incidents:
            from .incident import IncidentAggregator, IncidentStore

            incident_store = (
                incidents if isinstance(incidents, IncidentStore)
                else IncidentStore()
            )
            aggregator = IncidentAggregator(
                gap_seconds=incident_gap, sink=incident_store.record
            )
            service_options.setdefault("incident_sink", aggregator.observe)
        router = ShardRouter(
            build_shards(
                self.store,
                health=self.health,
                shards=shards,
                workers=workers,
                **service_options,
            )
        )
        router.incidents = incident_store
        router.incident_aggregator = aggregator
        for name, app in apps.items():
            router.register_app(name, app)
        if start:
            router.start()
        return router

    def refresh_routing(self) -> None:
        """Rebuild routing state from the (grown) store.

        Streaming ingestion appends to the OSPFMon / BGP-monitor /
        NetFlow tables after the platform was wired; this re-derives the
        weight history, the BGP update log and the ingress map so
        subsequent spatial expansions see the new state.
        """
        history = weight_history_from_store(self.store)
        self.paths.ospf.replace_history(history)
        self.services["weight_history"] = self.paths.ospf.history
        if self.paths.bgp is not None:
            log = update_log_from_store(self.store)
            self.paths.bgp.log = log
            self.paths.bgp._decision_cache.clear()
            self.services["bgp_log"] = log
        for record in self.store.table("netflow").scan():
            self.paths.ingress_map.learn(record["source"], record["ingress_router"])

    @classmethod
    def from_collector(
        cls,
        topology: BuiltTopology,
        collector: DataCollector,
        config_time: float = 0.0,
        configs: Optional[ConfigArchive] = None,
        knowledge: Optional[KnowledgeLibrary] = None,
    ) -> "GrcaPlatform":
        """Reconstruct routing/config state from the collected feeds."""
        store = collector.store
        history = weight_history_from_store(store)
        ospf = OspfSimulator(topology.network, history)
        bgp_log = update_log_from_store(store)
        bgp = BgpEmulator(bgp_log, ospf)
        if configs is None:
            configs = snapshot_network(topology, config_time)
        ingress_map = IngressMap()
        for record in store.table("netflow").scan():
            ingress_map.learn(record["source"], record["ingress_router"])
        for server in topology.network.cdn_servers.values():
            ingress_map.learn(server.name, server.attached_router)
        paths = PathService(
            network=topology.network,
            ospf=ospf,
            bgp=bgp,
            configs=configs,
            ingress_map=ingress_map,
        )
        resolver = LocationResolver(paths)
        loopbacks = {
            router.loopback: router.name
            for router in topology.network.routers.values()
            if router.loopback
        }
        services = {
            "network": topology.network,
            "weight_history": ospf.history,
            "bgp_log": bgp_log,
            "loopbacks": loopbacks,
            "paths": paths,
        }
        return cls(
            topology=topology,
            collector=collector,
            paths=paths,
            resolver=resolver,
            knowledge=knowledge or KnowledgeLibrary(),
            services=services,
        )
