"""The Generic RCA Engine (Fig. 1).

For each symptom event instance the engine walks the application's
diagnosis graph breadth-first: for every rule out of a matched node it
retrieves candidate diagnostic instances from the store (bounded by the
temporal rule's search window), keeps those that join temporally *and*
spatially with the matched parent instance, and recurses.  The collected
evidence then goes to the reasoning module (rule-based by default) to
pick the root cause(s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..collector.health import HealthRegistry, canonical_source
from ..collector.store import DataStore
from .events import EventInstance, EventLibrary, RetrievalContext
from .graph import DiagnosisGraph
from .reasoning.rule_based import (
    UNKNOWN,
    UNKNOWN_DEGRADED,
    UNKNOWN_NO_EVIDENCE,
    EvidenceGap,
    MatchedEvidence,
    RuleBasedResult,
    assess_confidence,
    reason,
)
from .spatial import LocationResolver


@dataclass
class Diagnosis:
    """Everything the engine concluded about one symptom instance."""

    symptom: EventInstance
    evidence: List[MatchedEvidence]
    result: RuleBasedResult
    #: evidence feeds found impaired inside retrieval windows
    gaps: List[EvidenceGap] = field(default_factory=list)
    #: 1.0 with fully healthy evidence feeds, discounted per gap
    confidence: float = 1.0
    #: human-readable degraded-evidence notes (one per gap)
    caveats: List[str] = field(default_factory=list)

    @property
    def primary_cause(self) -> str:
        return self.result.primary

    @property
    def root_causes(self) -> List[str]:
        return self.result.root_causes

    @property
    def is_explained(self) -> bool:
        return bool(self.result.root_causes)

    @property
    def is_degraded(self) -> bool:
        """True when some evidence feed was impaired during correlation."""
        return bool(self.gaps)

    @property
    def annotated_cause(self) -> str:
        """The primary cause with ``Unknown`` split by evidence health.

        ``Unknown (no evidence found)``: feeds were healthy and carried
        nothing — the paper's genuine Unknown.  ``Unknown (evidence
        unavailable)``: a feed that could have carried the deciding
        evidence was lagging, degraded or down.
        """
        if self.is_explained:
            return self.primary_cause
        return UNKNOWN_DEGRADED if self.gaps else UNKNOWN_NO_EVIDENCE

    def evidence_for(self, event_name: str) -> List[MatchedEvidence]:
        """Matched evidence items for one diagnostic event."""
        return [e for e in self.evidence if e.rule.child_event == event_name]

    def explain(self) -> str:
        """Human-readable trace for the Result Browser's detail pane."""
        lines = [f"symptom: {self.symptom}"]
        for item in sorted(self.evidence, key=lambda e: e.depth):
            marker = "*" if item.rule.child_event in self.result.root_causes else " "
            lines.append(
                f" {marker} depth {item.depth} priority {item.rule.priority:>4} "
                f"{item.rule.parent_event} -> {item.instance}"
            )
        if self.is_explained:
            lines.append(f"root cause: {', '.join(self.root_causes)}")
        else:
            lines.append(f"root cause: {self.annotated_cause}")
        if self.gaps:
            lines.append(f"confidence: {self.confidence:.2f}")
            for caveat in self.caveats:
                lines.append(f" ! {caveat}")
        return "\n".join(lines)


@dataclass
class EngineConfig:
    """Tunables shared by all diagnoses of one engine instance."""

    #: per-application retrieval parameters (thresholds etc.)
    params: Dict[str, Any] = field(default_factory=dict)
    #: substrate handles passed into retrieval contexts
    services: Dict[str, Any] = field(default_factory=dict)
    #: cap on matched instances per (rule, parent instance) to bound work
    max_matches_per_rule: int = 50
    #: feed-health registry consulted for evidence gaps (None disables)
    health: Optional[HealthRegistry] = None


class RcaEngine:
    """Correlation + reasoning over one diagnosis graph."""

    def __init__(
        self,
        graph: DiagnosisGraph,
        library: EventLibrary,
        resolver: LocationResolver,
        store: DataStore,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.graph = graph
        self.library = library
        self.resolver = resolver
        self.store = store
        self.config = config or EngineConfig()
        self._missing = [
            name for name in graph.events() if name not in library
        ]
        if self._missing:
            raise KeyError(
                f"diagnosis graph references undefined events: {self._missing}"
            )
        # retrieval cache: (event name, window) -> instances
        self._retrieval_cache: Dict[Tuple[str, float, float], List[EventInstance]] = {}

    # ------------------------------------------------------------------

    def diagnose(self, symptom: EventInstance) -> Diagnosis:
        """Correlate and reason about one symptom instance."""
        if symptom.name != self.graph.symptom_event:
            raise ValueError(
                f"engine diagnoses {self.graph.symptom_event!r} symptoms, "
                f"got {symptom.name!r}"
            )
        evidence, gaps = self._correlate(symptom)
        result = reason(self.graph, evidence)
        confidence, caveats = assess_confidence(gaps)
        return Diagnosis(
            symptom=symptom,
            evidence=evidence,
            result=result,
            gaps=gaps,
            confidence=confidence,
            caveats=caveats,
        )

    def diagnose_all(self, symptoms: Iterable[EventInstance]) -> List[Diagnosis]:
        """Diagnose a sequence of symptom instances in order."""
        return [self.diagnose(symptom) for symptom in symptoms]

    # ------------------------------------------------------------------

    def _correlate(
        self, symptom: EventInstance
    ) -> Tuple[List[MatchedEvidence], List[EvidenceGap]]:
        evidence: List[MatchedEvidence] = []
        gaps: List[EvidenceGap] = []
        gap_keys: set = set()
        # frontier entries: (event name, matched instance, depth)
        frontier: List[Tuple[str, EventInstance, int]] = [
            (self.graph.symptom_event, symptom, 0)
        ]
        seen: set = set()
        while frontier:
            event_name, parent_instance, depth = frontier.pop()
            for rule in self.graph.rules_from(event_name):
                self._note_gaps(rule, parent_instance, gaps, gap_keys)
                matches = self._match_rule(rule, parent_instance)
                for instance in matches:
                    key = (rule.child_event, instance)
                    item = MatchedEvidence(
                        rule=rule,
                        parent_instance=parent_instance,
                        instance=instance,
                        depth=depth + 1,
                    )
                    evidence.append(item)
                    if key not in seen:
                        seen.add(key)
                        frontier.append((rule.child_event, instance, depth + 1))
        return evidence, gaps

    def _note_gaps(
        self,
        rule,
        parent_instance: EventInstance,
        gaps: List[EvidenceGap],
        gap_keys: set,
    ) -> None:
        """Record impaired-feed overlaps with this rule's search window.

        A retrieval that comes back empty while the backing feed was
        LAGGING/DEGRADED/DOWN is indistinguishable from genuine absence
        of the diagnostic event, so every overlap is recorded and later
        discounted by :func:`assess_confidence`.
        """
        registry = self.config.health
        if registry is None:
            return
        source = canonical_source(self.library.get(rule.child_event).data_source)
        if source is None:
            return
        lo, hi = rule.temporal.search_window(parent_instance.interval)
        for interval in registry.impaired_intervals(source, lo, hi):
            key = (source, rule.child_event, interval.start)
            if key in gap_keys:
                continue
            gap_keys.add(key)
            end = hi if interval.end is None else min(hi, interval.end)
            gaps.append(
                EvidenceGap(
                    source=source,
                    state=interval.state,
                    start=max(lo, interval.start),
                    end=end,
                    event=rule.child_event,
                    parent_event=rule.parent_event,
                )
            )

    def _match_rule(self, rule, parent_instance: EventInstance) -> List[EventInstance]:
        window = rule.temporal.search_window(parent_instance.interval)
        candidates = self._retrieve(rule.child_event, window)
        matched = []
        for candidate in candidates:
            if not rule.temporal.joined(parent_instance.interval, candidate.interval):
                continue
            if not rule.spatial.joined(
                self.resolver,
                parent_instance.location,
                candidate.location,
                parent_instance.start,
            ):
                continue
            matched.append(candidate)
            if len(matched) >= self.config.max_matches_per_rule:
                break
        return matched

    def _retrieve(
        self, event_name: str, window: Tuple[float, float]
    ) -> List[EventInstance]:
        # bucket windows to 60 s so nearby symptoms share cache entries
        bucket = 60.0
        lo = window[0] - (window[0] % bucket)
        hi = window[1] + (bucket - window[1] % bucket)
        key = (event_name, lo, hi)
        if key not in self._retrieval_cache:
            context = RetrievalContext(
                store=self.store,
                start=lo,
                end=hi,
                params=self.config.params,
                services=self.config.services,
            )
            self._retrieval_cache[key] = self.library.get(event_name).retrieve(context)
        # the retrieval covers a superset window; exact temporal checks
        # happen in _match_rule
        return [
            instance
            for instance in self._retrieval_cache[key]
            if instance.end >= window[0] and instance.start <= window[1]
        ]

    def clear_cache(self) -> None:
        """Drop all cached retrievals (e.g. after new data lands)."""
        self._retrieval_cache.clear()
