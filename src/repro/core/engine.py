"""The Generic RCA Engine (Fig. 1).

For each symptom event instance the engine walks the application's
diagnosis graph breadth-first (genuinely level-order): for every rule
out of a matched node it retrieves candidate diagnostic instances from
the store (bounded by the temporal rule's search window), keeps those
that join temporally *and* spatially with the matched parent instance,
and recurses.  Before each frontier level is evaluated, a batched
retrieval planner (:meth:`RcaEngine._plan_level`) coalesces the
overlapping windows sibling rules are about to request per event, so
one store round-trip serves the whole level instead of one per (rule,
parent).  The collected evidence then goes to the reasoning module
(rule-based by default) to pick the root cause(s).

Read observation (``store-query`` tracing spans and the footprint
records the service cache invalidates on) rides the single
:class:`~repro.collector.store.ReadObserver` seam rather than dedicated
proxy classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from typing import Set

from ..collector.health import HealthRegistry, canonical_source
from ..collector.store import (
    DataStore,
    FootprintObserver,
    ObservedStore,
    ReadObserver,
    TraceObserver,
)
from ..obs.trace import NULL_TRACER, Span, Tracer
from .events import EventInstance, EventLibrary, RetrievalContext
from .graph import DiagnosisGraph
from .reasoning.rule_based import (
    UNKNOWN,
    UNKNOWN_DEGRADED,
    UNKNOWN_NO_EVIDENCE,
    EvidenceGap,
    MatchedEvidence,
    RuleBasedResult,
    assess_confidence,
    reason,
)
from .spatial import LocationResolver

#: One recorded store read: (table name, window start, window end).
#: ``-inf``/``inf`` bounds mean an unbounded scan of that table.
FootprintEntry = Tuple[str, float, float]


def merge_footprint(reads: Iterable[FootprintEntry]) -> Tuple[FootprintEntry, ...]:
    """Coalesce raw read records into per-table disjoint windows."""
    by_table: Dict[str, List[Tuple[float, float]]] = {}
    for table, lo, hi in reads:
        by_table.setdefault(table, []).append((lo, hi))
    merged: List[FootprintEntry] = []
    for table in sorted(by_table):
        windows = sorted(by_table[table])
        current_lo, current_hi = windows[0]
        for lo, hi in windows[1:]:
            if lo <= current_hi:
                current_hi = max(current_hi, hi)
            else:
                merged.append((table, current_lo, current_hi))
                current_lo, current_hi = lo, hi
        merged.append((table, current_lo, current_hi))
    return tuple(merged)


def evidence_sources(graph: DiagnosisGraph, library: EventLibrary) -> Set[str]:
    """Collector feeds backing any event in a diagnosis graph.

    Shared by the streaming engine (watermark deferral) and the service
    scheduler (health-aware job priority): both need to know which
    ingest feeds could carry this application's evidence.
    """
    sources: Set[str] = set()
    for name in graph.events():
        source = canonical_source(library.get(name).data_source)
        if source is not None:
            sources.add(source)
    return sources


#: Retrieval windows are rounded to this bucket so nearby symptoms and
#: sibling rules share retrieval-cache entries.
RETRIEVAL_BUCKET = 60.0


def bucket_window(
    window: Tuple[float, float], bucket: float = RETRIEVAL_BUCKET
) -> Tuple[float, float]:
    """Round a window outward to bucket boundaries.

    The low edge floors, the high edge ceils; a bound already on a
    boundary stays put (no phantom extra bucket), and Python's floor
    modulo keeps the rounding direction correct for negative
    timestamps: ``(-10, -10) -> (-60, 0)`` is a superset, never a
    shifted window.
    """
    lo = window[0] - (window[0] % bucket)
    hi = window[1] + ((-window[1]) % bucket)
    return lo, hi


def coalesce_windows(
    windows: Iterable[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Merge overlapping or touching windows into disjoint covers."""
    ordered = sorted(windows)
    if not ordered:
        return []
    merged = [ordered[0]]
    for lo, hi in ordered[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


@dataclass
class Diagnosis:
    """Everything the engine concluded about one symptom instance."""

    symptom: EventInstance
    evidence: List[MatchedEvidence]
    result: RuleBasedResult
    #: evidence feeds found impaired inside retrieval windows
    gaps: List[EvidenceGap] = field(default_factory=list)
    #: 1.0 with fully healthy evidence feeds, discounted per gap
    confidence: float = 1.0
    #: human-readable degraded-evidence notes (one per gap)
    caveats: List[str] = field(default_factory=list)
    #: store windows read while correlating, per table (merged); the
    #: service result cache invalidates on late records landing inside
    footprint: Tuple[FootprintEntry, ...] = ()
    #: span tree of this diagnosis when it was traced (``None`` when
    #: tracing was off).  Excluded from equality: a traced and an
    #: untraced run of the same symptom are the *same* diagnosis.
    trace: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def primary_cause(self) -> str:
        return self.result.primary

    @property
    def root_causes(self) -> List[str]:
        return self.result.root_causes

    @property
    def is_explained(self) -> bool:
        return bool(self.result.root_causes)

    @property
    def is_degraded(self) -> bool:
        """True when some evidence feed was impaired during correlation."""
        return bool(self.gaps)

    @property
    def annotated_cause(self) -> str:
        """The primary cause with ``Unknown`` split by evidence health.

        ``Unknown (no evidence found)``: feeds were healthy and carried
        nothing — the paper's genuine Unknown.  ``Unknown (evidence
        unavailable)``: a feed that could have carried the deciding
        evidence was lagging, degraded or down.
        """
        if self.is_explained:
            return self.primary_cause
        return UNKNOWN_DEGRADED if self.gaps else UNKNOWN_NO_EVIDENCE

    def evidence_for(self, event_name: str) -> List[MatchedEvidence]:
        """Matched evidence items for one diagnostic event."""
        return [e for e in self.evidence if e.rule.child_event == event_name]

    def to_json(self) -> Dict[str, Any]:
        """This diagnosis as a JSON-ready dict (``grca-diagnosis/1``).

        One serialization shared by the HTTP gateway's job responses
        and offline exports; :meth:`from_json` rebuilds an equal
        diagnosis (the attached trace rides along when present but is
        excluded from equality, as always).
        """
        from .serialize import diagnosis_to_dict

        return diagnosis_to_dict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Diagnosis":
        """Rebuild a diagnosis from its :meth:`to_json` form."""
        from .serialize import diagnosis_from_dict

        return diagnosis_from_dict(data)

    def explain(self) -> str:
        """Human-readable trace for the Result Browser's detail pane."""
        lines = [f"symptom: {self.symptom}"]
        for item in sorted(self.evidence, key=lambda e: e.depth):
            marker = "*" if item.rule.child_event in self.result.root_causes else " "
            lines.append(
                f" {marker} depth {item.depth} priority {item.rule.priority:>4} "
                f"{item.rule.parent_event} -> {item.instance}"
            )
        if self.is_explained:
            lines.append(f"root cause: {', '.join(self.root_causes)}")
        else:
            lines.append(f"root cause: {self.annotated_cause}")
        if self.gaps:
            lines.append(f"confidence: {self.confidence:.2f}")
            for caveat in self.caveats:
                lines.append(f" ! {caveat}")
        return "\n".join(lines)


@dataclass
class EngineConfig:
    """Tunables shared by all diagnoses of one engine instance."""

    #: per-application retrieval parameters (thresholds etc.)
    params: Dict[str, Any] = field(default_factory=dict)
    #: substrate handles passed into retrieval contexts
    services: Dict[str, Any] = field(default_factory=dict)
    #: cap on matched instances per (rule, parent instance) to bound work
    max_matches_per_rule: int = 50
    #: feed-health registry consulted for evidence gaps (None disables)
    health: Optional[HealthRegistry] = None


class RcaEngine:
    """Correlation + reasoning over one diagnosis graph."""

    def __init__(
        self,
        graph: DiagnosisGraph,
        library: EventLibrary,
        resolver: LocationResolver,
        store: DataStore,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.graph = graph
        self.library = library
        self.resolver = resolver
        self.store = store
        self.config = config or EngineConfig()
        self._missing = [
            name for name in graph.events() if name not in library
        ]
        if self._missing:
            raise KeyError(
                f"diagnosis graph references undefined events: {self._missing}"
            )
        # retrieval cache: (event name, cover window) -> instances
        self._retrieval_cache: Dict[Tuple[str, float, float], List[EventInstance]] = {}
        # per cache entry: the store reads that produced it
        self._retrieval_reads: Dict[
            Tuple[str, float, float], frozenset
        ] = {}
        # per event: the cached cover windows, for containment lookups
        self._covers: Dict[str, List[Tuple[float, float]]] = {}
        # accumulator active while one diagnose() call is correlating
        self._active_reads: Optional[set] = None
        #: last store revision this engine's retrieval cache was synced
        #: to (maintained by the owner — service workers use it to drop
        #: exactly the cached windows a late record landed in)
        self.synced_revision: Optional[int] = None

    # ------------------------------------------------------------------

    def diagnose(
        self,
        symptom: EventInstance,
        tracer: Optional[Tracer] = None,
        cancel: Optional[Any] = None,
        max_depth: Optional[int] = None,
    ) -> Diagnosis:
        """Correlate and reason about one symptom instance.

        ``tracer`` opts this diagnosis into span recording: the walk
        gets one ``diagnose`` span with ``node``/``rule``/``retrieve``/
        ``store-query``/``temporal-join``/``spatial-join``/``reason``
        children, and the finished subtree is attached as
        :attr:`Diagnosis.trace`.  With the default ``None`` the no-op
        tracer is used and the hot path is unchanged.

        ``cancel`` is a cooperative cancellation token (anything with a
        ``check()`` that raises to stop — see
        :class:`repro.service.policy.CancellationToken`).  It is checked
        at stage boundaries: each frontier level, each node visit, and
        before every store fetch, so a timed-out diagnosis stops within
        one retrieval instead of running to completion.  ``max_depth``
        caps the exploration depth (evidence *at* the cap is still
        collected; nodes there are not expanded) — the service uses it
        to trim work during brownout.
        """
        if symptom.name != self.graph.symptom_event:
            raise ValueError(
                f"engine diagnoses {self.graph.symptom_event!r} symptoms, "
                f"got {symptom.name!r}"
            )
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span(
            "diagnose", label=symptom.name, symptom=str(symptom),
            graph=self.graph.name,
        ) as root:
            self._active_reads = set()
            try:
                evidence, gaps = self._correlate(
                    symptom, tracer, cancel=cancel, max_depth=max_depth
                )
                footprint = merge_footprint(self._active_reads)
            finally:
                self._active_reads = None
            with tracer.span("reason", label=symptom.name) as span:
                result = reason(self.graph, evidence)
                confidence, caveats = assess_confidence(gaps)
                span.annotate(
                    evidence=len(evidence),
                    root_causes=list(result.root_causes),
                    priority=result.priority,
                    gaps=len(gaps),
                )
            root.annotate(evidence=len(evidence), cause=result.primary)
        return Diagnosis(
            symptom=symptom,
            evidence=evidence,
            result=result,
            gaps=gaps,
            confidence=confidence,
            caveats=caveats,
            footprint=footprint,
            trace=root if tracer.enabled else None,
        )

    def diagnose_all(
        self, symptoms: Iterable[EventInstance], traced: bool = False
    ) -> List[Diagnosis]:
        """Diagnose a sequence of symptom instances in order.

        ``traced=True`` gives every symptom its own fresh
        :class:`~repro.obs.Tracer`, so each returned diagnosis carries
        an independent span tree.
        """
        if not traced:
            return [self.diagnose(symptom) for symptom in symptoms]
        return [self.diagnose(symptom, tracer=Tracer()) for symptom in symptoms]

    # ------------------------------------------------------------------

    def _correlate(
        self,
        symptom: EventInstance,
        tracer=NULL_TRACER,
        cancel: Optional[Any] = None,
        max_depth: Optional[int] = None,
    ) -> Tuple[List[MatchedEvidence], List[EvidenceGap]]:
        evidence: List[MatchedEvidence] = []
        gaps: List[EvidenceGap] = []
        gap_keys: set = set()
        # level entries: (event name, matched instance, depth); the walk
        # is genuinely level-order so the planner can see every window a
        # whole frontier level is about to request before any is issued
        level: List[Tuple[str, EventInstance, int]] = [
            (self.graph.symptom_event, symptom, 0)
        ]
        seen: set = set()
        while level:
            if cancel is not None:
                cancel.check()
            plan = self._plan_level(level)
            next_level: List[Tuple[str, EventInstance, int]] = []
            for event_name, parent_instance, depth in level:
                if cancel is not None:
                    cancel.check()
                # one span per graph-node visit: the trace mirrors the walk
                with tracer.span("node", label=event_name, depth=depth) as node_span:
                    matched_here = 0
                    for rule in self.graph.rules_from(event_name):
                        gaps_before = len(gaps)
                        self._note_gaps(rule, parent_instance, gaps, gap_keys)
                        if len(gaps) > gaps_before:
                            node_span.count("evidence_gaps", len(gaps) - gaps_before)
                        matches = self._match_rule(
                            rule, parent_instance, tracer, plan, cancel
                        )
                        matched_here += len(matches)
                        for instance in matches:
                            key = (rule.child_event, instance)
                            item = MatchedEvidence(
                                rule=rule,
                                parent_instance=parent_instance,
                                instance=instance,
                                depth=depth + 1,
                            )
                            evidence.append(item)
                            if key not in seen:
                                seen.add(key)
                                if max_depth is None or depth + 1 < max_depth:
                                    next_level.append(
                                        (rule.child_event, instance, depth + 1)
                                    )
                    node_span.annotate(matched=matched_here)
            level = next_level
        return evidence, gaps

    def _plan_level(
        self, level: List[Tuple[str, EventInstance, int]]
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Coalesce the retrieval windows one frontier level will want.

        Sibling rules (and sibling parents) frequently request
        overlapping windows of the same diagnostic event; issuing them
        one-by-one means near-duplicate store round-trips.  This pass
        collects every (child event, bucketed search window) the level's
        rules are about to ask for, drops the ones an existing cache
        cover already satisfies, and merges the rest into per-event
        disjoint cover windows.  The first retrieval of an event at this
        level then fetches its whole cover; the siblings hit the cache.

        Only the *prefetch* window widens — temporal/spatial joins still
        filter against each rule's exact window, so matches are
        unchanged except where a wider fetch makes boundary-straddling
        retrievals (e.g. flap pairing) more complete.
        """
        wants: Dict[str, List[Tuple[float, float]]] = {}
        for event_name, parent_instance, _depth in level:
            for rule in self.graph.rules_from(event_name):
                window = bucket_window(
                    rule.temporal.search_window(parent_instance.interval)
                )
                if self._find_cover(rule.child_event, window) is None:
                    wants.setdefault(rule.child_event, []).append(window)
        return {
            event_name: coalesce_windows(windows)
            for event_name, windows in wants.items()
        }

    def _find_cover(
        self, event_name: str, window: Tuple[float, float]
    ) -> Optional[Tuple[float, float]]:
        """A cached cover window containing ``window``, if any."""
        for lo, hi in self._covers.get(event_name, ()):
            if lo <= window[0] and window[1] <= hi:
                return lo, hi
        return None

    def _note_gaps(
        self,
        rule,
        parent_instance: EventInstance,
        gaps: List[EvidenceGap],
        gap_keys: set,
    ) -> None:
        """Record impaired-feed overlaps with this rule's search window.

        A retrieval that comes back empty while the backing feed was
        LAGGING/DEGRADED/DOWN is indistinguishable from genuine absence
        of the diagnostic event, so every overlap is recorded and later
        discounted by :func:`assess_confidence`.
        """
        registry = self.config.health
        if registry is None:
            return
        source = canonical_source(self.library.get(rule.child_event).data_source)
        if source is None:
            return
        lo, hi = rule.temporal.search_window(parent_instance.interval)
        for interval in registry.impaired_intervals(source, lo, hi):
            key = (source, rule.child_event, interval.start)
            if key in gap_keys:
                continue
            gap_keys.add(key)
            end = hi if interval.end is None else min(hi, interval.end)
            gaps.append(
                EvidenceGap(
                    source=source,
                    state=interval.state,
                    start=max(lo, interval.start),
                    end=end,
                    event=rule.child_event,
                    parent_event=rule.parent_event,
                )
            )

    def _match_rule(
        self,
        rule,
        parent_instance: EventInstance,
        tracer=NULL_TRACER,
        plan=None,
        cancel=None,
    ) -> List[EventInstance]:
        window = rule.temporal.search_window(parent_instance.interval)
        if not tracer.enabled:
            # hot path: no spans, no counters, the original tight loop.
            # One batch join per (rule, parent): the symptom location is
            # expanded at most once, lazily, instead of per candidate.
            candidates = self._retrieve(
                rule.child_event, window, plan=plan, cancel=cancel
            )
            batch = rule.spatial.batch(
                self.resolver, parent_instance.location, parent_instance.start
            )
            matched = []
            for candidate in candidates:
                if not rule.temporal.joined(
                    parent_instance.interval, candidate.interval
                ):
                    continue
                if not batch.joined(candidate.location):
                    continue
                matched.append(candidate)
                if len(matched) >= self.config.max_matches_per_rule:
                    break
            return matched
        return self._match_rule_traced(
            rule, parent_instance, tracer, window, plan, cancel
        )

    def _match_rule_traced(
        self, rule, parent_instance: EventInstance, tracer, window, plan=None,
        cancel=None,
    ) -> List[EventInstance]:
        """Traced twin of :meth:`_match_rule`'s loop.

        Splits the interleaved temporal-then-spatial filter into two
        timed passes so each join kind gets its own span; the matched
        set is identical (the temporal filter preserves candidate
        order and the spatial pass applies the same cap).
        """
        label = f"{rule.parent_event} -> {rule.child_event}"
        with tracer.span(
            "rule",
            label=label,
            priority=rule.priority,
            temporal=rule.temporal.describe(),
            spatial=rule.spatial.describe(),
            window=[window[0], window[1]],
        ) as rule_span:
            candidates = self._retrieve(
                rule.child_event, window, tracer, plan, cancel
            )
            with tracer.span("temporal-join", label=label) as span:
                survivors = [
                    candidate
                    for candidate in candidates
                    if rule.temporal.joined(
                        parent_instance.interval, candidate.interval, trace=tracer
                    )
                ]
                span.annotate(candidates=len(candidates), joined=len(survivors))
            matched: List[EventInstance] = []
            with tracer.span("spatial-join", label=label) as span:
                batch = rule.spatial.batch(
                    self.resolver,
                    parent_instance.location,
                    parent_instance.start,
                    trace=tracer,
                )
                for candidate in survivors:
                    if not batch.joined(candidate.location):
                        continue
                    matched.append(candidate)
                    if len(matched) >= self.config.max_matches_per_rule:
                        break
                span.annotate(candidates=len(survivors), joined=len(matched))
            rule_span.annotate(matched=len(matched))
        return matched

    def _retrieve(
        self,
        event_name: str,
        window: Tuple[float, float],
        tracer=NULL_TRACER,
        plan: Optional[Dict[str, List[Tuple[float, float]]]] = None,
        cancel=None,
    ) -> List[EventInstance]:
        # bucket windows to 60 s so nearby symptoms share cache entries
        bucketed = bucket_window(window)
        # prefer an already-cached cover; else the level plan's
        # coalesced cover for this event; else the bucketed window
        cover = self._find_cover(event_name, bucketed)
        if cover is None and plan:
            for planned in plan.get(event_name, ()):
                if planned[0] <= bucketed[0] and bucketed[1] <= planned[1]:
                    cover = planned
                    break
        if cover is None:
            cover = bucketed
        key = (event_name, cover[0], cover[1])
        with tracer.span("retrieve", label=event_name) as span:
            cached = key in self._retrieval_cache
            if not cached:
                # the store round-trip is the expensive stage; a job past
                # its deadline stops here instead of fetching more data
                if cancel is not None:
                    cancel.check()
                reads: set = set()
                observers: List[ReadObserver] = [FootprintObserver(reads.add)]
                if tracer.enabled:
                    observers.insert(0, TraceObserver(tracer))
                context = RetrievalContext(
                    store=ObservedStore(self.store, observers),
                    start=cover[0],
                    end=cover[1],
                    params=self.config.params,
                    services=self.config.services,
                )
                self._retrieval_cache[key] = self.library.get(event_name).retrieve(
                    context
                )
                self._retrieval_reads[key] = frozenset(reads)
                self._covers.setdefault(event_name, []).append(cover)
            if self._active_reads is not None:
                self._active_reads |= self._retrieval_reads.get(key, frozenset())
            # the retrieval covers a superset window; exact temporal
            # checks happen in _match_rule
            instances = [
                instance
                for instance in self._retrieval_cache[key]
                if instance.end >= window[0] and instance.start <= window[1]
            ]
            span.annotate(cached=cached, records=len(instances))
        return instances

    def clear_cache(self) -> None:
        """Drop all cached retrievals (e.g. after new data lands)."""
        self._retrieval_cache.clear()
        self._retrieval_reads.clear()
        self._covers.clear()

    def invalidate_retrievals(self, table: str, timestamp: float) -> int:
        """Drop cached retrievals whose store reads cover one new record.

        The selective counterpart of :meth:`clear_cache`: a late record
        at ``(table, timestamp)`` only stales the cache entries whose
        recorded reads include that point.  Must be called from the
        thread that owns this engine (the cache is not locked).
        """
        stale = [
            key
            for key, reads in self._retrieval_reads.items()
            if any(
                read_table == table and lo <= timestamp <= hi
                for read_table, lo, hi in reads
            )
        ]
        for key in stale:
            self._retrieval_cache.pop(key, None)
            self._retrieval_reads.pop(key, None)
        if stale:
            covers: Dict[str, List[Tuple[float, float]]] = {}
            for event_name, lo, hi in self._retrieval_cache:
                covers.setdefault(event_name, []).append((lo, hi))
            self._covers = covers
        return len(stale)

    def isolated(self) -> "RcaEngine":
        """A sibling engine with a *private* retrieval cache.

        Shares the (immutable) graph, event library, resolver, config
        and the live store — everything that is safe to share across
        threads — but owns its own retrieval cache, so parallel workers
        never contend on (or corrupt) each other's cached windows.
        """
        return RcaEngine(
            graph=self.graph,
            library=self.library,
            resolver=self.resolver,
            store=self.store,
            config=self.config,
        )
