"""The Generic RCA Engine (Fig. 1).

For each symptom event instance the engine walks the application's
diagnosis graph breadth-first (genuinely level-order): for every rule
out of a matched node it retrieves candidate diagnostic instances from
the store (bounded by the temporal rule's search window), keeps those
that join temporally *and* spatially with the matched parent instance,
and recurses.  Before each frontier level is evaluated, a batched
retrieval planner (:meth:`RcaEngine._plan_level`) coalesces the
overlapping windows sibling rules are about to request per event, so
one store round-trip serves the whole level instead of one per (rule,
parent).  The collected evidence then goes to the reasoning module
(rule-based by default) to pick the root cause(s).

Read observation (``store-query`` tracing spans and the footprint
records the service cache invalidates on) rides the single
:class:`~repro.collector.store.ReadObserver` seam rather than dedicated
proxy classes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from typing import Set

from ..collector.health import HealthRegistry, canonical_source
from ..collector.store import (
    DataStore,
    FootprintObserver,
    ObservedStore,
    ReadObserver,
    TraceObserver,
)
from ..obs.trace import NULL_TRACER, Span, Tracer
from .events import EventInstance, EventLibrary, RetrievalContext
from .graph import DiagnosisGraph
from .locations import Location
from .reasoning.rule_based import (
    UNKNOWN,
    UNKNOWN_DEGRADED,
    UNKNOWN_NO_EVIDENCE,
    EvidenceGap,
    MatchedEvidence,
    RuleBasedResult,
    assess_confidence,
    reason,
)
from .spatial import LocationResolver
from .temporal import IntervalColumns

#: One recorded store read: (table name, window start, window end).
#: ``-inf``/``inf`` bounds mean an unbounded scan of that table.
FootprintEntry = Tuple[str, float, float]


def merge_footprint(reads: Iterable[FootprintEntry]) -> Tuple[FootprintEntry, ...]:
    """Coalesce raw read records into per-table disjoint windows."""
    by_table: Dict[str, List[Tuple[float, float]]] = {}
    for table, lo, hi in reads:
        by_table.setdefault(table, []).append((lo, hi))
    merged: List[FootprintEntry] = []
    for table in sorted(by_table):
        windows = sorted(by_table[table])
        current_lo, current_hi = windows[0]
        for lo, hi in windows[1:]:
            if lo <= current_hi:
                current_hi = max(current_hi, hi)
            else:
                merged.append((table, current_lo, current_hi))
                current_lo, current_hi = lo, hi
        merged.append((table, current_lo, current_hi))
    return tuple(merged)


def evidence_sources(graph: DiagnosisGraph, library: EventLibrary) -> Set[str]:
    """Collector feeds backing any event in a diagnosis graph.

    Shared by the streaming engine (watermark deferral) and the service
    scheduler (health-aware job priority): both need to know which
    ingest feeds could carry this application's evidence.
    """
    sources: Set[str] = set()
    for name in graph.events():
        source = canonical_source(library.get(name).data_source)
        if source is not None:
            sources.add(source)
    return sources


#: Retrieval windows are rounded to this bucket so nearby symptoms and
#: sibling rules share retrieval-cache entries.
RETRIEVAL_BUCKET = 60.0


def bucket_window(
    window: Tuple[float, float], bucket: float = RETRIEVAL_BUCKET
) -> Tuple[float, float]:
    """Round a window outward to bucket boundaries.

    The low edge floors, the high edge ceils; a bound already on a
    boundary stays put (no phantom extra bucket), and Python's floor
    modulo keeps the rounding direction correct for negative
    timestamps: ``(-10, -10) -> (-60, 0)`` is a superset, never a
    shifted window.
    """
    lo = window[0] - (window[0] % bucket)
    hi = window[1] + ((-window[1]) % bucket)
    return lo, hi


def coalesce_windows(
    windows: Iterable[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Merge overlapping or touching windows into disjoint covers."""
    ordered = sorted(windows)
    if not ordered:
        return []
    merged = [ordered[0]]
    for lo, hi in ordered[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


class CandidateSet:
    """One cached retrieval cover: instances plus lazy join columns.

    The retrieval cache stores these instead of bare instance lists so
    every rule/parent hitting the same cover shares one columnar
    ``(starts, ends)`` build — and, through
    :class:`~repro.core.temporal.IntervalColumns`, one end-sorted
    permutation — for the batch temporal join.
    """

    __slots__ = (
        "instances", "_columns", "_location_parts", "_location_index",
        "_ambiguous_parts", "_expansions",
    )

    def __init__(self, instances: List[EventInstance]) -> None:
        self.instances = instances
        self._columns: Optional[IntervalColumns] = None
        self._location_parts: Optional[List[Tuple[str, ...]]] = None
        self._location_index: Optional[
            Dict[Tuple[str, ...], Tuple[Location, List[int]]]
        ] = None
        self._ambiguous_parts = False
        # (join level, topology generation) -> parts -> expansion, or
        # None when the level/locations are epoch-dynamic
        self._expansions: Dict[
            Tuple[Any, int], Optional[Dict[Tuple[str, ...], FrozenSet[str]]]
        ] = {}

    def __len__(self) -> int:
        return len(self.instances)

    @property
    def columns(self) -> IntervalColumns:
        """Interval arrays of the instances (sorted by start); memoized."""
        if self._columns is None:
            instances = self.instances
            self._columns = IntervalColumns(
                [i.start for i in instances], [i.end for i in instances]
            )
        return self._columns

    @property
    def location_parts(self) -> List[Tuple[str, ...]]:
        """Location identity column of the instances; memoized.

        Storm covers repeat a handful of distinct locations (the same
        links/routers over and over), so the spatial stage keys one
        verdict per parts tuple instead of expanding per candidate.
        """
        if self._location_parts is None:
            self._location_parts = [
                i.location.parts for i in self.instances
            ]
        return self._location_parts

    @property
    def location_index(
        self,
    ) -> Dict[Tuple[str, ...], Tuple[Location, List[int]]]:
        """parts -> (representative location, ascending indices); memoized.

        The inverse of :attr:`location_parts`: which candidate rows
        carry each distinct location.  Index lists are ascending, so a
        contiguous survivor run can be intersected per location with
        two bisects instead of walking every survivor.
        """
        if self._location_index is None:
            index: Dict[Tuple[str, ...], Tuple[Location, List[int]]] = {}
            for k, parts in enumerate(self.location_parts):
                entry = index.get(parts)
                if entry is None:
                    index[parts] = (self.instances[k].location, [k])
                else:
                    entry[1].append(k)
                    if entry[0].type is not self.instances[k].location.type:
                        # same parts under two location types: parts
                        # are not an identity here, fall back
                        self._ambiguous_parts = True
            self._location_index = index
        return self._location_index

    def static_expansions(
        self, resolver, level, timestamp: float
    ) -> Optional[Dict[Tuple[str, ...], FrozenSet[str]]]:
        """Spatial expansions of the distinct locations, if epoch-static.

        Storm workloads join the same cover against dozens of sibling
        symptoms; for epoch-static location columns (links, routers,
        interfaces...) the expansions cannot change within a topology
        generation, so one map computed on first use serves every later
        walk without touching the resolver.  Returns ``None`` — compute
        per evaluation instead — for time-varying location types.
        """
        index = self.location_index
        if self._ambiguous_parts:
            return None
        key = (level, resolver.epoch.topology_generation)
        if key not in self._expansions:
            self._expansions[key] = resolver.expand_static_map(
                (location for location, _ in index.values()), level, timestamp
            )
        return self._expansions[key]


class CoverIndex:
    """Cached cover windows of one event, with O(log n) containment lookup.

    Windows sorted by their low edge plus a running max (and argmax) of
    the high edges: the rightmost cover starting at or before a query's
    low edge bounds the candidates, and the first prefix position whose
    running max reaches the query's high edge names a containing cover.
    Replaces a linear scan that sat on the per-rule hot path and
    degraded as covers accumulated within a job.
    """

    __slots__ = ("_los", "_his", "_max", "_arg")

    def __init__(self) -> None:
        self._los: List[float] = []
        self._his: List[float] = []
        self._max: List[float] = []
        self._arg: List[int] = []

    def __len__(self) -> int:
        return len(self._los)

    def __iter__(self):
        return iter(zip(self._los, self._his))

    def add(self, lo: float, hi: float) -> None:
        """Insert one cover window; O(n - insertion point)."""
        i = bisect.bisect_right(self._los, lo)
        self._los.insert(i, lo)
        self._his.insert(i, hi)
        # rebuild the running max/argmax from the insertion point only:
        # inserts happen once per new retrieval cover, lookups once per
        # (rule, parent)
        del self._max[i:]
        del self._arg[i:]
        best = self._max[-1] if self._max else float("-inf")
        arg = self._arg[-1] if self._arg else -1
        for p in range(i, len(self._his)):
            if self._his[p] > best:
                best = self._his[p]
                arg = p
            self._max.append(best)
            self._arg.append(arg)

    def find(self, lo: float, hi: float) -> Optional[Tuple[float, float]]:
        """A stored cover containing ``[lo, hi]``, or None; O(log n)."""
        i = bisect.bisect_right(self._los, lo) - 1
        if i < 0 or self._max[i] < hi:
            return None
        p = bisect.bisect_left(self._max, hi, 0, i + 1)
        k = self._arg[p]
        return (self._los[k], self._his[k])


@dataclass
class Diagnosis:
    """Everything the engine concluded about one symptom instance."""

    symptom: EventInstance
    evidence: List[MatchedEvidence]
    result: RuleBasedResult
    #: evidence feeds found impaired inside retrieval windows
    gaps: List[EvidenceGap] = field(default_factory=list)
    #: 1.0 with fully healthy evidence feeds, discounted per gap
    confidence: float = 1.0
    #: human-readable degraded-evidence notes (one per gap)
    caveats: List[str] = field(default_factory=list)
    #: store windows read while correlating, per table (merged); the
    #: service result cache invalidates on late records landing inside,
    #: and the streaming engine re-opens settled symptoms on the same
    #: signal.  Excluded from equality: which cached covers served a
    #: diagnosis is provenance, not a conclusion — two runs reaching the
    #: same evidence and result are the *same* diagnosis even when one
    #: read wider (shared) covers than the other.
    footprint: Tuple[FootprintEntry, ...] = field(default=(), compare=False)
    #: span tree of this diagnosis when it was traced (``None`` when
    #: tracing was off).  Excluded from equality: a traced and an
    #: untraced run of the same symptom are the *same* diagnosis.
    trace: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def primary_cause(self) -> str:
        return self.result.primary

    @property
    def root_causes(self) -> List[str]:
        return self.result.root_causes

    @property
    def is_explained(self) -> bool:
        return bool(self.result.root_causes)

    @property
    def is_degraded(self) -> bool:
        """True when some evidence feed was impaired during correlation."""
        return bool(self.gaps)

    @property
    def annotated_cause(self) -> str:
        """The primary cause with ``Unknown`` split by evidence health.

        ``Unknown (no evidence found)``: feeds were healthy and carried
        nothing — the paper's genuine Unknown.  ``Unknown (evidence
        unavailable)``: a feed that could have carried the deciding
        evidence was lagging, degraded or down.
        """
        if self.is_explained:
            return self.primary_cause
        return UNKNOWN_DEGRADED if self.gaps else UNKNOWN_NO_EVIDENCE

    def evidence_for(self, event_name: str) -> List[MatchedEvidence]:
        """Matched evidence items for one diagnostic event."""
        return [e for e in self.evidence if e.rule.child_event == event_name]

    def to_json(self) -> Dict[str, Any]:
        """This diagnosis as a JSON-ready dict (``grca-diagnosis/1``).

        One serialization shared by the HTTP gateway's job responses
        and offline exports; :meth:`from_json` rebuilds an equal
        diagnosis (the attached trace rides along when present but is
        excluded from equality, as always).
        """
        from .serialize import diagnosis_to_dict

        return diagnosis_to_dict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Diagnosis":
        """Rebuild a diagnosis from its :meth:`to_json` form."""
        from .serialize import diagnosis_from_dict

        return diagnosis_from_dict(data)

    def explain(self) -> str:
        """Human-readable trace for the Result Browser's detail pane."""
        lines = [f"symptom: {self.symptom}"]
        for item in sorted(self.evidence, key=lambda e: e.depth):
            marker = "*" if item.rule.child_event in self.result.root_causes else " "
            lines.append(
                f" {marker} depth {item.depth} priority {item.rule.priority:>4} "
                f"{item.rule.parent_event} -> {item.instance}"
            )
        if self.is_explained:
            lines.append(f"root cause: {', '.join(self.root_causes)}")
        else:
            lines.append(f"root cause: {self.annotated_cause}")
        if self.gaps:
            lines.append(f"confidence: {self.confidence:.2f}")
            for caveat in self.caveats:
                lines.append(f" ! {caveat}")
        return "\n".join(lines)


@dataclass
class EngineConfig:
    """Tunables shared by all diagnoses of one engine instance."""

    #: per-application retrieval parameters (thresholds etc.)
    params: Dict[str, Any] = field(default_factory=dict)
    #: substrate handles passed into retrieval contexts
    services: Dict[str, Any] = field(default_factory=dict)
    #: cap on matched instances per (rule, parent instance) to bound work
    max_matches_per_rule: int = 50
    #: feed-health registry consulted for evidence gaps (None disables)
    health: Optional[HealthRegistry] = None
    #: evaluate temporal joins as sorted-array batch operations; False
    #: restores the per-candidate scalar loop (the verification oracle
    #: and the legacy baseline the hot-path benchmark measures against)
    batch_joins: bool = True


class RcaEngine:
    """Correlation + reasoning over one diagnosis graph."""

    def __init__(
        self,
        graph: DiagnosisGraph,
        library: EventLibrary,
        resolver: LocationResolver,
        store: DataStore,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.graph = graph
        self.library = library
        self.resolver = resolver
        self.store = store
        self.config = config or EngineConfig()
        self._missing = [
            name for name in graph.events() if name not in library
        ]
        if self._missing:
            raise KeyError(
                f"diagnosis graph references undefined events: {self._missing}"
            )
        # retrieval cache: (event name, cover window) -> candidate set
        self._retrieval_cache: Dict[Tuple[str, float, float], CandidateSet] = {}
        # per cache entry: the store reads that produced it
        self._retrieval_reads: Dict[
            Tuple[str, float, float], frozenset
        ] = {}
        # per event: the cached cover windows, indexed for containment
        self._covers: Dict[str, CoverIndex] = {}
        # accumulator active while one diagnose() call is correlating
        self._active_reads: Optional[set] = None
        #: last store revision this engine's retrieval cache was synced
        #: to (maintained by the owner — service workers use it to drop
        #: exactly the cached windows a late record landed in)
        self.synced_revision: Optional[int] = None

    # ------------------------------------------------------------------

    def diagnose(
        self,
        symptom: EventInstance,
        tracer: Optional[Tracer] = None,
        cancel: Optional[Any] = None,
        max_depth: Optional[int] = None,
    ) -> Diagnosis:
        """Correlate and reason about one symptom instance.

        ``tracer`` opts this diagnosis into span recording: the walk
        gets one ``diagnose`` span with ``node``/``rule``/``retrieve``/
        ``store-query``/``temporal-join``/``spatial-join``/``reason``
        children, and the finished subtree is attached as
        :attr:`Diagnosis.trace`.  With the default ``None`` the no-op
        tracer is used and the hot path is unchanged.

        ``cancel`` is a cooperative cancellation token (anything with a
        ``check()`` that raises to stop — see
        :class:`repro.service.policy.CancellationToken`).  It is checked
        at stage boundaries: each frontier level, each node visit, and
        before every store fetch, so a timed-out diagnosis stops within
        one retrieval instead of running to completion.  ``max_depth``
        caps the exploration depth (evidence *at* the cap is still
        collected; nodes there are not expanded) — the service uses it
        to trim work during brownout.
        """
        if symptom.name != self.graph.symptom_event:
            raise ValueError(
                f"engine diagnoses {self.graph.symptom_event!r} symptoms, "
                f"got {symptom.name!r}"
            )
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span(
            "diagnose", label=symptom.name, symptom=str(symptom),
            graph=self.graph.name,
        ) as root:
            self._active_reads = set()
            try:
                evidence, gaps = self._correlate(
                    symptom, tracer, cancel=cancel, max_depth=max_depth
                )
                footprint = merge_footprint(self._active_reads)
            finally:
                self._active_reads = None
            with tracer.span("reason", label=symptom.name) as span:
                result = reason(self.graph, evidence)
                confidence, caveats = assess_confidence(gaps)
                span.annotate(
                    evidence=len(evidence),
                    root_causes=list(result.root_causes),
                    priority=result.priority,
                    gaps=len(gaps),
                )
            root.annotate(evidence=len(evidence), cause=result.primary)
        return Diagnosis(
            symptom=symptom,
            evidence=evidence,
            result=result,
            gaps=gaps,
            confidence=confidence,
            caveats=caveats,
            footprint=footprint,
            trace=root if tracer.enabled else None,
        )

    def diagnose_all(
        self, symptoms: Iterable[EventInstance], traced: bool = False
    ) -> List[Diagnosis]:
        """Diagnose a sequence of symptom instances in order.

        ``traced=True`` gives every symptom its own fresh
        :class:`~repro.obs.Tracer`, so each returned diagnosis carries
        an independent span tree.
        """
        if not traced:
            return [self.diagnose(symptom) for symptom in symptoms]
        return [self.diagnose(symptom, tracer=Tracer()) for symptom in symptoms]

    # ------------------------------------------------------------------

    def _correlate(
        self,
        symptom: EventInstance,
        tracer=NULL_TRACER,
        cancel: Optional[Any] = None,
        max_depth: Optional[int] = None,
    ) -> Tuple[List[MatchedEvidence], List[EvidenceGap]]:
        evidence: List[MatchedEvidence] = []
        gaps: List[EvidenceGap] = []
        gap_keys: set = set()
        # level entries: (event name, matched instance, depth); the walk
        # is genuinely level-order so the planner can see every window a
        # whole frontier level is about to request before any is issued
        level: List[Tuple[str, EventInstance, int]] = [
            (self.graph.symptom_event, symptom, 0)
        ]
        seen: set = set()
        while level:
            if cancel is not None:
                cancel.check()
            plan = self._plan_level(level)
            next_level: List[Tuple[str, EventInstance, int]] = []
            for event_name, parent_instance, depth in level:
                if cancel is not None:
                    cancel.check()
                # one span per graph-node visit: the trace mirrors the walk
                with tracer.span("node", label=event_name, depth=depth) as node_span:
                    matched_here = 0
                    for rule in self.graph.rules_from(event_name):
                        gaps_before = len(gaps)
                        self._note_gaps(rule, parent_instance, gaps, gap_keys)
                        if len(gaps) > gaps_before:
                            node_span.count("evidence_gaps", len(gaps) - gaps_before)
                        matches = self._match_rule(
                            rule, parent_instance, tracer, plan, cancel
                        )
                        matched_here += len(matches)
                        for instance in matches:
                            key = (rule.child_event, instance)
                            item = MatchedEvidence(
                                rule=rule,
                                parent_instance=parent_instance,
                                instance=instance,
                                depth=depth + 1,
                            )
                            evidence.append(item)
                            if key not in seen:
                                seen.add(key)
                                if max_depth is None or depth + 1 < max_depth:
                                    next_level.append(
                                        (rule.child_event, instance, depth + 1)
                                    )
                    node_span.annotate(matched=matched_here)
            level = next_level
        return evidence, gaps

    def _plan_level(
        self, level: List[Tuple[str, EventInstance, int]]
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Coalesce the retrieval windows one frontier level will want.

        Sibling rules (and sibling parents) frequently request
        overlapping windows of the same diagnostic event; issuing them
        one-by-one means near-duplicate store round-trips.  This pass
        collects every (child event, bucketed search window) the level's
        rules are about to ask for, drops the ones an existing cache
        cover already satisfies, and merges the rest into per-event
        disjoint cover windows.  The first retrieval of an event at this
        level then fetches its whole cover; the siblings hit the cache.

        Only the *prefetch* window widens — temporal/spatial joins still
        filter against each rule's exact window, so matches are
        unchanged except where a wider fetch makes boundary-straddling
        retrievals (e.g. flap pairing) more complete.
        """
        wants: Dict[str, List[Tuple[float, float]]] = {}
        for event_name, parent_instance, _depth in level:
            for rule in self.graph.rules_from(event_name):
                window = bucket_window(
                    rule.temporal.search_window(parent_instance.interval)
                )
                if self._find_cover(rule.child_event, window) is None:
                    wants.setdefault(rule.child_event, []).append(window)
        return {
            event_name: coalesce_windows(windows)
            for event_name, windows in wants.items()
        }

    def _find_cover(
        self, event_name: str, window: Tuple[float, float]
    ) -> Optional[Tuple[float, float]]:
        """A cached cover window containing ``window``, if any."""
        index = self._covers.get(event_name)
        if index is None:
            return None
        return index.find(window[0], window[1])

    def _note_gaps(
        self,
        rule,
        parent_instance: EventInstance,
        gaps: List[EvidenceGap],
        gap_keys: set,
    ) -> None:
        """Record impaired-feed overlaps with this rule's search window.

        A retrieval that comes back empty while the backing feed was
        LAGGING/DEGRADED/DOWN is indistinguishable from genuine absence
        of the diagnostic event, so every overlap is recorded and later
        discounted by :func:`assess_confidence`.
        """
        registry = self.config.health
        if registry is None:
            return
        source = canonical_source(self.library.get(rule.child_event).data_source)
        if source is None:
            return
        lo, hi = rule.temporal.search_window(parent_instance.interval)
        for interval in registry.impaired_intervals(source, lo, hi):
            key = (source, rule.child_event, interval.start)
            if key in gap_keys:
                continue
            gap_keys.add(key)
            end = hi if interval.end is None else min(hi, interval.end)
            gaps.append(
                EvidenceGap(
                    source=source,
                    state=interval.state,
                    start=max(lo, interval.start),
                    end=end,
                    event=rule.child_event,
                    parent_event=rule.parent_event,
                )
            )

    def _match_rule(
        self,
        rule,
        parent_instance: EventInstance,
        tracer=NULL_TRACER,
        plan=None,
        cancel=None,
    ) -> List[EventInstance]:
        """Evaluate one rule against one matched parent instance.

        One implementation serves traced and untraced evaluation: the
        span contexts are no-ops on the null tracer, and span arguments
        (labels, rule identity strings) are only built when tracing is
        on.  The stages — retrieve the cover's candidate set once, batch
        temporal mask over its sorted interval columns, then the batch
        spatial join over temporal survivors only, materializing matched
        instances last — are identical either way, with per-stage
        counters (``candidates`` / ``temporal_survivors`` /
        ``spatial_survivors``) annotated on the ``rule`` span.
        """
        window = rule.temporal.search_window(parent_instance.interval)
        traced = tracer.enabled
        trace = tracer if traced else None
        if traced:
            label = f"{rule.parent_event} -> {rule.child_event}"
            rule_args = dict(
                label=label,
                priority=rule.priority,
                temporal=rule.temporal.describe(),
                spatial=rule.spatial.describe(),
                window=[window[0], window[1]],
            )
            stage_args = dict(label=label)
        else:
            rule_args = {}
            stage_args = {}
        with tracer.span("rule", **rule_args) as rule_span:
            candidates = self._retrieve(
                rule.child_event, window, tracer, plan, cancel
            )
            instances = candidates.instances
            with tracer.span("temporal-join", **stage_args) as span:
                if self.config.batch_joins:
                    survivors = rule.temporal.joined_batch(
                        parent_instance.interval, candidates.columns
                    )
                else:
                    # scalar oracle: the original per-candidate loop,
                    # prefiltered to the search window exactly as the
                    # pre-columnar retrieval path did
                    lo, hi = window
                    survivors = [
                        k
                        for k, instance in enumerate(instances)
                        if instance.end >= lo
                        and instance.start <= hi
                        and rule.temporal.joined(
                            parent_instance.interval,
                            instance.interval,
                            trace=trace,
                        )
                    ]
                span.annotate(candidates=len(instances), joined=len(survivors))
            matched: List[EventInstance] = []
            with tracer.span("spatial-join", **stage_args) as span:
                batch = rule.spatial.batch(
                    self.resolver,
                    parent_instance.location,
                    parent_instance.start,
                    trace=trace,
                )
                cap = self.config.max_matches_per_rule
                if traced or not self.config.batch_joins:
                    # the original per-survivor verdicts: traced runs
                    # need their per-candidate counters to fire, and
                    # the scalar oracle keeps the pre-columnar cost
                    # shape it is benchmarked (and property-tested)
                    # against
                    for k in survivors:
                        instance = instances[k]
                        if not batch.joined(instance.location):
                            continue
                        matched.append(instance)
                        if len(matched) >= cap:
                            break
                else:
                    self._spatial_stage(
                        rule, parent_instance, candidates, survivors,
                        batch, matched, cap,
                    )
                span.annotate(candidates=len(survivors), joined=len(matched))
            rule_span.annotate(
                matched=len(matched),
                candidates=len(instances),
                temporal_survivors=len(survivors),
                spatial_survivors=len(matched),
            )
        return matched

    def _spatial_stage(
        self,
        rule,
        parent_instance: EventInstance,
        candidates: CandidateSet,
        survivors: List[int],
        batch,
        matched: List[EventInstance],
        cap: int,
    ) -> None:
        """Columnar spatial join over the temporal survivors (batch mode).

        For epoch-static location columns the cover's expansion map
        (:meth:`CandidateSet.static_expansions`) replaces per-candidate
        resolver calls with one set intersection per distinct location;
        a contiguous survivor run — what start-anchored batch joins
        produce — is then intersected with each passing location's index
        list by bisection instead of walking every survivor.  Appends to
        ``matched`` exactly the instances the per-candidate loop would:
        ascending candidate order, capped at ``cap``.
        """
        if not survivors:
            return
        instances = candidates.instances
        expansions = candidates.static_expansions(
            self.resolver, rule.spatial.level, parent_instance.start
        )
        if expansions is None:
            # epoch-dynamic locations (routed paths, prefixes): one
            # verdict per distinct location through the batch join
            location_parts = candidates.location_parts
            verdicts: Dict[Tuple[str, ...], bool] = {}
            joined = batch.joined
            for k in survivors:
                parts = location_parts[k]
                verdict = verdicts.get(parts)
                if verdict is None:
                    verdict = joined(instances[k].location)
                    verdicts[parts] = verdict
                if not verdict:
                    continue
                matched.append(instances[k])
                if len(matched) >= cap:
                    break
            return
        symptom_set = batch.symptom_set
        diag_type = rule.spatial.diagnostic_type
        lo_k, hi_k = survivors[0], survivors[-1]
        if symptom_set and hi_k - lo_k + 1 == len(survivors):
            picked: List[int] = []
            for parts, (location, idxs) in candidates.location_index.items():
                a = bisect.bisect_left(idxs, lo_k)
                b = bisect.bisect_right(idxs, hi_k, a)
                if a == b:
                    continue
                if location.type is not diag_type:
                    raise ValueError(
                        f"diagnostic location is {location.type.value}, "
                        f"rule expects {diag_type.value}"
                    )
                if symptom_set.isdisjoint(expansions[parts]):
                    continue
                picked.extend(idxs[a:b])
            picked.sort()
            matched.extend(instances[k] for k in picked[:cap])
            return
        # non-contiguous survivors (end-anchored joins) or an empty
        # symptom expansion: per-survivor loop over the expansion map
        location_parts = candidates.location_parts
        verdict_map: Dict[Tuple[str, ...], bool] = {}
        for k in survivors:
            parts = location_parts[k]
            verdict = verdict_map.get(parts)
            if verdict is None:
                location = instances[k].location
                if location.type is not diag_type:
                    raise ValueError(
                        f"diagnostic location is {location.type.value}, "
                        f"rule expects {diag_type.value}"
                    )
                verdict = bool(symptom_set) and not symptom_set.isdisjoint(
                    expansions[parts]
                )
                verdict_map[parts] = verdict
            if not verdict:
                continue
            matched.append(instances[k])
            if len(matched) >= cap:
                break

    def _retrieve(
        self,
        event_name: str,
        window: Tuple[float, float],
        tracer=NULL_TRACER,
        plan: Optional[Dict[str, List[Tuple[float, float]]]] = None,
        cancel=None,
    ) -> CandidateSet:
        # bucket windows to 60 s so nearby symptoms share cache entries
        bucketed = bucket_window(window)
        # prefer an already-cached cover; else the level plan's
        # coalesced cover for this event; else the bucketed window
        cover = self._find_cover(event_name, bucketed)
        if cover is None and plan:
            for planned in plan.get(event_name, ()):
                if planned[0] <= bucketed[0] and bucketed[1] <= planned[1]:
                    cover = planned
                    break
        if cover is None:
            cover = bucketed
        key = (event_name, cover[0], cover[1])
        with tracer.span("retrieve", label=event_name) as span:
            cached = key in self._retrieval_cache
            if not cached:
                # the store round-trip is the expensive stage; a job past
                # its deadline stops here instead of fetching more data
                if cancel is not None:
                    cancel.check()
                reads: set = set()
                observers: List[ReadObserver] = [FootprintObserver(reads.add)]
                if tracer.enabled:
                    observers.insert(0, TraceObserver(tracer))
                context = RetrievalContext(
                    store=ObservedStore(self.store, observers),
                    start=cover[0],
                    end=cover[1],
                    params=self.config.params,
                    services=self.config.services,
                )
                self._retrieval_cache[key] = CandidateSet(
                    self.library.get(event_name).retrieve(context)
                )
                self._retrieval_reads[key] = frozenset(reads)
                self._covers.setdefault(event_name, CoverIndex()).add(*cover)
            if self._active_reads is not None:
                self._active_reads |= self._retrieval_reads.get(key, frozenset())
            # the whole (superset) cover is returned; the batch temporal
            # join in _match_rule is the exact filter, so no intermediate
            # per-window candidate list is materialized
            candidates = self._retrieval_cache[key]
            span.annotate(cached=cached, records=len(candidates))
        return candidates

    def clear_cache(self) -> None:
        """Drop all cached retrievals (e.g. after new data lands)."""
        self._retrieval_cache.clear()
        self._retrieval_reads.clear()
        self._covers.clear()

    def invalidate_retrievals(self, table: str, timestamp: float) -> int:
        """Drop cached retrievals whose store reads cover one new record.

        The selective counterpart of :meth:`clear_cache`: a late record
        at ``(table, timestamp)`` only stales the cache entries whose
        recorded reads include that point.  Must be called from the
        thread that owns this engine (the cache is not locked).
        """
        return self.invalidate_deltas({table: [timestamp]})

    def evict_retrievals_before(self, cutoff: float) -> int:
        """Drop cached covers that end before ``cutoff``; return the count.

        Pure cache eviction — never affects results, only reuse.  The
        streaming engine calls this each advance with its re-open
        horizon: a cover entirely behind every window any future (fresh
        or re-opened) symptom can request is unreachable, and keeping it
        would make :meth:`invalidate_deltas` scan an ever-growing entry
        list on a month-scale replay.  Same threading contract as
        :meth:`invalidate_retrievals`.
        """
        stale = [
            key for key in self._retrieval_cache if key[2] < cutoff
        ]
        for key in stale:
            self._retrieval_cache.pop(key, None)
            self._retrieval_reads.pop(key, None)
        if stale:
            covers: Dict[str, CoverIndex] = {}
            for event_name, lo, hi in self._retrieval_cache:
                covers.setdefault(event_name, CoverIndex()).add(lo, hi)
            self._covers = covers
        return len(stale)

    def invalidate_deltas(self, deltas: Dict[str, List[float]]) -> int:
        """Drop cached retrievals a batch of new records may have changed.

        ``deltas`` maps table name to *sorted* record timestamps — the
        per-advance delta buffer the streaming engine drains from the
        store's insert listeners.  A cache entry goes stale when any of
        its recorded store reads contains any delta point of that table
        (one bisect per (entry, read) pair); everything else survives
        the advance.  Returns the number of entries dropped.  Same
        threading contract as :meth:`invalidate_retrievals`.
        """
        if not deltas or not self._retrieval_reads:
            return 0
        stale = []
        for key, reads in self._retrieval_reads.items():
            for read_table, lo, hi in reads:
                points = deltas.get(read_table)
                if not points:
                    continue
                p = bisect.bisect_left(points, lo)
                if p < len(points) and points[p] <= hi:
                    stale.append(key)
                    break
        for key in stale:
            self._retrieval_cache.pop(key, None)
            self._retrieval_reads.pop(key, None)
        if stale:
            covers: Dict[str, CoverIndex] = {}
            for event_name, lo, hi in self._retrieval_cache:
                covers.setdefault(event_name, CoverIndex()).add(lo, hi)
            self._covers = covers
        return len(stale)

    def isolated(self) -> "RcaEngine":
        """A sibling engine with a *private* retrieval cache.

        Shares the (immutable) graph, event library, resolver, config
        and the live store — everything that is safe to share across
        threads — but owns its own retrieval cache, so parallel workers
        never contend on (or corrupt) each other's cached windows.
        """
        return RcaEngine(
            graph=self.graph,
            library=self.library,
            resolver=self.resolver,
            store=self.store,
            config=self.config,
        )
