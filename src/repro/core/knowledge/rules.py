"""Table II diagnosis-rule templates: the common-rule layer of the
Knowledge Library.

A template is a diagnosis rule without a priority — the pair of events
with their temporal and spatial join parameters.  Applications pull
templates out by (symptom, diagnostic) pair and attach their own
priorities when building a diagnosis graph; this mirrors the paper,
where the rule library is shared and the priorities in Figs. 4-6 are
application-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph import DiagnosisRule
from ..locations import LocationType
from ..spatial import JoinLevel, SpatialJoinRule
from ..temporal import ExpandOption, TemporalExpansion, TemporalJoinRule
from . import names


def expansion(
    option: ExpandOption = ExpandOption.START_END, left: float = 5.0, right: float = 5.0
) -> TemporalExpansion:
    """Shorthand for a TemporalExpansion (Start/End 5/5 default)."""
    return TemporalExpansion(option, left, right)


#: Slack-only expansion: 5 s of syslog timestamp noise either way.
SLACK = expansion()


@dataclass(frozen=True)
class RuleTemplate:
    """A Table II row: event pair plus join parameters, no priority."""

    symptom_event: str
    diagnostic_event: str
    temporal: TemporalJoinRule
    spatial: SpatialJoinRule

    def to_rule(
        self, priority: int, is_root_cause: bool = True, note: str = ""
    ) -> DiagnosisRule:
        """Instantiate this template with an application priority."""
        return DiagnosisRule(
            parent_event=self.symptom_event,
            child_event=self.diagnostic_event,
            temporal=self.temporal,
            spatial=self.spatial,
            priority=priority,
            is_root_cause=is_root_cause,
            note=note,
        )


class RuleCatalog:
    """Templates keyed by (symptom event, diagnostic event)."""

    def __init__(self) -> None:
        self._templates: Dict[Tuple[str, str], RuleTemplate] = {}

    def register(self, template: RuleTemplate) -> RuleTemplate:
        """Register a new rule template; duplicates are rejected."""
        key = (template.symptom_event, template.diagnostic_event)
        if key in self._templates:
            raise ValueError(f"rule template {key} already registered")
        self._templates[key] = template
        return template

    def get(self, symptom_event: str, diagnostic_event: str) -> RuleTemplate:
        """Template for a (symptom, diagnostic) pair; raises KeyError."""
        try:
            return self._templates[(symptom_event, diagnostic_event)]
        except KeyError:
            raise KeyError(
                f"no rule template {symptom_event!r} -> {diagnostic_event!r}"
            ) from None

    def rule(
        self,
        symptom_event: str,
        diagnostic_event: str,
        priority: int,
        is_root_cause: bool = True,
        note: str = "",
    ) -> DiagnosisRule:
        """Instantiate a template with an application priority."""
        return self.get(symptom_event, diagnostic_event).to_rule(
            priority, is_root_cause, note
        )

    def pairs(self) -> List[Tuple[str, str]]:
        """All registered (symptom, diagnostic) pairs, sorted."""
        return sorted(self._templates)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._templates

    def __len__(self) -> int:
        return len(self._templates)


_IFACE_STATES = (
    (names.LINEPROTO_DOWN, names.INTERFACE_DOWN),
    (names.LINEPROTO_UP, names.INTERFACE_UP),
    (names.LINEPROTO_FLAP, names.INTERFACE_FLAP),
)

_RESTORATIONS = (
    names.SONET_RESTORATION,
    names.MESH_RESTORATION_REGULAR,
    names.MESH_RESTORATION_FAST,
)

_E2E_EVENTS = (names.DELAY_INCREASE, names.LOSS_INCREASE, names.THROUGHPUT_DROP)

_STATE_EVENT_GROUPS = (
    (names.INTERFACE_DOWN, names.INTERFACE_UP, names.INTERFACE_FLAP),
    (names.LINEPROTO_DOWN, names.LINEPROTO_UP, names.LINEPROTO_FLAP),
)


def build_common_rules() -> RuleCatalog:
    """The Knowledge Library's common diagnosis rules (Table II)."""
    catalog = RuleCatalog()

    def add(symptom, diagnostic, sym_exp, diag_exp, sym_type, diag_type, level):
        catalog.register(
            RuleTemplate(
                symptom_event=symptom,
                diagnostic_event=diagnostic,
                temporal=TemporalJoinRule(sym_exp, diag_exp),
                spatial=SpatialJoinRule(sym_type, diag_type, level),
            )
        )

    # Line protocol X -> Interface X: same interface, line protocol
    # reacts within seconds of the physical interface.
    for proto_event, iface_event in _IFACE_STATES:
        add(
            proto_event, iface_event,
            expansion(ExpandOption.START_START, 15, 5), SLACK,
            LocationType.INTERFACE, LocationType.INTERFACE, JoinLevel.INTERFACE,
        )

    # Interface / line protocol state changes <- layer-1 restorations on
    # the devices carrying that interface's circuits.
    for group in _STATE_EVENT_GROUPS:
        for state_event in group:
            for restoration in _RESTORATIONS:
                add(
                    state_event, restoration,
                    expansion(ExpandOption.START_START, 30, 5), SLACK,
                    LocationType.INTERFACE, LocationType.LAYER1_DEVICE,
                    JoinLevel.LAYER1_DEVICE,
                )

    # BGP egress change <- interface / line-protocol state change on an
    # (old or new) egress router; withdrawal may lag by the hold timer.
    for group in _STATE_EVENT_GROUPS:
        for state_event in group:
            add(
                names.BGP_EGRESS_CHANGE, state_event,
                expansion(ExpandOption.START_START, 200, 5), SLACK,
                LocationType.PREFIX, LocationType.INTERFACE, JoinLevel.ROUTER,
            )

    # Edge-to-edge performance events <- egress change / congestion /
    # reconvergence on the measured path.  Performance events are
    # 5-minute-binned, so margins are measurement-interval sized.
    perf_exp = expansion(ExpandOption.START_END, 300, 60)
    for e2e_event in _E2E_EVENTS:
        add(
            e2e_event, names.BGP_EGRESS_CHANGE,
            perf_exp, expansion(ExpandOption.START_END, 5, 60),
            LocationType.INGRESS_EGRESS, LocationType.PREFIX, JoinLevel.ROUTER,
        )
        add(
            e2e_event, names.LINK_CONGESTION,
            perf_exp, expansion(ExpandOption.START_END, 30, 30),
            LocationType.INGRESS_EGRESS, LocationType.INTERFACE, JoinLevel.INTERFACE,
        )
        add(
            e2e_event, names.OSPF_RECONVERGENCE,
            perf_exp, expansion(ExpandOption.START_END, 5, 60),
            LocationType.INGRESS_EGRESS, LocationType.LOGICAL_LINK,
            JoinLevel.LOGICAL_LINK,
        )

    # Link loss <- congestion on the same interface (overflow), or a
    # flapping line protocol corrupting packets.
    add(
        names.LINK_LOSS, names.LINK_CONGESTION,
        expansion(ExpandOption.START_END, 30, 30), expansion(ExpandOption.START_END, 30, 30),
        LocationType.INTERFACE, LocationType.INTERFACE, JoinLevel.INTERFACE,
    )
    for proto_event in (names.LINEPROTO_DOWN, names.LINEPROTO_UP, names.LINEPROTO_FLAP):
        add(
            names.LINK_LOSS, proto_event,
            expansion(ExpandOption.START_END, 60, 60), SLACK,
            LocationType.INTERFACE, LocationType.INTERFACE, JoinLevel.INTERFACE,
        )

    # OSPF reconvergence <- the state change or operator command that
    # triggered the weight updates (same link via its endpoints).
    for group in _STATE_EVENT_GROUPS:
        for state_event in group:
            add(
                names.OSPF_RECONVERGENCE, state_event,
                expansion(ExpandOption.START_START, 60, 10), SLACK,
                LocationType.LOGICAL_LINK, LocationType.INTERFACE, JoinLevel.INTERFACE,
            )
    for cmd_event in (names.CMD_COST_IN, names.CMD_COST_OUT):
        add(
            names.OSPF_RECONVERGENCE, cmd_event,
            expansion(ExpandOption.START_START, 120, 10), SLACK,
            LocationType.LOGICAL_LINK, LocationType.INTERFACE, JoinLevel.INTERFACE,
        )

    # Link cost out/down <- line protocol down, interface down, or the
    # operator command that costed the link out.
    for diagnostic in (names.LINEPROTO_DOWN, names.INTERFACE_DOWN, names.CMD_COST_OUT):
        add(
            names.LINK_COST_OUT, diagnostic,
            expansion(ExpandOption.START_START, 60, 5), SLACK,
            LocationType.LOGICAL_LINK, LocationType.INTERFACE, JoinLevel.INTERFACE,
        )
    for diagnostic in (names.LINEPROTO_UP, names.INTERFACE_UP, names.CMD_COST_IN):
        add(
            names.LINK_COST_IN, diagnostic,
            expansion(ExpandOption.START_START, 60, 5), SLACK,
            LocationType.LOGICAL_LINK, LocationType.INTERFACE, JoinLevel.INTERFACE,
        )

    # Link congestion <- routing reconvergence anywhere shifting traffic
    # onto this link (spatially unconstrained).
    add(
        names.LINK_CONGESTION, names.OSPF_RECONVERGENCE,
        expansion(ExpandOption.START_END, 600, 60), expansion(ExpandOption.START_END, 5, 60),
        LocationType.INTERFACE, LocationType.LOGICAL_LINK, JoinLevel.NETWORK,
    )

    # Router cost in/out <- operator commands on that router's interfaces.
    for cmd_event in (names.CMD_COST_IN, names.CMD_COST_OUT):
        add(
            names.ROUTER_COST_IN_OUT, cmd_event,
            expansion(ExpandOption.START_START, 120, 30), SLACK,
            LocationType.ROUTER, LocationType.INTERFACE, JoinLevel.ROUTER,
        )

    return catalog


#: The (symptom, diagnostic) pairs the paper lists in Table II, used by
#: the reproduction test to check coverage.
TABLE2_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    [(p, i) for p, i in _IFACE_STATES]
    + [
        (state, restoration)
        for group in _STATE_EVENT_GROUPS
        for state in group
        for restoration in _RESTORATIONS
    ]
    + [
        (names.BGP_EGRESS_CHANGE, state)
        for group in _STATE_EVENT_GROUPS
        for state in group
    ]
    + [
        (e2e, diagnostic)
        for e2e in _E2E_EVENTS
        for diagnostic in (
            names.BGP_EGRESS_CHANGE,
            names.LINK_CONGESTION,
            names.OSPF_RECONVERGENCE,
        )
    ]
    + [
        (names.LINK_LOSS, names.LINK_CONGESTION),
        (names.LINK_LOSS, names.LINEPROTO_DOWN),
        (names.LINK_LOSS, names.LINEPROTO_UP),
        (names.LINK_LOSS, names.LINEPROTO_FLAP),
        (names.OSPF_RECONVERGENCE, names.LINEPROTO_DOWN),
        (names.OSPF_RECONVERGENCE, names.INTERFACE_DOWN),
        (names.OSPF_RECONVERGENCE, names.CMD_COST_IN),
        (names.OSPF_RECONVERGENCE, names.CMD_COST_OUT),
        (names.LINK_COST_OUT, names.LINEPROTO_DOWN),
        (names.LINK_COST_OUT, names.INTERFACE_DOWN),
        (names.LINK_COST_OUT, names.CMD_COST_OUT),
        (names.LINK_COST_IN, names.LINEPROTO_UP),
        (names.LINK_COST_IN, names.INTERFACE_UP),
        (names.LINK_COST_IN, names.CMD_COST_IN),
        (names.LINK_CONGESTION, names.OSPF_RECONVERGENCE),
    ]
)
