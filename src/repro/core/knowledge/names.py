"""Canonical event names.

These are the verbatim Table I names (plus the application-specific
events of Tables III, V and VII), so that breakdowns produced by the
Result Browser read exactly like the paper's tables.
"""

# -- Table I: common events -------------------------------------------------

ROUTER_REBOOT = "Router reboot"
CPU_HIGH_AVG = "CPU high (average)"
CPU_HIGH_SPIKE = "CPU high (spike)"
INTERFACE_DOWN = "Interface down"
INTERFACE_UP = "Interface up"
INTERFACE_FLAP = "Interface flap"
LINEPROTO_DOWN = "Line protocol down"
LINEPROTO_UP = "Line protocol up"
LINEPROTO_FLAP = "Line protocol flap"
MESH_RESTORATION_REGULAR = "Regular optical mesh network restoration"
MESH_RESTORATION_FAST = "Fast optical mesh network restoration"
SONET_RESTORATION = "SONET restoration"
LINK_CONGESTION = "Link congestion alarm"
LINK_LOSS = "Link loss alarm"
OSPF_RECONVERGENCE = "OSPF re-convergence event"
ROUTER_COST_IN_OUT = "Router Cost In/Out"
LINK_COST_OUT = "Link Cost Out/Down"
LINK_COST_IN = "Link Cost In/Up"
CMD_COST_IN = "Command to Cost In Links"
CMD_COST_OUT = "Command to Cost Out Links"
BGP_EGRESS_CHANGE = "BGP egress change"
DELAY_INCREASE = "In-network delay increase"
LOSS_INCREASE = "In-network loss increase"
THROUGHPUT_DROP = "In-network throughput drop"

#: All Table I event names, in table order.
TABLE1_EVENTS = (
    ROUTER_REBOOT,
    CPU_HIGH_AVG,
    CPU_HIGH_SPIKE,
    INTERFACE_DOWN,
    INTERFACE_UP,
    INTERFACE_FLAP,
    LINEPROTO_DOWN,
    LINEPROTO_UP,
    LINEPROTO_FLAP,
    MESH_RESTORATION_REGULAR,
    MESH_RESTORATION_FAST,
    SONET_RESTORATION,
    LINK_CONGESTION,
    LINK_LOSS,
    OSPF_RECONVERGENCE,
    ROUTER_COST_IN_OUT,
    LINK_COST_OUT,
    LINK_COST_IN,
    CMD_COST_IN,
    CMD_COST_OUT,
    BGP_EGRESS_CHANGE,
    DELAY_INCREASE,
    LOSS_INCREASE,
    THROUGHPUT_DROP,
)

# -- Table III: BGP-flap application events ---------------------------------

EBGP_FLAP = "eBGP flap"
CUSTOMER_RESET = "Customer reset session"
EBGP_HTE = "eBGP HTE"

# -- Table V: CDN application events ----------------------------------------

CDN_RTT_INCREASE = "CDN round trip time increase"
CDN_THROUGHPUT_DROP = "CDN end-to-end throughput drop"
CDN_SERVER_ISSUE = "CDN server issue"
CDN_POLICY_CHANGE = "CDN assignment policy change"

# -- Table VII: PIM / Multicast-VPN application events ----------------------

PIM_ADJACENCY_CHANGE = "PIM Neighbor Adjacency Change"
PIM_CONFIG_CHANGE = "PIM Configuration change"
UPLINK_PIM_ADJACENCY_CHANGE = "Uplink PIM adjacency change"

# -- derived / virtual names used by Section IV studies ----------------------

LINECARD_CRASH = "Line-card crash"
