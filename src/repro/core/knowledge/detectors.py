"""Shared detection helpers used by event retrieval processes.

Flap pairing (a *down* followed by an *up* on the same location) and
baseline-relative anomaly detection for performance metrics.  These are
the "more sophisticated processing such as ... an anomaly detection
program" that Section II-A allows a retrieval process to be.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class TimedPoint:
    """A timestamped observation at a hashable location key."""

    timestamp: float
    key: Hashable
    payload: Any = None


def pair_flaps(
    downs: Sequence[TimedPoint],
    ups: Sequence[TimedPoint],
    window_seconds: float,
) -> List[Tuple[TimedPoint, TimedPoint]]:
    """Pair each *down* with the first *up* at the same key within a window.

    Unpaired downs (still down, or the up fell outside the window) are
    omitted — they are "down" events, not flaps.  Each up is consumed by
    at most one down.
    """
    ups_by_key: Dict[Hashable, List[TimedPoint]] = {}
    for up in sorted(ups, key=lambda p: p.timestamp):
        ups_by_key.setdefault(up.key, []).append(up)
    pairs: List[Tuple[TimedPoint, TimedPoint]] = []
    consumed: Dict[Hashable, int] = {}
    for down in sorted(downs, key=lambda p: p.timestamp):
        candidates = ups_by_key.get(down.key, [])
        index = consumed.get(down.key, 0)
        while index < len(candidates) and candidates[index].timestamp < down.timestamp:
            index += 1
        if index < len(candidates) and (
            candidates[index].timestamp - down.timestamp <= window_seconds
        ):
            pairs.append((down, candidates[index]))
            consumed[down.key] = index + 1
        else:
            consumed[down.key] = index
    return pairs


@dataclass(frozen=True)
class Anomaly:
    """One sample flagged against its trailing baseline."""

    timestamp: float
    key: Hashable
    value: float
    baseline: float


def detect_shift(
    samples: Iterable[Tuple[float, Hashable, float]],
    direction: str,
    factor: float,
    min_baseline_samples: int = 3,
    baseline_window: int = 12,
    absolute_floor: float = 0.0,
) -> List[Anomaly]:
    """Flag samples that shift from their per-key trailing median.

    ``direction`` is ``"increase"`` (value >= factor * baseline, e.g.
    delay or loss) or ``"decrease"`` (value <= baseline / factor, e.g.
    throughput).  ``absolute_floor`` suppresses noise on near-zero
    baselines (a loss series hovering at 0.0% should not alarm at
    0.001%).
    """
    if direction not in ("increase", "decrease"):
        raise ValueError(f"direction must be increase/decrease, got {direction!r}")
    if factor <= 1.0:
        raise ValueError("factor must exceed 1.0")
    history: Dict[Hashable, List[float]] = {}
    anomalies: List[Anomaly] = []
    for timestamp, key, value in sorted(samples, key=lambda s: s[0]):
        past = history.setdefault(key, [])
        if len(past) >= min_baseline_samples:
            baseline = statistics.median(past[-baseline_window:])
            if direction == "increase":
                flagged = value >= max(baseline * factor, baseline + absolute_floor)
            else:
                flagged = value <= min(
                    baseline / factor, baseline - absolute_floor
                ) and baseline > 0
            if flagged:
                anomalies.append(Anomaly(timestamp, key, value, baseline))
                # do not pollute the baseline with anomalous values
                continue
        past.append(value)
    return anomalies


def merge_intervals(
    points: Sequence[float], gap_seconds: float
) -> List[Tuple[float, float]]:
    """Merge point timestamps closer than ``gap_seconds`` into intervals."""
    intervals: List[Tuple[float, float]] = []
    for point in sorted(points):
        if intervals and point - intervals[-1][1] <= gap_seconds:
            intervals[-1] = (intervals[-1][0], point)
        else:
            intervals.append((point, point))
    return intervals
