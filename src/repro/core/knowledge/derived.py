"""Derived (refined) event signatures.

Section IV-B hits the limit of evidence-based diagnosis on a *cyclic*
causal relationship: "BGP flap causes CPU overload" and "CPU overload
causes BGP session timeout".  The paper's way out is "further refined
signatures such as searching for other potential causes of the high CPU
events to identify those that were not BGP-flap-induced" — and
Section VI lists dealing with such cycles as future work.

These combinators build refined signatures compositionally:

* :func:`exclude_preceded_by` — keep base instances *not* preceded by a
  suppressor event at the same router (e.g. "CPU high (spike), not
  explained by a preceding BGP flap burst": the exogenous CPU events
  that can legitimately explain a flap);
* :func:`require_preceded_by` — the complement, for drilling into the
  suppressed population.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from ..events import EventDefinition, EventInstance, RetrievalContext


def _same_scope(a: EventInstance, b: EventInstance) -> bool:
    """Same router where determinable, else same exact location."""
    try:
        return a.location.router_part == b.location.router_part
    except ValueError:
        return a.location == b.location


def _preceded(
    instance: EventInstance,
    suppressors: List[EventInstance],
    window: float,
    slack: float,
) -> bool:
    for suppressor in suppressors:
        if not _same_scope(instance, suppressor):
            continue
        lead = instance.start - suppressor.start
        if -slack <= lead <= window:
            return True
    return False


def _combined_retrieval(
    name: str,
    base: EventDefinition,
    suppressor: EventDefinition,
    window: float,
    slack: float,
    keep_preceded: bool,
) -> Callable[[RetrievalContext], Iterable[EventInstance]]:
    def retrieve(context: RetrievalContext) -> Iterable[EventInstance]:
        wide = RetrievalContext(
            store=context.store,
            start=context.start - window - slack,
            end=context.end + slack,
            params=context.params,
            services=context.services,
        )
        suppressors = suppressor.retrieve(wide)
        for instance in base.retrieve(context):
            preceded = _preceded(instance, suppressors, window, slack)
            if preceded == keep_preceded:
                yield EventInstance(
                    name=name,
                    start=instance.start,
                    end=instance.end,
                    location=instance.location,
                    info=instance.info,
                )

    return retrieve


def exclude_preceded_by(
    name: str,
    base: EventDefinition,
    suppressor: EventDefinition,
    window: float,
    slack: float = 5.0,
    description: str = "",
) -> EventDefinition:
    """Base instances NOT preceded by a same-router suppressor instance.

    ``window`` is how far back a suppressor can be and still explain the
    base event; ``slack`` tolerates timestamp noise around simultaneity.
    """
    return EventDefinition(
        name=name,
        location_type=base.location_type,
        retrieval=_combined_retrieval(name, base, suppressor, window, slack, False),
        description=description
        or f"{base.name} not preceded by {suppressor.name} within {window:.0f}s",
        data_source=base.data_source,
    )


def require_preceded_by(
    name: str,
    base: EventDefinition,
    suppressor: EventDefinition,
    window: float,
    slack: float = 5.0,
    description: str = "",
) -> EventDefinition:
    """Base instances that ARE preceded by a same-router suppressor."""
    return EventDefinition(
        name=name,
        location_type=base.location_type,
        retrieval=_combined_retrieval(name, base, suppressor, window, slack, True),
        description=description
        or f"{base.name} preceded by {suppressor.name} within {window:.0f}s",
        data_source=base.data_source,
    )
