"""Table I event definitions: the common-event layer of the Knowledge
Library.

Every definition is a retrieval process over the normalized store, per
Section II-A: syslog message signatures, SNMP threshold queries, OSPF
monitor inference, TACACS command matching, and anomaly detection over
the performance monitor.  Applications may override any of them (e.g.
re-threshold "Link congestion alarm" to 90%).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ...collector.sources import syslog as syslog_codes
from ...collector.sources.misc import (
    EVENT_MESH_FAST,
    EVENT_MESH_REGULAR,
    EVENT_SONET,
    METRIC_DELAY,
    METRIC_LOSS,
    METRIC_THROUGHPUT,
)
from ...collector.sources.snmp import (
    METRIC_CORRUPTED,
    METRIC_CPU,
    METRIC_LINK_UTIL,
    POLL_INTERVAL_SECONDS,
)
from ...routing.ospf import COST_OUT_WEIGHT
from ..events import EventDefinition, EventInstance, EventLibrary, RetrievalContext
from ..locations import Location, LocationType
from . import names
from .detectors import TimedPoint, detect_shift, merge_intervals, pair_flaps

#: Default down->up pairing window for flap events, seconds.
DEFAULT_FLAP_WINDOW = 600.0


# ---------------------------------------------------------------------------
# syslog-derived events


def _retrieve_router_reboot(context: RetrievalContext) -> Iterable[EventInstance]:
    for record in context.store.table("syslog").query(
        context.start, context.end, code=syslog_codes.CODE_RESTART
    ):
        yield EventInstance.make(
            names.ROUTER_REBOOT,
            record.timestamp,
            record.timestamp,
            Location.router(record["router"]),
        )


def _retrieve_cpu_spike(context: RetrievalContext) -> Iterable[EventInstance]:
    threshold = context.param("cpu_spike_threshold", 90)
    for record in context.store.table("syslog").query(
        context.start, context.end, code=syslog_codes.CODE_CPUHOG
    ):
        cpu = record.get("cpu_pct")
        if cpu is not None and cpu >= threshold:
            yield EventInstance.make(
                names.CPU_HIGH_SPIKE,
                record.timestamp,
                record.timestamp,
                Location.router(record["router"]),
                cpu_pct=cpu,
            )


def _updown_points(
    context: RetrievalContext, code: str, state: str
) -> List[TimedPoint]:
    points = []
    for record in context.store.table("syslog").query(
        context.start, context.end, code=code, state=state
    ):
        interface = record.get("interface")
        if interface is None:
            continue
        points.append(
            TimedPoint(record.timestamp, f"{record['router']}:{interface}")
        )
    return points


def _make_updown_retrievals(code: str, down_name: str, up_name: str, flap_name: str):
    """Build the down / up / flap retrieval triple for one syslog code."""

    def retrieve_down(context: RetrievalContext) -> Iterable[EventInstance]:
        for point in _updown_points(context, code, "down"):
            yield EventInstance.make(
                down_name, point.timestamp, point.timestamp,
                Location.interface(point.key),
            )

    def retrieve_up(context: RetrievalContext) -> Iterable[EventInstance]:
        for point in _updown_points(context, code, "up"):
            yield EventInstance.make(
                up_name, point.timestamp, point.timestamp,
                Location.interface(point.key),
            )

    def retrieve_flap(context: RetrievalContext) -> Iterable[EventInstance]:
        window = context.param("flap_window", DEFAULT_FLAP_WINDOW)
        # widen both edges so flaps straddling the window boundary are
        # still paired: a down before context.start may pair with an up
        # inside it, and a down inside may pair with an up after the end
        wide = RetrievalContext(
            store=context.store,
            start=context.start - window,
            end=context.end + window,
            params=context.params,
            services=context.services,
        )
        downs = _updown_points(wide, code, "down")
        ups = _updown_points(wide, code, "up")
        for down, up in pair_flaps(downs, ups, window):
            if up.timestamp < context.start or down.timestamp > context.end:
                continue
            yield EventInstance.make(
                flap_name, down.timestamp, up.timestamp,
                Location.interface(down.key),
            )

    return retrieve_down, retrieve_up, retrieve_flap


# ---------------------------------------------------------------------------
# SNMP-derived events


def _retrieve_cpu_average(context: RetrievalContext) -> Iterable[EventInstance]:
    threshold = context.param("cpu_avg_threshold", 80)
    # rows are stamped at interval end; the event interval starts one
    # poll earlier, so widen the row query to the right accordingly
    for record in context.store.table("snmp").query(
        context.start, context.end + POLL_INTERVAL_SECONDS, metric=METRIC_CPU
    ):
        if record["value"] >= threshold:
            yield EventInstance.make(
                names.CPU_HIGH_AVG,
                record.timestamp - POLL_INTERVAL_SECONDS,
                record.timestamp,
                Location.router(record["router"]),
                cpu_pct=record["value"],
            )


def _interface_threshold_retrieval(name: str, metric: str, param_key: str, default: float):
    def retrieve(context: RetrievalContext) -> Iterable[EventInstance]:
        threshold = context.param(param_key, default)
        for record in context.store.table("snmp").query(
            context.start, context.end + POLL_INTERVAL_SECONDS, metric=metric
        ):
            interface = record.get("interface")
            if interface is None or record["value"] < threshold:
                continue
            yield EventInstance.make(
                name,
                record.timestamp - POLL_INTERVAL_SECONDS,
                record.timestamp,
                Location.interface(f"{record['router']}:{interface}"),
                value=record["value"],
            )

    return retrieve


# ---------------------------------------------------------------------------
# layer-1 events


def _layer1_retrieval(name: str, event: str):
    def retrieve(context: RetrievalContext) -> Iterable[EventInstance]:
        for record in context.store.table("layer1").query(
            context.start, context.end, event=event
        ):
            yield EventInstance.make(
                name,
                record.timestamp,
                record.timestamp,
                Location.layer1_device(record["device"]),
                circuit=record.get("circuit"),
            )

    return retrieve


# ---------------------------------------------------------------------------
# OSPF monitor events


def _retrieve_ospf_reconvergence(context: RetrievalContext) -> Iterable[EventInstance]:
    """One instance per link per re-convergence episode."""
    settle = context.param("reconvergence_settle", 10.0)
    by_link: Dict[str, List[float]] = {}
    # unfiltered window query: the columnar view is zero-copy on the
    # memory backend, and the timestamp rides alongside each record
    columns = context.store.table("ospfmon").query_columns(context.start, context.end)
    for timestamp, record in zip(columns.timestamps, columns.records):
        by_link.setdefault(record["link"], []).append(timestamp)
    for link, points in sorted(by_link.items()):
        for start, end in merge_intervals(points, settle):
            yield EventInstance.make(
                names.OSPF_RECONVERGENCE, start, end, Location.logical_link(link)
            )


def _classify_cost_change(
    history, link: str, timestamp: float, weight: int
) -> Optional[str]:
    """out/in/None for one weight update against the pre-update weight."""
    previous = history.weights_at(timestamp - 1e-6).get(link)
    now_out = weight >= COST_OUT_WEIGHT
    was_out = previous is not None and previous >= COST_OUT_WEIGHT
    if now_out and not was_out:
        return "out"
    if was_out and not now_out:
        return "in"
    return None


def _cost_retrieval(name: str, wanted: str):
    def retrieve(context: RetrievalContext) -> Iterable[EventInstance]:
        history = context.service("weight_history")
        columns = context.store.table("ospfmon").query_columns(
            context.start, context.end
        )
        for timestamp, record in zip(columns.timestamps, columns.records):
            change = _classify_cost_change(
                history, record["link"], timestamp, record["weight"]
            )
            if change == wanted:
                yield EventInstance.make(
                    name,
                    timestamp,
                    timestamp,
                    Location.logical_link(record["link"]),
                )

    return retrieve


def _retrieve_router_cost(context: RetrievalContext) -> Iterable[EventInstance]:
    """All of a router's links costed in/out together -> router event."""
    history = context.service("weight_history")
    network = context.service("network")
    group_window = context.param("router_cost_window", 15.0)
    by_router: Dict[Tuple[str, str], List[float]] = {}
    columns = context.store.table("ospfmon").query_columns(context.start, context.end)
    for timestamp, record in zip(columns.timestamps, columns.records):
        change = _classify_cost_change(
            history, record["link"], timestamp, record["weight"]
        )
        if change is None:
            continue
        link = network.logical_links.get(record["link"])
        if link is None:
            continue
        for router in link.routers:
            by_router.setdefault((router, change), []).append(timestamp)
    for (router, change), points in sorted(by_router.items()):
        n_links = len(network.logical_links_of_router(router))
        for start, end in merge_intervals(points, group_window):
            count = sum(1 for p in points if start <= p <= end)
            # a maintenance cost-out touches (nearly) all links of the router
            if n_links >= 2 and count >= n_links:
                yield EventInstance.make(
                    names.ROUTER_COST_IN_OUT,
                    start,
                    end,
                    Location.router(router),
                    direction=change,
                )


# ---------------------------------------------------------------------------
# TACACS command events

COST_OUT_COMMAND_MARKER = "cost 65535"


def _cmd_retrieval(name: str, direction: str):
    def retrieve(context: RetrievalContext) -> Iterable[EventInstance]:
        columns = context.store.table("tacacs").query_columns(
            context.start, context.end
        )
        for timestamp, record in zip(columns.timestamps, columns.records):
            command = record.get("command", "")
            interface = record.get("interface")
            if interface is None or "cost" not in command:
                continue
            is_out = COST_OUT_COMMAND_MARKER in command
            if (direction == "out") != is_out:
                continue
            yield EventInstance.make(
                name,
                timestamp,
                timestamp,
                Location.interface(f"{record['router']}:{interface}"),
                user=record.get("user"),
            )

    return retrieve


# ---------------------------------------------------------------------------
# BGP monitor events


def _retrieve_bgp_egress_change(context: RetrievalContext) -> Iterable[EventInstance]:
    """A prefix whose set of available egresses changed."""
    log = context.service("bgp_log")
    for update in log.updates_between(context.start, context.end):
        prefix = update.route.prefix
        before = {r.egress_router for r in log.routes_at(prefix, update.timestamp - 1e-6)}
        after = {r.egress_router for r in log.routes_at(prefix, update.timestamp)}
        if before != after and before:
            yield EventInstance.make(
                names.BGP_EGRESS_CHANGE,
                update.timestamp,
                update.timestamp,
                Location.prefix(prefix),
                old_egresses=tuple(sorted(before)),
                new_egresses=tuple(sorted(after)),
            )


# ---------------------------------------------------------------------------
# performance monitor events


def _perf_retrieval(name: str, metric: str, direction: str, factor_key: str):
    def retrieve(context: RetrievalContext) -> Iterable[EventInstance]:
        factor = context.param(factor_key, 1.5)
        lookback = context.param("perf_baseline_lookback", 3600.0)
        floor = context.param("perf_absolute_floor", 0.5)
        interval = context.param("perf_interval", POLL_INTERVAL_SECONDS)
        samples = [
            (r.timestamp, (r["source"], r["destination"]), r["value"])
            for r in context.store.table("perfmon").query(
                context.start - lookback, context.end + interval, metric=metric
            )
        ]
        for anomaly in detect_shift(samples, direction, factor, absolute_floor=floor):
            if anomaly.timestamp < context.start:
                continue
            source, destination = anomaly.key
            yield EventInstance.make(
                name,
                anomaly.timestamp - interval,
                anomaly.timestamp,
                Location.pair(LocationType.INGRESS_EGRESS, source, destination),
                value=anomaly.value,
                baseline=anomaly.baseline,
            )

    return retrieve


# ---------------------------------------------------------------------------
# library assembly


def build_common_events() -> EventLibrary:
    """The Knowledge Library's common-event layer (Table I)."""
    library = EventLibrary()

    def add(name, location_type, retrieval, description, data_source):
        library.register(
            EventDefinition(name, location_type, retrieval, description, data_source)
        )

    add(
        names.ROUTER_REBOOT, LocationType.ROUTER, _retrieve_router_reboot,
        "router was rebooted", "syslog",
    )
    add(
        names.CPU_HIGH_AVG, LocationType.ROUTER, _retrieve_cpu_average,
        ">= 80% average utilization in 5-minute intervals", "SNMP",
    )
    add(
        names.CPU_HIGH_SPIKE, LocationType.ROUTER, _retrieve_cpu_spike,
        ">= 90% average utilization over the past 5 seconds", "syslog",
    )

    link_down, link_up, link_flap = _make_updown_retrievals(
        syslog_codes.CODE_LINK,
        names.INTERFACE_DOWN, names.INTERFACE_UP, names.INTERFACE_FLAP,
    )
    add(names.INTERFACE_DOWN, LocationType.INTERFACE, link_down,
        "LINK-3-UPDOWN msg", "syslog")
    add(names.INTERFACE_UP, LocationType.INTERFACE, link_up,
        "LINK-3-UPDOWN msg", "syslog")
    add(names.INTERFACE_FLAP, LocationType.INTERFACE, link_flap,
        "LINK-3-UPDOWN msg", "syslog")

    proto_down, proto_up, proto_flap = _make_updown_retrievals(
        syslog_codes.CODE_LINEPROTO,
        names.LINEPROTO_DOWN, names.LINEPROTO_UP, names.LINEPROTO_FLAP,
    )
    add(names.LINEPROTO_DOWN, LocationType.INTERFACE, proto_down,
        "LINEPROTO-5-UPDOWN msg", "syslog")
    add(names.LINEPROTO_UP, LocationType.INTERFACE, proto_up,
        "LINEPROTO-5-UPDOWN msg", "syslog")
    add(names.LINEPROTO_FLAP, LocationType.INTERFACE, proto_flap,
        "LINEPROTO-5-UPDOWN msg", "syslog")

    add(
        names.MESH_RESTORATION_REGULAR, LocationType.LAYER1_DEVICE,
        _layer1_retrieval(names.MESH_RESTORATION_REGULAR, EVENT_MESH_REGULAR),
        "regular restoration events in layer-1 optical mesh network",
        "layer-1 device log",
    )
    add(
        names.MESH_RESTORATION_FAST, LocationType.LAYER1_DEVICE,
        _layer1_retrieval(names.MESH_RESTORATION_FAST, EVENT_MESH_FAST),
        "fast restoration events in layer-1 optical mesh network",
        "layer-1 device log",
    )
    add(
        names.SONET_RESTORATION, LocationType.LAYER1_DEVICE,
        _layer1_retrieval(names.SONET_RESTORATION, EVENT_SONET),
        "restoration events in the layer-1 SONET network",
        "layer-1 device log",
    )

    add(
        names.LINK_CONGESTION, LocationType.INTERFACE,
        _interface_threshold_retrieval(
            names.LINK_CONGESTION, METRIC_LINK_UTIL, "link_congestion_threshold", 80.0
        ),
        ">= 80% link utilization in 5-minute intervals", "SNMP",
    )
    add(
        names.LINK_LOSS, LocationType.INTERFACE,
        _interface_threshold_retrieval(
            names.LINK_LOSS, METRIC_CORRUPTED, "link_loss_threshold", 100.0
        ),
        ">= 100 corrupted packets in 5-minute intervals", "SNMP",
    )

    add(
        names.OSPF_RECONVERGENCE, LocationType.LOGICAL_LINK,
        _retrieve_ospf_reconvergence,
        "link weight update in OSPF", "OSPF monitor",
    )
    add(
        names.ROUTER_COST_IN_OUT, LocationType.ROUTER, _retrieve_router_cost,
        "Router cost in/out inferred from link weight changes", "OSPF monitor",
    )
    add(
        names.LINK_COST_OUT, LocationType.LOGICAL_LINK,
        _cost_retrieval(names.LINK_COST_OUT, "out"),
        "Link cost out or link down inferred from link weight changes",
        "OSPF monitor",
    )
    add(
        names.LINK_COST_IN, LocationType.LOGICAL_LINK,
        _cost_retrieval(names.LINK_COST_IN, "in"),
        "Link cost in or link up inferred from link weight changes",
        "OSPF monitor",
    )

    add(
        names.CMD_COST_IN, LocationType.INTERFACE, _cmd_retrieval(names.CMD_COST_IN, "in"),
        "Command typed by operators to cost in links", "TACACS",
    )
    add(
        names.CMD_COST_OUT, LocationType.INTERFACE, _cmd_retrieval(names.CMD_COST_OUT, "out"),
        "Command typed by operators to cost out links", "TACACS",
    )

    add(
        names.BGP_EGRESS_CHANGE, LocationType.PREFIX, _retrieve_bgp_egress_change,
        "BGP next hop to some external prefix changed", "BGP monitor",
    )

    add(
        names.DELAY_INCREASE, LocationType.INGRESS_EGRESS,
        _perf_retrieval(names.DELAY_INCREASE, METRIC_DELAY, "increase", "delay_factor"),
        "delay increase between two PoPs", "performance monitor",
    )
    add(
        names.LOSS_INCREASE, LocationType.INGRESS_EGRESS,
        _perf_retrieval(names.LOSS_INCREASE, METRIC_LOSS, "increase", "loss_factor"),
        "loss increase between two PoPs", "performance monitor",
    )
    add(
        names.THROUGHPUT_DROP, LocationType.INGRESS_EGRESS,
        _perf_retrieval(
            names.THROUGHPUT_DROP, METRIC_THROUGHPUT, "decrease", "throughput_factor"
        ),
        "throughput drop between two PoPs", "performance monitor",
    )

    return library
