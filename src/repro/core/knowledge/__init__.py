"""The RCA Knowledge Library (Fig. 1): common event definitions
(Table I) and common diagnosis-rule templates (Table II).

:class:`KnowledgeLibrary` bundles both layers; applications scope the
event library (so their overrides stay local) and instantiate rule
templates with their own priorities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events import EventLibrary
from . import names
from .detectors import Anomaly, TimedPoint, detect_shift, merge_intervals, pair_flaps
from .events import DEFAULT_FLAP_WINDOW, build_common_events
from .rules import (
    SLACK,
    TABLE2_PAIRS,
    RuleCatalog,
    RuleTemplate,
    build_common_rules,
    expansion,
)


@dataclass
class KnowledgeLibrary:
    """Common events + common rules, instantiated once and shared."""

    events: EventLibrary = field(default_factory=build_common_events)
    rules: RuleCatalog = field(default_factory=build_common_rules)

    def scoped_events(self) -> EventLibrary:
        """A per-application event library layered over the common one."""
        return self.events.scoped()


__all__ = [
    "Anomaly",
    "DEFAULT_FLAP_WINDOW",
    "KnowledgeLibrary",
    "RuleCatalog",
    "RuleTemplate",
    "SLACK",
    "TABLE2_PAIRS",
    "TimedPoint",
    "build_common_events",
    "build_common_rules",
    "detect_shift",
    "expansion",
    "merge_intervals",
    "names",
    "pair_flaps",
]
