"""Event model: definitions, instances and the definition library.

Section II-A: an *event definition* is a tuple (event-name, location
type, retrieval process, additional descriptive information); the
retrieval process "points to the actual scripts/queries needed to obtain
the matching event instances".  An *event instance* is (event-name,
start-time, end-time, location, additional info).

Here the retrieval process is a callable taking a
:class:`RetrievalContext` (the store plus a time range and tunable
parameters) and yielding :class:`EventInstance` objects.  Definitions
live in an :class:`EventLibrary`; applications may *redefine* any library
event ("the event 'link congestion alarm' ... can be easily redefined as
'>= 90% link utilization'") by registering an override.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..collector.store import DataStore
from .locations import Location, LocationType


@dataclass(frozen=True)
class EventInstance:
    """One occurrence of an event: when, where and extra detail."""

    name: str
    start: float
    end: float
    location: Location
    info: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"event {self.name!r} ends ({self.end}) before start ({self.start})"
            )

    def __hash__(self) -> int:
        # instances sit in dedupe sets and cache keys on the diagnosis
        # hot path; the generated frozen-dataclass hash would re-hash
        # the nested location/info tuple on every lookup
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash(
                (self.name, self.start, self.end, self.location, self.info)
            )
            object.__setattr__(self, "_hash", value)
        return value

    @classmethod
    def make(
        cls,
        name: str,
        start: float,
        end: float,
        location: Location,
        **info: Any,
    ) -> "EventInstance":
        return cls(name, start, end, location, tuple(sorted(info.items())))

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.start, self.end)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def get(self, key: str, default: Any = None) -> Any:
        """Field value by name, with a default when absent."""
        for name, value in self.info:
            if name == key:
                return value
        return default

    def __str__(self) -> str:
        return f"{self.name}@{self.location} [{self.start:.0f},{self.end:.0f}]"


@dataclass
class RetrievalContext:
    """What a retrieval process gets: the store, a window, parameters.

    ``params`` carries per-application overrides (thresholds, flap
    pairing windows); ``services`` carries shared substrate handles that
    some retrievals need (e.g. the OSPF weight history for cost-in/out
    inference).  ``location_hint`` optionally narrows retrieval to
    locations relevant to one symptom — a pushdown, never a correctness
    requirement.
    """

    store: DataStore
    start: float
    end: float
    params: Dict[str, Any] = field(default_factory=dict)
    services: Dict[str, Any] = field(default_factory=dict)
    location_hint: Optional[Dict[str, Any]] = None

    def param(self, key: str, default: Any = None) -> Any:
        """Retrieval parameter by key, with a default."""
        return self.params.get(key, default)

    def service(self, key: str) -> Any:
        """Substrate handle by key; raises with the available keys."""
        try:
            return self.services[key]
        except KeyError:
            raise KeyError(
                f"retrieval requires service {key!r}; "
                f"available: {sorted(self.services)}"
            ) from None


RetrievalProcess = Callable[[RetrievalContext], Iterable[EventInstance]]

#: An instance's canonical identity: (name, location parts, start rounded
#: to 0.1 s).  Hashable and order-insensitive to retrieval jitter.
InstanceKey = Tuple[str, Tuple[str, ...], float]


def instance_key(instance: EventInstance) -> InstanceKey:
    """Canonical identity of an event instance.

    Two retrievals of the same underlying occurrence must map to the
    same key even when float arithmetic wobbles in the sub-decisecond
    range.  This single definition backs both the streaming engine's
    de-duplication and the service layer's result cache — they must
    agree, or a symptom deduped by one would be re-diagnosed by the
    other.
    """
    return (instance.name, instance.location.parts, round(instance.start, 1))


@dataclass(frozen=True)
class EventDefinition:
    """(event-name, location type, retrieval process, description)."""

    name: str
    location_type: LocationType
    retrieval: RetrievalProcess
    description: str = ""
    data_source: str = ""

    def retrieve(self, context: RetrievalContext) -> List[EventInstance]:
        """Run the retrieval process, validating instance conformance."""
        instances = []
        for instance in self.retrieval(context):
            if instance.name != self.name:
                raise ValueError(
                    f"retrieval for {self.name!r} produced instance named "
                    f"{instance.name!r}"
                )
            if instance.location.type is not self.location_type:
                raise ValueError(
                    f"event {self.name!r} declares location type "
                    f"{self.location_type.value} but produced "
                    f"{instance.location.type.value}"
                )
            instances.append(instance)
        instances.sort(key=lambda i: (i.start, i.end))
        return instances

    def redefined(self, retrieval: RetrievalProcess, description: str = "") -> "EventDefinition":
        """A copy of this definition with a replacement retrieval."""
        return replace(
            self, retrieval=retrieval, description=description or self.description
        )


class EventLibrary:
    """Named event definitions with application-level overrides.

    The base layer is the shared Knowledge Library; each application may
    stack overrides on top without mutating the shared definitions.
    """

    def __init__(self, base: Optional["EventLibrary"] = None) -> None:
        self._base = base
        self._definitions: Dict[str, EventDefinition] = {}

    def register(self, definition: EventDefinition) -> EventDefinition:
        """Register a new definition; duplicates are rejected."""
        if definition.name in self._definitions:
            raise ValueError(f"event {definition.name!r} already registered")
        self._definitions[definition.name] = definition
        return definition

    def override(self, definition: EventDefinition) -> EventDefinition:
        """Register or replace — the application-redefinition path."""
        self._definitions[definition.name] = definition
        return definition

    def get(self, name: str) -> EventDefinition:
        """Definition by name, consulting base libraries; raises KeyError."""
        if name in self._definitions:
            return self._definitions[name]
        if self._base is not None:
            return self._base.get(name)
        raise KeyError(f"no event definition named {name!r}")

    def __contains__(self, name: str) -> bool:
        if name in self._definitions:
            return True
        return self._base is not None and name in self._base

    def names(self) -> List[str]:
        """All definition names visible from this library."""
        collected = set(self._definitions)
        if self._base is not None:
            collected.update(self._base.names())
        return sorted(collected)

    def scoped(self) -> "EventLibrary":
        """A child library that sees this one but keeps its own overrides."""
        return EventLibrary(base=self)


def retrieve_events(
    library: EventLibrary,
    names: Iterable[str],
    context: RetrievalContext,
) -> Dict[str, List[EventInstance]]:
    """Retrieve instances for several event definitions at once."""
    return {name: library.get(name).retrieve(context) for name in names}
