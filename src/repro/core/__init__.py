"""G-RCA core: the paper's primary contribution.

Event model, location/service-dependency model, spatial-temporal
correlation, diagnosis graphs, the generic RCA engine, rule-based and
Bayesian reasoning, the Knowledge Library, the Correlation Tester and
the Result Browser.
"""

from .browser import BreakdownRow, ResultBrowser
from .calibration import (
    CalibrationResult,
    LagSample,
    calibrate_temporal_rule,
    coverage_curve,
    pair_for_calibration,
)
from .engine import Diagnosis, EngineConfig, RcaEngine
from .exploration import CoOccurrence, co_occurring_signatures, format_exploration
from .events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
    retrieve_events,
)
from .graph import DiagnosisGraph, DiagnosisRule, GraphError
from .knowledge import KnowledgeLibrary, names
from .locations import Location, LocationType
from .reasoning import (
    BayesianEngine,
    BayesianVerdict,
    FuzzyRatio,
    MatchedEvidence,
    RootCauseModel,
    RuleBasedResult,
    UNKNOWN,
    train_ratios_from_labels,
)
from .knowledge.derived import exclude_preceded_by, require_preceded_by
from .spatial import JoinLevel, LocationResolver, SpatialJoinRule
from .streaming import FeedReplayer, StreamingConfig, StreamingRca
from .temporal import ExpandOption, TemporalExpansion, TemporalJoinRule

__all__ = [
    "CalibrationResult",
    "CoOccurrence",
    "co_occurring_signatures",
    "format_exploration",
    "FeedReplayer",
    "LagSample",
    "StreamingConfig",
    "StreamingRca",
    "calibrate_temporal_rule",
    "coverage_curve",
    "exclude_preceded_by",
    "pair_for_calibration",
    "require_preceded_by",
    "BayesianEngine",
    "BayesianVerdict",
    "BreakdownRow",
    "Diagnosis",
    "DiagnosisGraph",
    "DiagnosisRule",
    "EngineConfig",
    "EventDefinition",
    "EventInstance",
    "EventLibrary",
    "ExpandOption",
    "FuzzyRatio",
    "GraphError",
    "JoinLevel",
    "KnowledgeLibrary",
    "Location",
    "LocationResolver",
    "LocationType",
    "MatchedEvidence",
    "ResultBrowser",
    "RetrievalContext",
    "RcaEngine",
    "RootCauseModel",
    "RuleBasedResult",
    "SpatialJoinRule",
    "TemporalExpansion",
    "TemporalJoinRule",
    "UNKNOWN",
    "names",
    "retrieve_events",
    "train_ratios_from_labels",
]
