"""SCORE-style shared-risk set-cover localization (Section V).

The paper positions SCORE [27] and the black-hole work [28] as
complementary: "G-RCA could actually incorporate SCORE-like algorithms
to infer what is happening if there is no direct evidence."  This
module does exactly that as a third reasoning engine.

The model: each *risk group* (a layer-1 device, a line card, a router)
explains a set of symptom locations — its Shared Risk Link Group.  When
many symptoms fire together with no joined diagnostic evidence, the
most plausible explanation is the smallest set of risk groups covering
them (greedy weighted set cover, as in SCORE), subject to a hit-ratio
threshold so a risk group is only blamed when enough of what it would
break actually broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..locations import Location
from ..spatial import JoinLevel, LocationResolver


@dataclass(frozen=True)
class RiskGroup:
    """One potential shared cause and the symptom keys it can explain."""

    name: str
    kind: str  # "layer1-device" | "line-card" | "router" | custom
    members: FrozenSet[str]


@dataclass(frozen=True)
class RiskHypothesis:
    """One risk group selected by the cover, with its explanatory stats."""

    group: RiskGroup
    explained: FrozenSet[str]
    hit_ratio: float  # |explained ∩ failed| / |members|
    coverage: float  # |explained| / |failed at selection time|


@dataclass
class ScoreResult:
    """Outcome of a set-cover localization."""

    hypotheses: List[RiskHypothesis]
    unexplained: FrozenSet[str]

    @property
    def explained_fraction(self) -> float:
        explained = sum(len(h.explained) for h in self.hypotheses)
        total = explained + len(self.unexplained)
        return explained / total if total else 0.0


class ScoreEngine:
    """Greedy weighted set cover over risk groups (the SCORE heuristic)."""

    def __init__(self, groups: Iterable[RiskGroup], min_hit_ratio: float = 0.5) -> None:
        if not 0.0 < min_hit_ratio <= 1.0:
            raise ValueError("min_hit_ratio must be in (0, 1]")
        self.groups = list(groups)
        names = [g.name for g in self.groups]
        if len(names) != len(set(names)):
            raise ValueError("duplicate risk group names")
        self.min_hit_ratio = min_hit_ratio

    def localize(self, failed: Iterable[str]) -> ScoreResult:
        """Cover the failed symptom keys with as few risk groups as possible.

        At each step the group with the best hit ratio (ties: most newly
        explained, then name) is chosen, provided its hit ratio meets
        the threshold.  Remaining keys come back as ``unexplained``.
        """
        remaining: Set[str] = set(failed)
        hypotheses: List[RiskHypothesis] = []
        while remaining:
            best: Optional[Tuple[float, int, str, RiskGroup, Set[str]]] = None
            for group in self.groups:
                explained = remaining & group.members
                if not explained:
                    continue
                hit_ratio = len(explained) / len(group.members)
                if hit_ratio < self.min_hit_ratio:
                    continue
                # deterministic: higher hit ratio, then more newly
                # explained, then lexicographically smaller name
                if (
                    best is None
                    or hit_ratio > best[0]
                    or (hit_ratio == best[0] and len(explained) > best[1])
                    or (
                        hit_ratio == best[0]
                        and len(explained) == best[1]
                        and group.name < best[2]
                    )
                ):
                    best = (hit_ratio, len(explained), group.name, group, explained)
            if best is None:
                break
            hit_ratio, _count, _name, group, explained = best
            hypotheses.append(
                RiskHypothesis(
                    group=group,
                    explained=frozenset(explained),
                    hit_ratio=hit_ratio,
                    coverage=len(explained) / len(remaining),
                )
            )
            remaining -= explained
        return ScoreResult(hypotheses=hypotheses, unexplained=frozenset(remaining))


_LEVEL_LOCATION = {
    JoinLevel.LAYER1_DEVICE: Location.layer1_device,
    JoinLevel.LINE_CARD: Location.line_card,
    JoinLevel.ROUTER: Location.router,
    JoinLevel.LOGICAL_LINK: Location.logical_link,
    JoinLevel.PHYSICAL_LINK: Location.physical_link,
    JoinLevel.INTERFACE: Location.interface,
}

_TYPE_LEVEL = {
    "interface": JoinLevel.INTERFACE,
    "logical-link": JoinLevel.LOGICAL_LINK,
    "router": JoinLevel.ROUTER,
    "physical-link": JoinLevel.PHYSICAL_LINK,
}


def risk_groups_from_topology(
    resolver: LocationResolver,
    symptom_locations: Sequence[Location],
    timestamp: float,
    kinds: Tuple[JoinLevel, ...] = (
        JoinLevel.LAYER1_DEVICE,
        JoinLevel.LINE_CARD,
        JoinLevel.ROUTER,
    ),
) -> List[RiskGroup]:
    """Build the risk model from the spatial resolver.

    Candidate risk elements are found by expanding each symptom location
    to each risk kind (a flapping interface suggests its line card, its
    router and the layer-1 devices under it).  Crucially, each group's
    members are the element's *full blast radius* — every symptom-level
    location the element could break, not just the observed ones — so
    that a line card fully covered by failures outranks its router,
    most of whose other ports stayed up (the SCORE hit-ratio principle).
    """
    if not symptom_locations:
        return []
    symptom_level = _TYPE_LEVEL.get(symptom_locations[0].type.value)
    if symptom_level is None:
        raise ValueError(
            f"cannot build a risk model over {symptom_locations[0].type.value} "
            "symptom locations"
        )
    location_ctor = _LEVEL_LOCATION[symptom_level]
    candidates: Set[Tuple[JoinLevel, str]] = set()
    for location in symptom_locations:
        for level in kinds:
            for element in resolver.expand(location, level, timestamp):
                candidates.add((level, element))
    groups: List[RiskGroup] = []
    for level, element in sorted(candidates, key=lambda c: (c[0].value, c[1])):
        element_location = _LEVEL_LOCATION[level](element)
        blast_radius = resolver.expand(element_location, symptom_level, timestamp)
        members = frozenset(str(location_ctor(item)) for item in blast_radius)
        if members:
            groups.append(RiskGroup(name=element, kind=level.value, members=members))
    return groups
