"""Reasoning engines: rule-based priority search and Bayesian inference."""

from .bayesian import (
    BayesianEngine,
    BayesianVerdict,
    FuzzyRatio,
    RootCauseModel,
    resolve_ratio,
    train_ratios_from_labels,
)
from .rule_based import UNKNOWN, MatchedEvidence, RuleBasedResult, reason

__all__ = [
    "BayesianEngine",
    "BayesianVerdict",
    "FuzzyRatio",
    "MatchedEvidence",
    "RootCauseModel",
    "RuleBasedResult",
    "UNKNOWN",
    "reason",
    "resolve_ratio",
    "train_ratios_from_labels",
]
