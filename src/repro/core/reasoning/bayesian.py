"""Naive-Bayes inference engine (Section II-D.2, Fig. 8).

Root causes are the classes; the presence or absence of diagnostic
evidence events are the features.  The engine ranks root causes by the
likelihood ratio of equation (2):

    argmax_r  p(r)/p(~r) * prod_i p(e_i|r)/p(e_i|~r)

Parameters are ratios, which operators may give either numerically or as
the fuzzy values Low / Medium / High = 2 / 100 / 20000 ("multiplying a
constant scaling factor does not change the final results", so scaled
integers replace sub-unit probabilities).

Key capabilities beyond rule-based reasoning:

* *virtual* (unobservable) root causes — classes with no direct
  signature, supported only through the pattern of other evidence;
* joint diagnosis of multiple symptom instances: per-symptom evidence
  likelihoods multiply, so a cause consistent with *all* grouped
  symptoms (the Section IV-C line-card crash) dominates causes that
  explain each symptom separately.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union


class FuzzyRatio(enum.Enum):
    """Operator-friendly discrete likelihood ratios."""

    LOW = 2.0
    MEDIUM = 100.0
    HIGH = 20000.0


RatioValue = Union[float, int, FuzzyRatio, str]

_FUZZY_BY_NAME = {member.name: member for member in FuzzyRatio}


def resolve_ratio(value: RatioValue) -> float:
    """Accept a number, a :class:`FuzzyRatio`, or ``"low"``/``"high"``..."""
    if isinstance(value, FuzzyRatio):
        return value.value
    if isinstance(value, str):
        member = _FUZZY_BY_NAME.get(value.strip().upper())
        if member is None:
            raise ValueError(f"unknown fuzzy ratio {value!r}; use Low/Medium/High")
        return member.value
    ratio = float(value)
    if ratio <= 0:
        raise ValueError(f"likelihood ratios must be positive, got {ratio}")
    return ratio


@dataclass
class RootCauseModel:
    """One class of the classifier.

    ``evidence_ratios[e]`` is p(e|r)/p(e|~r) applied when evidence ``e``
    is observed; ``absence_ratios[e]`` is p(~e|r)/p(~e|~r) applied when
    ``e`` is a modelled feature but absent (default 1.0: silence is
    uninformative unless the operator says otherwise).
    """

    name: str
    prior_ratio: RatioValue = 1.0
    evidence_ratios: Dict[str, RatioValue] = field(default_factory=dict)
    absence_ratios: Dict[str, RatioValue] = field(default_factory=dict)
    #: True for virtual root causes with no direct observable signature
    virtual: bool = False

    def log_likelihood(self, observed: Set[str], feature_space: Set[str]) -> float:
        """Log of prior * evidence ratios for one symptom's features."""
        total = math.log(resolve_ratio(self.prior_ratio))
        for feature in feature_space:
            if feature in observed:
                ratio = self.evidence_ratios.get(feature)
            else:
                ratio = self.absence_ratios.get(feature)
            if ratio is not None:
                total += math.log(resolve_ratio(ratio))
        return total


@dataclass(frozen=True)
class BayesianVerdict:
    """Ranked outcome of an inference call."""

    scores: Tuple[Tuple[str, float], ...]  # (root cause, log likelihood ratio)

    @property
    def best(self) -> str:
        return self.scores[0][0]

    @property
    def ranked(self) -> List[str]:
        return [name for name, _ in self.scores]

    def margin(self) -> float:
        """Log-ratio gap between the top two causes (confidence proxy)."""
        if len(self.scores) < 2:
            return math.inf
        return self.scores[0][1] - self.scores[1][1]


class BayesianEngine:
    """Naive-Bayes classifier over root-cause models."""

    def __init__(self, models: Iterable[RootCauseModel]) -> None:
        self.models: List[RootCauseModel] = list(models)
        if not self.models:
            raise ValueError("at least one root-cause model is required")
        names = [m.name for m in self.models]
        if len(names) != len(set(names)):
            raise ValueError("duplicate root-cause model names")
        self.feature_space: Set[str] = set()
        for model in self.models:
            self.feature_space.update(model.evidence_ratios)
            self.feature_space.update(model.absence_ratios)

    def classify(self, observed: Iterable[str]) -> BayesianVerdict:
        """Rank root causes for one symptom's observed evidence set."""
        observed_set = set(observed)
        scored = [
            (model.name, model.log_likelihood(observed_set, self.feature_space))
            for model in self.models
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return BayesianVerdict(scores=tuple(scored))

    def classify_group(self, observations: Sequence[Iterable[str]]) -> BayesianVerdict:
        """Deduce a common root cause for several symptom instances.

        The prior enters once; per-symptom evidence likelihoods multiply
        (sum in log space).  This is what lets 133 eBGP flaps on one
        line card overwhelm the per-flap "interface issue" explanation.
        """
        if not observations:
            raise ValueError("classify_group needs at least one observation")
        scored = []
        for model in self.models:
            prior = math.log(resolve_ratio(model.prior_ratio))
            evidence_total = 0.0
            for observed in observations:
                evidence_total += model.log_likelihood(
                    set(observed), self.feature_space
                ) - math.log(resolve_ratio(model.prior_ratio))
            scored.append((model.name, prior + evidence_total))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return BayesianVerdict(scores=tuple(scored))

    def model(self, name: str) -> RootCauseModel:
        """Look up a root-cause model by name."""
        for model in self.models:
            if model.name == name:
                return model
        raise KeyError(f"no root-cause model named {name!r}")


def train_ratios_from_labels(
    labelled: Sequence[Tuple[str, Set[str]]],
    smoothing: float = 1.0,
) -> List[RootCauseModel]:
    """Bootstrap models from (root cause, evidence set) classified history.

    The paper notes the ratios "can be trained from classified
    historical data, which we can bootstrap using the rule-based
    reasoning".  Uses add-``smoothing`` (Laplace) estimation of
    p(e|r)/p(e|~r) and p(r)/p(~r).
    """
    if not labelled:
        raise ValueError("no labelled data")
    causes = sorted({cause for cause, _ in labelled})
    features = sorted({f for _, evidence in labelled for f in evidence})
    total = len(labelled)
    models = []
    for cause in causes:
        with_cause = [e for c, e in labelled if c == cause]
        without_cause = [e for c, e in labelled if c != cause]
        n_r = len(with_cause)
        n_not = len(without_cause)
        prior = (n_r + smoothing) / (n_not + smoothing)
        evidence_ratios: Dict[str, RatioValue] = {}
        absence_ratios: Dict[str, RatioValue] = {}
        for feature in features:
            p_e_r = (sum(feature in e for e in with_cause) + smoothing) / (
                n_r + 2 * smoothing
            )
            p_e_not = (sum(feature in e for e in without_cause) + smoothing) / (
                n_not + 2 * smoothing
            )
            evidence_ratios[feature] = p_e_r / p_e_not
            absence_ratios[feature] = (1 - p_e_r) / (1 - p_e_not)
        models.append(
            RootCauseModel(
                name=cause,
                prior_ratio=prior,
                evidence_ratios=evidence_ratios,
                absence_ratios=absence_ratios,
            )
        )
    del total
    return models
