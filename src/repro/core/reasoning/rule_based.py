"""Rule-based (priority) reasoning (Section II-D.1).

After spatial-temporal correlation places the symptom instance at the
root of the diagnosis graph and diagnostic instances at the other nodes,
the engine "starts from the root, searches through each node (if there
is a diagnostic event instance), and identifies the leaf node with the
maximum priority as the root cause.  In the case of a tie between
different leaf nodes, all of them are output as joint root causes."

"Leaf" here means leaf of the *matched* subgraph: a matched node none of
whose children matched — e.g. "eBGP HTE (due to unknown reasons)" in
Table IV is the HTE node matched with nothing deeper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ...collector.health import FeedState
from ..events import EventInstance
from ..graph import DiagnosisGraph, DiagnosisRule

#: Root-cause label when no diagnostic evidence joined the symptom.
UNKNOWN = "Unknown"

#: Annotated label when evidence may exist but its feed was impaired.
UNKNOWN_DEGRADED = "Unknown (evidence unavailable)"

#: Annotated label when evidence was genuinely absent from healthy feeds.
UNKNOWN_NO_EVIDENCE = "Unknown (no evidence found)"


@dataclass(frozen=True)
class MatchedEvidence:
    """One diagnostic instance joined along one graph edge."""

    rule: DiagnosisRule
    parent_instance: EventInstance
    instance: EventInstance
    depth: int


@dataclass(frozen=True)
class EvidenceGap:
    """One evidence feed found impaired inside a rule's retrieval window.

    The correlation step could not distinguish "the diagnostic event did
    not happen" from "the feed that would have carried it was not
    delivering"; reasoning must therefore discount its conclusion.
    """

    source: str  # collector feed / table name
    state: FeedState  # how impaired the feed was
    start: float  # overlap of the impairment with the window
    end: float
    event: str  # the diagnostic event whose retrieval was affected
    parent_event: str  # the rule's parent (symptom-side) event

    def describe(self) -> str:
        """Human-readable caveat line for ``Diagnosis.explain()``."""
        return (
            f"evidence source {self.source!r} was {self.state.value.upper()} "
            f"during [{self.start:.0f}, {self.end:.0f}] while matching "
            f"{self.event!r} (from {self.parent_event!r})"
        )


#: Confidence penalty per impaired feed, by severity of its worst state.
GAP_PENALTIES: Dict[FeedState, float] = {
    FeedState.LAGGING: 0.10,
    FeedState.DEGRADED: 0.25,
    FeedState.DOWN: 0.40,
}

#: Confidence never drops below this (the symptom itself was observed).
MIN_CONFIDENCE = 0.15


def assess_confidence(gaps: Sequence[EvidenceGap]) -> Tuple[float, List[str]]:
    """Confidence in [MIN_CONFIDENCE, 1.0] plus caveat strings.

    Full confidence with no gaps.  Otherwise each impaired feed charges
    one penalty for its worst observed state — several gaps on the same
    feed do not compound, but several impaired feeds do.
    """
    if not gaps:
        return 1.0, []
    worst: Dict[str, float] = {}
    for gap in gaps:
        penalty = GAP_PENALTIES.get(gap.state, 0.25)
        worst[gap.source] = max(worst.get(gap.source, 0.0), penalty)
    confidence = max(MIN_CONFIDENCE, round(1.0 - sum(worst.values()), 2))
    caveats = [gap.describe() for gap in gaps]
    return confidence, caveats


@dataclass
class RuleBasedResult:
    """Outcome of priority reasoning for one symptom."""

    root_causes: List[str]
    priority: int
    supporting: List[MatchedEvidence]

    @property
    def primary(self) -> str:
        """Single label for breakdowns: first cause, or ``Unknown``."""
        return self.root_causes[0] if self.root_causes else UNKNOWN


def reason(graph: DiagnosisGraph, evidence: Sequence[MatchedEvidence]) -> RuleBasedResult:
    """Apply max-priority leaf selection to correlated evidence."""
    if not evidence:
        return RuleBasedResult(root_causes=[], priority=0, supporting=[])
    matched_nodes: Set[str] = {e.rule.child_event for e in evidence}
    by_node: Dict[str, List[MatchedEvidence]] = {}
    for item in evidence:
        by_node.setdefault(item.rule.child_event, []).append(item)

    candidates: List[str] = []
    for node in matched_nodes:
        children_matched = any(
            rule.child_event in matched_nodes for rule in graph.rules_from(node)
        )
        if children_matched:
            continue
        if not any(e.rule.is_root_cause for e in by_node[node]):
            continue
        candidates.append(node)

    if not candidates:
        # everything matched was corroborating-only evidence
        return RuleBasedResult(root_causes=[], priority=0, supporting=list(evidence))

    def node_priority(node: str) -> int:
        return max(e.rule.priority for e in by_node[node] if e.rule.is_root_cause)

    best = max(node_priority(node) for node in candidates)
    winners = sorted(node for node in candidates if node_priority(node) == best)
    supporting = [e for node in winners for e in by_node[node]]
    return RuleBasedResult(root_causes=winners, priority=best, supporting=supporting)
