"""Temporal-rule calibration (Section VI future work: "make the
temporal joining rules less sensitive for robust root cause analysis").

The paper's operators pick margins from domain knowledge ("the default
setting for the eBGP hold timer is 180 s").  This module derives them
*empirically*: given historical symptom/diagnostic instance pairs whose
causal relation is known (e.g. bootstrap-classified by the rule-based
engine), it measures the lag distribution and proposes the tightest
expansion that still covers a target fraction of true pairs — robust
margins instead of guessed ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .events import EventInstance
from .temporal import ExpandOption, TemporalExpansion, TemporalJoinRule


@dataclass(frozen=True)
class LagSample:
    """One observed causal pair: the symptom and its known diagnostic."""

    symptom: EventInstance
    diagnostic: EventInstance

    @property
    def start_lag(self) -> float:
        """Symptom start minus diagnostic start (positive: cause first)."""
        return self.symptom.start - self.diagnostic.start


def _quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a non-empty sequence."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class CalibrationResult:
    """Proposed temporal rule plus the evidence behind it."""

    rule: TemporalJoinRule
    n_samples: int
    lag_low: float  # coverage-quantile lower lag bound
    lag_high: float  # coverage-quantile upper lag bound
    coverage: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_samples} pairs; lag in [{self.lag_low:.1f}, "
            f"{self.lag_high:.1f}] s at {100 * self.coverage:.0f}% coverage; "
            f"symptom expand X={self.rule.symptom.left:.1f} "
            f"Y={self.rule.symptom.right:.1f}"
        )


def calibrate_temporal_rule(
    samples: Sequence[LagSample],
    coverage: float = 0.98,
    slack: float = 5.0,
    diagnostic_expansion: Optional[TemporalExpansion] = None,
) -> CalibrationResult:
    """Propose a Start/Start symptom expansion from observed lags.

    The symptom window must reach back ``X`` to the earliest plausible
    cause and forward ``Y`` to cover causes recorded slightly after the
    symptom (clock skew); both are the ``coverage`` quantiles of the
    observed lag distribution padded by ``slack`` seconds of timestamp
    noise.
    """
    if not 0.5 < coverage <= 1.0:
        raise ValueError("coverage must be in (0.5, 1.0]")
    if not samples:
        raise ValueError("calibration needs at least one lag sample")
    lags = [sample.start_lag for sample in samples]
    tail = (1.0 - coverage) / 2.0
    lag_low = _quantile(lags, tail)
    lag_high = _quantile(lags, 1.0 - tail)
    # positive lag: cause precedes symptom -> reach back X = lag_high
    left = max(lag_high, 0.0) + slack
    # negative lag: cause recorded after the symptom -> reach forward
    right = max(-lag_low, 0.0) + slack
    diagnostic = diagnostic_expansion or TemporalExpansion(
        ExpandOption.START_END, slack, slack
    )
    rule = TemporalJoinRule(
        symptom=TemporalExpansion(ExpandOption.START_START, left, right),
        diagnostic=diagnostic,
    )
    return CalibrationResult(
        rule=rule,
        n_samples=len(samples),
        lag_low=lag_low,
        lag_high=lag_high,
        coverage=coverage,
    )


def pair_for_calibration(
    symptoms: Sequence[EventInstance],
    diagnostics: Sequence[EventInstance],
    max_lag: float,
    same_router: bool = True,
) -> List[LagSample]:
    """Greedy nearest-in-time pairing of symptoms with diagnostics.

    Used to bootstrap lag samples from engine-classified history: the
    caller passes only symptoms whose diagnosed root cause *is* the
    diagnostic event, so nearest-pairing is sound.
    """
    samples: List[LagSample] = []
    used: set = set()
    for symptom in sorted(symptoms, key=lambda instance: instance.start):
        best: Optional[Tuple[float, int]] = None
        for index, diagnostic in enumerate(diagnostics):
            if index in used:
                continue
            if same_router and not _related(symptom, diagnostic):
                continue
            lag = abs(symptom.start - diagnostic.start)
            if lag <= max_lag and (best is None or lag < best[0]):
                best = (lag, index)
        if best is not None:
            used.add(best[1])
            samples.append(LagSample(symptom, diagnostics[best[1]]))
    return samples


def _related(symptom: EventInstance, diagnostic: EventInstance) -> bool:
    """Same router where both locations expose one; else same location."""
    try:
        return symptom.location.router_part == diagnostic.location.router_part
    except ValueError:
        return symptom.location == diagnostic.location


def coverage_curve(
    samples: Sequence[LagSample],
    margins: Sequence[float],
    diagnostic_expansion: Optional[TemporalExpansion] = None,
) -> List[Tuple[float, float]]:
    """Fraction of true pairs joined at each candidate symptom margin X.

    The margin-sensitivity view behind the temporal ablation: how much
    coverage each extra second of margin buys.
    """
    diagnostic = diagnostic_expansion or TemporalExpansion(ExpandOption.START_END, 5, 5)
    curve = []
    for margin in margins:
        rule = TemporalJoinRule(
            symptom=TemporalExpansion(ExpandOption.START_START, margin, 10.0),
            diagnostic=diagnostic,
        )
        joined = sum(
            1
            for sample in samples
            if rule.joined(sample.symptom.interval, sample.diagnostic.interval)
        )
        curve.append((margin, joined / len(samples) if samples else 0.0))
    return curve
