"""Diagnosis graphs (Section II-C, Figs. 4-6).

A diagnosis graph has the symptom event at its root and diagnostic
events at the other nodes.  Each edge is a *diagnosis rule*: the pair of
parent and child events together with their temporal and spatial joining
rules and a priority used by rule-based reasoning.  Deeper nodes are
deeper causes ("line protocol flap is typically caused by interface
flap, [so] the priority for interface flap is higher").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .spatial import SpatialJoinRule
from .temporal import TemporalJoinRule


@dataclass(frozen=True)
class DiagnosisRule:
    """One edge: parent (symptom side) event -> child (diagnostic) event."""

    parent_event: str
    child_event: str
    temporal: TemporalJoinRule
    spatial: SpatialJoinRule
    priority: int = 0
    #: True when the child event, if deepest matched, names a root cause;
    #: False marks purely corroborating evidence that should never be
    #: reported as a cause by itself.
    is_root_cause: bool = True
    note: str = ""


class GraphError(ValueError):
    """Raised for malformed diagnosis graphs."""


@dataclass
class DiagnosisGraph:
    """Symptom event at the root, diagnosis rules as edges."""

    symptom_event: str
    name: str = ""
    _rules_from: Dict[str, List[DiagnosisRule]] = field(default_factory=dict)

    def add_rule(self, rule: DiagnosisRule) -> DiagnosisRule:
        """Add an edge; parent must already be reachable from the root."""
        if rule.parent_event != self.symptom_event and not self._reachable(
            rule.parent_event
        ):
            raise GraphError(
                f"parent event {rule.parent_event!r} is not reachable from "
                f"symptom {self.symptom_event!r}; add its rule first"
            )
        if rule.child_event == self.symptom_event:
            raise GraphError("the symptom event cannot be a diagnostic node")
        self._rules_from.setdefault(rule.parent_event, []).append(rule)
        if self._has_cycle():
            self._rules_from[rule.parent_event].remove(rule)
            raise GraphError(
                f"rule {rule.parent_event!r} -> {rule.child_event!r} creates a cycle"
            )
        return rule

    # ------------------------------------------------------------------

    def rules_from(self, event: str) -> List[DiagnosisRule]:
        """Outgoing diagnosis rules of one event node."""
        return list(self._rules_from.get(event, []))

    def all_rules(self) -> List[DiagnosisRule]:
        """Every rule in the graph, in insertion order."""
        return [rule for rules in self._rules_from.values() for rule in rules]

    def events(self) -> Set[str]:
        """All event names in the graph, including the symptom."""
        names = {self.symptom_event}
        for rules in self._rules_from.values():
            for rule in rules:
                names.add(rule.parent_event)
                names.add(rule.child_event)
        return names

    def diagnostic_events(self) -> Set[str]:
        """All event names except the symptom."""
        return self.events() - {self.symptom_event}

    def leaves(self) -> Set[str]:
        """Nodes with no outgoing rules — the deepest causes modelled."""
        return {event for event in self.events() if not self._rules_from.get(event)}

    def fingerprint(self) -> str:
        """Stable content hash of the graph (the cache's "revision").

        Two graphs with the same symptom, name and rule set (including
        temporal/spatial join parameters and priorities) produce the
        same fingerprint; editing any rule changes it, so service-layer
        result caches keyed on the fingerprint never serve a diagnosis
        computed under a different rule set.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.name}|{self.symptom_event}".encode())
        lines = [
            (
                f"{rule.parent_event}->{rule.child_event}"
                f"|p{rule.priority}|rc{int(rule.is_root_cause)}"
                f"|{rule.temporal!r}|{rule.spatial!r}"
            )
            for rule in self.all_rules()
        ]
        for line in sorted(lines):
            digest.update(line.encode())
        return digest.hexdigest()[:16]

    def rule_for_edge(self, parent: str, child: str) -> Optional[DiagnosisRule]:
        """The rule on a (parent, child) edge, or None."""
        for rule in self._rules_from.get(parent, []):
            if rule.child_event == child:
                return rule
        return None

    def depth_of(self, event: str) -> int:
        """Longest path length from the symptom to ``event`` (root = 0)."""
        depths = {self.symptom_event: 0}
        for parent in self._topological_order():
            for rule in self._rules_from.get(parent, []):
                candidate = depths.get(parent, 0) + 1
                if candidate > depths.get(rule.child_event, -1):
                    depths[rule.child_event] = candidate
        if event not in depths:
            raise GraphError(f"event {event!r} is not in the graph")
        return depths[event]

    # ------------------------------------------------------------------

    def _reachable(self, event: str) -> bool:
        seen = {self.symptom_event}
        stack = [self.symptom_event]
        while stack:
            node = stack.pop()
            if node == event:
                return True
            for rule in self._rules_from.get(node, []):
                if rule.child_event not in seen:
                    seen.add(rule.child_event)
                    stack.append(rule.child_event)
        return event in seen

    def _topological_order(self) -> List[str]:
        order: List[str] = []
        state: Dict[str, int] = {}

        def visit(node: str) -> None:
            state[node] = 1
            for rule in self._rules_from.get(node, []):
                if state.get(rule.child_event, 0) == 0:
                    visit(rule.child_event)
            state[node] = 2
            order.append(node)

        visit(self.symptom_event)
        for node in list(self._rules_from):
            if state.get(node, 0) == 0:
                visit(node)
        return list(reversed(order))

    def _has_cycle(self) -> bool:
        state: Dict[str, int] = {}

        def visit(node: str) -> bool:
            state[node] = 1
            for rule in self._rules_from.get(node, []):
                child_state = state.get(rule.child_event, 0)
                if child_state == 1:
                    return True
                if child_state == 0 and visit(rule.child_event):
                    return True
            state[node] = 2
            return False

        for node in list(self._rules_from):
            if state.get(node, 0) == 0 and visit(node):
                return True
        return False
