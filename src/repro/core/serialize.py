"""One JSON serialization for diagnoses (``grca-diagnosis/1``).

The HTTP gateway (:mod:`repro.service.http`) answers ``GET /v1/jobs/{id}``
with finished diagnoses, the trace export writes them next to span
trees, and downstream tooling (RCA-Copilot-style consumers) wants both
to agree on one stable shape.  This module is that shape: a pure-data
round-trip for :class:`~repro.core.engine.Diagnosis` and everything it
carries — symptom/evidence instances, the diagnosis rules they joined
along, evidence gaps, confidence caveats and the store footprint.

Design constraints:

* **round-trip exact** — ``diagnosis_from_dict(diagnosis_to_dict(d)) == d``
  under dataclass equality (the attached span tree is excluded from
  equality, as in the engine, but is carried when present);
* **strict JSON** — ``float("inf")`` footprint bounds (unbounded table
  scans) are encoded as the strings ``"inf"``/``"-inf"`` so the output
  survives strict parsers, not just Python's lenient ``json``;
* **no engine required** — decoding rebuilds plain rule/instance
  objects from their own fields; no graph, library or store is needed,
  so API *clients* can reconstruct diagnoses without the platform.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..collector.health import FeedState
from .events import EventInstance
from .graph import DiagnosisRule
from .locations import Location, LocationType
from .reasoning.rule_based import (
    EvidenceGap,
    MatchedEvidence,
    RuleBasedResult,
)
from .spatial import JoinLevel, SpatialJoinRule
from .temporal import ExpandOption, TemporalExpansion, TemporalJoinRule

#: Schema tag stamped on every serialized diagnosis.
DIAGNOSIS_SCHEMA = "grca-diagnosis/1"


# ---------------------------------------------------------------------------
# scalar helpers


def encode_float(value: float) -> Any:
    """A float as strict JSON: ``inf``/``-inf``/``nan`` become strings.

    Python's lenient :mod:`json` would otherwise emit the bare tokens
    ``Infinity``/``NaN``, which are not JSON and break strict parsers
    (``json.dumps(..., allow_nan=False)`` refuses them outright).
    """
    if value != value:  # NaN is the only float that differs from itself
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return value


def decode_float(value: Any) -> float:
    """Inverse of :func:`encode_float`: restore non-finite sentinels."""
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return float(value)


# Historical private names, kept for callers that imported them.
_encode_float = encode_float
_decode_float = decode_float


def _encode_value(value: Any) -> Any:
    """Encode one ``info`` value, preserving tuples through JSON."""
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(item) for item in value]}
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_decode_value(item) for item in value["__tuple__"])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# locations and event instances


def location_to_dict(location: Location) -> Dict[str, Any]:
    """A :class:`Location` as ``{"type", "parts"}``."""
    return {"type": location.type.value, "parts": list(location.parts)}


def location_from_dict(data: Dict[str, Any]) -> Location:
    """Rebuild a :class:`Location` from :func:`location_to_dict` output."""
    return Location(LocationType(data["type"]), tuple(data["parts"]))


def instance_to_dict(instance: EventInstance) -> Dict[str, Any]:
    """An :class:`EventInstance` as a JSON-ready dict (tuples preserved)."""
    return {
        "name": instance.name,
        "start": instance.start,
        "end": instance.end,
        "location": location_to_dict(instance.location),
        "info": [[key, _encode_value(value)] for key, value in instance.info],
    }


def instance_from_dict(data: Dict[str, Any]) -> EventInstance:
    """Rebuild an :class:`EventInstance` from :func:`instance_to_dict` output."""
    return EventInstance(
        name=data["name"],
        start=float(data["start"]),
        end=float(data["end"]),
        location=location_from_dict(data["location"]),
        info=tuple(
            (key, _decode_value(value)) for key, value in data.get("info", [])
        ),
    )


# ---------------------------------------------------------------------------
# diagnosis rules (graph edges carried by matched evidence)


def rule_to_dict(rule: DiagnosisRule) -> Dict[str, Any]:
    """A :class:`DiagnosisRule` (temporal + spatial clauses) as a dict."""
    return {
        "parent_event": rule.parent_event,
        "child_event": rule.child_event,
        "temporal": {
            "symptom": _expansion_to_dict(rule.temporal.symptom),
            "diagnostic": _expansion_to_dict(rule.temporal.diagnostic),
        },
        "spatial": {
            "symptom_type": rule.spatial.symptom_type.value,
            "diagnostic_type": rule.spatial.diagnostic_type.value,
            "level": rule.spatial.level.value,
        },
        "priority": rule.priority,
        "is_root_cause": rule.is_root_cause,
        "note": rule.note,
    }


def rule_from_dict(data: Dict[str, Any]) -> DiagnosisRule:
    """Rebuild a :class:`DiagnosisRule` from :func:`rule_to_dict` output."""
    spatial = data["spatial"]
    return DiagnosisRule(
        parent_event=data["parent_event"],
        child_event=data["child_event"],
        temporal=TemporalJoinRule(
            symptom=_expansion_from_dict(data["temporal"]["symptom"]),
            diagnostic=_expansion_from_dict(data["temporal"]["diagnostic"]),
        ),
        spatial=SpatialJoinRule(
            symptom_type=LocationType(spatial["symptom_type"]),
            diagnostic_type=LocationType(spatial["diagnostic_type"]),
            level=JoinLevel(spatial["level"]),
        ),
        priority=data.get("priority", 0),
        is_root_cause=data.get("is_root_cause", True),
        note=data.get("note", ""),
    )


def _expansion_to_dict(expansion: TemporalExpansion) -> Dict[str, Any]:
    return {
        "option": expansion.option.value,
        "left": expansion.left,
        "right": expansion.right,
    }


def _expansion_from_dict(data: Dict[str, Any]) -> TemporalExpansion:
    return TemporalExpansion(
        option=ExpandOption(data["option"]),
        left=float(data["left"]),
        right=float(data["right"]),
    )


# ---------------------------------------------------------------------------
# evidence, gaps, results


def evidence_to_dict(item: MatchedEvidence) -> Dict[str, Any]:
    """A :class:`MatchedEvidence` edge (rule + both instances) as a dict."""
    return {
        "rule": rule_to_dict(item.rule),
        "parent_instance": instance_to_dict(item.parent_instance),
        "instance": instance_to_dict(item.instance),
        "depth": item.depth,
    }


def evidence_from_dict(data: Dict[str, Any]) -> MatchedEvidence:
    """Rebuild a :class:`MatchedEvidence` from :func:`evidence_to_dict` output."""
    return MatchedEvidence(
        rule=rule_from_dict(data["rule"]),
        parent_instance=instance_from_dict(data["parent_instance"]),
        instance=instance_from_dict(data["instance"]),
        depth=data["depth"],
    )


def gap_to_dict(gap: EvidenceGap) -> Dict[str, Any]:
    """An :class:`EvidenceGap` as a dict (infinite bounds as strings)."""
    return {
        "source": gap.source,
        "state": gap.state.value,
        "start": _encode_float(gap.start),
        "end": _encode_float(gap.end),
        "event": gap.event,
        "parent_event": gap.parent_event,
    }


def gap_from_dict(data: Dict[str, Any]) -> EvidenceGap:
    """Rebuild an :class:`EvidenceGap` from :func:`gap_to_dict` output."""
    return EvidenceGap(
        source=data["source"],
        state=FeedState(data["state"]),
        start=_decode_float(data["start"]),
        end=_decode_float(data["end"]),
        event=data["event"],
        parent_event=data["parent_event"],
    )


def _supporting_indices(
    evidence: Sequence[MatchedEvidence], supporting: Sequence[MatchedEvidence]
) -> List[int]:
    """Supporting items as indices into the evidence list (no duplication).

    Reasoning builds ``supporting`` from the very objects in
    ``evidence``, so identity lookup covers the normal path; equality
    is the fallback for hand-built results.
    """
    by_identity = {id(item): index for index, item in enumerate(evidence)}
    indices = []
    for item in supporting:
        index = by_identity.get(id(item))
        if index is None:
            index = list(evidence).index(item)
        indices.append(index)
    return indices


# ---------------------------------------------------------------------------
# the diagnosis envelope


def diagnosis_to_dict(diagnosis) -> Dict[str, Any]:
    """One :class:`~repro.core.engine.Diagnosis` as a JSON-ready dict."""
    evidence = diagnosis.evidence
    document = {
        "schema": DIAGNOSIS_SCHEMA,
        "symptom": instance_to_dict(diagnosis.symptom),
        "evidence": [evidence_to_dict(item) for item in evidence],
        "result": {
            "root_causes": list(diagnosis.result.root_causes),
            "priority": diagnosis.result.priority,
            "supporting": _supporting_indices(
                evidence, diagnosis.result.supporting
            ),
        },
        "gaps": [gap_to_dict(gap) for gap in diagnosis.gaps],
        "confidence": _encode_float(diagnosis.confidence),
        "caveats": list(diagnosis.caveats),
        "footprint": [
            [table, _encode_float(lo), _encode_float(hi)]
            for table, lo, hi in diagnosis.footprint
        ],
        # derived labels repeated flat so API consumers need no logic
        "annotated_cause": diagnosis.annotated_cause,
        "is_explained": diagnosis.is_explained,
    }
    if diagnosis.trace is not None:
        document["trace"] = diagnosis.trace.to_dict()
    return document


def diagnosis_from_dict(data: Dict[str, Any]):
    """Rebuild a :class:`~repro.core.engine.Diagnosis` from its dict form.

    Raises :class:`ValueError` on any malformed payload — wrong or
    missing schema tag, truncated documents, missing evidence fields,
    dangling supporting indices — so API clients see one exception type
    instead of raw ``KeyError``/``IndexError`` from deep inside the
    decoder.
    """
    from .engine import Diagnosis  # local import: engine imports this module

    if not isinstance(data, dict):
        raise ValueError(
            f"diagnosis payload must be a JSON object, got {type(data).__name__}"
        )
    schema = data.get("schema")
    if schema != DIAGNOSIS_SCHEMA:
        raise ValueError(
            f"unsupported diagnosis schema {schema!r}; "
            f"expected {DIAGNOSIS_SCHEMA!r}"
        )
    try:
        evidence = [evidence_from_dict(item) for item in data.get("evidence", [])]
        result_data = data["result"]
        supporting_indices = result_data.get("supporting", [])
        bad = [i for i in supporting_indices if not 0 <= i < len(evidence)]
        if bad:
            raise ValueError(
                f"supporting indices {bad} out of range for "
                f"{len(evidence)} evidence items"
            )
        result = RuleBasedResult(
            root_causes=list(result_data.get("root_causes", [])),
            priority=result_data.get("priority", 0),
            supporting=[evidence[index] for index in supporting_indices],
        )
        trace = None
        if data.get("trace") is not None:
            from ..obs.trace import Span

            trace = Span.from_dict(data["trace"])
        return Diagnosis(
            symptom=instance_from_dict(data["symptom"]),
            evidence=evidence,
            result=result,
            gaps=[gap_from_dict(gap) for gap in data.get("gaps", [])],
            confidence=_decode_float(data.get("confidence", 1.0)),
            caveats=list(data.get("caveats", [])),
            footprint=tuple(
                (table, _decode_float(lo), _decode_float(hi))
                for table, lo, hi in data.get("footprint", [])
            ),
            trace=trace,
        )
    except ValueError:
        raise
    except (KeyError, IndexError, TypeError) as exc:
        raise ValueError(
            f"malformed {DIAGNOSIS_SCHEMA} payload: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
