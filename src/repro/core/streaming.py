"""Real-time root cause analysis (the paper's Section VI future work:
"we want to support real-time root cause applications").

The batch engine diagnoses historical symptoms over a closed window.
:class:`StreamingRca` runs the same engine *incrementally*: telemetry
is ingested continuously, and each call to :meth:`advance` detects the
symptom instances that have newly become *settled* — old enough that
their diagnostic evidence (which may lag the symptom by protocol timers
and polling intervals) has arrived — and diagnoses them.

Design points:

* **Settle delay** — a symptom is only diagnosed once
  ``now - settle_seconds`` has passed its end, bounding how long late
  evidence is waited for.  The default covers the eBGP hold timer plus
  one SNMP poll.
* **Reorder slack** — retrieval windows reach back ``reorder_slack``
  before the previous watermark so out-of-order feed arrivals are not
  lost; already-diagnosed instances are de-duplicated by identity.
* **Cache discipline** — the engine's retrieval cache is cleared on
  every advance, since new records may have landed inside previously
  cached windows.
* **Watermark deferral** — when the engine has a feed-health registry
  and a required evidence feed is ``LAGGING``, settling is deferred to
  that feed's watermark (bounded by ``max_watermark_defer``) so slow
  feeds produce *late* diagnoses instead of wrong ones.  ``DOWN`` feeds
  never defer — waiting on a dead feed would stall the pipeline; their
  absence is annotated on the diagnosis instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..collector.health import FeedState
from ..obs.trace import NULL_TRACER
from .engine import Diagnosis, RcaEngine, evidence_sources
from .events import EventInstance, RetrievalContext, instance_key

DiagnosisCallback = Callable[[Diagnosis], None]

#: Diagnoses a batch of settled symptoms; a worker-pool dispatcher (see
#: ``RcaService.dispatcher``) plugs in here to parallelize advances.
BatchDispatcher = Callable[[List[EventInstance]], List[Diagnosis]]


@dataclass
class StreamingConfig:
    """Tunables for incremental diagnosis."""

    #: wait this long past a symptom's end before diagnosing it
    settle_seconds: float = 420.0
    #: how far before the previous watermark retrieval reaches back
    reorder_slack: float = 120.0
    #: forget de-duplication keys older than this (memory bound)
    dedupe_horizon: float = 7200.0
    #: cap on how long a LAGGING feed may hold back settling
    max_watermark_defer: float = 1800.0


class StreamingRca:
    """Incremental symptom detection and diagnosis over a live store."""

    def __init__(
        self,
        engine: RcaEngine,
        config: Optional[StreamingConfig] = None,
        on_diagnosis: Optional[DiagnosisCallback] = None,
        start: Optional[float] = None,
        dispatcher: Optional[BatchDispatcher] = None,
    ) -> None:
        """``start`` sets where the first advance begins looking for
        symptoms; omit it to stream "from now" (the first advance covers
        one settle window only, ignoring older backlog).  ``dispatcher``
        replaces inline diagnosis with a batch executor — pass
        ``RcaService.dispatcher(app)`` to run each advance's settled
        symptoms on the service worker pool (parallel, cached, metered)
        instead of on the caller's thread."""
        self.engine = engine
        self.config = config or StreamingConfig()
        self.on_diagnosis = on_diagnosis
        self.dispatcher = dispatcher
        self._start = start
        self._watermark: Optional[float] = None
        self._seen: Dict[Tuple[str, Tuple[str, ...], float], float] = {}
        self.diagnosed_count = 0
        self._required_sources: Optional[Set[str]] = None

    @property
    def watermark(self) -> Optional[float]:
        """End of the last settled region that has been diagnosed."""
        return self._watermark

    def advance(self, now: float, tracer=None) -> List[Diagnosis]:
        """Diagnose symptoms that settled since the last call.

        ``now`` is the wall-clock frontier of ingested data.  Returns
        the new diagnoses (also delivered to ``on_diagnosis``).

        ``tracer`` (a :class:`repro.obs.Tracer`, optional) records one
        ``advance`` span covering the whole call, with a ``detect``
        child for symptom retrieval and — on the inline path — one
        ``diagnose`` subtree per settled symptom, each also attached to
        its :attr:`Diagnosis.trace`.  Dispatcher-executed batches trace
        on the service side instead (per-job tracers), not here.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span("advance", label=f"now={now:g}") as adv:
            registry = self.engine.config.health
            if registry is not None:
                registry.tick(now)
            settled_until = self._defer_for_lagging_feeds(
                now - self.config.settle_seconds
            )
            adv.annotate(settled_until=settled_until)
            if self._watermark is not None and settled_until <= self._watermark:
                # nothing newly settled, but memory bounds still apply
                self._gc_dedupe(max(settled_until, self._watermark))
                adv.annotate(fresh=0)
                return []
            if self._watermark is not None:
                window_start = self._watermark - self.config.reorder_slack
            elif self._start is not None:
                window_start = self._start
            else:
                window_start = settled_until - self.config.settle_seconds
            self.engine.clear_cache()
            definition = self.engine.library.get(self.engine.graph.symptom_event)
            fresh: List[EventInstance] = []
            with tracer.span("detect", label=definition.name) as det:
                context = RetrievalContext(
                    store=self.engine.store,
                    start=window_start,
                    end=settled_until,
                    params=self.engine.config.params,
                    services=self.engine.config.services,
                )
                retrieved = 0
                for instance in definition.retrieve(context):
                    retrieved += 1
                    if instance.end > settled_until:
                        continue  # not settled yet; next advance takes it
                    key = instance_key(instance)
                    if key in self._seen:
                        continue
                    self._seen[key] = instance.end
                    fresh.append(instance)
                det.annotate(retrieved=retrieved, fresh=len(fresh))
            self._watermark = settled_until
            self._gc_dedupe(settled_until)
            adv.annotate(fresh=len(fresh))
            if self.dispatcher is not None:
                with tracer.span("dispatch", label=definition.name) as span:
                    diagnoses = self.dispatcher(fresh)
                    span.annotate(jobs=len(fresh), diagnoses=len(diagnoses))
                self.diagnosed_count += len(diagnoses)
                if self.on_diagnosis is not None:
                    for diagnosis in diagnoses:
                        self.on_diagnosis(diagnosis)
                return diagnoses
            diagnoses = []
            for instance in fresh:
                diagnosis = self.engine.diagnose(instance, tracer=tracer)
                diagnoses.append(diagnosis)
                self.diagnosed_count += 1
                if self.on_diagnosis is not None:
                    self.on_diagnosis(diagnosis)
            return diagnoses

    def _defer_for_lagging_feeds(self, settled_until: float) -> float:
        """Hold settling back to the slowest LAGGING evidence feed.

        Only feeds that are LAGGING (still delivering, just behind)
        defer — a DOWN feed would hold the watermark forever, and a
        never-observed feed is not expected to deliver at all.  The
        deferral is bounded by ``max_watermark_defer``.
        """
        registry = self.engine.config.health
        if registry is None:
            return settled_until
        floor = settled_until - self.config.max_watermark_defer
        deferred = settled_until
        for source in self._evidence_sources():
            feed = registry.feeds.get(source)
            if feed is None or feed.state is not FeedState.LAGGING:
                continue
            if feed.watermark is not None and feed.watermark < deferred:
                deferred = max(floor, feed.watermark)
        return deferred

    def _evidence_sources(self) -> Set[str]:
        """Collector feeds backing any event in the diagnosis graph."""
        if self._required_sources is None:
            self._required_sources = evidence_sources(
                self.engine.graph, self.engine.library
            )
        return self._required_sources

    def _gc_dedupe(self, settled_until: float) -> None:
        """Forget dedupe keys whose instances ended before the horizon."""
        horizon = settled_until - self.config.dedupe_horizon
        stale = [key for key, end in self._seen.items() if end < horizon]
        for key in stale:
            del self._seen[key]


class FeedReplayer:
    """Replays a (time, source, line) stream into a collector in steps.

    A test/demo harness standing in for live feed transports: call
    :meth:`deliver_until` to push everything stamped before a cutoff
    through the Data Collector's parsers, then advance the
    :class:`StreamingRca` with the same cutoff.
    """

    def __init__(self, collector, stream: Iterable[Tuple[float, str, str]]) -> None:
        self.collector = collector
        self._stream = sorted(stream, key=lambda item: (item[0], item[1]))
        self._position = 0

    @property
    def pending(self) -> int:
        return len(self._stream) - self._position

    def deliver_until(self, cutoff: float) -> int:
        """Ingest every line stamped at or before ``cutoff``."""
        delivered = 0
        by_source: Dict[str, List[str]] = {}
        while self._position < len(self._stream):
            timestamp, source, line = self._stream[self._position]
            if timestamp > cutoff:
                break
            by_source.setdefault(source, []).append(line)
            self._position += 1
            delivered += 1
        for source, lines in by_source.items():
            # the cutoff is the observation clock: feeds whose newest
            # record trails it are genuinely behind
            self.collector.ingest(source, lines, now=cutoff)
        return delivered
