"""Real-time root cause analysis (the paper's Section VI future work:
"we want to support real-time root cause applications").

The batch engine diagnoses historical symptoms over a closed window.
:class:`StreamingRca` runs the same engine *incrementally*: telemetry
is ingested continuously, and each call to :meth:`advance` detects the
symptom instances that have newly become *settled* — old enough that
their diagnostic evidence (which may lag the symptom by protocol timers
and polling intervals) has arrived — and diagnoses them.

Design points:

* **Settle delay** — a symptom is only diagnosed once
  ``now - settle_seconds`` has passed its end, bounding how long late
  evidence is waited for.  The default covers the eBGP hold timer plus
  one SNMP poll.
* **Reorder slack** — retrieval windows reach back ``reorder_slack``
  before the previous watermark so out-of-order feed arrivals are not
  lost; already-diagnosed instances are de-duplicated by identity.
* **Incremental cache discipline** — the engine's retrieval cache is
  *not* cleared per advance.  The streaming engine subscribes to the
  store's insert listeners, buffers every ``(table, timestamp)`` delta,
  and on each advance drops exactly the cached covers a new record
  landed in (:meth:`RcaEngine.invalidate_deltas`); covers behind the
  data frontier stay warm across advances.  Setting
  ``StreamingConfig.incremental = False`` restores the legacy
  clear-everything discipline.
* **Delta-driven re-diagnosis** — the same deltas re-open
  previously-settled symptoms: a late or out-of-order record that lands
  inside a settled diagnosis's read footprint triggers exactly that
  symptom's re-diagnosis (bounded by ``max_reopen_per_advance`` and
  ``reopen_horizon``, keyed by ``instance_key``).  A re-diagnosis whose
  conclusion changed is re-emitted through ``on_diagnosis``; unchanged
  ones are absorbed silently.
* **Watermark deferral** — when the engine has a feed-health registry
  and a required evidence feed is ``LAGGING``, settling is deferred to
  that feed's watermark (bounded by ``max_watermark_defer``) so slow
  feeds produce *late* diagnoses instead of wrong ones.  ``DOWN`` feeds
  never defer — waiting on a dead feed would stall the pipeline; their
  absence is annotated on the diagnosis instead.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..collector.health import FeedState
from ..obs.trace import NULL_TRACER
from .engine import Diagnosis, RcaEngine, evidence_sources
from .events import EventInstance, InstanceKey, RetrievalContext, instance_key

DiagnosisCallback = Callable[[Diagnosis], None]

#: Diagnoses a batch of settled symptoms; a worker-pool dispatcher (see
#: ``RcaService.dispatcher``) plugs in here to parallelize advances.
BatchDispatcher = Callable[[List[EventInstance]], List[Diagnosis]]


@dataclass
class StreamingConfig:
    """Tunables for incremental diagnosis."""

    #: wait this long past a symptom's end before diagnosing it
    settle_seconds: float = 420.0
    #: how far before the previous watermark retrieval reaches back
    reorder_slack: float = 120.0
    #: forget de-duplication keys older than this (memory bound)
    dedupe_horizon: float = 7200.0
    #: cap on how long a LAGGING feed may hold back settling
    max_watermark_defer: float = 1800.0
    #: delta-driven cache invalidation + settled-symptom re-diagnosis;
    #: False restores the legacy clear-cache-every-advance discipline
    incremental: bool = True
    #: how far back a late record may re-open a settled symptom (the
    #: retention horizon of the re-open set; memory bound — one entry
    #: per symptom, so a day costs little and covers feed outages)
    reopen_horizon: float = 86400.0
    #: cap on re-opened symptoms per advance (excess re-opens are
    #: dropped oldest-first and stay at their previous diagnosis)
    max_reopen_per_advance: int = 64


class StreamingRca:
    """Incremental symptom detection and diagnosis over a live store."""

    def __init__(
        self,
        engine: RcaEngine,
        config: Optional[StreamingConfig] = None,
        on_diagnosis: Optional[DiagnosisCallback] = None,
        start: Optional[float] = None,
        dispatcher: Optional[BatchDispatcher] = None,
    ) -> None:
        """``start`` sets where the first advance begins looking for
        symptoms; omit it to stream "from now" (the first advance covers
        one settle window only, ignoring older backlog).  ``dispatcher``
        replaces inline diagnosis with a batch executor — pass
        ``RcaService.dispatcher(app)`` to run each advance's settled
        symptoms on the service worker pool (parallel, cached, metered)
        instead of on the caller's thread."""
        self.engine = engine
        self.config = config or StreamingConfig()
        self.on_diagnosis = on_diagnosis
        self.dispatcher = dispatcher
        self._start = start
        self._watermark: Optional[float] = None
        self._seen: Dict[InstanceKey, float] = {}
        self.diagnosed_count = 0
        self._required_sources: Optional[Set[str]] = None
        # --- incremental state -----------------------------------------
        #: pending (unsorted) insert timestamps per table, fed by the
        #: store's insert listeners from ingest threads; drained on the
        #: engine-owning thread at the top of every advance
        self._pending: Dict[str, List[float]] = {}
        self._pending_lock = threading.Lock()
        #: settled symptoms eligible for re-opening: identity -> the
        #: instance and its latest diagnosis (whose footprint is the
        #: re-open trigger surface)
        self._settled: Dict[InstanceKey, Tuple[EventInstance, Diagnosis]] = {}
        self._subscribed = False
        #: cache entries dropped by delta invalidation (cumulative)
        self.invalidated_count = 0
        #: settled symptoms re-opened by a delta (cumulative)
        self.reopened_count = 0
        #: re-diagnoses whose conclusion changed and were re-emitted
        self.reemitted_count = 0
        #: cache entries evicted behind the re-open horizon (cumulative)
        self.evicted_count = 0
        if self.config.incremental and hasattr(engine.store, "subscribe"):
            engine.store.subscribe(self._on_insert)
            self._subscribed = True

    def close(self) -> None:
        """Detach from the store's insert listeners (idempotent)."""
        if self._subscribed:
            self.engine.store.unsubscribe(self._on_insert)
            self._subscribed = False

    @property
    def watermark(self) -> Optional[float]:
        """End of the last settled region that has been diagnosed."""
        return self._watermark

    def _on_insert(self, table: str, timestamp: float, revision: int) -> None:
        """Insert listener: buffer one delta (called from ingest threads)."""
        with self._pending_lock:
            self._pending.setdefault(table, []).append(timestamp)

    def _drain_deltas(self) -> Dict[str, List[float]]:
        """Take the pending delta buffer, sorted per table."""
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for points in pending.values():
            points.sort()
        return pending

    def _select_reopens(
        self, deltas: Dict[str, List[float]]
    ) -> List[Tuple[InstanceKey, EventInstance, Diagnosis]]:
        """Settled symptoms whose read footprint a delta landed in.

        Sound because every record that can change a diagnosis lands in
        some window that diagnosis read (its footprint — recorded even
        on cache hits): evidence the walk never reached is covered
        transitively, since reaching it requires a parent match whose
        own window the record must first land in.
        """
        if not deltas or not self._settled:
            return []
        hits: List[Tuple[InstanceKey, EventInstance, Diagnosis]] = []
        for key, (instance, diagnosis) in self._settled.items():
            for table, lo, hi in diagnosis.footprint:
                points = deltas.get(table)
                if not points:
                    continue
                p = bisect.bisect_left(points, lo)
                if p < len(points) and points[p] <= hi:
                    hits.append((key, instance, diagnosis))
                    break
        hits.sort(key=lambda item: (item[1].start, item[0]))
        cap = self.config.max_reopen_per_advance
        if len(hits) > cap:
            # keep the most recent symptoms — late data skews recent
            hits = hits[len(hits) - cap:]
        return hits

    def advance(self, now: float, tracer=None) -> List[Diagnosis]:
        """Diagnose symptoms that settled since the last call.

        ``now`` is the wall-clock frontier of ingested data.  Returns
        the new diagnoses — plus, in incremental mode, re-emitted
        diagnoses of previously-settled symptoms whose conclusion a
        late record changed (also delivered to ``on_diagnosis``).

        ``tracer`` (a :class:`repro.obs.Tracer`, optional) records one
        ``advance`` span covering the whole call, with a ``detect``
        child for symptom retrieval and — on the inline path — one
        ``diagnose`` subtree per settled symptom, each also attached to
        its :attr:`Diagnosis.trace`.  Dispatcher-executed batches trace
        on the service side instead (per-job tracers), not here.  The
        ``advance`` span carries ``invalidated`` / ``reopened`` /
        ``reemitted`` counters in incremental mode.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        config = self.config
        with tracer.span("advance", label=f"now={now:g}") as adv:
            registry = self.engine.config.health
            if registry is not None:
                registry.tick(now)
            settled_until = self._defer_for_lagging_feeds(
                now - config.settle_seconds
            )
            adv.annotate(settled_until=settled_until)
            reopens: List[Tuple[InstanceKey, EventInstance, Diagnosis]] = []
            if config.incremental:
                deltas = self._drain_deltas()
                if deltas:
                    invalidated = self.engine.invalidate_deltas(deltas)
                    self.invalidated_count += invalidated
                    adv.annotate(invalidated=invalidated)
                    reopens = self._select_reopens(deltas)
            fresh: List[EventInstance] = []
            if self._watermark is not None and settled_until <= self._watermark:
                # nothing newly settled, but memory bounds still apply —
                # and buffered deltas may still re-open settled symptoms
                horizon = max(settled_until, self._watermark)
                self._gc_dedupe(horizon)
                self._gc_settled(horizon)
                adv.annotate(fresh=0)
                if not reopens:
                    return []
            else:
                if self._watermark is not None:
                    window_start = self._watermark - config.reorder_slack
                elif self._start is not None:
                    window_start = self._start
                else:
                    window_start = settled_until - config.settle_seconds
                if not config.incremental:
                    # legacy discipline: new records may have landed in
                    # any cached window, so everything goes
                    self.engine.clear_cache()
                definition = self.engine.library.get(
                    self.engine.graph.symptom_event
                )
                with tracer.span("detect", label=definition.name) as det:
                    context = RetrievalContext(
                        store=self.engine.store,
                        start=window_start,
                        end=settled_until,
                        params=self.engine.config.params,
                        services=self.engine.config.services,
                    )
                    retrieved = 0
                    for instance in definition.retrieve(context):
                        retrieved += 1
                        if instance.end > settled_until:
                            continue  # not settled yet; next advance takes it
                        key = instance_key(instance)
                        if key in self._seen:
                            continue
                        self._seen[key] = instance.end
                        fresh.append(instance)
                    det.annotate(retrieved=retrieved, fresh=len(fresh))
                self._watermark = settled_until
                self._gc_dedupe(settled_until)
                self._gc_settled(settled_until)
                if config.incremental:
                    # covers behind every window a fresh or re-opened
                    # symptom can still request are pure memory (and
                    # invalidation-scan) cost; the slack generously
                    # bounds rule search-window lookback
                    evicted = self.engine.evict_retrievals_before(
                        settled_until - config.reopen_horizon - 3600.0
                    )
                    self.evicted_count += evicted
                    if evicted:
                        adv.annotate(evicted=evicted)
                adv.annotate(fresh=len(fresh))
            if reopens:
                self.reopened_count += len(reopens)
                adv.annotate(reopened=len(reopens))
            emitted = self._diagnose(fresh, reopens, tracer)
            if self.on_diagnosis is not None:
                for diagnosis in emitted:
                    self.on_diagnosis(diagnosis)
            return emitted

    def _diagnose(
        self,
        fresh: List[EventInstance],
        reopens: List[Tuple[InstanceKey, EventInstance, Diagnosis]],
        tracer,
    ) -> List[Diagnosis]:
        """Run fresh + re-opened symptoms; return what should be emitted.

        Fresh symptoms are always emitted.  Re-opened symptoms are
        re-diagnosed against the (selectively invalidated) cache; the
        stored diagnosis is replaced either way, but only a *changed*
        conclusion is re-emitted.
        """
        previous = {key: diagnosis for key, _instance, diagnosis in reopens}
        to_run = fresh + [instance for _key, instance, _diag in reopens]
        if not to_run:
            return []
        if self.dispatcher is not None:
            with tracer.span("dispatch") as span:
                produced = self.dispatcher(to_run)
                span.annotate(jobs=len(to_run), diagnoses=len(produced))
        else:
            produced = []
            for instance in to_run:
                produced.append(self.engine.diagnose(instance, tracer=tracer))
        emitted: List[Diagnosis] = []
        track = self.config.incremental
        for diagnosis in produced:
            key = instance_key(diagnosis.symptom)
            if key in previous:
                if track:
                    self._settled[key] = (diagnosis.symptom, diagnosis)
                if diagnosis != previous[key]:
                    self.reemitted_count += 1
                    emitted.append(diagnosis)
            else:
                if track:
                    self._settled[key] = (diagnosis.symptom, diagnosis)
                self.diagnosed_count += 1
                emitted.append(diagnosis)
        return emitted

    def _defer_for_lagging_feeds(self, settled_until: float) -> float:
        """Hold settling back to the slowest LAGGING evidence feed.

        Only feeds that are LAGGING (still delivering, just behind)
        defer — a DOWN feed would hold the watermark forever, and a
        never-observed feed is not expected to deliver at all.  The
        deferral is bounded by ``max_watermark_defer``.
        """
        registry = self.engine.config.health
        if registry is None:
            return settled_until
        floor = settled_until - self.config.max_watermark_defer
        deferred = settled_until
        for source in self._evidence_sources():
            feed = registry.feeds.get(source)
            if feed is None or feed.state is not FeedState.LAGGING:
                continue
            if feed.watermark is not None and feed.watermark < deferred:
                deferred = max(floor, feed.watermark)
        return deferred

    def _evidence_sources(self) -> Set[str]:
        """Collector feeds backing any event in the diagnosis graph."""
        if self._required_sources is None:
            self._required_sources = evidence_sources(
                self.engine.graph, self.engine.library
            )
        return self._required_sources

    def _gc_dedupe(self, settled_until: float) -> None:
        """Forget dedupe keys whose instances ended before the horizon."""
        horizon = settled_until - self.config.dedupe_horizon
        stale = [key for key, end in self._seen.items() if end < horizon]
        for key in stale:
            del self._seen[key]

    def _gc_settled(self, settled_until: float) -> None:
        """Forget re-openable symptoms older than the re-open horizon."""
        if not self._settled:
            return
        horizon = settled_until - self.config.reopen_horizon
        stale = [
            key
            for key, (instance, _diagnosis) in self._settled.items()
            if instance.end < horizon
        ]
        for key in stale:
            del self._settled[key]


class FeedReplayer:
    """Replays a (time, source, line) stream into a collector in steps.

    A test/demo harness standing in for live feed transports: call
    :meth:`deliver_until` to push everything stamped before a cutoff
    through the Data Collector's parsers, then advance the
    :class:`StreamingRca` with the same cutoff.
    """

    def __init__(self, collector, stream: Iterable[Tuple[float, str, str]]) -> None:
        self.collector = collector
        self._stream = sorted(stream, key=lambda item: (item[0], item[1]))
        self._position = 0

    @property
    def pending(self) -> int:
        return len(self._stream) - self._position

    def deliver_until(self, cutoff: float) -> int:
        """Ingest every line stamped at or before ``cutoff``."""
        delivered = 0
        by_source: Dict[str, List[str]] = {}
        while self._position < len(self._stream):
            timestamp, source, line = self._stream[self._position]
            if timestamp > cutoff:
                break
            by_source.setdefault(source, []).append(line)
            self._position += 1
            delivered += 1
        for source, lines in by_source.items():
            # the cutoff is the observation clock: feeds whose newest
            # record trails it are genuinely behind
            self.collector.ingest(source, lines, now=cutoff)
        return delivered
