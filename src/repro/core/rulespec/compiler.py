"""Compile parsed rule specifications into diagnosis graphs."""

from __future__ import annotations

from typing import Optional

from ..events import EventLibrary
from ..graph import DiagnosisGraph, DiagnosisRule, GraphError
from ..knowledge.rules import RuleCatalog
from ..locations import LocationType
from ..spatial import JoinLevel, SpatialJoinRule
from ..temporal import ExpandOption, TemporalExpansion, TemporalJoinRule
from .parser import ExpandClause, RuleSpecError, RuleStmt, SpecAst, parse

_OPTIONS = {
    "start/end": ExpandOption.START_END,
    "start/start": ExpandOption.START_START,
    "end/end": ExpandOption.END_END,
}

_LOCATION_TYPES = {member.value: member for member in LocationType}
_JOIN_LEVELS = {member.value: member for member in JoinLevel}


def _expansion(clause: ExpandClause) -> TemporalExpansion:
    return TemporalExpansion(_OPTIONS[clause.option], clause.left, clause.right)


class SpecCompiler:
    """Turns an AST into a :class:`DiagnosisGraph`, with validation."""

    def __init__(self, events: EventLibrary, catalog: Optional[RuleCatalog] = None) -> None:
        self.events = events
        self.catalog = catalog

    def compile(self, ast: SpecAst) -> DiagnosisGraph:
        """Compile a parsed AST into a diagnosis graph."""
        if ast.symptom not in self.events:
            raise RuleSpecError(f"unknown symptom event {ast.symptom!r}")
        graph = DiagnosisGraph(symptom_event=ast.symptom, name=ast.application)
        for stmt in ast.rules:
            try:
                graph.add_rule(self._compile_rule(ast, stmt))
            except GraphError as exc:
                raise RuleSpecError(str(exc), stmt.line) from exc
        return graph

    def compile_text(self, text: str) -> DiagnosisGraph:
        """Parse and compile specification text."""
        return self.compile(parse(text))

    # ------------------------------------------------------------------

    def _compile_rule(self, ast: SpecAst, stmt: RuleStmt) -> DiagnosisRule:
        for event in (stmt.parent, stmt.child):
            if event not in self.events:
                raise RuleSpecError(f"unknown event {event!r}", stmt.line)
        if stmt.use_library:
            base = self._library_rule(stmt)
            temporal = base.temporal
            spatial = base.spatial
        else:
            temporal = spatial = None
        if stmt.symptom_expand or stmt.diagnostic_expand:
            if not (stmt.symptom_expand and stmt.diagnostic_expand) and temporal is None:
                raise RuleSpecError(
                    "both symptom and diagnostic expand clauses are required "
                    "unless the rule uses the library",
                    stmt.line,
                )
            symptom_exp = (
                _expansion(stmt.symptom_expand)
                if stmt.symptom_expand
                else temporal.symptom
            )
            diagnostic_exp = (
                _expansion(stmt.diagnostic_expand)
                if stmt.diagnostic_expand
                else temporal.diagnostic
            )
            temporal = TemporalJoinRule(symptom_exp, diagnostic_exp)
        if stmt.join is not None:
            spatial = self._spatial(stmt)
        if temporal is None or spatial is None:
            raise RuleSpecError(
                f"rule {stmt.parent!r} -> {stmt.child!r} needs either "
                "'use library' or explicit expand/join clauses",
                stmt.line,
            )
        self._check_location_types(stmt, spatial)
        return DiagnosisRule(
            parent_event=stmt.parent,
            child_event=stmt.child,
            temporal=temporal,
            spatial=spatial,
            priority=stmt.priority,
            is_root_cause=not stmt.evidence_only,
            note=stmt.note,
        )

    def _library_rule(self, stmt: RuleStmt) -> DiagnosisRule:
        if self.catalog is None:
            raise RuleSpecError(
                "'use library' requires a rule catalog", stmt.line
            )
        try:
            return self.catalog.rule(stmt.parent, stmt.child, stmt.priority)
        except KeyError:
            raise RuleSpecError(
                f"no library rule {stmt.parent!r} -> {stmt.child!r}", stmt.line
            ) from None

    def _spatial(self, stmt: RuleStmt) -> SpatialJoinRule:
        join = stmt.join
        if join.symptom_type not in _LOCATION_TYPES:
            raise RuleSpecError(
                f"unknown location type {join.symptom_type!r}", stmt.line
            )
        if join.diagnostic_type not in _LOCATION_TYPES:
            raise RuleSpecError(
                f"unknown location type {join.diagnostic_type!r}", stmt.line
            )
        if join.level not in _JOIN_LEVELS:
            raise RuleSpecError(f"unknown join level {join.level!r}", stmt.line)
        return SpatialJoinRule(
            _LOCATION_TYPES[join.symptom_type],
            _LOCATION_TYPES[join.diagnostic_type],
            _JOIN_LEVELS[join.level],
        )

    def _check_location_types(self, stmt: RuleStmt, spatial: SpatialJoinRule) -> None:
        parent_type = self.events.get(stmt.parent).location_type
        child_type = self.events.get(stmt.child).location_type
        if spatial.symptom_type is not parent_type:
            raise RuleSpecError(
                f"event {stmt.parent!r} has location type {parent_type.value!r}, "
                f"rule joins on {spatial.symptom_type.value!r}",
                stmt.line,
            )
        if spatial.diagnostic_type is not child_type:
            raise RuleSpecError(
                f"event {stmt.child!r} has location type {child_type.value!r}, "
                f"rule joins on {spatial.diagnostic_type.value!r}",
                stmt.line,
            )
